//! Property-based integration tests (proptest): renaming safety and the
//! τ-register invariants hold for arbitrary sizes, seeds and schedules.

use proptest::prelude::*;
use randomized_renaming::baselines::{BitonicRenaming, UniformProbing};
use randomized_renaming::renaming::traits::{Cor7, Cor9, LooseL6, LooseL8, RenamingAlgorithm};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::{
    Adversary, CollisionMaximizer, CrashAdversary, FairAdversary, RandomAdversary,
};
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;
use randomized_renaming::tau::CountingDevice;

fn algo_by_index(i: u8) -> Box<dyn RenamingAlgorithm> {
    match i % 8 {
        0 => Box::new(TightRenaming::calibrated(4)),
        1 => Box::new(TightRenaming::paper_exact(4)),
        2 => Box::new(LooseL6 { ell: 1 }),
        3 => Box::new(LooseL8 { ell: 1 }),
        4 => Box::new(Cor7 { ell: 1 }),
        5 => Box::new(Cor9 { ell: 1 }),
        6 => Box::new(BitonicRenaming),
        _ => Box::new(UniformProbing::double()),
    }
}

fn adversary_by_index(i: u8, seed: u64) -> Box<dyn Adversary> {
    match i % 4 {
        0 => Box::new(FairAdversary::default()),
        1 => Box::new(RandomAdversary::new(seed)),
        2 => Box::new(CollisionMaximizer::default()),
        _ => Box::new(CrashAdversary::new(RandomAdversary::new(seed), 0.05, 16, seed)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The fundamental safety property, fuzzed across the whole space of
    /// (algorithm, adversary, n, seed).
    #[test]
    fn renaming_safety_holds_everywhere(
        algo_i in 0u8..8,
        adv_i in 0u8..4,
        n in 8usize..200,
        seed in 0u64..1000,
    ) {
        let algo = algo_by_index(algo_i);
        let inst = algo.instantiate(n, seed);
        let m = inst.m;
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let mut adv = adversary_by_index(adv_i, seed);
        let out = run(procs, adv.as_mut(), algo.step_budget(n)).unwrap();
        prop_assert!(out.verify_renaming(m).is_ok());
        if !algo.almost_tight() {
            prop_assert_eq!(out.gave_up_count(), 0);
        }
    }

    /// Tight protocols emit exactly the names [0, n) when nobody crashes.
    #[test]
    fn tight_names_are_a_permutation(
        variant in 0u8..2,
        n in 8usize..150,
        seed in 0u64..500,
    ) {
        let algo: Box<dyn RenamingAlgorithm> = if variant == 0 {
            Box::new(TightRenaming::calibrated(4))
        } else {
            Box::new(TightRenaming::paper_exact(4))
        };
        let inst = algo.instantiate(n, seed);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut RandomAdversary::new(seed), algo.step_budget(n)).unwrap();
        let mut names: Vec<usize> = out.names.iter().flatten().copied().collect();
        names.sort_unstable();
        prop_assert_eq!(names, (0..n).collect::<Vec<_>>());
    }

    /// The counting device never exceeds τ and only monotonically sets
    /// bits, for arbitrary cycle schedules (public-API version of the
    /// rr-tau unit property).
    #[test]
    fn device_quota_safety(
        width in 1u32..=64,
        tau_raw in 0u32..=64,
        schedule in proptest::collection::vec(
            proptest::collection::vec((0usize..64, 0u32..64), 0..12), 0..12),
    ) {
        let tau = tau_raw.min(width);
        let mut device = CountingDevice::new(width, tau);
        let mut prev = 0u64;
        for batch in schedule {
            let reqs: Vec<(usize, usize)> = batch
                .into_iter()
                .map(|(t, b)| (t, (b % width) as usize))
                .collect();
            device.clock_cycle(&reqs);
            prop_assert!(device.confirmed_count() <= tau);
            prop_assert_eq!(device.confirmed() & prev, prev);
            prev = device.confirmed();
        }
    }

    /// Crash storms: survivors are always fully named; names never
    /// duplicate no matter how many processes die.
    #[test]
    fn survivors_always_named(
        n in 16usize..128,
        budget in 0usize..64,
        seed in 0u64..300,
    ) {
        let algo = TightRenaming::calibrated(4);
        let inst = RenamingAlgorithm::instantiate(&algo, n, seed);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let mut adv = CrashAdversary::new(FairAdversary::default(), 0.3, budget, seed);
        let out = run(procs, &mut adv, RenamingAlgorithm::step_budget(&algo, n)).unwrap();
        let crashed = out.crashed.iter().filter(|&&c| c).count();
        let named = out.names.iter().filter(|x| x.is_some()).count();
        prop_assert_eq!(named + crashed, n);
        prop_assert!(out.verify_renaming(n).is_ok());
    }
}
