//! Integration tests for the model extensions: adaptive renaming and
//! long-lived renaming.

use randomized_renaming::renaming::adaptive::AdaptiveRenaming;
use randomized_renaming::renaming::longlived::{LongLivedClient, ReleasableTasArray};
use randomized_renaming::renaming::traits::RenamingAlgorithm;
use randomized_renaming::sched::adversary::{CrashAdversary, FairAdversary, RandomAdversary};
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;
use std::collections::HashSet;

#[test]
fn adaptive_under_crashes_names_all_survivors() {
    let (shared, procs) = AdaptiveRenaming.instantiate_participants(256, 1024, 3);
    let boxed: Vec<Box<dyn Process>> =
        procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
    let mut adv = CrashAdversary::new(FairAdversary::default(), 0.05, 50, 9);
    let out = run(boxed, &mut adv, 1 << 28).unwrap();
    out.verify_renaming(shared.layout().total).unwrap();
    let crashed = out.crashed.iter().filter(|&&c| c).count();
    let named = out.names.iter().filter(|x| x.is_some()).count();
    assert_eq!(named + crashed, 256);
}

#[test]
fn adaptive_name_usage_is_linear_in_k_across_seeds() {
    for seed in 0..5 {
        for k in [16usize, 128] {
            let (shared, procs) = AdaptiveRenaming.instantiate_participants(k, 4096, seed);
            let boxed: Vec<Box<dyn Process>> =
                procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
            let out = run(boxed, &mut RandomAdversary::new(seed), 1 << 28).unwrap();
            out.verify_renaming(shared.layout().total).unwrap();
            assert_eq!(out.gave_up_count(), 0);
            let max_name = out.names.iter().flatten().max().copied().unwrap();
            assert!(max_name < 12 * k, "k={k} seed={seed}: max name {max_name}");
        }
    }
}

#[test]
fn adaptive_through_renaming_algorithm_trait() {
    let inst = RenamingAlgorithm::instantiate(&AdaptiveRenaming, 128, 7);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let out = run(procs, &mut FairAdversary::default(), 1 << 28).unwrap();
    out.verify_renaming(m).unwrap();
    assert_eq!(out.gave_up_count(), 0);
}

#[test]
fn longlived_names_stay_distinct_across_generations() {
    // Interleaved acquire/release with different hold patterns: at no
    // point may two clients hold the same name.
    let n = 48;
    let names = ReleasableTasArray::new(n * 2);
    let mut clients: Vec<_> = (0..n).map(|p| LongLivedClient::new(p, 11)).collect();
    for round in 0..200 {
        // Odd clients churn every round; even clients hold for two.
        for c in clients.iter_mut() {
            if c.held().is_none() {
                c.acquire(&names);
            }
        }
        let held: HashSet<_> = clients.iter().filter_map(|c| c.held()).collect();
        assert_eq!(held.len(), n, "duplicate held names in round {round}");
        for c in clients.iter_mut() {
            let release_now = c.pid() % 2 == 1 || round % 2 == 1;
            if release_now && c.held().is_some() {
                c.release(&names);
            }
        }
    }
}

#[test]
fn longlived_amortized_cost_independent_of_history() {
    let n = 128;
    let names = ReleasableTasArray::new(2 * n);
    let mut clients: Vec<_> = (0..n).map(|p| LongLivedClient::new(p, 5)).collect();
    let mut window_costs = Vec::new();
    for _window in 0..4 {
        let before: u64 = clients.iter().map(|c| c.stats().0).sum();
        for _ in 0..100 {
            for c in clients.iter_mut() {
                c.acquire(&names);
            }
            for c in clients.iter_mut() {
                c.release(&names);
            }
        }
        let after: u64 = clients.iter().map(|c| c.stats().0).sum();
        window_costs.push((after - before) as f64 / (100 * n) as f64);
    }
    // No upward drift: last window within 25% of the first.
    assert!(
        window_costs[3] < window_costs[0] * 1.25 + 0.2,
        "amortized cost drifts: {window_costs:?}"
    );
}
