//! Link-and-anchor checker for the repo's markdown surface: every
//! relative link in README.md / ISSUE.md / ROADMAP.md / CHANGES.md /
//! REPRODUCTION.md must point to an existing file, and every `#anchor`
//! must resolve to a heading (using the same GitHub-style slugs the
//! report renderer emits, so `REPRODUCTION.md`'s generated summary
//! table is verified too).

use rr_report::slugify;
use std::path::{Path, PathBuf};

const DOCS: [&str; 5] = ["README.md", "ISSUE.md", "ROADMAP.md", "CHANGES.md", "REPRODUCTION.md"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// `[text](target)` links outside fenced code blocks.
fn links(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in body.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            let after = &rest[open + 2..];
            match after.find(')') {
                Some(close) => {
                    out.push(after[..close].to_string());
                    rest = &after[close + 1..];
                }
                None => break,
            }
        }
    }
    out
}

/// Heading slugs of a markdown body, GitHub-style.
fn heading_slugs(body: &str) -> Vec<String> {
    let mut in_fence = false;
    body.lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                in_fence = !in_fence;
                return false;
            }
            !in_fence && line.starts_with('#')
        })
        .map(|line| slugify(line.trim_start_matches('#').trim()))
        .collect()
}

fn check_anchor(doc: &str, target_file: &Path, anchor: &str, errors: &mut Vec<String>) {
    let body = match std::fs::read_to_string(target_file) {
        Ok(b) => b,
        Err(_) => return, // the file-existence check reports this
    };
    if !heading_slugs(&body).iter().any(|s| s == anchor) {
        errors.push(format!(
            "{doc}: anchor `#{anchor}` not found in {}",
            target_file.file_name().unwrap_or_default().to_string_lossy()
        ));
    }
}

#[test]
fn markdown_links_and_anchors_resolve() {
    let root = repo_root();
    let mut errors = Vec::new();
    for doc in DOCS {
        let path = root.join(doc);
        let body = match std::fs::read_to_string(&path) {
            Ok(b) => b,
            Err(e) => {
                errors.push(format!("{doc}: unreadable: {e}"));
                continue;
            }
        };
        for target in links(&body) {
            // External links are not checkable offline; title suffixes
            // (`path "title"`) are not used in this repo.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            if let Some(anchor) = target.strip_prefix('#') {
                check_anchor(doc, &path, anchor, &mut errors);
                continue;
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a)),
                None => (target.as_str(), None),
            };
            let target_path = root.join(file_part);
            if !target_path.exists() {
                errors.push(format!("{doc}: broken link `{target}` (no such file)"));
                continue;
            }
            if let Some(anchor) = anchor {
                if file_part.ends_with(".md") {
                    check_anchor(doc, &target_path, anchor, &mut errors);
                }
            }
        }
    }
    assert!(errors.is_empty(), "markdown link check failed:\n  {}", errors.join("\n  "));
}

/// The generated report's summary table must stay internally linked —
/// one anchor per claim and cross-check section, all resolving.
#[test]
fn reproduction_report_summary_anchors_cover_every_section() {
    let body = std::fs::read_to_string(repo_root().join("REPRODUCTION.md"))
        .expect("committed REPRODUCTION.md");
    let slugs = heading_slugs(&body);
    let summary_anchors: Vec<&str> = body
        .lines()
        .filter(|l| l.starts_with("| ["))
        .filter_map(|l| l.split("](#").nth(1)?.split(')').next())
        .collect();
    assert_eq!(summary_anchors.len(), 10, "7 claims + 3 cross-checks in the summary");
    for anchor in summary_anchors {
        assert!(slugs.iter().any(|s| s == anchor), "summary anchor `#{anchor}` dangles");
    }
}

#[test]
fn slug_convention_matches_github() {
    assert_eq!(slugify("Registry key tables"), "registry-key-tables");
    assert_eq!(slugify("Theorem 5 (E1) — tight renaming"), "theorem-5-e1--tight-renaming");
}
