//! Free-running thread mode: the same state machines on real atomics,
//! with the independent `NameSpaceAudit` referee claiming names as the
//! algorithms emit them.

use randomized_renaming::baselines::{BitonicRenaming, FetchAddRenaming, UniformProbing};
use randomized_renaming::renaming::traits::{Cor7, Cor9, RenamingAlgorithm};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::process::run_to_completion;
use randomized_renaming::sched::run_threads_bounded;
use randomized_renaming::shmem::NameSpaceAudit;
use std::sync::Arc;

fn threaded_audit(algo: &dyn RenamingAlgorithm, n: usize, threads: usize) {
    let inst = algo.instantiate(n, 77);
    let m = inst.m;
    let audit = Arc::new(NameSpaceAudit::new(n, m));
    std::thread::scope(|scope| {
        let mut queue = inst.processes;
        while !queue.is_empty() {
            let wave: Vec<_> = queue.drain(..queue.len().min(threads)).collect();
            let handles: Vec<_> = wave
                .into_iter()
                .map(|mut p| {
                    let audit = Arc::clone(&audit);
                    scope.spawn(move || {
                        let pid = p.pid();
                        let (name, _) = run_to_completion(p.as_mut(), 1 << 24);
                        let name = name.expect("full protocols name everyone");
                        audit.claim(pid.index(), name).expect("audit rejected a claim");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
    });
    assert_eq!(audit.named_count(), n, "{}: not everyone audited", algo.name());
    audit.verify_complete(&(0..n).collect::<Vec<_>>()).unwrap();
}

#[test]
fn tight_tau_on_threads_with_audit() {
    threaded_audit(&TightRenaming::calibrated(4), 512, 32);
}

#[test]
fn cor7_on_threads_with_audit() {
    threaded_audit(&Cor7 { ell: 1 }, 512, 32);
}

#[test]
fn cor9_on_threads_with_audit() {
    threaded_audit(&Cor9 { ell: 1 }, 512, 32);
}

#[test]
fn bitonic_on_threads_with_audit() {
    threaded_audit(&BitonicRenaming, 256, 32);
}

#[test]
fn fetch_add_on_threads_with_audit() {
    threaded_audit(&FetchAddRenaming, 1024, 64);
}

#[test]
fn uniform_on_threads_with_audit() {
    threaded_audit(&UniformProbing::double(), 512, 32);
}

#[test]
fn bounded_executor_matches_unbounded_name_sets() {
    // Different thread counts may change who gets which name, but never
    // the named-set properties.
    let algo = TightRenaming::calibrated(4);
    for threads in [1usize, 4, 64] {
        let inst = algo.instantiate(200, 5);
        let out = run_threads_bounded(inst.processes, threads, 1 << 24);
        out.verify_renaming(200).unwrap();
        let mut names: Vec<usize> = out.names.iter().flatten().copied().collect();
        names.sort_unstable();
        assert_eq!(names, (0..200).collect::<Vec<_>>());
    }
}

#[test]
fn heavy_contention_stress() {
    // Small name space, many waves — maximal contention on the
    // τ-registers' lock-free request path.
    for round in 0..8 {
        let algo = TightRenaming::calibrated(2);
        let inst = algo.instantiate(64, round);
        let out = run_threads_bounded(inst.processes, 64, 1 << 22);
        out.verify_renaming(64).unwrap();
    }
}
