//! Model-fidelity checks: the announce/step contract that makes the
//! adversary *adaptive* in the paper's sense.
//!
//! The adversary is entitled to see each process's next access — coin
//! flips included — before granting it. That only means something if
//! (a) announcements are stable until the step executes, and (b) the
//! executed access is the announced one. These tests wrap real protocol
//! processes and verify both properties over full runs.

use randomized_renaming::baselines::{BitonicRenaming, UniformProbing};
use randomized_renaming::renaming::traits::{Cor9, RenamingAlgorithm};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::{Adversary, Decision, FairAdversary, RunView};
use randomized_renaming::sched::ids::{pids, Pid};
use randomized_renaming::sched::process::{Process, StepOutcome};
use randomized_renaming::sched::virtual_exec::run;
use randomized_renaming::shmem::Access;
use std::sync::Mutex;

/// Wraps a process; checks announce idempotency on every poll.
struct AnnounceChecker {
    inner: Box<dyn Process + Send>,
    repeats: usize,
}

impl Process for AnnounceChecker {
    fn announce(&mut self) -> Access {
        let first = self.inner.announce();
        for _ in 0..self.repeats {
            assert_eq!(
                self.inner.announce(),
                first,
                "announce() must be stable until the next step (pid {})",
                self.inner.pid()
            );
        }
        first
    }

    fn step(&mut self) -> StepOutcome {
        self.inner.step()
    }

    fn pid(&self) -> Pid {
        self.inner.pid()
    }
}

fn check_announce_stability(algo: &dyn RenamingAlgorithm, n: usize) {
    let inst = algo.instantiate(n, 3);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> = inst
        .processes
        .into_iter()
        .map(|inner| Box::new(AnnounceChecker { inner, repeats: 2 }) as Box<dyn Process>)
        .collect();
    let out = run(procs, &mut FairAdversary::default(), algo.step_budget(n)).unwrap();
    out.verify_renaming(m).unwrap();
}

#[test]
fn announcements_are_stable_for_all_protocols() {
    check_announce_stability(&TightRenaming::calibrated(4), 128);
    check_announce_stability(&TightRenaming::paper_exact(4), 128);
    check_announce_stability(&Cor9 { ell: 1 }, 128);
    check_announce_stability(&BitonicRenaming, 64);
    check_announce_stability(&UniformProbing::double(), 128);
}

/// An adversary that records every announced access it granted, so we
/// can replay the record against the memory effects.
struct Recorder {
    inner: FairAdversary,
    granted: Mutex<Vec<(Pid, Access)>>,
}

impl Adversary for Recorder {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let d = self.inner.decide(view);
        if let Decision::Grant(pid) = d {
            self.granted.lock().unwrap().push((pid, view.announced[pid].unwrap()));
        }
        d
    }

    fn name(&self) -> &'static str {
        "recorder"
    }
}

#[test]
fn adversary_sees_the_coin_flips_that_actually_execute() {
    // Run uniform probing and check that the multiset of granted TAS
    // targets per pid is consistent: the winner's final name equals the
    // last TAS index it announced (i.e. the adversary really saw the
    // executed random choices).
    let algo = UniformProbing::double();
    let n = 128;
    let inst = algo.instantiate(n, 9);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let mut rec = Recorder { inner: FairAdversary::default(), granted: Mutex::new(Vec::new()) };
    let out = run(procs, &mut rec, algo.step_budget(n)).unwrap();
    out.verify_renaming(m).unwrap();

    let granted = rec.granted.into_inner().unwrap();
    for pid in pids(n) {
        let last_target = granted
            .iter()
            .rev()
            .find(|(p, _)| *p == pid)
            .and_then(|(_, acc)| acc.index())
            .expect("every process was granted at least one access");
        assert_eq!(
            out.names[pid],
            Some(last_target),
            "pid {pid}: final name must be the last announced target"
        );
    }
}

#[test]
fn step_counts_equal_grants() {
    // The paper's step complexity counts shared-memory accesses; the
    // executor must charge exactly one per grant.
    let algo = TightRenaming::calibrated(4);
    let n = 256;
    let inst = algo.instantiate(n, 4);
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let mut rec = Recorder { inner: FairAdversary::default(), granted: Mutex::new(Vec::new()) };
    let out = run(procs, &mut rec, algo.step_budget(n)).unwrap();
    let granted = rec.granted.into_inner().unwrap();
    assert_eq!(granted.len() as u64, out.total_steps());
    for pid in pids(n) {
        let grants = granted.iter().filter(|(p, _)| *p == pid).count() as u64;
        assert_eq!(grants, out.steps[pid], "pid {pid}");
    }
}
