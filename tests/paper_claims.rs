//! Small-scale executable versions of the paper's quantitative claims —
//! the same checks the E-series experiments run at full size, shrunk so
//! `cargo test` alone validates the headline results.

use randomized_renaming::analysis::ballsbins::{lemma3_bound, simulate_lemma3};
use randomized_renaming::renaming::traits::{Cor7, Cor9, LooseL6, LooseL8, RenamingAlgorithm};
use randomized_renaming::renaming::{Lemma6Schedule, Lemma8Schedule, TightRenaming};
use randomized_renaming::sched::adversary::FairAdversary;
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::{run, RunOutcome};

fn run_fair(algo: &dyn RenamingAlgorithm, n: usize, seed: u64) -> RunOutcome {
    let inst = algo.instantiate(n, seed);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let out = run(procs, &mut FairAdversary::default(), algo.step_budget(n)).unwrap();
    out.verify_renaming(m).unwrap();
    out
}

#[test]
fn theorem5_step_complexity_is_logarithmic_quick() {
    // Fast CI cut of the test below: 16× growth in n, 2 seeds.
    let mut worst_ratio: f64 = 0.0;
    for n in [1usize << 8, 1 << 12] {
        for seed in 0..2 {
            let out = run_fair(&TightRenaming::calibrated(4), n, seed);
            assert_eq!(out.gave_up_count(), 0);
            let ratio = out.step_complexity() as f64 / (n as f64).log2();
            worst_ratio = worst_ratio.max(ratio);
        }
    }
    assert!(worst_ratio < 12.0, "Theorem 5 ratio blew up: {worst_ratio}");
}

/// The tier-1 promotion of `theorem5_step_complexity_is_logarithmic`:
/// instead of sampling a few seeds under the fair schedule, exhaust
/// **every** schedule of a bounded tree (`explore:depth=…` via the
/// adversary registry) at n ≤ 6 and bound the *worst-case* step
/// complexity over all of them. The large randomized sweep stays
/// `slow-tests`-gated below.
#[test]
fn theorem5_exhaustive_small_n_worst_case() {
    use randomized_renaming::sched::explore::SharedExplorer;
    use randomized_renaming::sched::Arena;

    let algo = TightRenaming::calibrated(4);
    let mut arena = Arena::new();
    for n in [4usize, 5, 6] {
        // Strict: fixed workload, so any tree-shape drift must panic.
        let explorer = SharedExplorer::from_key("explore:depth=5").unwrap().strict();
        let mut worst = 0u64;
        while !explorer.exhausted() {
            let mut adv = explorer.adversary();
            let out = algo
                .run_dense(n, 0, &mut adv, &mut arena)
                .unwrap_or_else(|e| panic!("n={n}: {e}\n  tape: `{}`", adv.tape().to_text()));
            out.verify_renaming(algo.m(n))
                .unwrap_or_else(|v| panic!("n={n}: {v}\n  tape: `{}`", adv.tape().to_text()));
            assert_eq!(out.gave_up_count(), 0, "tight renaming never gives up (n={n})");
            worst = worst.max(out.step_complexity());
        }
        assert!(explorer.schedules() > 0);
        // Worst case over the whole bounded schedule space stays within
        // a small constant × n — far below the 200·n·(log₂ n + 16)
        // step budget, and schedule-independent in order of magnitude.
        assert!(
            worst <= 4 * n as u64,
            "n={n}: exhaustive worst-case step complexity {worst} blew past 4n"
        );
    }
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "multi-second sweep; run with --features slow-tests (or -- --ignored)"
)]
fn theorem5_step_complexity_is_logarithmic() {
    // Step complexity / log2(n) bounded by a constant across a 64×
    // growth in n (5 seeds each).
    let mut worst_ratio: f64 = 0.0;
    for n in [1usize << 8, 1 << 11, 1 << 14] {
        for seed in 0..5 {
            let out = run_fair(&TightRenaming::calibrated(4), n, seed);
            assert_eq!(out.gave_up_count(), 0);
            let ratio = out.step_complexity() as f64 / (n as f64).log2();
            worst_ratio = worst_ratio.max(ratio);
        }
    }
    assert!(worst_ratio < 12.0, "Theorem 5 ratio blew up: {worst_ratio}");
}

#[test]
fn theorem5_space_is_linear() {
    use randomized_renaming::renaming::TightPlan;
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        let plan = TightPlan::calibrated(n, 4);
        let space = plan.total_bits() + plan.total_names();
        assert!(space <= 4 * n, "space {space} not O(n) at n={n}");
    }
}

#[test]
fn lemma3_holds_at_c_4() {
    // c = 4 = 2ℓ+2 at ℓ=1 ⇒ violation probability ≤ 1/n; at 5000 trials
    // and n = 4096 we expect zero violations.
    let r = simulate_lemma3(1 << 12, 4, 5000, 1);
    assert_eq!(r.violations, 0);
    assert!(lemma3_bound(1 << 12, 4) < 1.0 / 4096.0);
}

#[test]
fn lemma6_unnamed_bound_holds() {
    for ell in [1u32, 2] {
        let n = 1 << 12;
        let bound = Lemma6Schedule::new(n, ell).unnamed_bound;
        for seed in 0..5 {
            let out = run_fair(&LooseL6 { ell }, n, seed);
            assert!(
                (out.gave_up_count() as f64) <= bound,
                "l={ell} seed={seed}: {} > {bound}",
                out.gave_up_count()
            );
        }
    }
}

#[test]
fn lemma6_steps_within_schedule() {
    let n = 1 << 12;
    for ell in [1u32, 2, 3] {
        let schedule = Lemma6Schedule::new(n, ell);
        let out = run_fair(&LooseL6 { ell }, n, 3);
        assert!(out.step_complexity() <= schedule.total_steps);
    }
}

#[test]
fn lemma8_unnamed_and_steps() {
    let n = 1 << 12;
    for ell in [1u32, 2] {
        let schedule = Lemma8Schedule::new(n, ell);
        let out = run_fair(&LooseL8 { ell }, n, 9);
        assert!(out.step_complexity() <= schedule.total_steps());
        // Bound with a small constant for finite-n slack (the paper's
        // bound is asymptotic).
        let bound = 4.0 * schedule.unnamed_bound + schedule.capacity() as f64 * 0.0 + 8.0;
        assert!(
            (out.gave_up_count() as f64) <= bound + (n - schedule.capacity()) as f64,
            "l={ell}: unnamed {}",
            out.gave_up_count()
        );
    }
}

#[test]
fn corollary7_full_renaming_in_its_space() {
    for ell in [1u32, 2] {
        let n = 1 << 12;
        let algo = Cor7 { ell };
        let out = run_fair(&algo, n, 5);
        assert_eq!(out.gave_up_count(), 0, "Cor 7 must name everyone");
        // Step complexity ≪ log n (the poly-log-log claim, coarsely).
        assert!(
            out.step_complexity() < 20 * ((n as f64).log2() as u64),
            "steps {}",
            out.step_complexity()
        );
    }
}

#[test]
fn corollary9_full_renaming_in_its_space() {
    for ell in [1u32, 2] {
        let n = 1 << 12;
        let algo = Cor9 { ell };
        let out = run_fair(&algo, n, 5);
        assert_eq!(out.gave_up_count(), 0, "Cor 9 must name everyone");
        let m = algo.m(n);
        // (1 + o(1))·n: the slack is ≤ 2n/log n at ℓ=1.
        assert!(m - n <= 2 * n / 12 + 1);
    }
}

#[test]
fn loose_is_asymptotically_cheaper_than_tight() {
    // The motivation table of §I: loose renaming at (1+o(1))n names is
    // markedly cheaper than tight renaming even at modest n.
    let n = 1 << 14;
    let tight = run_fair(&TightRenaming::calibrated(4), n, 2);
    let loose = run_fair(&Cor9 { ell: 1 }, n, 2);
    assert!(
        loose.step_complexity() * 2 < tight.step_complexity(),
        "loose {} vs tight {}",
        loose.step_complexity(),
        tight.step_complexity()
    );
}
