//! Reproducibility: the virtual executor is a deterministic function of
//! (algorithm, n, seed, adversary) — the property EXPERIMENTS.md numbers
//! rely on.

use randomized_renaming::renaming::traits::{Cor7, Cor9, LooseL6, LooseL8, RenamingAlgorithm};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::RandomAdversary;
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::{run, RunOutcome};

fn run_once(algo: &dyn RenamingAlgorithm, n: usize, seed: u64) -> RunOutcome {
    let inst = algo.instantiate(n, seed);
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    run(procs, &mut RandomAdversary::new(seed ^ 0xAB), algo.step_budget(n)).unwrap()
}

fn fingerprint(out: &RunOutcome) -> (Vec<Option<usize>>, Vec<u64>, u64) {
    (out.names.clone().into_vec(), out.steps.clone().into_vec(), out.decisions)
}

#[test]
fn identical_seeds_identical_runs() {
    let algos: Vec<Box<dyn RenamingAlgorithm>> = vec![
        Box::new(TightRenaming::calibrated(4)),
        Box::new(LooseL6 { ell: 2 }),
        Box::new(LooseL8 { ell: 1 }),
        Box::new(Cor7 { ell: 1 }),
        Box::new(Cor9 { ell: 1 }),
    ];
    for algo in &algos {
        let a = run_once(algo.as_ref(), 256, 42);
        let b = run_once(algo.as_ref(), 256, 42);
        assert_eq!(fingerprint(&a), fingerprint(&b), "{} not deterministic", algo.name());
    }
}

#[test]
fn different_seeds_differ() {
    let algo = TightRenaming::calibrated(4);
    let a = run_once(&algo, 256, 1);
    let b = run_once(&algo, 256, 2);
    assert_ne!(fingerprint(&a), fingerprint(&b), "seed must matter");
}

#[test]
fn pid_streams_are_independent_of_population() {
    // The per-process RNG derivation (seed, pid) must not depend on n:
    // the first coin of pid 7 is the same in a 64- and a 256-process run.
    use randomized_renaming::shmem::rng::ProcessRng;
    let mut small = ProcessRng::new(9, 7);
    let mut large = ProcessRng::new(9, 7);
    for _ in 0..16 {
        assert_eq!(small.index(1000), large.index(1000));
    }
}
