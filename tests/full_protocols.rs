//! Cross-crate integration: every renaming algorithm in the workspace —
//! the paper's protocols and the baselines — runs under every adversary
//! and passes the full renaming audit.

use randomized_renaming::baselines::{
    BitonicRenaming, FetchAddRenaming, LinearScan, ScanStart, SplitterGrid, UniformProbing,
};
use randomized_renaming::renaming::traits::{
    AagwLoose, Cor7, Cor9, LooseL6, LooseL8, RenamingAlgorithm,
};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::{
    Adversary, CollisionMaximizer, CrashAdversary, FairAdversary, RandomAdversary,
};
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;

fn all_algorithms() -> Vec<Box<dyn RenamingAlgorithm>> {
    vec![
        Box::new(TightRenaming::calibrated(4)),
        Box::new(TightRenaming::paper_exact(4)),
        Box::new(LooseL6 { ell: 1 }),
        Box::new(LooseL6 { ell: 2 }),
        Box::new(LooseL8 { ell: 1 }),
        Box::new(LooseL8 { ell: 2 }),
        Box::new(Cor7 { ell: 1 }),
        Box::new(Cor7 { ell: 2 }),
        Box::new(Cor9 { ell: 1 }),
        Box::new(Cor9 { ell: 2 }),
        Box::new(AagwLoose),
        Box::new(BitonicRenaming),
        Box::new(FetchAddRenaming),
        Box::new(UniformProbing::double()),
        Box::new(UniformProbing { epsilon: 0.25 }),
        Box::new(LinearScan { start: ScanStart::Zero }),
        Box::new(LinearScan { start: ScanStart::OwnPid }),
        Box::new(SplitterGrid),
        Box::new(randomized_renaming::renaming::adaptive::AdaptiveRenaming),
    ]
}

fn adversaries(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(FairAdversary::default()),
        Box::new(RandomAdversary::new(seed)),
        Box::new(CollisionMaximizer::default()),
        Box::new(CrashAdversary::new(FairAdversary::default(), 0.02, 32, seed)),
    ]
}

#[test]
fn every_algorithm_under_every_adversary_is_safe_quick() {
    // Fast CI cut of the test below: same coverage matrix at n = 64.
    every_algorithm_under_every_adversary_is_safe_at(64);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "multi-second sweep; run with --features slow-tests (or -- --ignored)"
)]
fn every_algorithm_under_every_adversary_is_safe() {
    every_algorithm_under_every_adversary_is_safe_at(256);
}

fn every_algorithm_under_every_adversary_is_safe_at(n: usize) {
    for algo in all_algorithms() {
        for (ai, mut adv) in adversaries(7).into_iter().enumerate() {
            let inst = algo.instantiate(n, 11);
            let m = inst.m;
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let out = run(procs, adv.as_mut(), algo.step_budget(n))
                .unwrap_or_else(|e| panic!("{} under adversary {ai}: {e}", algo.name()));
            out.verify_renaming(m)
                .unwrap_or_else(|v| panic!("{} under adversary {ai}: {v}", algo.name()));
            // Full (non-almost-tight) protocols must name every survivor.
            if !algo.almost_tight() {
                assert_eq!(
                    out.gave_up_count(),
                    0,
                    "{} under adversary {ai} left processes unnamed",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn names_fit_tighter_than_advertised_space() {
    // For each algorithm check max emitted name < m (audited) and report
    // that tight algorithms use the space exactly.
    for algo in all_algorithms() {
        if algo.almost_tight() {
            continue;
        }
        let n = 128;
        let inst = algo.instantiate(n, 3);
        let m = inst.m;
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), algo.step_budget(n)).unwrap();
        out.verify_renaming(m).unwrap();
        let max_name = out.names.iter().flatten().max().copied().unwrap();
        assert!(max_name < m);
        if algo.m(n) == n {
            // Tight: names are exactly [0, n).
            let mut names: Vec<usize> = out.names.iter().flatten().copied().collect();
            names.sort_unstable();
            assert_eq!(names, (0..n).collect::<Vec<_>>(), "{} is not tight", algo.name());
        }
    }
}

#[test]
fn crashes_never_break_survivor_completeness() {
    for algo in [
        Box::new(TightRenaming::calibrated(4)) as Box<dyn RenamingAlgorithm>,
        Box::new(Cor9 { ell: 1 }),
        Box::new(BitonicRenaming),
    ] {
        for crash_budget in [1usize, 16, 64, 120] {
            let n = 128;
            let inst = algo.instantiate(n, 5);
            let m = inst.m;
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let mut adv = CrashAdversary::new(FairAdversary::default(), 0.2, crash_budget, 9);
            let out = run(procs, &mut adv, algo.step_budget(n)).unwrap();
            out.verify_renaming(m).unwrap();
            let crashed = out.crashed.iter().filter(|&&c| c).count();
            let named = out.names.iter().filter(|x| x.is_some()).count();
            assert_eq!(named + crashed, n, "{}: survivor unnamed", algo.name());
        }
    }
}

#[test]
fn step_budget_is_generous_enough_for_all() {
    // The default budget must never be the reason a run fails.
    for algo in all_algorithms() {
        let n = 512;
        let inst = algo.instantiate(n, 1);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let result = run(procs, &mut RandomAdversary::new(3), algo.step_budget(n));
        assert!(result.is_ok(), "{} exceeded its own step budget", algo.name());
    }
}
