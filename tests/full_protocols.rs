//! Cross-crate integration: every renaming algorithm in the workspace —
//! the paper's protocols and the baselines — runs under every adversary
//! and passes the full renaming audit.

use randomized_renaming::baselines::{
    register_baselines, BitonicRenaming, FetchAddRenaming, LinearScan, RouteRenaming,
    RouteTopology, ScanStart, SplitterGrid, UniformProbing,
};
use randomized_renaming::renaming::registry::AlgorithmRegistry;
use randomized_renaming::renaming::traits::{
    AagwLoose, Cor7, Cor9, LooseL6, LooseL8, RenamingAlgorithm,
};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::{
    Adversary, CollisionMaximizer, CrashAdversary, FairAdversary, RandomAdversary,
};
use randomized_renaming::sched::explore::{shrink_tape, SharedExplorer, TolerantReplay};
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;
use randomized_renaming::sched::Arena;

fn all_algorithms() -> Vec<Box<dyn RenamingAlgorithm>> {
    vec![
        Box::new(TightRenaming::calibrated(4)),
        Box::new(TightRenaming::paper_exact(4)),
        Box::new(LooseL6 { ell: 1 }),
        Box::new(LooseL6 { ell: 2 }),
        Box::new(LooseL8 { ell: 1 }),
        Box::new(LooseL8 { ell: 2 }),
        Box::new(Cor7 { ell: 1 }),
        Box::new(Cor7 { ell: 2 }),
        Box::new(Cor9 { ell: 1 }),
        Box::new(Cor9 { ell: 2 }),
        Box::new(AagwLoose),
        Box::new(BitonicRenaming),
        Box::new(FetchAddRenaming),
        Box::new(UniformProbing::double()),
        Box::new(UniformProbing { epsilon: 0.25 }),
        Box::new(LinearScan { start: ScanStart::Zero }),
        Box::new(LinearScan { start: ScanStart::OwnPid }),
        Box::new(RouteRenaming { topology: RouteTopology::Benes, stages: None }),
        Box::new(RouteRenaming { topology: RouteTopology::Butterfly, stages: None }),
        Box::new(RouteRenaming { topology: RouteTopology::Variant, stages: Some(5) }),
        Box::new(SplitterGrid),
        Box::new(randomized_renaming::renaming::adaptive::AdaptiveRenaming),
    ]
}

fn adversaries(seed: u64) -> Vec<Box<dyn Adversary>> {
    vec![
        Box::new(FairAdversary::default()),
        Box::new(RandomAdversary::new(seed)),
        Box::new(CollisionMaximizer::default()),
        Box::new(CrashAdversary::new(FairAdversary::default(), 0.02, 32, seed)),
    ]
}

#[test]
fn every_algorithm_under_every_adversary_is_safe_quick() {
    // Fast CI cut of the test below: same coverage matrix at n = 64.
    every_algorithm_under_every_adversary_is_safe_at(64);
}

#[test]
#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "multi-second sweep; run with --features slow-tests (or -- --ignored)"
)]
fn every_algorithm_under_every_adversary_is_safe() {
    every_algorithm_under_every_adversary_is_safe_at(256);
}

fn every_algorithm_under_every_adversary_is_safe_at(n: usize) {
    for algo in all_algorithms() {
        for (ai, mut adv) in adversaries(7).into_iter().enumerate() {
            let inst = algo.instantiate(n, 11);
            let m = inst.m;
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let out = run(procs, adv.as_mut(), algo.step_budget(n))
                .unwrap_or_else(|e| panic!("{} under adversary {ai}: {e}", algo.name()));
            out.verify_renaming(m)
                .unwrap_or_else(|v| panic!("{} under adversary {ai}: {v}", algo.name()));
            // Full (non-almost-tight) protocols must name every survivor.
            if !algo.almost_tight() {
                assert_eq!(
                    out.gave_up_count(),
                    0,
                    "{} under adversary {ai} left processes unnamed",
                    algo.name()
                );
            }
        }
    }
}

/// The 14-key registry the scenario engine resolves against: the
/// paper's 8 protocols plus the 6 baselines.
fn full_registry() -> AlgorithmRegistry {
    let mut reg = AlgorithmRegistry::with_paper_algorithms();
    register_baselines(&mut reg);
    reg
}

/// Exhausts the bounded schedule tree named by an `explore:…` registry
/// key against `algo` at size `n` (seed fixed, dense arena), auditing
/// every run. Any violation panics with the ddmin-minimal replayable
/// tape. Returns the number of schedules visited.
fn exhaust_schedules(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    explore_key: &str,
    arena: &mut Arena,
) -> u64 {
    // Strict mode: the workload here is fixed (same algo, n, seed every
    // run), so a schedule-tree shape change means nondeterminism and
    // must panic rather than silently degrade exactly-once enumeration.
    let explorer = SharedExplorer::from_key(explore_key).expect("explore key").strict();
    let audit = |adv: &mut dyn Adversary, arena: &mut Arena| -> Result<(), String> {
        let out = algo.run_dense(n, 11, adv, arena).map_err(|e| e.to_string())?;
        out.verify_renaming(algo.m(n)).map_err(|v| format!("renaming violation: {v}"))
    };
    while !explorer.exhausted() {
        let mut adv = explorer.adversary();
        if let Err(reason) = audit(&mut adv, arena) {
            let minimal = shrink_tape(&adv.tape(), |t| {
                audit(&mut TolerantReplay::new(t.clone()), arena).is_err()
            });
            panic!(
                "{} at n={n} under `{explore_key}`: {reason}\n  minimal tape: `{}`",
                algo.name(),
                minimal.to_text()
            );
        }
    }
    explorer.schedules()
}

/// The tier-1 promotion of `every_algorithm_under_every_adversary_is_safe`:
/// instead of four hand-written adversaries at a larger n, **every**
/// schedule of a bounded tree at small n — for every registry algorithm,
/// both crash-free (depth 4) and with a crash budget in the explored
/// choice sets (depth 3). Any violation is reported as a minimal
/// replayable tape. The big randomized sweep stays `slow-tests`-gated
/// below.
#[test]
fn every_algorithm_exhaustive_small_n_is_safe() {
    let reg = full_registry();
    let mut arena = Arena::new();
    for key in reg.keys() {
        let algo = reg.build(key).unwrap();
        for n in [4usize, 5] {
            let visited = exhaust_schedules(algo.as_ref(), n, "explore:depth=4", &mut arena);
            // The tree has at least one schedule per runnable-pid choice
            // at the root and is fully enumerated (n! interleavings of
            // the first `depth` grants bound it below loosely).
            assert!(visited >= n as u64, "{key} at n={n}: only {visited} schedules");
            let with_crashes =
                exhaust_schedules(algo.as_ref(), n, "explore:depth=3,crashes=1", &mut arena);
            // The crash-enabled root alone has 2n choices (grant or
            // crash each pid), so the tree is at least that wide.
            assert!(
                with_crashes >= 2 * n as u64,
                "{key} at n={n}: crash branches missing ({with_crashes})"
            );
        }
    }
}

/// Like [`exhaust_schedules`], but also tracks the extreme total-step
/// counts over the exhausted tree.
fn exhaust_schedules_tracking_steps(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    explore_key: &str,
    arena: &mut Arena,
) -> (u64, u64, u64) {
    let explorer = SharedExplorer::from_key(explore_key).expect("explore key").strict();
    let (mut worst, mut best) = (0u64, u64::MAX);
    while !explorer.exhausted() {
        let mut adv = explorer.adversary();
        let out = algo
            .run_dense(n, 11, &mut adv, arena)
            .unwrap_or_else(|e| panic!("{} at n={n}: {e}", algo.name()));
        out.verify_renaming(algo.m(n)).unwrap_or_else(|v| panic!("{}: {v}", algo.name()));
        worst = worst.max(out.total_steps());
        best = best.min(out.total_steps());
    }
    (explorer.schedules(), worst, best)
}

/// The route family's defining property, certified over **all**
/// schedules of a bounded tree rather than sampled: at n = 4 (width 4,
/// q = 2) the depth-4 explorer exhausts the crash-free tree and the
/// worst-case total steps equal the best case equal `n × depth` — the
/// schedule cannot move the step count, only who wins each switch. The
/// tree sizes are pinned so a change to the explorer's branching or the
/// network's switch count is a loud, deliberate edit.
#[test]
fn route_worst_case_over_all_schedules_is_pinned() {
    let pinned: &[(RouteTopology, u64, u64)] = &[
        // (topology, schedules in the depth-4 tree, worst total steps).
        // Deeper networks keep more processes runnable inside the
        // horizon, so the tree widens with depth: the width-4 butterfly
        // retires a twice-granted process after 2 steps (204 schedules),
        // Beneš after 3 (252), while the depth-4 variant retires nobody
        // within the horizon (the full 4^4 = 256).
        (RouteTopology::Butterfly, 204, 8),
        (RouteTopology::Benes, 252, 12),
        (RouteTopology::Variant, 256, 16),
    ];
    let n = 4;
    let mut arena = Arena::new();
    for &(topology, schedules, worst_steps) in pinned {
        let algo = RouteRenaming { topology, stages: None };
        let (visited, worst, best) =
            exhaust_schedules_tracking_steps(&algo, n, "explore:depth=4", &mut arena);
        assert_eq!(
            (visited, worst),
            (schedules, worst_steps),
            "{}: depth-4 tree drifted",
            topology.label()
        );
        assert_eq!(worst, best, "{}: the schedule moved the step count", topology.label());
        assert_eq!(worst, n as u64 * algo.depth(n) as u64, "{}", topology.label());
    }
}

#[test]
fn names_fit_tighter_than_advertised_space() {
    // For each algorithm check max emitted name < m (audited) and report
    // that tight algorithms use the space exactly.
    for algo in all_algorithms() {
        if algo.almost_tight() {
            continue;
        }
        let n = 128;
        let inst = algo.instantiate(n, 3);
        let m = inst.m;
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), algo.step_budget(n)).unwrap();
        out.verify_renaming(m).unwrap();
        let max_name = out.names.iter().flatten().max().copied().unwrap();
        assert!(max_name < m);
        if algo.m(n) == n {
            // Tight: names are exactly [0, n).
            let mut names: Vec<usize> = out.names.iter().flatten().copied().collect();
            names.sort_unstable();
            assert_eq!(names, (0..n).collect::<Vec<_>>(), "{} is not tight", algo.name());
        }
    }
}

#[test]
fn crashes_never_break_survivor_completeness() {
    for algo in [
        Box::new(TightRenaming::calibrated(4)) as Box<dyn RenamingAlgorithm>,
        Box::new(Cor9 { ell: 1 }),
        Box::new(BitonicRenaming),
    ] {
        for crash_budget in [1usize, 16, 64, 120] {
            let n = 128;
            let inst = algo.instantiate(n, 5);
            let m = inst.m;
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let mut adv = CrashAdversary::new(FairAdversary::default(), 0.2, crash_budget, 9);
            let out = run(procs, &mut adv, algo.step_budget(n)).unwrap();
            out.verify_renaming(m).unwrap();
            let crashed = out.crashed.iter().filter(|&&c| c).count();
            let named = out.names.iter().filter(|x| x.is_some()).count();
            assert_eq!(named + crashed, n, "{}: survivor unnamed", algo.name());
        }
    }
}

#[test]
fn step_budget_is_generous_enough_for_all() {
    // The default budget must never be the reason a run fails.
    for algo in all_algorithms() {
        let n = 512;
        let inst = algo.instantiate(n, 1);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let result = run(procs, &mut RandomAdversary::new(3), algo.step_budget(n));
        assert!(result.is_ok(), "{} exceeded its own step budget", algo.name());
    }
}
