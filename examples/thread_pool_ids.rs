//! The workload that motivates renaming (§I): worker threads need small,
//! dense ids to index per-worker slots (statistics arrays, arena shards,
//! RCU epochs) — but thread ids from the OS are sparse 64-bit values.
//!
//! Run with: `cargo run --release --example thread_pool_ids`
//!
//! Here a pool of workers acquires dense ids through tight τ-register
//! renaming, then uses them to index a plain `Vec` of cache-padded
//! counters — no hashing, no locks — while a control group does the same
//! through the idealized fetch-add counter for comparison.

use randomized_renaming::baselines::FetchAddRenaming;
use randomized_renaming::renaming::traits::RenamingAlgorithm;
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::process::run_to_completion;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

#[repr(align(64))]
struct Slot(AtomicU64);

fn run_pool(algo: &dyn RenamingAlgorithm, workers: usize, label: &str) {
    let instance = algo.instantiate(workers, 7);
    let m = instance.m;
    // Dense per-worker slots, indexable by the acquired name.
    let slots: Vec<Slot> = (0..m).map(|_| Slot(AtomicU64::new(0))).collect();

    let t0 = Instant::now();
    let step_totals: Vec<u64> = std::thread::scope(|scope| {
        let slots = &slots;
        let handles: Vec<_> = instance
            .processes
            .into_iter()
            .map(|mut proc| {
                scope.spawn(move || {
                    // Acquire a dense id, then do "work" against our slot.
                    let (name, steps) = run_to_completion(proc.as_mut(), 1 << 22);
                    let id = name.expect("tight renaming names everyone");
                    for _ in 0..10_000 {
                        slots[id].0.fetch_add(1, Ordering::Relaxed);
                    }
                    steps
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = t0.elapsed();

    let total_work: u64 = slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum();
    assert_eq!(total_work, workers as u64 * 10_000, "lost updates ⇒ id collision");
    let used: usize = slots.iter().filter(|s| s.0.load(Ordering::Relaxed) > 0).count();
    assert_eq!(used, workers, "ids must be dense and distinct");
    println!(
        "{label:<16} workers={workers:<4} name space={m:<5} max TAS steps={:<4} total {:?}",
        step_totals.iter().max().unwrap(),
        elapsed
    );
}

fn main() {
    println!("dense worker ids via renaming (each worker then bumps its own slot 10k times)\n");
    for workers in [64usize, 256, 1024] {
        run_pool(&TightRenaming::calibrated(4), workers, "tight-tau");
        run_pool(&FetchAddRenaming, workers, "fetch-add(ideal)");
        println!();
    }
    println!(
        "note: fetch-add is the stronger primitive the paper's model \
         excludes; the τ-register gets within a log factor using TAS only."
    );
}
