//! Cycle-by-cycle trace of the counting device (§II-C): watch requests
//! arrive, preliminary bits get set, and the discard phase unset the
//! supernumerary ones so that never more than τ bits survive.
//!
//! Run with: `cargo run --release --example tau_register_demo`

use randomized_renaming::tau::device::CountingDevice;
use randomized_renaming::tau::trace::{bits, render_cycle};
use randomized_renaming::tau::TauRegister;

fn main() {
    // A small device so the bit strings are readable: 8 TAS bits, τ = 3.
    let mut device = CountingDevice::new(8, 3);
    println!("counting device: width 8, τ = 3 (at most 3 confirmed winners ever)\n");

    let cycles: Vec<Vec<(usize, usize)>> = vec![
        // Cycle 0: p0 and p1 pick distinct bits — both admitted.
        vec![(0, 1), (1, 6)],
        // Cycle 1: four processes, two of them colliding on bit 4, and
        // only one quota slot left: the discard phase must unset all but
        // the lowest new bit.
        vec![(2, 4), (3, 4), (4, 2), (5, 7)],
        // Cycle 2: the device is full — everyone loses.
        vec![(6, 0), (7, 3)],
        // Cycle 3: empty cycle, nothing changes.
        vec![],
    ];
    for reqs in &cycles {
        let report = device.clock_cycle(reqs);
        println!("{}", render_cycle(&report, 8));
    }
    println!(
        "\nfinal in_reg/out_reg = {} (popcount {} ≤ τ = {})",
        bits(device.confirmed(), 8),
        device.confirmed_count(),
        device.tau()
    );

    // Now the full τ-register: admitted processes claim names.
    println!("\nτ-register with base name 100:");
    let mut reg = TauRegister::new(8, 3, 100);
    for (pid, bit) in [(0usize, 1usize), (1, 6), (2, 4), (3, 5)] {
        match reg.request_and_claim(pid, bit) {
            (_, Some(name)) => println!("  p{pid} won bit {bit} and claimed name {name}"),
            (_, None) => println!("  p{pid} lost at bit {bit} (quota or bit taken)"),
        }
    }
    println!("  slots claimed: {}/{}", reg.claimed_slots(), reg.tau());
}
