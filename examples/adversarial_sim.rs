//! Drive the paper's model directly: an adaptive adversary that sees
//! every coin flip schedules the processes, crashes some of them at the
//! worst moment, and the renaming guarantees still hold.
//!
//! Run with: `cargo run --release --example adversarial_sim`

use randomized_renaming::renaming::traits::{Cor9, RenamingAlgorithm};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::{
    CollisionMaximizer, CrashAdversary, FairAdversary, RandomAdversary,
};
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;
use randomized_renaming::sched::Adversary;

fn run_under(algo: &dyn RenamingAlgorithm, n: usize, adv: &mut dyn Adversary, label: &str) {
    let inst = algo.instantiate(n, 99);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let out = run(procs, adv, algo.step_budget(n)).expect("execution failed");
    out.verify_renaming(m).expect("renaming safety violated");
    let crashed = out.crashed.iter().filter(|&&c| c).count();
    let named = out.names.iter().filter(|x| x.is_some()).count();
    println!(
        "  {label:<22} step complexity {:>4}, total steps {:>8}, named {named:>5}, crashed {crashed:>3}",
        out.step_complexity(),
        out.total_steps()
    );
}

fn main() {
    let n = 2048;
    println!("n = {n}; every run is audited for duplicate/out-of-range names\n");

    for (name, algo) in [
        ("tight-tau(c=4)", Box::new(TightRenaming::calibrated(4)) as Box<dyn RenamingAlgorithm>),
        ("cor9(l=1)", Box::new(Cor9 { ell: 1 })),
    ] {
        println!("{name}:");
        run_under(algo.as_ref(), n, &mut FairAdversary::default(), "fair round-robin");
        run_under(algo.as_ref(), n, &mut RandomAdversary::new(5), "seeded random");
        run_under(algo.as_ref(), n, &mut CollisionMaximizer::default(), "collision maximizer");
        // Crash 10% of processes, preferentially right when they announce
        // a winning access — after the adversary saw their coin flips.
        run_under(
            algo.as_ref(),
            n,
            &mut CrashAdversary::new(FairAdversary::default(), 0.05, n / 10, 17),
            "crash storm (10%)",
        );
        println!();
    }
    println!(
        "the collision maximizer schedules same-target processes back to \
         back and still cannot break safety or blow up the step bound — \
         the protocols' randomness is spent before the adversary moves."
    );
}
