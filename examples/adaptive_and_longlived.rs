//! Beyond the one-shot protocols: the two extensions the paper points
//! at — adaptive renaming (participant count unknown, §IV remark) and
//! long-lived renaming (names released and reacquired, related work
//! [13]).
//!
//! Run with: `cargo run --release --example adaptive_and_longlived`

use randomized_renaming::renaming::adaptive::AdaptiveRenaming;
use randomized_renaming::renaming::longlived::{LongLivedClient, ReleasableTasArray};
use randomized_renaming::renaming::traits::RenamingAlgorithm;
use randomized_renaming::sched::adversary::FairAdversary;
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;

fn adaptive_demo() {
    println!("adaptive: the ladder is provisioned for ≤ 4096 participants,");
    println!("but the processes never learn k — names used stay O(k):\n");
    println!("{:>8} {:>15} {:>9} {:>11}", "k", "max name used", "used/k", "steps max");
    for k in [8usize, 64, 512, 4096] {
        let (shared, procs) = AdaptiveRenaming.instantiate_participants(k, 4096, 7);
        let boxed: Vec<Box<dyn Process>> =
            procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
        let out = run(
            boxed,
            &mut FairAdversary::default(),
            RenamingAlgorithm::step_budget(&AdaptiveRenaming, 4096),
        )
        .unwrap();
        out.verify_renaming(shared.layout().total).unwrap();
        let max_name = out.names.iter().flatten().max().copied().unwrap();
        println!(
            "{k:>8} {max_name:>15} {:>9.2} {:>11}",
            max_name as f64 / k as f64,
            out.step_complexity()
        );
    }
}

fn longlived_demo() {
    println!("\nlong-lived: 256 workers acquire/release names 1000 times each");
    println!("into a 1.5x space — amortized probe cost stays flat:\n");
    let n = 256;
    let names = ReleasableTasArray::new(n * 3 / 2);
    let mut clients: Vec<_> = (0..n).map(|p| LongLivedClient::new(p, 3)).collect();
    for checkpoint in [10usize, 100, 1000] {
        let already: u64 = clients.iter().map(|c| c.stats().1).sum();
        let target = (n * checkpoint) as u64;
        while clients.iter().map(|c| c.stats().1).sum::<u64>() < target {
            for c in clients.iter_mut() {
                c.acquire(&names);
            }
            for c in clients.iter_mut() {
                c.release(&names);
            }
        }
        let probes: u64 = clients.iter().map(|c| c.stats().0).sum();
        let acquires: u64 = clients.iter().map(|c| c.stats().1).sum();
        println!(
            "  after {acquires:>7} acquires (from {already:>7}): amortized {:.3} probes/acquire",
            probes as f64 / acquires as f64
        );
    }
    println!("  (expected bound at eps = 0.5: (1+eps)/eps = 3.0)");
}

fn main() {
    adaptive_demo();
    longlived_demo();
}
