//! Quickstart: rename 1000 OS threads into a compact name space.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Shows the two-line happy path — pick an algorithm, run it — plus the
//! audit that proves every thread got a distinct name.

use randomized_renaming::renaming::traits::{Cor9, RenamingAlgorithm};
use randomized_renaming::sched::run_threads_bounded;

fn main() {
    let n = 1000;
    // Corollary 9 with ℓ = 1: name space n + 2n/log n (= 1.2·n at this
    // size), O((log log n)²) TAS operations per thread w.h.p.
    let algo = Cor9 { ell: 1 };
    let instance = algo.instantiate(n, /* seed */ 42);
    println!("renaming {n} threads into [0, {}) with {} …", instance.m, algo.name());

    let outcome = run_threads_bounded(instance.processes, 16, 1 << 20);

    // Every thread must hold a distinct in-range name.
    outcome.verify_renaming(algo.m(n)).expect("renaming safety violated");
    let mut names: Vec<usize> = outcome.names.iter().map(|x| x.unwrap()).collect();
    names.sort_unstable();
    names.dedup();
    assert_eq!(names.len(), n, "duplicate names");

    let max_steps = outcome.steps.iter().max().unwrap();
    let mean: f64 = outcome.steps.iter().sum::<u64>() as f64 / n as f64;
    println!("done: {} named, step complexity {max_steps}, mean steps {mean:.2}", n);
    println!("largest name used: {} (name space allows {})", names.last().unwrap(), algo.m(n) - 1);
}
