//! Crash tolerance: the model allows any number of processes to crash at
//! any point (§II-A). This example crashes an escalating fraction — up to
//! 90% — always at the worst moment (right after the adversary has seen
//! the victim's winning coin flip) and shows every *survivor* still gets
//! a distinct name.
//!
//! Run with: `cargo run --release --example crash_tolerance`

use randomized_renaming::renaming::traits::{Cor7, RenamingAlgorithm};
use randomized_renaming::renaming::TightRenaming;
use randomized_renaming::sched::adversary::{CrashAdversary, FairAdversary};
use randomized_renaming::sched::process::Process;
use randomized_renaming::sched::virtual_exec::run;

fn main() {
    let n = 1024;
    println!("n = {n}: escalating crash storms (victims picked after their coin flips)\n");
    println!(
        "{:<16} {:>10} {:>9} {:>7} {:>16} {:>12}",
        "algorithm", "crash cap", "crashed", "named", "step complexity", "names leaked"
    );

    for (label, algo) in [
        ("tight-tau(c=4)", Box::new(TightRenaming::calibrated(4)) as Box<dyn RenamingAlgorithm>),
        ("cor7(l=1)", Box::new(Cor7 { ell: 1 })),
    ] {
        for pct in [0usize, 10, 30, 60, 90] {
            let inst = algo.instantiate(n, 2024);
            let m = inst.m;
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let mut adv = CrashAdversary::new(
                FairAdversary::default(),
                0.1,
                n * pct / 100,
                1234 + pct as u64,
            );
            let out = run(procs, &mut adv, algo.step_budget(n)).expect("run failed");
            out.verify_renaming(m).expect("safety violated under crashes");
            let crashed = out.crashed.iter().filter(|&&c| c).count();
            let named = out.names.iter().filter(|x| x.is_some()).count();
            assert_eq!(named, n - crashed, "every survivor must be named");
            // A crashed process may have died between winning a TAS and
            // halting; its name is "leaked" (consumed but unheld). The
            // guarantee is about survivors, and leaks ≤ crashes.
            println!(
                "{label:<16} {:>9}% {crashed:>9} {named:>7} {:>16} {:>12}",
                pct,
                out.step_complexity(),
                format!("≤{crashed}"),
            );
        }
        println!();
    }
    println!(
        "survivors are always fully and distinctly named; crashed winners \
         merely waste their own name, exactly as the model prices crashes."
    );
}
