//! # randomized-renaming — umbrella crate
//!
//! One-stop re-export of the whole workspace reproducing *Berenbrink,
//! Brinkmann, Elsässer, Friedetzky, Nagel: "Randomized Renaming in
//! Shared Memory Systems" (IPDPS 2015)*. See README.md for the tour,
//! DESIGN.md for the system inventory and fidelity notes, and
//! EXPERIMENTS.md for claimed-vs-measured on every result.
//!
//! ```
//! use randomized_renaming::renaming::traits::{Cor9, RenamingAlgorithm};
//! use randomized_renaming::sched::adversary::FairAdversary;
//! use randomized_renaming::sched::process::Process;
//!
//! // Corollary 9: loose renaming into n + 2n/log n names.
//! let algo = Cor9 { ell: 1 };
//! let inst = algo.instantiate(256, 42);
//! let procs: Vec<Box<dyn Process>> =
//!     inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
//! let out = randomized_renaming::sched::virtual_exec::run(
//!     procs, &mut FairAdversary::default(), algo.step_budget(256)).unwrap();
//! out.verify_renaming(inst.m).unwrap();
//! assert_eq!(out.gave_up_count(), 0);
//! ```

#![forbid(unsafe_code)]

pub use rr_analysis as analysis;
pub use rr_baselines as baselines;
pub use rr_renaming as renaming;
pub use rr_report as report;
pub use rr_sched as sched;
pub use rr_shmem as shmem;
pub use rr_tau as tau;
