//! Typed entity indices over dense tables.
//!
//! Every hot structure in the executor is a struct-of-arrays table
//! indexed by some entity id — process tables by pid, shard tables by
//! shard, a shard's local slots by local index. Historically all three
//! were bare `usize`, which made it possible (and, during the shard
//! refactor, *easy*) to index a local table with a global pid and get a
//! silently wrong run. The [`crate::entity_id!`] macro mints one
//! newtype per index space and [`EntityVec`] is the dense table keyed
//! by exactly one of them, so the compiler rejects cross-space
//! indexing outright —
//! the `EntityId`/`EntityVec` idiom of interconnect/EDA codebases,
//! specialized to this executor's three spaces:
//!
//! * [`Pid`] — a process id, `0..n`, global within one execution.
//! * [`ShardId`] — one of the `S` shards of a sharded execution.
//! * [`LocalIdx`] — a process's slot *within* its shard's tables.
//!
//! [`ShardMap`] is the pure arithmetic tying them together: the
//! round-robin partition `Pid ↔ (ShardId, LocalIdx)` used by the
//! [`crate::shard`] engine. All ids are `u32`-backed: n = 2²⁶ pids fit
//! with room to spare, and the executor's `active` scan moves half the
//! bytes a `usize` vector would.

use std::marker::PhantomData;

/// Mints an index newtype (`u32`-backed) for one entity space.
///
/// Generated API: `new(usize)`, `index(self) -> usize`, `Display` as the
/// bare number, `From<usize>` / `Into<usize>`, and the usual derives
/// (`Copy`, `Ord`, `Hash`, …). Use one id type per table family and let
/// [`EntityVec`] enforce it.
#[macro_export]
macro_rules! entity_id {
    ($(#[$doc:meta])* $vis:vis struct $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis struct $name(u32);

        impl $name {
            /// Wraps a raw table index.
            ///
            /// # Panics
            /// Panics if `idx` does not fit in the `u32` backing store.
            #[inline]
            pub const fn new(idx: usize) -> Self {
                assert!(idx <= u32::MAX as usize, "entity index exceeds u32 backing");
                Self(idx as u32)
            }

            /// The raw table index this id wraps.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<usize> for $name {
            fn from(idx: usize) -> Self {
                Self::new(idx)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

entity_id! {
    /// A process id: stable, `0..n`, global within one execution.
    pub struct Pid
}

entity_id! {
    /// One of the `S` shards of a sharded execution.
    pub struct ShardId
}

entity_id! {
    /// A process's slot within its shard's local tables.
    pub struct LocalIdx
}

/// The first `n` pids, in order — the standard way to enumerate a run's
/// process space (and to build test fixtures without sprinkling
/// `Pid::new` everywhere).
pub fn pids(n: usize) -> impl Iterator<Item = Pid> {
    (0..n).map(Pid::new)
}

/// A dense table keyed by exactly one entity id type.
///
/// The struct-of-arrays companion to [`crate::entity_id!`]: a `Vec<T>` whose
/// index is a typed id, so a [`Pid`]-keyed table cannot be read with a
/// [`LocalIdx`] (or a bare `usize`) by construction.
///
/// ```
/// use rr_sched::ids::{EntityVec, Pid};
///
/// let mut steps: EntityVec<Pid, u64> = rr_sched::entity_vec![0; 4];
/// steps[Pid::new(2)] += 1;
/// assert_eq!(steps[Pid::new(2)], 1);
/// assert_eq!(steps.len(), 4);
/// assert_eq!(steps.iter_enumerated().filter(|(_, &s)| s > 0).count(), 1);
/// ```
pub struct EntityVec<I, T> {
    raw: Vec<T>,
    _key: PhantomData<fn(I)>,
}

impl<I: Into<usize> + From<usize>, T> EntityVec<I, T> {
    /// An empty table.
    pub const fn new() -> Self {
        Self { raw: Vec::new(), _key: PhantomData }
    }

    /// Wraps an already-built dense vector whose position *is* the id.
    pub fn from_vec(raw: Vec<T>) -> Self {
        Self { raw, _key: PhantomData }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Appends a value, returning the id of its slot.
    pub fn push(&mut self, value: T) -> I {
        self.raw.push(value);
        I::from(self.raw.len() - 1)
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.raw.clear();
    }

    /// Resizes to `len` entries, filling new slots with `value`.
    pub fn resize(&mut self, len: usize, value: T)
    where
        T: Clone,
    {
        self.raw.resize(len, value);
    }

    /// Borrows the backing slice (positional, untyped — for bulk ops
    /// like sums and comparisons, not per-entity indexing).
    pub fn as_slice(&self) -> &[T] {
        &self.raw
    }

    /// Consumes the table into its backing vector.
    pub fn into_vec(self) -> Vec<T> {
        self.raw
    }

    /// Iterates values in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.raw.iter()
    }

    /// Iterates `(id, &value)` pairs in id order.
    pub fn iter_enumerated(&self) -> impl Iterator<Item = (I, &T)> {
        self.raw.iter().enumerate().map(|(i, v)| (I::from(i), v))
    }

    /// The ids of the table, in order.
    pub fn ids(&self) -> impl Iterator<Item = I> + use<I, T> {
        (0..self.raw.len()).map(I::from)
    }

    /// Typed bounds-checked lookup.
    pub fn get(&self, id: I) -> Option<&T> {
        self.raw.get(id.into())
    }
}

impl<I: Into<usize> + From<usize>, T> std::ops::Index<I> for EntityVec<I, T> {
    type Output = T;

    fn index(&self, id: I) -> &T {
        &self.raw[id.into()]
    }
}

impl<I: Into<usize> + From<usize>, T> std::ops::IndexMut<I> for EntityVec<I, T> {
    fn index_mut(&mut self, id: I) -> &mut T {
        &mut self.raw[id.into()]
    }
}

impl<I, T> From<Vec<T>> for EntityVec<I, T> {
    fn from(raw: Vec<T>) -> Self {
        Self { raw, _key: PhantomData }
    }
}

impl<I, T> FromIterator<T> for EntityVec<I, T> {
    fn from_iter<It: IntoIterator<Item = T>>(iter: It) -> Self {
        Self { raw: iter.into_iter().collect(), _key: PhantomData }
    }
}

impl<I, T> IntoIterator for EntityVec<I, T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.raw.into_iter()
    }
}

impl<'a, I, T> IntoIterator for &'a EntityVec<I, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.raw.iter()
    }
}

impl<I, T: Clone> Clone for EntityVec<I, T> {
    fn clone(&self) -> Self {
        Self { raw: self.raw.clone(), _key: PhantomData }
    }
}

impl<I, T: std::fmt::Debug> std::fmt::Debug for EntityVec<I, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.raw.fmt(f)
    }
}

impl<I, T> Default for EntityVec<I, T> {
    fn default() -> Self {
        Self { raw: Vec::new(), _key: PhantomData }
    }
}

impl<I, T: PartialEq> PartialEq for EntityVec<I, T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}

impl<I, T: Eq> Eq for EntityVec<I, T> {}

/// `vec![…]`-style constructor for [`EntityVec`] — same two forms
/// (`entity_vec![value; count]` and `entity_vec![a, b, c]`).
#[macro_export]
macro_rules! entity_vec {
    ($value:expr; $count:expr) => {
        $crate::ids::EntityVec::from_vec(vec![$value; $count])
    };
    ($($item:expr),* $(,)?) => {
        $crate::ids::EntityVec::from_vec(vec![$($item),*])
    };
}

/// The round-robin partition of a run's pid space into `S` shards —
/// pure index arithmetic shared by the [`crate::shard`] engine and any
/// shard-aware adversary (carried on every
/// [`RunView`](crate::adversary::RunView)).
///
/// Pid `p` lives in shard `p mod S` at local slot `p div S`, so shard
/// sizes differ by at most one and low pids spread across all shards
/// (the paper's protocols key their coin-flip streams by pid; striping
/// keeps every shard's stream mix representative).
///
/// ```
/// use rr_sched::ids::{LocalIdx, Pid, ShardId, ShardMap};
///
/// let map = ShardMap::new(3);
/// let p = Pid::new(7);
/// assert_eq!(map.shard_of(p), ShardId::new(1));
/// assert_eq!(map.local_of(p), LocalIdx::new(2));
/// assert_eq!(map.global_of(ShardId::new(1), LocalIdx::new(2)), p);
/// assert_eq!(map.shard_len(ShardId::new(0), 8), 3); // pids 0, 3, 6
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
}

impl ShardMap {
    /// A partition into `shards ≥ 1` shards.
    ///
    /// # Panics
    /// Panics on `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "a shard map needs at least one shard");
        Self { shards }
    }

    /// The unsharded (single-shard) map — what every non-shard backend
    /// reports on its views.
    pub fn single() -> Self {
        Self { shards: 1 }
    }

    /// Number of shards `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard pid `p` is partitioned into.
    pub fn shard_of(&self, p: Pid) -> ShardId {
        ShardId::new(p.index() % self.shards)
    }

    /// Pid `p`'s slot within its shard's local tables.
    pub fn local_of(&self, p: Pid) -> LocalIdx {
        LocalIdx::new(p.index() / self.shards)
    }

    /// The global pid at shard `s`, local slot `l` — inverse of
    /// [`ShardMap::shard_of`] + [`ShardMap::local_of`].
    pub fn global_of(&self, s: ShardId, l: LocalIdx) -> Pid {
        Pid::new(l.index() * self.shards + s.index())
    }

    /// Number of pids out of `0..n` that land in shard `s`.
    pub fn shard_len(&self, s: ShardId, n: usize) -> usize {
        if s.index() >= n {
            0
        } else {
            (n - s.index()).div_ceil(self.shards)
        }
    }

    /// The shard ids of the partition, in order.
    pub fn shard_ids(&self) -> impl Iterator<Item = ShardId> + use<> {
        (0..self.shards).map(ShardId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_render() {
        let p = Pid::new(42);
        assert_eq!(p.index(), 42);
        assert_eq!(usize::from(p), 42);
        assert_eq!(Pid::from(42usize), p);
        assert_eq!(format!("{p}"), "42");
        assert_eq!(format!("{p:?}"), "Pid(42)");
        assert!(Pid::new(1) < Pid::new(2));
        assert_eq!(ShardId::new(3).index(), 3);
        assert_eq!(LocalIdx::new(5).index(), 5);
    }

    #[test]
    fn pids_enumerates_in_order() {
        let v: Vec<Pid> = pids(3).collect();
        assert_eq!(v, vec![Pid::new(0), Pid::new(1), Pid::new(2)]);
    }

    #[test]
    fn entity_vec_push_index_iterate() {
        let mut table: EntityVec<Pid, &str> = EntityVec::new();
        assert!(table.is_empty());
        let a = table.push("a");
        let b = table.push("b");
        assert_eq!(a, Pid::new(0));
        assert_eq!(b, Pid::new(1));
        table[a] = "A";
        assert_eq!(table[a], "A");
        assert_eq!(table.get(b), Some(&"b"));
        assert_eq!(table.get(Pid::new(9)), None);
        assert_eq!(table.len(), 2);
        assert_eq!(table.iter().copied().collect::<Vec<_>>(), vec!["A", "b"]);
        let pairs: Vec<(Pid, &str)> = table.iter_enumerated().map(|(i, &v)| (i, v)).collect();
        assert_eq!(pairs, vec![(Pid::new(0), "A"), (Pid::new(1), "b")]);
        assert_eq!(table.ids().collect::<Vec<_>>(), vec![Pid::new(0), Pid::new(1)]);
        assert_eq!(table.clone().into_vec(), vec!["A", "b"]);
    }

    #[test]
    fn entity_vec_macro_and_bulk_ops() {
        let mut steps: EntityVec<Pid, u64> = crate::entity_vec![0; 3];
        steps[Pid::new(1)] = 7;
        assert_eq!(steps.as_slice(), &[0, 7, 0]);
        let listed: EntityVec<Pid, u64> = crate::entity_vec![0, 7, 0];
        assert_eq!(steps, listed);
        steps.clear();
        assert!(steps.is_empty());
        steps.resize(2, 9);
        assert_eq!(steps.as_slice(), &[9, 9]);
        let collected: EntityVec<Pid, u64> = (0..4).collect();
        assert_eq!(collected.as_slice(), &[0, 1, 2, 3]);
        assert_eq!((&collected).into_iter().sum::<u64>(), 6);
        assert_eq!(collected.into_iter().max(), Some(3));
    }

    #[test]
    fn shard_map_round_robin_partition() {
        let map = ShardMap::new(3);
        assert_eq!(map.shards(), 3);
        for n in [1usize, 2, 3, 7, 8, 16] {
            let mut seen = vec![false; n];
            let mut total = 0;
            for s in map.shard_ids() {
                let len = map.shard_len(s, n);
                total += len;
                for l in (0..len).map(LocalIdx::new) {
                    let p = map.global_of(s, l);
                    assert!(p.index() < n, "n={n} s={s} l={l}");
                    assert_eq!(map.shard_of(p), s);
                    assert_eq!(map.local_of(p), l);
                    assert!(!seen[p.index()], "pid {p} mapped twice at n={n}");
                    seen[p.index()] = true;
                }
            }
            assert_eq!(total, n, "partition must be exact at n={n}");
        }
    }

    #[test]
    fn single_map_is_identity() {
        let map = ShardMap::single();
        assert_eq!(map.shards(), 1);
        let p = Pid::new(9);
        assert_eq!(map.shard_of(p), ShardId::new(0));
        assert_eq!(map.local_of(p), LocalIdx::new(9));
        assert_eq!(map.shard_len(ShardId::new(0), 12), 12);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardMap::new(0);
    }
}
