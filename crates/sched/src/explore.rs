//! Schedule-space exploration: bounded exhaustive search, coverage-guided
//! fuzzing, and counterexample shrinking.
//!
//! The paper's guarantees are quantified over **all** schedules, but the
//! stock adversaries ([`crate::adversary`]) are a handful of hand-written
//! strategies — nothing systematically searches the schedule space. This
//! module closes that gap with three pieces that compose with the
//! existing [`Tape`] machinery, so every explored
//! branch is a replayable, storable artifact:
//!
//! * [`ExhaustiveExplorer`] — bounded DFS over the schedule tree. Each
//!   run is driven by a [`GuidedAdversary`] that follows a digit prefix
//!   (one digit = one choice index at one `decide()` point) and records
//!   the arity it saw at every branch point; the explorer backtracks
//!   odometer-style, so for a deterministic workload **every schedule in
//!   the bounded tree is visited exactly once**. Forking at a decision
//!   point is realized by re-execution — the standard stateless
//!   model-checking trick — which keeps the executor untouched.
//! * [`FuzzExplorer`] — a coverage-guided schedule fuzzer for sizes
//!   where exhaustion is hopeless: it replays corpus tapes through a
//!   [`MutatingReplay`] that perturbs each decision with configurable
//!   strength (the 0 → fully-random sweep axis), and keeps tapes whose
//!   per-pid step-interleaving signature
//!   ([`interleaving_signature`]) is novel.
//! * [`shrink_tape`] — ddmin-style delta debugging over a failing tape:
//!   on any safety/budget violation the offending schedule is minimized
//!   to a locally-1-minimal counterexample, replayable via
//!   [`TolerantReplay`].
//!
//! [`SharedExplorer`] and [`SharedFuzzer`] are the registry-facing
//! handles: [`crate::registry::standard`] registers them under the keys
//! `explore:depth=…[,crashes=…]` and `fuzz:rounds=…,strength=…`, so any
//! driver that builds adversaries by string key gets schedule-space
//! search for free. One caveat is inherent to the design: exploration
//! state lives **across** runs, so the exactly-once guarantee holds when
//! seeds execute serially (the batch runners' `workers ≤ 1` path);
//! concurrent seeds still run and stay safe, they just may revisit
//! branches.

use crate::adversary::{Adversary, Decision, RunView};
use crate::ids::Pid;
use crate::registry::ParsedKey;
use crate::replay::Tape;
use crate::virtual_exec::RunOutcome;
use rand::rngs::ChaCha8Rng;
use rand::{RngCore, RngExt, SeedableRng};
use std::collections::HashSet;
use std::sync::{Arc, Mutex};

fn at_least_two_runnable(view: &RunView<'_>) -> bool {
    view.runnable().nth(1).is_some()
}

/// First runnable pid — the canonical fallback schedule's choice, one
/// word-scan over the view's status bitmap.
fn first_runnable(view: &RunView<'_>) -> Pid {
    view.next_runnable(0).expect("decide() requires at least one runnable process")
}

/// The nearest runnable pid at or after `want`, wrapping to the overall
/// first — how the tolerant replayers redirect a decision that names a
/// halted pid.
fn redirect(view: &RunView<'_>, want: Pid) -> Pid {
    view.next_runnable(want.index()).unwrap_or_else(|| first_runnable(view))
}

/// The canonical choice list at one decision point: grant each runnable
/// pid ascending, then — crash budget permitting, and never for the last
/// runnable process — crash each runnable pid ascending. Identical views
/// always yield identical lists, which is what makes digit prefixes a
/// stable addressing scheme for schedules.
fn choices(view: &RunView<'_>, crashes_left: usize) -> Vec<Decision> {
    let grants: Vec<Pid> = view.runnable().collect();
    let mut out: Vec<Decision> = grants.iter().map(|&p| Decision::Grant(p)).collect();
    if crashes_left > 0 && grants.len() > 1 {
        out.extend(grants.iter().map(|&p| Decision::Crash(p)));
    }
    out
}

/// Follows a digit prefix through the schedule tree, recording the arity
/// observed at every branch point (and the concrete decisions, as a
/// [`Tape`]). Digits beyond the prefix default to 0; decisions beyond
/// the `depth` horizon take the canonical first choice (grant the lowest
/// runnable pid) without branching, which is what bounds the tree.
#[derive(Debug)]
pub struct GuidedAdversary {
    prefix: Vec<usize>,
    depth: usize,
    crash_budget: usize,
    crashes_used: usize,
    at: usize,
    /// Reinterpret out-of-range digits (modulo the observed arity)
    /// instead of panicking. Strict mode is the fixed-workload DFS
    /// drivers' determinism guard; clamped mode is what the registry
    /// hands to the batch runners, whose **seed sweep** legitimately
    /// reshapes the schedule tree between runs.
    clamp: bool,
    /// `(digit, arity)` per decision within the horizon.
    trace: Vec<(u32, u32)>,
    decisions: Vec<Decision>,
}

impl GuidedAdversary {
    fn new(prefix: Vec<usize>, depth: usize, crash_budget: usize, clamp: bool) -> Self {
        Self {
            prefix,
            depth,
            crash_budget,
            crashes_used: 0,
            at: 0,
            clamp,
            trace: Vec::new(),
            decisions: Vec::new(),
        }
    }

    /// The decisions made so far, as a replayable tape.
    pub fn tape(&self) -> Tape {
        Tape::from_decisions(self.decisions.clone())
    }
}

impl Adversary for GuidedAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let d = if self.at < self.depth {
            let cs = choices(view, self.crash_budget - self.crashes_used);
            let mut digit = self.prefix.get(self.at).copied().unwrap_or(0);
            if digit >= cs.len() {
                assert!(
                    self.clamp,
                    "schedule tree changed shape at decision {}: digit {digit} of {} choices \
                     (exhaustive exploration requires a deterministic workload)",
                    self.at,
                    cs.len()
                );
                digit %= cs.len();
            }
            let d = cs[digit];
            self.trace.push((digit as u32, cs.len() as u32));
            d
        } else {
            Decision::Grant(first_runnable(view))
        };
        self.at += 1;
        if let Decision::Crash(_) = d {
            self.crashes_used += 1;
        }
        self.decisions.push(d);
        d
    }

    fn name(&self) -> &'static str {
        "explore"
    }
}

/// A shrunk (or otherwise failing) schedule with the reason it fails.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The minimal failing schedule (replay via [`TolerantReplay`]).
    pub tape: Tape,
    /// What the original failing run reported.
    pub reason: String,
}

/// What a bounded exhaustive exploration found.
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Complete schedules executed (each distinct, for a deterministic
    /// workload), the failing one included.
    pub schedules: u64,
    /// Whether the whole bounded tree was visited (false when the
    /// `limit` was hit, or when a counterexample stopped the search
    /// before the last branch — the failing schedule itself counts as
    /// visited, so a resumed `explore` continues past it).
    pub exhausted: bool,
    /// Worst step complexity observed over all explored schedules.
    pub worst_steps: u64,
    /// The shrunk counterexample, if any run failed.
    pub counterexample: Option<Counterexample>,
}

/// The digit-prefix odometer at the heart of every exhaustive DFS in
/// this workspace: it holds the prefix addressing the next unvisited
/// leaf of a decision tree, and [`Odometer::record`] backtracks from a
/// finished descent's `(digit, arity)` branch trace by incrementing the
/// deepest digit that still has untried siblings.
///
/// Stateless re-execution makes this a complete enumeration: as long as
/// the tree is deterministic (identical prefixes observe identical
/// arities), every leaf is visited exactly once. Both
/// [`ExhaustiveExplorer`] (schedule trees) and `rr_sched::model`
/// (atomic-interleaving trees) drive their searches through this one
/// struct.
#[derive(Debug, Default)]
pub struct Odometer {
    prefix: Vec<usize>,
    exhausted: bool,
    visited: u64,
    restarts: u64,
}

impl Odometer {
    /// A fresh odometer at the all-zeros prefix.
    pub fn new() -> Self {
        Self::default()
    }

    /// The digit prefix addressing the next unvisited leaf, or `None`
    /// once the tree is exhausted.
    pub fn prefix(&self) -> Option<&[usize]> {
        if self.exhausted {
            None
        } else {
            Some(&self.prefix)
        }
    }

    /// Complete descents recorded so far.
    pub fn visited(&self) -> u64 {
        self.visited
    }

    /// Whether the whole tree has been visited.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Times the DFS wrapped around after exhaustion.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Restarts from the first leaf (statistics are kept).
    pub fn restart(&mut self) {
        self.prefix.clear();
        self.exhausted = false;
        self.restarts += 1;
    }

    /// Consumes a finished descent's `(digit, arity)` branch trace and
    /// backtracks to the next unvisited leaf.
    pub fn record(&mut self, trace: &[(u32, u32)]) {
        self.visited += 1;
        match trace.iter().rposition(|&(digit, arity)| digit + 1 < arity) {
            None => self.exhausted = true,
            Some(i) => {
                self.prefix.clear();
                self.prefix.extend(trace[..i].iter().map(|&(d, _)| d as usize));
                self.prefix.push(trace[i].0 as usize + 1);
            }
        }
    }
}

/// Bounded exhaustive DFS over the schedule tree.
///
/// Branch points are the first `depth` scheduling decisions of a run;
/// at each, every runnable pid can be granted (and, with a `crashes`
/// budget, crashed). The explorer enumerates digit sequences via
/// [`Odometer`]: run with the current prefix, then increment the
/// deepest digit that has untried siblings. For a deterministic
/// workload this visits **every** schedule of the bounded tree exactly
/// once.
///
/// ```
/// use rr_sched::explore::ExhaustiveExplorer;
/// use rr_sched::ids::Pid;
/// use rr_sched::process::{Process, StepOutcome};
/// use rr_shmem::Access;
///
/// struct TwoStep { pid: usize, left: usize }
/// impl Process for TwoStep {
///     fn announce(&mut self) -> Access { Access::Local }
///     fn step(&mut self) -> StepOutcome {
///         if self.left == 0 { StepOutcome::Done(self.pid) }
///         else { self.left -= 1; StepOutcome::Continue }
///     }
///     fn pid(&self) -> Pid { Pid::new(self.pid) }
/// }
///
/// // 2 processes × 2 steps each: 4!/(2!·2!) = 6 interleavings.
/// let mut explorer = ExhaustiveExplorer::new(8, 0);
/// let report = explorer.explore(1_000, |adv| {
///     let procs: Vec<Box<dyn Process>> = (0..2)
///         .map(|pid| Box::new(TwoStep { pid, left: 1 }) as Box<dyn Process>)
///         .collect();
///     rr_sched::virtual_exec::run(procs, adv, 100).map_err(|e| e.to_string())
/// });
/// assert_eq!(report.schedules, 6);
/// assert!(report.exhausted);
/// ```
#[derive(Debug)]
pub struct ExhaustiveExplorer {
    depth: usize,
    crash_budget: usize,
    odo: Odometer,
}

impl ExhaustiveExplorer {
    /// An explorer branching over the first `depth` decisions, with up
    /// to `crash_budget` crash decisions in the choice sets.
    ///
    /// # Panics
    /// Panics when `depth == 0` (an unbranched tree is not a search).
    pub fn new(depth: usize, crash_budget: usize) -> Self {
        assert!(depth >= 1, "explore needs depth ≥ 1");
        Self { depth, crash_budget, odo: Odometer::new() }
    }

    /// Complete schedules executed so far.
    pub fn visited(&self) -> u64 {
        self.odo.visited()
    }

    /// Whether the whole bounded tree has been visited.
    pub fn exhausted(&self) -> bool {
        self.odo.exhausted()
    }

    /// Times the DFS wrapped around after exhaustion (see
    /// [`SharedExplorer`]).
    pub fn restarts(&self) -> u64 {
        self.odo.restarts()
    }

    /// Restarts the DFS from the first schedule (statistics are kept).
    pub fn restart(&mut self) {
        self.odo.restart();
    }

    /// The adversary for the next unvisited schedule, or `None` once the
    /// tree is exhausted. Feed the finished adversary back through
    /// [`ExhaustiveExplorer::record`] to advance the search.
    pub fn next_adversary(&self) -> Option<GuidedAdversary> {
        let prefix = self.odo.prefix()?.to_vec();
        Some(GuidedAdversary::new(prefix, self.depth, self.crash_budget, false))
    }

    /// Consumes a finished run's branch trace and backtracks to the next
    /// unvisited schedule (odometer increment on the deepest digit with
    /// untried siblings).
    pub fn record(&mut self, finished: &GuidedAdversary) {
        self.odo.record(&finished.trace);
    }

    /// Drives the whole bounded search: runs schedules until the tree is
    /// exhausted, `limit` schedules were executed, or a run fails —
    /// in which case the failing tape is shrunk with [`shrink_tape`]
    /// (re-running via [`TolerantReplay`]) and returned as a minimal
    /// [`Counterexample`].
    ///
    /// `run_one` executes one run under the given adversary and returns
    /// the outcome, or `Err(reason)` on a safety/budget violation.
    pub fn explore(
        &mut self,
        limit: u64,
        mut run_one: impl FnMut(&mut dyn Adversary) -> Result<RunOutcome, String>,
    ) -> ExploreReport {
        let mut worst_steps = 0u64;
        while !self.exhausted() && self.visited() < limit {
            let mut adv = self.next_adversary().expect("not exhausted");
            match run_one(&mut adv) {
                Ok(out) => {
                    worst_steps = worst_steps.max(out.step_complexity());
                    self.record(&adv);
                }
                Err(reason) => {
                    // Advance past the failing schedule (like every
                    // successful one) so `visited` stays consistent and
                    // a caller that logs the counterexample and calls
                    // `explore` again resumes with the next branch
                    // instead of re-running this one forever.
                    self.record(&adv);
                    let tape = shrink_tape(&adv.tape(), |t| {
                        run_one(&mut TolerantReplay::new(t.clone())).is_err()
                    });
                    return ExploreReport {
                        schedules: self.visited(),
                        exhausted: self.exhausted(),
                        worst_steps,
                        counterexample: Some(Counterexample { tape, reason }),
                    };
                }
            }
        }
        ExploreReport {
            schedules: self.visited(),
            exhausted: self.exhausted(),
            worst_steps,
            counterexample: None,
        }
    }
}

/// Replays a tape, tolerating invalidity: a decision naming a halted pid
/// is redirected to the nearest runnable pid (wrapping), a crash with
/// only one process left becomes a grant, and an exhausted tape falls
/// back to granting the lowest runnable pid. Deterministic, total, and
/// — for a valid complete tape — identical to
/// [`ReplayAdversary`](crate::replay::ReplayAdversary). This is what
/// makes arbitrary *subsets* of a failing tape executable, the property
/// [`shrink_tape`] needs.
#[derive(Debug, Clone)]
pub struct TolerantReplay {
    tape: Tape,
    at: usize,
}

impl TolerantReplay {
    /// Replays `tape` from the start.
    pub fn new(tape: Tape) -> Self {
        Self { tape, at: 0 }
    }
}

impl Adversary for TolerantReplay {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let want = self.tape.decisions().get(self.at).copied();
        self.at += 1;
        match want {
            Some(Decision::Grant(p)) => Decision::Grant(redirect(view, p)),
            Some(Decision::Crash(p)) if at_least_two_runnable(view) => {
                Decision::Crash(redirect(view, p))
            }
            _ => Decision::Grant(first_runnable(view)),
        }
    }

    fn name(&self) -> &'static str {
        "tolerant-replay"
    }
}

/// Minimizes a failing tape by ddmin-style delta debugging: repeatedly
/// deletes decision chunks (halving the chunk size down to 1) while
/// `fails` keeps returning `true`, and restarts the sweep after any
/// progress until a full pass removes nothing — so in the result **no
/// single decision can be removed** (1-minimal; a later deletion can
/// enable an earlier one, which a single pass would miss). `fails` is
/// typically a closure that re-runs the workload under
/// [`TolerantReplay`] and reports whether the violation persists.
pub fn shrink_tape(tape: &Tape, mut fails: impl FnMut(&Tape) -> bool) -> Tape {
    let mut current: Vec<Decision> = tape.decisions().to_vec();
    loop {
        let before = current.len();
        let mut chunk = current.len().div_ceil(2).max(1);
        loop {
            let mut i = 0;
            while i < current.len() {
                let end = (i + chunk).min(current.len());
                let candidate: Vec<Decision> =
                    current[..i].iter().chain(current[end..].iter()).copied().collect();
                if fails(&Tape::from_decisions(candidate.clone())) {
                    current = candidate;
                } else {
                    i = end;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
        // The chunk-1 pass above tested every single deletion; a pass
        // with no progress is the 1-minimality fixpoint.
        if current.len() == before {
            break;
        }
    }
    Tape::from_decisions(current)
}

/// Replays a base tape while perturbing each decision with probability
/// `strength / 1000`: a perturbed decision grants a uniformly random
/// runnable pid instead of following the tape. Unperturbed decisions
/// follow [`TolerantReplay`] semantics, so any base tape (including the
/// empty one) is executable at any size. At strength 0 this *is* the
/// tolerant replay; at strength 1000 it is a uniformly random schedule —
/// the perturbation-strength axis the fuzzer sweeps.
#[derive(Debug)]
pub struct MutatingReplay {
    base: Tape,
    at: usize,
    strength: f64,
    rng: ChaCha8Rng,
    decisions: Vec<Decision>,
}

impl MutatingReplay {
    /// Perturbs `base` with `strength_permille / 1000` per decision,
    /// seeded.
    ///
    /// # Panics
    /// Panics when `strength_permille > 1000`.
    pub fn new(base: Tape, strength_permille: u32, seed: u64) -> Self {
        assert!(strength_permille <= 1000, "strength is a permille (0..=1000)");
        Self {
            base,
            at: 0,
            strength: strength_permille as f64 / 1000.0,
            rng: ChaCha8Rng::seed_from_u64(seed),
            decisions: Vec::new(),
        }
    }

    /// The decisions actually made, as a replayable tape.
    pub fn tape(&self) -> Tape {
        Tape::from_decisions(self.decisions.clone())
    }
}

impl Adversary for MutatingReplay {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let want = self.base.decisions().get(self.at).copied();
        self.at += 1;
        let d = if self.strength > 0.0 && self.rng.random_bool(self.strength) {
            // Perturb: a uniformly random runnable pid (rejection-sampled
            // over the stale-slot roster, like RandomAdversary — same RNG
            // consumption as the historical tombstoned-vector sampling).
            loop {
                let i = self.rng.random_range(0..view.slot_count());
                let pid = view.slot(i);
                if view.is_runnable(pid) {
                    break Decision::Grant(pid);
                }
            }
        } else {
            match want {
                Some(Decision::Grant(p)) => Decision::Grant(redirect(view, p)),
                Some(Decision::Crash(p)) if at_least_two_runnable(view) => {
                    Decision::Crash(redirect(view, p))
                }
                _ => Decision::Grant(first_runnable(view)),
            }
        };
        self.decisions.push(d);
        d
    }

    fn name(&self) -> &'static str {
        "fuzz"
    }
}

fn log2_bucket(v: u32) -> u32 {
    32 - v.leading_zeros()
}

/// The fuzzer's novelty measure: a per-pid step-interleaving signature.
/// For each pid the schedule is summarized by its number of scheduling
/// *bursts* (maximal runs of consecutive grants) and its total granted
/// steps, both log₂-bucketed, plus its crash flag; the per-pid summaries
/// are folded with FNV-1a. Coarse by design: two schedules collide iff
/// every process was cut into a similar number of bursts of similar
/// size, so novelty means a structurally different interleaving — not
/// just a different tape.
pub fn interleaving_signature(tape: &Tape, n: usize) -> u64 {
    let mut bursts = vec![0u32; n];
    let mut steps = vec![0u32; n];
    let mut crashed = vec![false; n];
    let mut prev = usize::MAX;
    for &d in tape.decisions() {
        match d {
            Decision::Grant(p) if p.index() < n => {
                let p = p.index();
                steps[p] = steps[p].saturating_add(1);
                if prev != p {
                    bursts[p] = bursts[p].saturating_add(1);
                }
                prev = p;
            }
            Decision::Crash(p) if p.index() < n => {
                crashed[p.index()] = true;
                prev = usize::MAX;
            }
            _ => {}
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in 0..n {
        for word in [
            log2_bucket(bursts[p]) as u64,
            log2_bucket(steps[p]) as u64 | ((crashed[p] as u64) << 8),
        ] {
            h ^= word;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    }
    h
}

/// What a fuzzing campaign found.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Rounds executed in this call.
    pub rounds: u64,
    /// Cumulative novel signatures found by this fuzzer.
    pub novel: u64,
    /// Current corpus size (≤ capacity).
    pub corpus_len: usize,
    /// Worst step complexity observed in this call.
    pub worst_steps: u64,
    /// The shrunk counterexample, if any round failed.
    pub counterexample: Option<Counterexample>,
}

/// Coverage-guided schedule fuzzer: each round replays a corpus tape
/// (or, while the corpus is empty, the canonical lowest-pid schedule)
/// through a [`MutatingReplay`] at the configured perturbation strength,
/// and keeps the recorded tape when its [`interleaving_signature`] is
/// novel. Violations are shrunk exactly like the exhaustive explorer's.
#[derive(Debug)]
pub struct FuzzExplorer {
    strength_permille: u32,
    capacity: usize,
    rng: ChaCha8Rng,
    corpus: Vec<Tape>,
    signatures: HashSet<u64>,
    novel: u64,
}

impl FuzzExplorer {
    /// A fuzzer with its own seed, perturbation strength (permille) and
    /// corpus capacity.
    ///
    /// # Panics
    /// Panics when `strength_permille > 1000` or `capacity == 0`.
    pub fn new(seed: u64, strength_permille: u32, capacity: usize) -> Self {
        assert!(strength_permille <= 1000, "strength is a permille (0..=1000)");
        assert!(capacity >= 1, "fuzz corpus needs capacity ≥ 1");
        Self {
            strength_permille,
            capacity,
            rng: ChaCha8Rng::seed_from_u64(seed),
            corpus: Vec::new(),
            signatures: HashSet::new(),
            novel: 0,
        }
    }

    /// Cumulative novel signatures found.
    pub fn novel(&self) -> u64 {
        self.novel
    }

    /// Current corpus size.
    pub fn corpus_len(&self) -> usize {
        self.corpus.len()
    }

    /// The adversary for one fuzz round: a seeded mutation of a
    /// corpus-picked base tape (derived entirely from `round_seed`, so
    /// a given corpus state and round seed always produce the same
    /// schedule).
    ///
    /// The pick is one SplitMix64 finalizer application — keying up an
    /// entire ChaCha cipher to draw a single index was the fuzz loop's
    /// dominant fixed cost. The pick only needs to be a deterministic,
    /// well-spread function of `round_seed`; the modulo's bias
    /// (corpus ≤ capacity ≪ 2⁶⁴) is irrelevant to a coverage heuristic.
    pub fn next_adversary(&self, round_seed: u64) -> MutatingReplay {
        let base = if self.corpus.is_empty() {
            Tape::default()
        } else {
            let pick = (rr_shmem::rng::mix64(round_seed) % self.corpus.len() as u64) as usize;
            self.corpus[pick].clone()
        };
        MutatingReplay::new(base, self.strength_permille, round_seed)
    }

    /// Feeds one finished round's tape back: returns `true` (and retains
    /// the tape, capacity permitting) when its signature is novel.
    pub fn observe(&mut self, tape: &Tape, n: usize) -> bool {
        let novel = self.signatures.insert(interleaving_signature(tape, n));
        if novel {
            self.novel += 1;
            if self.corpus.len() < self.capacity {
                self.corpus.push(tape.clone());
            }
        }
        novel
    }

    /// Drives `rounds` fuzz rounds against an `n`-process workload.
    /// `run_one` executes one run under the given adversary; on
    /// `Err(reason)` the failing tape is shrunk via [`shrink_tape`] +
    /// [`TolerantReplay`] and returned as a minimal [`Counterexample`].
    pub fn fuzz(
        &mut self,
        n: usize,
        rounds: u64,
        mut run_one: impl FnMut(&mut dyn Adversary) -> Result<RunOutcome, String>,
    ) -> FuzzReport {
        let mut worst_steps = 0u64;
        for round in 0..rounds {
            let round_seed = self.rng.next_u64();
            let mut adv = self.next_adversary(round_seed);
            match run_one(&mut adv) {
                Ok(out) => {
                    worst_steps = worst_steps.max(out.step_complexity());
                    self.observe(&adv.tape(), n);
                }
                Err(reason) => {
                    let tape = shrink_tape(&adv.tape(), |t| {
                        run_one(&mut TolerantReplay::new(t.clone())).is_err()
                    });
                    return FuzzReport {
                        rounds: round + 1,
                        novel: self.novel,
                        corpus_len: self.corpus.len(),
                        worst_steps,
                        counterexample: Some(Counterexample { tape, reason }),
                    };
                }
            }
        }
        FuzzReport {
            rounds,
            novel: self.novel,
            corpus_len: self.corpus.len(),
            worst_steps,
            counterexample: None,
        }
    }
}

/// The registry-facing exhaustive explorer: a cloneable handle whose
/// adversaries share one DFS. Each [`SharedExplorer::adversary`] call
/// hands out the next unvisited schedule (wrapping around after
/// exhaustion, so batches larger than the tree still run); the returned
/// adversary merges its branch trace back on drop, which in the batch
/// runners happens right after its run completes.
///
/// Exactly-once enumeration holds when runs execute serially; see the
/// module docs for the concurrent caveat.
#[derive(Debug, Clone)]
pub struct SharedExplorer {
    state: Arc<Mutex<ExhaustiveExplorer>>,
    clamp: bool,
}

impl SharedExplorer {
    /// A shared explorer over the first `depth` decisions with a crash
    /// budget.
    ///
    /// # Panics
    /// Panics when `depth == 0`.
    pub fn new(depth: usize, crashes: usize) -> Self {
        Self { state: Arc::new(Mutex::new(ExhaustiveExplorer::new(depth, crashes))), clamp: true }
    }

    /// Switches the handle to strict mode: adversaries panic instead of
    /// clamping when the schedule tree changes shape between runs. Use
    /// for **fixed-workload** exhaustive sweeps (same algorithm, n and
    /// seed every run), where a shape change means the workload is
    /// nondeterministic and clamping would silently degrade the
    /// exactly-once guarantee. The registry path stays in clamped mode
    /// because the batch runners legitimately vary the seed per run.
    #[must_use]
    pub fn strict(mut self) -> Self {
        self.clamp = false;
        self
    }

    /// Builds from a parsed `explore[:depth=…,crashes=…]` registry key
    /// (depth default 6, crashes default 0) — the single validation path
    /// shared with [`crate::registry::standard`].
    ///
    /// # Errors
    /// Returns a message on unknown parameters, unparsable values, or
    /// `depth = 0`.
    pub fn from_parsed(key: &ParsedKey) -> Result<Self, String> {
        key.check_known(&["depth", "crashes"])?;
        let depth: usize = key.get("depth", 6)?;
        let crashes: usize = key.get("crashes", 0)?;
        if depth == 0 {
            return Err("explore needs depth ≥ 1".into());
        }
        Ok(Self::new(depth, crashes))
    }

    /// Parses and builds from a full key string, e.g.
    /// `"explore:depth=4,crashes=1"`.
    ///
    /// # Errors
    /// Same conditions as [`SharedExplorer::from_parsed`], plus a
    /// malformed key or a name other than `explore`.
    pub fn from_key(key: &str) -> Result<Self, String> {
        let parsed = ParsedKey::parse(key)?;
        if parsed.name != "explore" {
            return Err(format!("`{}` is not an explore key", parsed.name));
        }
        Self::from_parsed(&parsed)
    }

    /// Whether the bounded tree has been fully visited.
    pub fn exhausted(&self) -> bool {
        self.state.lock().expect("explorer lock").exhausted()
    }

    /// Complete schedules executed so far.
    pub fn schedules(&self) -> u64 {
        self.state.lock().expect("explorer lock").visited()
    }

    /// Times the DFS wrapped around after exhaustion.
    pub fn restarts(&self) -> u64 {
        self.state.lock().expect("explorer lock").restarts()
    }

    /// The adversary for the next schedule (restarting the DFS when the
    /// tree is exhausted). Drop it after its run to advance the search.
    ///
    /// Unlike [`ExhaustiveExplorer::next_adversary`], the returned
    /// adversary (outside [`SharedExplorer::strict`] mode) **clamps**
    /// digits that fall outside a branch point's observed arity instead
    /// of panicking: the batch runners drive one shared explorer across
    /// a *seed sweep*, and different seeds legitimately reshape the
    /// schedule tree (coin flips move the branch points). With a fixed
    /// workload the clamp never fires and the serial exactly-once
    /// guarantee is untouched.
    pub fn adversary(&self) -> SharedGuided {
        let mut state = self.state.lock().expect("explorer lock");
        let inner = match state.next_adversary() {
            Some(adv) => adv,
            None => {
                state.restart();
                state.next_adversary().expect("restarted explorer yields a schedule")
            }
        };
        let inner = GuidedAdversary { clamp: self.clamp, ..inner };
        SharedGuided { inner: Some(inner), state: Arc::clone(&self.state) }
    }
}

/// One [`SharedExplorer`] run: delegates to its guided adversary and
/// merges the branch trace back into the shared DFS on drop.
#[derive(Debug)]
pub struct SharedGuided {
    inner: Option<GuidedAdversary>,
    state: Arc<Mutex<ExhaustiveExplorer>>,
}

impl SharedGuided {
    /// The decisions made so far, as a replayable tape.
    pub fn tape(&self) -> Tape {
        self.inner.as_ref().expect("guided adversary present until drop").tape()
    }
}

impl Adversary for SharedGuided {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        self.inner.as_mut().expect("guided adversary present until drop").decide(view)
    }

    fn name(&self) -> &'static str {
        "explore"
    }
}

impl Drop for SharedGuided {
    fn drop(&mut self) {
        if let Some(adv) = self.inner.take() {
            if let Ok(mut state) = self.state.lock() {
                state.record(&adv);
            }
        }
    }
}

/// The registry-facing fuzzer: a cloneable handle whose adversaries
/// share one corpus + signature set. Each
/// [`SharedFuzzer::adversary`] call is one fuzz round seeded by the
/// run's `(n, seed)`; the recorded tape is observed (novelty, corpus
/// retention) on drop.
#[derive(Debug, Clone)]
pub struct SharedFuzzer {
    state: Arc<Mutex<FuzzExplorer>>,
}

impl SharedFuzzer {
    /// A shared fuzzer at `strength_permille` with corpus capacity
    /// `rounds`.
    ///
    /// # Panics
    /// Panics when `strength_permille > 1000` or `rounds == 0`.
    pub fn new(strength_permille: u32, rounds: usize) -> Self {
        Self { state: Arc::new(Mutex::new(FuzzExplorer::new(0, strength_permille, rounds))) }
    }

    /// Builds from a parsed `fuzz[:rounds=…,strength=…]` registry key
    /// (strength default 250 permille; `rounds`, default 64, caps the
    /// corpus — on the registry path one batch seed is one round).
    ///
    /// # Errors
    /// Returns a message on unknown parameters, unparsable values,
    /// `strength > 1000`, or `rounds = 0`.
    pub fn from_parsed(key: &ParsedKey) -> Result<Self, String> {
        key.check_known(&["rounds", "strength"])?;
        let rounds: usize = key.get("rounds", 64)?;
        let strength: u32 = key.get("strength", 250)?;
        if strength > 1000 {
            return Err(format!("fuzz strength {strength} exceeds 1000 permille"));
        }
        if rounds == 0 {
            return Err("fuzz needs rounds ≥ 1".into());
        }
        Ok(Self::new(strength, rounds))
    }

    /// Cumulative novel signatures found.
    pub fn novel(&self) -> u64 {
        self.state.lock().expect("fuzzer lock").novel()
    }

    /// Current corpus size.
    pub fn corpus_len(&self) -> usize {
        self.state.lock().expect("fuzzer lock").corpus_len()
    }

    /// One fuzz round for an `n`-process run with the given seed.
    pub fn adversary(&self, n: usize, seed: u64) -> SharedFuzz {
        let state = self.state.lock().expect("fuzzer lock");
        let inner = state.next_adversary(seed);
        SharedFuzz { inner: Some(inner), state: Arc::clone(&self.state), n }
    }
}

/// One [`SharedFuzzer`] round: delegates to its mutating replay and
/// feeds the recorded tape back into the shared corpus on drop.
#[derive(Debug)]
pub struct SharedFuzz {
    inner: Option<MutatingReplay>,
    state: Arc<Mutex<FuzzExplorer>>,
    n: usize,
}

impl SharedFuzz {
    /// The decisions made so far, as a replayable tape.
    pub fn tape(&self) -> Tape {
        self.inner.as_ref().expect("mutating replay present until drop").tape()
    }
}

impl Adversary for SharedFuzz {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        self.inner.as_mut().expect("mutating replay present until drop").decide(view)
    }

    fn name(&self) -> &'static str {
        "fuzz"
    }
}

impl Drop for SharedFuzz {
    fn drop(&mut self) {
        if let Some(adv) = self.inner.take() {
            if let Ok(mut state) = self.state.lock() {
                state.observe(&adv.tape(), self.n);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::{Process, StepOutcome};
    use crate::replay::ReplayAdversary;
    use crate::virtual_exec::run;
    use rr_shmem::Access;

    /// A process that takes `extra` Continue steps, then claims its pid.
    struct Count {
        pid: usize,
        extra: usize,
    }

    impl Process for Count {
        fn announce(&mut self) -> Access {
            Access::Local
        }
        fn step(&mut self) -> StepOutcome {
            if self.extra == 0 {
                StepOutcome::Done(self.pid)
            } else {
                self.extra -= 1;
                StepOutcome::Continue
            }
        }
        fn pid(&self) -> Pid {
            Pid::new(self.pid)
        }
    }

    fn counters(n: usize, extra: usize) -> Vec<Box<dyn Process + 'static>> {
        (0..n).map(|pid| Box::new(Count { pid, extra }) as Box<dyn Process>).collect()
    }

    fn run_counters(
        n: usize,
        extra: usize,
    ) -> impl FnMut(&mut dyn Adversary) -> Result<RunOutcome, String> {
        move |adv| run(counters(n, extra), adv, 10_000).map_err(|e| e.to_string())
    }

    /// The acceptance pin: 3 processes × 2 decisions each have exactly
    /// 6!/(2!·2!·2!) = 90 interleavings, each visited exactly once.
    #[test]
    fn exhaustive_visits_every_schedule_exactly_once_n3() {
        let mut explorer = ExhaustiveExplorer::new(8, 0);
        let mut tapes = std::collections::HashSet::new();
        let report = explorer.explore(10_000, |adv| {
            let out = run(counters(3, 1), adv, 10_000).map_err(|e| e.to_string())?;
            Ok(out)
        });
        assert!(report.exhausted);
        assert_eq!(report.schedules, 90, "6!/(2!·2!·2!) = 90 interleavings");
        assert!(report.counterexample.is_none());
        // Re-run collecting tapes to pin uniqueness, not just the count.
        let mut explorer = ExhaustiveExplorer::new(8, 0);
        while let Some(mut adv) = explorer.next_adversary() {
            run(counters(3, 1), &mut adv, 10_000).unwrap();
            assert!(tapes.insert(adv.tape().to_text()), "schedule revisited");
            explorer.record(&adv);
        }
        assert_eq!(tapes.len(), 90);
    }

    #[test]
    fn exhaustive_with_crash_budget_counts_crash_branches() {
        // n=2, one decision each: g0 g1 | g1 g0 | c0 g1 | c1 g0 = 4.
        let mut explorer = ExhaustiveExplorer::new(8, 1);
        let report = explorer.explore(1_000, run_counters(2, 0));
        assert!(report.exhausted);
        assert_eq!(report.schedules, 4);
        // A second crash is never offered once only one process remains.
        let mut explorer = ExhaustiveExplorer::new(8, 2);
        let report = explorer.explore(1_000, run_counters(2, 0));
        assert_eq!(report.schedules, 4);
    }

    #[test]
    fn depth_bounds_the_branching_horizon() {
        // n=2 × 2 steps = 6 full interleavings, but with depth 1 only the
        // first decision branches: 2 schedules.
        let mut explorer = ExhaustiveExplorer::new(1, 0);
        let report = explorer.explore(1_000, run_counters(2, 1));
        assert!(report.exhausted);
        assert_eq!(report.schedules, 2);
    }

    #[test]
    fn limit_stops_the_search_without_exhaustion() {
        let mut explorer = ExhaustiveExplorer::new(8, 0);
        let report = explorer.explore(10, run_counters(3, 1));
        assert!(!report.exhausted);
        assert_eq!(report.schedules, 10);
        // The same explorer can resume and finish the remaining 80.
        let report = explorer.explore(10_000, run_counters(3, 1));
        assert!(report.exhausted);
        assert_eq!(report.schedules, 90);
    }

    #[test]
    fn worst_steps_is_the_max_over_schedules() {
        let mut explorer = ExhaustiveExplorer::new(8, 0);
        let report = explorer.explore(10_000, run_counters(2, 2));
        // Every Count process takes exactly 3 steps under any schedule.
        assert_eq!(report.worst_steps, 3);
    }

    #[test]
    fn explore_shrinks_budget_violations_to_minimal_tapes() {
        // Budget 3 < the 4 decisions n=2 × 2 steps need: every schedule
        // fails, and the empty tape (tolerant fallback) still fails — the
        // minimal counterexample is empty.
        let mut explorer = ExhaustiveExplorer::new(8, 0);
        let report =
            explorer.explore(1_000, |adv| run(counters(2, 1), adv, 3).map_err(|e| e.to_string()));
        let cx = report.counterexample.expect("budget violation found");
        assert!(cx.reason.contains("step budget"));
        assert!(cx.tape.is_empty(), "ddmin should reach the empty tape: {}", cx.tape.to_text());
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn tolerant_replay_matches_exact_replay_on_valid_tapes() {
        let mut explorer = ExhaustiveExplorer::new(8, 1);
        while let Some(mut adv) = explorer.next_adversary() {
            run(counters(3, 1), &mut adv, 10_000).unwrap();
            let tape = adv.tape();
            let exact =
                run(counters(3, 1), &mut ReplayAdversary::new(tape.clone()), 10_000).unwrap();
            let tolerant =
                run(counters(3, 1), &mut TolerantReplay::new(tape.clone()), 10_000).unwrap();
            assert_eq!(exact.names, tolerant.names, "{}", tape.to_text());
            assert_eq!(exact.steps, tolerant.steps, "{}", tape.to_text());
            assert_eq!(exact.crashed, tolerant.crashed, "{}", tape.to_text());
            explorer.record(&adv);
        }
        assert!(explorer.exhausted());
    }

    #[test]
    fn tolerant_replay_redirects_and_extends() {
        // A tape that names halted pids and is too short: every decision
        // still executes and the run completes.
        let tape = Tape::from_text("g1 g1 g1 g1").unwrap();
        let out = run(counters(3, 1), &mut TolerantReplay::new(tape), 10_000).unwrap();
        out.verify_renaming(3).unwrap();
        assert_eq!(out.decisions, 6);
    }

    #[test]
    fn shrink_finds_the_single_crucial_decision() {
        // Failure: "pid 2 crashed". The minimal schedule is one decision.
        let noisy = Tape::from_text("g0 g1 c2 g0 g1 g0").unwrap();
        let fails = |t: &Tape| {
            let out = run(counters(3, 2), &mut TolerantReplay::new(t.clone()), 10_000).unwrap();
            out.crashed[Pid::new(2)]
        };
        assert!(fails(&noisy));
        let min = shrink_tape(&noisy, fails);
        assert_eq!(min.to_text(), "c2");
    }

    /// A later deletion can enable an earlier one: with a predicate that
    /// fails on everything except `[g1]`, a single ddmin pass over
    /// `[g0, g1]` would stop at `[g0]` even though the empty tape also
    /// fails. The fixpoint restart must reach the true 1-minimal `[]`.
    #[test]
    fn shrink_restarts_until_one_minimal() {
        let tape = Tape::from_text("g0 g1").unwrap();
        let min = shrink_tape(&tape, |t| t.to_text() != "g1");
        assert!(min.is_empty(), "got `{}`", min.to_text());
    }

    /// A counterexample advances the DFS like any visited schedule, so a
    /// caller that logs it and calls `explore` again continues with the
    /// next branch instead of re-running the same failing schedule.
    #[test]
    fn explore_resumes_past_a_counterexample() {
        // counters(2, 0) has exactly two schedules; fail the g0-first
        // one (the canonical empty-tape fallback also grants pid 0
        // first, so the shrunk counterexample is the empty tape).
        let fail_g0_first = |adv: &mut dyn Adversary| {
            let mut probe = RecordingProbe { inner: adv, first: None };
            let out = run(counters(2, 0), &mut probe, 100).map_err(|e| e.to_string())?;
            if probe.first == Some(Decision::Grant(Pid::new(0))) {
                return Err("schedule granted pid 0 first".into());
            }
            Ok(out)
        };
        let mut explorer = ExhaustiveExplorer::new(8, 0);
        let first = explorer.explore(1_000, fail_g0_first);
        let cx = first.counterexample.expect("g0-first schedule fails");
        assert!(cx.tape.is_empty(), "fallback also grants g0 first: `{}`", cx.tape.to_text());
        assert_eq!(first.schedules, 1, "the failing schedule counts as visited");
        // Resume: the second (g1-first) schedule runs clean and finishes
        // the tree — no infinite loop on the failing branch.
        let second = explorer.explore(1_000, fail_g0_first);
        assert!(second.counterexample.is_none());
        assert!(second.exhausted);
        assert_eq!(second.schedules, 2);
    }

    /// Pass-through adversary recording the first decision — lets the
    /// resume test discriminate schedules without touching internals.
    struct RecordingProbe<'a> {
        inner: &'a mut dyn Adversary,
        first: Option<Decision>,
    }

    impl Adversary for RecordingProbe<'_> {
        fn decide(&mut self, view: &RunView<'_>) -> Decision {
            let d = self.inner.decide(view);
            self.first.get_or_insert(d);
            d
        }
        fn name(&self) -> &'static str {
            "probe"
        }
    }

    #[test]
    fn shrink_is_identity_when_nothing_can_go() {
        let tape = Tape::from_text("c0 c1").unwrap();
        let min = shrink_tape(&tape, |t| t.len() >= 2);
        assert_eq!(min, tape);
    }

    #[test]
    fn guided_prefix_addresses_schedules_deterministically() {
        // Empty prefix = canonical serial schedule (lowest pid first).
        let mut adv = GuidedAdversary::new(vec![], 8, 0, false);
        run(counters(2, 1), &mut adv, 100).unwrap();
        assert_eq!(adv.tape().to_text(), "g0 g0 g1 g1");
        // Digit 1 at the root grants pid 1 first.
        let mut adv = GuidedAdversary::new(vec![1], 8, 0, false);
        run(counters(2, 1), &mut adv, 100).unwrap();
        assert_eq!(adv.tape().to_text(), "g1 g0 g0 g1");
    }

    #[test]
    fn mutating_replay_at_strength_zero_is_tolerant_replay() {
        let base = Tape::from_text("g1 g0 g1 g0").unwrap();
        let mut mr = MutatingReplay::new(base.clone(), 0, 7);
        let out_m = run(counters(2, 1), &mut mr, 100).unwrap();
        let out_t = run(counters(2, 1), &mut TolerantReplay::new(base), 100).unwrap();
        assert_eq!(out_m.names, out_t.names);
        assert_eq!(out_m.steps, out_t.steps);
        assert_eq!(mr.tape().to_text(), "g1 g0 g1 g0");
    }

    #[test]
    fn mutating_replay_is_deterministic_per_seed() {
        let go = |seed| {
            let mut mr = MutatingReplay::new(Tape::default(), 700, seed);
            run(counters(4, 3), &mut mr, 1_000).unwrap();
            mr.tape().to_text()
        };
        assert_eq!(go(3), go(3));
        assert_ne!(go(3), go(4));
    }

    #[test]
    fn signature_is_interleaving_sensitive_but_coarse() {
        let serial = Tape::from_text("g0 g0 g0 g0 g1 g1 g1 g1").unwrap();
        let alternating = Tape::from_text("g0 g1 g0 g1 g0 g1 g0 g1").unwrap();
        let serial_swapped = Tape::from_text("g1 g1 g1 g1 g0 g0 g0 g0").unwrap();
        assert_ne!(
            interleaving_signature(&serial, 2),
            interleaving_signature(&alternating, 2),
            "bursts differ"
        );
        assert_eq!(
            interleaving_signature(&serial, 2),
            interleaving_signature(&serial_swapped, 2),
            "per-pid burst/step profile is identical"
        );
        let crashed = Tape::from_text("g0 g0 g0 g0 c1").unwrap();
        assert_ne!(interleaving_signature(&serial, 2), interleaving_signature(&crashed, 2));
    }

    #[test]
    fn fuzzer_accumulates_novel_interleavings() {
        let mut fuzzer = FuzzExplorer::new(9, 800, 32);
        let report = fuzzer.fuzz(6, 40, run_counters(6, 3));
        assert_eq!(report.rounds, 40);
        assert!(report.novel >= 2, "strength 0.8 must find > 1 interleaving shape");
        assert!(report.corpus_len >= 1 && report.corpus_len <= 32);
        assert!(report.counterexample.is_none());
        assert_eq!(report.worst_steps, 4);
    }

    #[test]
    fn fuzzer_is_deterministic_per_seed() {
        let go = |seed| {
            let mut fuzzer = FuzzExplorer::new(seed, 500, 16);
            let r = fuzzer.fuzz(5, 25, run_counters(5, 2));
            (r.novel, r.corpus_len, r.worst_steps)
        };
        assert_eq!(go(1), go(1));
    }

    #[test]
    fn fuzzer_shrinks_failures() {
        let mut fuzzer = FuzzExplorer::new(2, 300, 8);
        let report =
            fuzzer.fuzz(2, 10, |adv| run(counters(2, 1), adv, 2).map_err(|e| e.to_string()));
        let cx = report.counterexample.expect("budget 2 must fail");
        assert!(cx.reason.contains("step budget"));
        assert!(cx.tape.is_empty());
    }

    #[test]
    fn shared_explorer_enumerates_exactly_once_serially() {
        let shared = SharedExplorer::from_key("explore:depth=8").unwrap();
        let mut tapes = std::collections::HashSet::new();
        while !shared.exhausted() {
            let mut adv = shared.adversary();
            run(counters(3, 1), &mut adv, 10_000).unwrap();
            assert!(tapes.insert(adv.tape().to_text()), "schedule revisited");
        }
        assert_eq!(tapes.len(), 90);
        assert_eq!(shared.schedules(), 90);
        assert_eq!(shared.restarts(), 0);
    }

    /// The batch runners sweep seeds through one shared explorer, and
    /// different seeds reshape the schedule tree (coin flips move the
    /// branch points). Registry-path adversaries must *reinterpret* a
    /// stale prefix instead of panicking — here the workload alternates
    /// between 4 and 2 processes, so recorded arities go stale every
    /// other run.
    #[test]
    fn shared_explorer_tolerates_workload_reshaping_across_runs() {
        let shared = SharedExplorer::new(6, 0);
        for round in 0..20 {
            let n = if round % 2 == 0 { 4 } else { 2 };
            let mut adv = shared.adversary();
            let out = run(counters(n, 1), &mut adv, 1_000).unwrap();
            out.verify_renaming(n).unwrap();
        }
        assert_eq!(shared.schedules(), 20);
    }

    #[test]
    fn shared_explorer_wraps_around_after_exhaustion() {
        let shared = SharedExplorer::new(8, 0);
        for _ in 0..5 {
            let mut adv = shared.adversary();
            run(counters(2, 0), &mut adv, 100).unwrap();
        }
        // 2 schedules, 5 runs: wrapped at least once.
        assert!(shared.restarts() >= 1);
        assert_eq!(shared.schedules(), 5);
    }

    #[test]
    fn shared_fuzzer_observes_on_drop() {
        let shared = SharedFuzzer::new(600, 8);
        for seed in 0..6 {
            let mut adv = shared.adversary(4, seed);
            run(counters(4, 2), &mut adv, 1_000).unwrap();
        }
        assert!(shared.novel() >= 1);
        assert!(shared.corpus_len() >= 1);
    }

    #[test]
    fn key_validation_errors_are_descriptive() {
        assert_eq!(
            SharedExplorer::from_key("explore:depth=0").unwrap_err(),
            "explore needs depth ≥ 1"
        );
        assert!(SharedExplorer::from_key("explore:typo=1").unwrap_err().contains("unknown"));
        assert!(SharedExplorer::from_key("fair").unwrap_err().contains("not an explore key"));
        let bad = ParsedKey::parse("fuzz:strength=1500").unwrap();
        assert_eq!(
            SharedFuzzer::from_parsed(&bad).unwrap_err(),
            "fuzz strength 1500 exceeds 1000 permille"
        );
        let zero = ParsedKey::parse("fuzz:rounds=0").unwrap();
        assert_eq!(SharedFuzzer::from_parsed(&zero).unwrap_err(), "fuzz needs rounds ≥ 1");
    }

    #[test]
    #[should_panic(expected = "depth ≥ 1")]
    fn zero_depth_panics() {
        let _ = ExhaustiveExplorer::new(0, 0);
    }
}
