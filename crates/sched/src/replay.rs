//! Schedule recording and exact replay.
//!
//! When an adversarial run exhibits something interesting (a step-count
//! spike, a near-violation), you want to re-execute *that exact
//! schedule* under a debugger or after a code tweak. [`RecordingAdversary`]
//! wraps any strategy and captures its decision tape;
//! [`ReplayAdversary`] feeds a tape back verbatim. Together with the
//! seed-stable process RNG this makes whole executions reproducible
//! artifacts you can store and bisect.

use crate::adversary::{Adversary, Decision, RunView};
use crate::ids::Pid;

/// A recorded schedule: the exact decision sequence of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Tape {
    decisions: Vec<Decision>,
}

impl Tape {
    /// A tape from an explicit decision sequence — how the schedule
    /// explorer ([`crate::explore`]) and the shrinker materialize the
    /// branches they synthesize.
    pub fn from_decisions(decisions: Vec<Decision>) -> Self {
        Self { decisions }
    }

    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// The recorded decisions.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Serializes to a compact text form (`g12` = grant pid 12,
    /// `c3` = crash pid 3), one token per decision.
    pub fn to_text(&self) -> String {
        self.decisions
            .iter()
            .map(|d| match d {
                Decision::Grant(p) => format!("g{p}"),
                Decision::Crash(p) => format!("c{p}"),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses the text form produced by [`Tape::to_text`].
    ///
    /// # Errors
    /// Returns the offending token on malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut decisions = Vec::new();
        for tok in text.split_whitespace() {
            let (kind, pid) = tok.split_at(1);
            let pid: usize = pid.parse().map_err(|_| tok.to_string())?;
            decisions.push(match kind {
                "g" => Decision::Grant(Pid::new(pid)),
                "c" => Decision::Crash(Pid::new(pid)),
                _ => return Err(tok.to_string()),
            });
        }
        Ok(Self { decisions })
    }
}

/// Wraps an adversary and records every decision it makes.
#[derive(Debug)]
pub struct RecordingAdversary<A> {
    inner: A,
    tape: Tape,
}

impl<A: Adversary> RecordingAdversary<A> {
    /// Starts recording over `inner`.
    pub fn new(inner: A) -> Self {
        Self { inner, tape: Tape::default() }
    }

    /// The tape recorded so far.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Consumes the recorder, returning the tape.
    pub fn into_tape(self) -> Tape {
        self.tape
    }
}

impl<A: Adversary> Adversary for RecordingAdversary<A> {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let d = self.inner.decide(view);
        self.tape.decisions.push(d);
        d
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        // Forward the inner strategy's batching (recording must not
        // change the schedule) and capture whatever it appended.
        let start = out.len();
        self.inner.decide_batch(view, out, max);
        self.tape.decisions.extend_from_slice(&out[start..]);
    }

    fn name(&self) -> &'static str {
        "recording"
    }
}

/// Replays a tape verbatim.
///
/// # Panics
/// `decide` panics if the tape runs out — a replay against different
/// code or seeds that diverges is a bug worth failing loudly on.
#[derive(Debug)]
pub struct ReplayAdversary {
    tape: Tape,
    at: usize,
}

impl ReplayAdversary {
    /// Replays `tape` from the start.
    pub fn new(tape: Tape) -> Self {
        Self { tape, at: 0 }
    }

    /// Decisions consumed so far.
    pub fn position(&self) -> usize {
        self.at
    }
}

impl Adversary for ReplayAdversary {
    fn decide(&mut self, _view: &RunView<'_>) -> Decision {
        let d = self
            .tape
            .decisions
            .get(self.at)
            .copied()
            .unwrap_or_else(|| panic!("replay tape exhausted at decision {}", self.at));
        self.at += 1;
        d
    }

    fn name(&self) -> &'static str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{FairAdversary, RandomAdversary};
    use crate::process::testutil::ScanProcess;
    use crate::process::Process;
    use crate::virtual_exec::run;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    fn scan_procs(n: usize) -> Vec<Box<dyn Process + 'static>> {
        let mem = Arc::new(AtomicTasArray::new(n));
        (0..n)
            .map(|pid| {
                Box::new(ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 }) as Box<dyn Process>
            })
            .collect()
    }

    #[test]
    fn record_then_replay_reproduces_everything() {
        let mut rec = RecordingAdversary::new(RandomAdversary::new(77));
        let out1 = run(scan_procs(16), &mut rec, 10_000).unwrap();
        let tape = rec.into_tape();
        assert_eq!(tape.len() as u64, out1.decisions);

        let mut replay = ReplayAdversary::new(tape);
        let out2 = run(scan_procs(16), &mut replay, 10_000).unwrap();
        assert_eq!(out1.names, out2.names);
        assert_eq!(out1.steps, out2.steps);
        assert_eq!(replay.position() as u64, out2.decisions);
    }

    #[test]
    fn text_roundtrip() {
        let mut rec = RecordingAdversary::new(FairAdversary::default());
        let _ = run(scan_procs(6), &mut rec, 10_000).unwrap();
        let tape = rec.into_tape();
        let text = tape.to_text();
        let parsed = Tape::from_text(&text).unwrap();
        assert_eq!(parsed, tape);
        assert!(text.starts_with('g'));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Tape::from_text("g1 x2").is_err());
        assert!(Tape::from_text("gg").is_err());
        assert_eq!(Tape::from_text("").unwrap().len(), 0);
        assert!(Tape::from_text("").unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "tape exhausted")]
    fn exhausted_tape_panics() {
        let tape = Tape::from_text("g0").unwrap();
        let mut replay = ReplayAdversary::new(tape);
        // Two processes need more than one decision.
        let _ = run(scan_procs(2), &mut replay, 10_000);
    }

    #[test]
    fn tape_accessors() {
        let tape = Tape::from_text("g3 c1 g0").unwrap();
        assert_eq!(tape.len(), 3);
        assert_eq!(
            tape.decisions(),
            &[
                Decision::Grant(Pid::new(3)),
                Decision::Crash(Pid::new(1)),
                Decision::Grant(Pid::new(0))
            ]
        );
    }
}
