//! # rr-sched — execution model and adaptive adversaries
//!
//! Implements the machine model of §II-A: asynchronous processes over
//! shared TAS memory, scheduled (and crashed) by an **adaptive adversary**
//! that sees every process's state including coin flips.
//!
//! Algorithms are [`Process`] state machines (announce an access, then
//! execute it). Two executors drive them:
//!
//! * [`virtual_exec`] — single-threaded, adversary-in-the-loop, exact
//!   step counts, deterministic, scales to millions of processes. This is
//!   the executor that realizes the paper's model.
//! * [`thread_exec`] — one OS thread per process on real atomics, for
//!   wall-clock benchmarks.
//!
//! Adversary strategies live in [`adversary`]: fair round-robin, seeded
//! random, collision maximization (exploits coin-flip visibility), stall
//! -winners, and a crash-injecting wrapper. The [`registry`] names each
//! strategy once so drivers can build any of them from a string key
//! (`"fair"`, `"crash:p=20,cap=10"`, …) instead of re-matching enums.

pub mod adversary;
pub mod process;
pub mod registry;
pub mod replay;
pub mod thread_exec;
pub mod virtual_exec;

pub use adversary::{
    Adversary, CollisionMaximizer, CrashAdversary, Decision, FairAdversary, RandomAdversary,
    StallWinners, View,
};
pub use process::{run_to_completion, Process, StepOutcome};
pub use registry::{AdversaryBuilder, AdversaryRegistry, ParsedKey};
pub use replay::{RecordingAdversary, ReplayAdversary, Tape};
pub use thread_exec::{run_threads, run_threads_bounded};
pub use virtual_exec::{run, ExecError, RunOutcome};
