//! # rr-sched — execution model and adaptive adversaries
//!
//! Implements the machine model of §II-A: asynchronous processes over
//! shared TAS memory, scheduled (and crashed) by an **adaptive adversary**
//! that sees every process's state including coin flips.
//!
//! Algorithms are [`Process`] state machines (announce an access, then
//! execute it). One execution core, three faces:
//!
//! * [`shard`] — the flat arena core (struct-of-arrays process state,
//!   scratch buffers reused across seeds, monomorphized announce/step
//!   dispatch for typed process slices) plus the sharded engine that
//!   runs one logical execution as S coupled per-shard arenas. Every
//!   adversary-scheduled run in the workspace executes this loop;
//!   [`dense`] remains as a re-export shim for the arena's old path.
//!   All pid-indexed tables are typed [`ids::EntityVec`]s keyed by
//!   [`ids::Pid`]; per-process lifecycle state is word-packed in
//!   [`bits`] ([`bits::StatusBitmap`]) so the runnable set is scanned
//!   word-at-a-time and adversary decisions apply in macro-step
//!   batches.
//! * [`virtual_exec`] — the boxed compatibility shim over the arena:
//!   single-threaded, adversary-in-the-loop, exact step counts,
//!   deterministic. This is the executor API that realizes the paper's
//!   model; `Box<dyn Process>` workloads run the identical loop.
//! * [`thread_exec`] — one OS thread per process on real atomics, for
//!   wall-clock benchmarks.
//!
//! Adversary strategies live in [`adversary`]: fair round-robin, seeded
//! random, collision maximization (exploits coin-flip visibility), stall
//! -winners, and a crash-injecting wrapper. [`explore`] searches the
//! schedule space systematically — bounded exhaustive DFS, a
//! coverage-guided schedule fuzzer, and ddmin tape shrinking for minimal
//! counterexamples. The [`registry`] names each strategy once so drivers
//! can build any of them from a string key (`"fair"`,
//! `"crash:p=20,cap=10"`, `"explore:depth=6"`, …) instead of re-matching
//! enums.
//!
//! ```
//! use rr_sched::adversary::Adversary;
//! use rr_sched::registry::{standard, ParsedKey};
//!
//! // Every adversary builds from a string key through one registry.
//! let key = ParsedKey::parse("crash:p=200,cap=25").unwrap();
//! assert_eq!(key.name, "crash");
//! let adversary = standard().build("crash:p=200,cap=25", 16, 7).unwrap();
//! assert!(!adversary.name().is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod adversary;
pub mod bits;
pub mod dense;
pub mod explore;
pub mod ids;
pub mod model;
pub mod process;
pub mod registry;
pub mod replay;
pub mod shard;
pub mod thread_exec;
pub mod virtual_exec;

pub use adversary::{
    Adversary, CollisionMaximizer, CrashAdversary, Decision, FairAdversary, RandomAdversary,
    RunView, StallWinners, ViewFixture,
};
pub use bits::{SlotSnapshot, Status, StatusBitmap};
pub use explore::{
    interleaving_signature, shrink_tape, Counterexample, ExhaustiveExplorer, ExploreReport,
    FuzzExplorer, FuzzReport, GuidedAdversary, MutatingReplay, Odometer, SharedExplorer,
    SharedFuzzer, TolerantReplay,
};
pub use ids::{EntityVec, LocalIdx, Pid, ShardId, ShardMap};
pub use model::{ModelReport, ModelRun, ModelTrace, TracedWord};
pub use process::{run_to_completion, Process, StepOutcome};
pub use registry::{AdversaryBuilder, AdversaryRegistry, ParsedKey};
pub use replay::{RecordingAdversary, ReplayAdversary, Tape};
pub use shard::{
    run_sharded, shard_seed, Arena, CoupledAdversary, ShardContext, ShardCoupler, ShardRun,
    DEFAULT_COUPLING_EVERY,
};
pub use thread_exec::{run_threads, run_threads_bounded};
pub use virtual_exec::{run, ExecError, RunOutcome};
