//! The model-faithful executor: single-threaded, adversary-scheduled,
//! access-granular.
//!
//! This executor *is* the paper's asynchronous shared-memory model. All
//! processes are held as state machines; before every step the adversary
//! sees each active process's announced access (coin flips included) and
//! either grants one process its step or crashes one process. Because no
//! OS threads are involved it scales to n = 2²⁰ processes and produces
//! exact, deterministic step counts.

use crate::adversary::Adversary;
use crate::ids::{EntityVec, Pid};
use crate::process::Process;

/// Why a run ended badly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Total steps exceeded the livelock guard.
    StepBudgetExceeded {
        /// The configured cap.
        budget: u64,
    },
    /// The adversary addressed a pid that is not active.
    BadDecision {
        /// The offending decision, rendered.
        decision: String,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StepBudgetExceeded { budget } => {
                write!(f, "execution exceeded the step budget of {budget}")
            }
            ExecError::BadDecision { decision } => {
                write!(f, "adversary issued an illegal decision: {decision}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Outcome of a virtual run. All per-process tables are dense and keyed
/// by [`Pid`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// `names[pid]` — the name acquired, or `None` if the process crashed.
    pub names: EntityVec<Pid, Option<usize>>,
    /// `steps[pid]` — shared-memory accesses performed.
    pub steps: EntityVec<Pid, u64>,
    /// `crashed[pid]`.
    pub crashed: EntityVec<Pid, bool>,
    /// `gave_up[pid]` — the process halted unnamed of its own accord (the
    /// almost-tight protocols' legitimate "unnamed" outcome).
    pub gave_up: EntityVec<Pid, bool>,
    /// Total scheduling decisions taken.
    pub decisions: u64,
}

impl RunOutcome {
    /// Step complexity: max steps over *all* processes (crashed ones
    /// included — their steps were spent in the execution).
    pub fn step_complexity(&self) -> u64 {
        self.steps.iter().copied().max().unwrap_or(0)
    }

    /// Total work.
    pub fn total_steps(&self) -> u64 {
        self.steps.iter().sum()
    }

    /// Number of processes that halted holding a name.
    pub fn named_count(&self) -> usize {
        self.names.iter().filter(|n| n.is_some()).count()
    }

    /// Pids of surviving (non-crashed) processes.
    pub fn survivors(&self) -> Vec<Pid> {
        self.crashed.iter_enumerated().filter(|&(_, &c)| !c).map(|(p, _)| p).collect()
    }

    /// Number of processes that gave up unnamed (the almost-tight
    /// protocols' `n − k` measure).
    pub fn gave_up_count(&self) -> usize {
        self.gave_up.iter().filter(|&&g| g).count()
    }

    /// Checks the three renaming properties for survivors: completeness
    /// (all named, unless the process legitimately gave up), uniqueness,
    /// and the name-space bound `< m`.
    pub fn verify_renaming(&self, m: usize) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for pid in self.survivors() {
            match self.names[pid] {
                None if self.gave_up[pid] => {}
                None => return Err(format!("surviving process {pid} got no name")),
                Some(name) => {
                    if name >= m {
                        return Err(format!("process {pid} got name {name} ≥ m={m}"));
                    }
                    if !seen.insert(name) {
                        return Err(format!("name {name} assigned twice"));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Runs `processes` to completion under `adversary`.
///
/// `step_budget` guards against livelock (use ~`100 · n · log n` for the
/// algorithms in this workspace; they are far below it w.h.p.).
///
/// ```
/// use rr_sched::adversary::FairAdversary;
/// use rr_sched::ids::Pid;
/// use rr_sched::process::{Process, StepOutcome};
/// use rr_shmem::Access;
///
/// // A process that takes `pid` steps then claims name `pid`.
/// struct Count { pid: usize, left: usize }
/// impl Process for Count {
///     fn announce(&mut self) -> Access { Access::Local }
///     fn step(&mut self) -> StepOutcome {
///         if self.left == 0 { StepOutcome::Done(self.pid) }
///         else { self.left -= 1; StepOutcome::Continue }
///     }
///     fn pid(&self) -> Pid { Pid::new(self.pid) }
/// }
///
/// let procs: Vec<Box<dyn Process>> = (0..4)
///     .map(|pid| Box::new(Count { pid, left: pid }) as Box<dyn Process>)
///     .collect();
/// let out = rr_sched::virtual_exec::run(procs, &mut FairAdversary::default(), 1000).unwrap();
/// out.verify_renaming(4).unwrap();
/// assert_eq!(out.step_complexity(), 4); // pid 3: 3 waits + the claim
/// ```
pub fn run<A: Adversary + ?Sized>(
    mut processes: Vec<Box<dyn Process + '_>>,
    adversary: &mut A,
    step_budget: u64,
) -> Result<RunOutcome, ExecError> {
    // The boxed compatibility shim: `Box<dyn Process>` is itself a
    // `Process`, so the flat arena core drives the boxed slice with the
    // exact historical semantics (see `crate::shard` for the fast,
    // monomorphized path algorithms opt into).
    crate::shard::Arena::new().run(&mut processes, adversary, step_budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CollisionMaximizer, CrashAdversary, FairAdversary, RandomAdversary};
    use crate::process::testutil::ScanProcess;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    fn scan_processes(
        n: usize,
        m: usize,
    ) -> (Vec<Box<dyn Process + 'static>>, Arc<AtomicTasArray>) {
        let mem = Arc::new(AtomicTasArray::new(m));
        let procs: Vec<Box<dyn Process>> = (0..n)
            .map(|pid| {
                Box::new(ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 }) as Box<dyn Process>
            })
            .collect();
        (procs, mem)
    }

    #[test]
    fn fair_schedule_renames_everyone() {
        let (procs, _mem) = scan_processes(8, 8);
        let out = run(procs, &mut FairAdversary::default(), 10_000).unwrap();
        out.verify_renaming(8).unwrap();
        assert_eq!(out.survivors().len(), 8);
        // Scanning processes under round-robin: pid p wins register p
        // after p+1 probes... in fact steps are deterministic here.
        assert_eq!(out.step_complexity(), 8);
        assert_eq!(out.named_count(), 8);
    }

    #[test]
    fn random_schedule_still_safe() {
        let (procs, _mem) = scan_processes(16, 16);
        let out = run(procs, &mut RandomAdversary::new(99), 100_000).unwrap();
        out.verify_renaming(16).unwrap();
    }

    #[test]
    fn collision_maximizer_inflates_steps_but_safety_holds() {
        let (procs, _mem) = scan_processes(12, 12);
        let out = run(procs, &mut CollisionMaximizer::default(), 100_000).unwrap();
        out.verify_renaming(12).unwrap();
        // Everyone scans from 0, so worst case is n probes each.
        assert!(out.step_complexity() <= 12);
    }

    #[test]
    fn crashes_leave_survivors_named() {
        let (procs, _mem) = scan_processes(10, 10);
        let mut adv = CrashAdversary::new(FairAdversary::default(), 0.3, 5, 42);
        let out = run(procs, &mut adv, 100_000).unwrap();
        let crashed = out.crashed.iter().filter(|&&c| c).count();
        assert_eq!(crashed, adv.crashes());
        out.verify_renaming(10).unwrap();
        assert_eq!(out.survivors().len(), 10 - crashed);
    }

    #[test]
    fn deterministic_given_seed_and_adversary() {
        let run_once = || {
            let (procs, _mem) = scan_processes(8, 8);
            let out = run(procs, &mut RandomAdversary::new(5), 100_000).unwrap();
            (out.names.clone(), out.steps.clone())
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn step_budget_enforced() {
        let (procs, _mem) = scan_processes(4, 4);
        let err = run(procs, &mut FairAdversary::default(), 3).unwrap_err();
        assert!(matches!(err, ExecError::StepBudgetExceeded { budget: 3 }));
        assert!(err.to_string().contains("step budget"));
    }

    #[test]
    fn empty_run_is_trivial() {
        let out = run(Vec::new(), &mut FairAdversary::default(), 10).unwrap();
        assert_eq!(out.decisions, 0);
        assert_eq!(out.step_complexity(), 0);
        out.verify_renaming(0).unwrap();
    }

    #[test]
    fn verify_catches_missing_name() {
        let out = RunOutcome {
            names: vec![Some(0), None].into(),
            steps: vec![1, 1].into(),
            crashed: vec![false, false].into(),
            gave_up: vec![false; 2].into(),
            decisions: 2,
        };
        assert!(out.verify_renaming(2).unwrap_err().contains("no name"));
    }

    #[test]
    fn verify_catches_duplicate() {
        let out = RunOutcome {
            names: vec![Some(0), Some(0)].into(),
            steps: vec![1, 1].into(),
            crashed: vec![false, false].into(),
            gave_up: vec![false; 2].into(),
            decisions: 2,
        };
        assert!(out.verify_renaming(2).unwrap_err().contains("twice"));
    }

    #[test]
    fn verify_catches_out_of_space() {
        let out = RunOutcome {
            names: vec![Some(5)].into(),
            steps: vec![1].into(),
            crashed: vec![false].into(),
            gave_up: vec![false; 1].into(),
            decisions: 1,
        };
        assert!(out.verify_renaming(2).unwrap_err().contains("≥ m"));
    }

    #[test]
    fn crashed_process_excused_from_completeness() {
        let out = RunOutcome {
            names: vec![Some(0), None].into(),
            steps: vec![1, 4].into(),
            crashed: vec![false, true].into(),
            gave_up: vec![false; 2].into(),
            decisions: 5,
        };
        out.verify_renaming(2).unwrap();
        assert_eq!(out.survivors(), vec![Pid::new(0)]);
        assert_eq!(out.total_steps(), 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::adversary::{CrashAdversary, FairAdversary, RandomAdversary};
    use crate::process::StepOutcome;
    use proptest::prelude::*;
    use rr_shmem::Access;

    /// A fully scripted process: follows a fixed outcome tape.
    struct Scripted {
        pid: usize,
        tape: Vec<StepOutcome>,
        at: usize,
    }

    impl Process for Scripted {
        fn announce(&mut self) -> Access {
            Access::Local
        }
        fn step(&mut self) -> StepOutcome {
            let o = self.tape[self.at.min(self.tape.len() - 1)];
            self.at += 1;
            o
        }
        fn pid(&self) -> Pid {
            Pid::new(self.pid)
        }
    }

    fn build(tapes: Vec<Vec<StepOutcome>>) -> Vec<Box<dyn Process + 'static>> {
        tapes
            .into_iter()
            .enumerate()
            .map(|(pid, tape)| Box::new(Scripted { pid, tape, at: 0 }) as Box<dyn Process>)
            .collect()
    }

    fn tape_strategy() -> impl Strategy<Value = Vec<StepOutcome>> {
        // Random Continue prefix, then a terminal Done(pid-ish) or GaveUp.
        (0usize..12, 0usize..1000, proptest::bool::ANY).prop_map(|(len, name, give_up)| {
            let mut tape = vec![StepOutcome::Continue; len];
            tape.push(if give_up { StepOutcome::GaveUp } else { StepOutcome::Done(name) });
            tape
        })
    }

    proptest! {
        /// Executor bookkeeping matches the tapes exactly, under every
        /// adversary: steps = tape length, names = terminal symbol,
        /// crashed ∪ named ∪ gave_up partitions the processes.
        #[test]
        fn bookkeeping_matches_tapes(
            tapes in proptest::collection::vec(tape_strategy(), 1..24),
            adv_kind in 0u8..3,
            seed in 0u64..100,
        ) {
            let expected: Vec<(u64, StepOutcome)> = tapes
                .iter()
                .map(|t| (t.len() as u64, *t.last().unwrap()))
                .collect();
            let procs = build(tapes);
            let n = procs.len();
            let mut adv: Box<dyn Adversary> = match adv_kind {
                0 => Box::new(FairAdversary::default()),
                1 => Box::new(RandomAdversary::new(seed)),
                _ => Box::new(CrashAdversary::new(FairAdversary::default(), 0.3, n / 2, seed)),
            };
            let out = run(procs, adv.as_mut(), 1 << 20).unwrap();
            for (i, &(tape_len, terminal)) in expected.iter().enumerate() {
                let pid = Pid::new(i);
                if out.crashed[pid] {
                    prop_assert!(out.names[pid].is_none());
                    prop_assert!(!out.gave_up[pid]);
                    // A crashed process stopped early.
                    prop_assert!(out.steps[pid] < tape_len);
                    continue;
                }
                prop_assert_eq!(out.steps[pid], tape_len, "pid {} steps", pid);
                match terminal {
                    StepOutcome::Done(name) => {
                        prop_assert_eq!(out.names[pid], Some(name));
                        prop_assert!(!out.gave_up[pid]);
                    }
                    StepOutcome::GaveUp => {
                        prop_assert_eq!(out.names[pid], None);
                        prop_assert!(out.gave_up[pid]);
                    }
                    StepOutcome::Continue => unreachable!(),
                }
            }
            // Decisions = total grants + crashes.
            let grants: u64 = out.steps.iter().sum();
            let crashes = out.crashed.iter().filter(|&&c| c).count() as u64;
            prop_assert_eq!(out.decisions, grants + crashes);
        }
    }
}
