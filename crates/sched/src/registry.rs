//! String-keyed adversary registry.
//!
//! Every experiment used to re-match an ad-hoc schedule enum by hand;
//! the registry names each adversary strategy **once** and lets any
//! driver build it from a string key alone — `"fair"`, `"random"`,
//! `"collisions"`, `"stall"`, or `"crash:p=20,cap=10"` (crash
//! probability in permille at winning announces, crash budget as a
//! percentage of `n`). The zoo strategies — `"lookahead:k=K"`,
//! `"bursty:len=L,gap=G"`, `"diurnal:period=P"`, `"victim:pid=V"` —
//! stress schedulers with foresight, duty cycles and starvation bias.
//! Keys follow the shared [`ParsedKey`] grammar
//! `name[:k=v[,k=v…]]` also used by the algorithm registry.
//!
//! Adding a strategy is a one-registration change: implement
//! [`Adversary`], then [`AdversaryRegistry::register`] a factory that
//! validates the key's parameters and returns a per-run builder.

use crate::adversary::{
    Adversary, BurstyAdversary, CollisionMaximizer, CrashAdversary, DiurnalAdversary,
    FairAdversary, LookaheadAdversary, RandomAdversary, StallWinners, VictimAdversary,
};
use crate::explore::{SharedExplorer, SharedFuzzer};
use rr_shmem::Access;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};

/// A key of the form `name[:k=v[,k=v…]]`, e.g. `crash:p=200,cap=25`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedKey {
    /// The entry name (everything before the first `:`).
    pub name: String,
    params: Vec<(String, String)>,
}

impl ParsedKey {
    /// Parses `name[:k=v[,k=v…]]`.
    ///
    /// The full grammar, executable:
    ///
    /// ```
    /// use rr_sched::registry::ParsedKey;
    ///
    /// // name alone, or name + comma-separated k=v parameters:
    /// assert_eq!(ParsedKey::parse("fair").unwrap().name, "fair");
    /// let key = ParsedKey::parse("crash:p=200,cap=25").unwrap();
    /// assert_eq!(key.name, "crash");
    /// assert_eq!(key.get::<u32>("p", 20).unwrap(), 200);
    /// assert_eq!(key.get::<u32>("missing", 7).unwrap(), 7); // default
    ///
    /// // factories reject typo'd parameters instead of defaulting:
    /// key.check_known(&["p", "cap"]).unwrap();
    /// assert!(key.check_known(&["p"]).is_err());
    ///
    /// // malformed keys are loud errors, not guesses:
    /// assert!(ParsedKey::parse("").is_err());        // empty key
    /// assert!(ParsedKey::parse(":p=1").is_err());    // empty name
    /// assert!(ParsedKey::parse("crash:p").is_err()); // not k=v
    /// assert!(ParsedKey::parse("crash:p=x").unwrap().get::<u32>("p", 0).is_err());
    /// ```
    ///
    /// # Errors
    /// Returns a human-readable message on an empty key or a parameter
    /// that is not of the form `k=v`.
    pub fn parse(key: &str) -> Result<Self, String> {
        let key = key.trim();
        if key.is_empty() {
            return Err("empty key".into());
        }
        let (name, rest) = match key.split_once(':') {
            Some((n, r)) => (n, Some(r)),
            None => (key, None),
        };
        if name.is_empty() {
            return Err(format!("key `{key}` has an empty name"));
        }
        let mut params = Vec::new();
        if let Some(rest) = rest {
            for part in rest.split(',') {
                let (k, v) = part
                    .split_once('=')
                    .ok_or_else(|| format!("malformed parameter `{part}` in `{key}` (want k=v)"))?;
                params.push((k.trim().to_string(), v.trim().to_string()));
            }
        }
        Ok(Self { name: name.to_string(), params })
    }

    /// The value of parameter `name` parsed as `T`, or `default` when the
    /// key does not mention it.
    ///
    /// # Errors
    /// Returns a message when the value fails to parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.params.iter().find(|(k, _)| k == name) {
            None => Ok(default),
            Some((_, v)) => v
                .parse()
                .map_err(|_| format!("parameter `{name}={v}` of `{}` is invalid", self.name)),
        }
    }

    /// Rejects parameters outside `allowed` — factories call this so a
    /// typo (`crash:P=20`) fails loudly instead of silently defaulting.
    ///
    /// # Errors
    /// Returns a message naming the unknown parameter.
    pub fn check_known(&self, allowed: &[&str]) -> Result<(), String> {
        for (k, _) in &self.params {
            if !allowed.contains(&k.as_str()) {
                return Err(format!(
                    "unknown parameter `{k}` for `{}` (allowed: {})",
                    self.name,
                    if allowed.is_empty() { "none".to_string() } else { allowed.join(", ") }
                ));
            }
        }
        Ok(())
    }
}

/// Builds one fresh adversary for a run at size `n` with `seed`.
pub type AdversaryBuilder = Box<dyn Fn(usize, u64) -> Box<dyn Adversary> + Send + Sync>;

type Factory = Arc<dyn Fn(&ParsedKey) -> Result<AdversaryBuilder, String> + Send + Sync>;

struct Entry {
    factory: Factory,
    summary: &'static str,
    example: &'static str,
}

/// Maps adversary names to factories; see the module docs for the key
/// grammar and [`AdversaryRegistry::with_standard`] for the stock set.
#[derive(Default)]
pub struct AdversaryRegistry {
    entries: BTreeMap<String, Entry>,
}

impl AdversaryRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard strategies: `fair`, `random`, `collisions`, `stall`,
    /// `crash` (params `p` = crash probability in permille at
    /// winning-kind announces, default 20; `cap` = crash budget as a
    /// percentage of `n`, default 10), the load-shape zoo `lookahead`
    /// (param `k` ≥ 1 = committed window length, default 4), `bursty`
    /// (params `len` ≥ 1 = fair grants per burst, default 8; `gap` =
    /// front-hammer grants between bursts, default 4), `diurnal` (param
    /// `period` ≥ 2 = duty-cycle length in decisions, default 64) and
    /// `victim` (param `pid` = the starved process, default 0), and the
    /// schedule-space searchers `explore` (bounded exhaustive DFS,
    /// params `depth` = branching horizon, default 6; `crashes` =
    /// crash-decision budget, default 0) and `fuzz` (params `strength` =
    /// perturbation permille, default 250; `rounds` = corpus capacity,
    /// default 64). The searchers keep state across the seeds of one
    /// prepared builder — see [`crate::explore`] for their serial
    /// exactly-once guarantee.
    ///
    /// The searcher keys, end to end:
    ///
    /// ```
    /// use rr_sched::adversary::Adversary;
    /// use rr_sched::registry::AdversaryRegistry;
    ///
    /// let reg = AdversaryRegistry::with_standard();
    /// // Bounded exhaustive DFS with a crash budget, and the
    /// // coverage-guided schedule fuzzer — ordinary registry keys:
    /// let dfs = reg.build("explore:depth=3,crashes=1", 4, 0).unwrap();
    /// let fuzzer = reg.build("fuzz:rounds=8,strength=500", 8, 1).unwrap();
    /// assert!(!dfs.name().is_empty() && !fuzzer.name().is_empty());
    ///
    /// // Parameters are validated at build time:
    /// assert!(reg.build("explore:depth=0", 4, 0).is_err());
    /// assert!(reg.build("fuzz:strength=1500", 4, 0).is_err());
    /// assert!(reg.build("fuzz:rounds=0", 4, 0).is_err());
    /// ```
    pub fn with_standard() -> Self {
        let mut reg = Self::new();
        reg.register("fair", "round-robin over active processes", "fair", |key| {
            key.check_known(&[])?;
            Ok(Box::new(|_, _| Box::new(FairAdversary::default())))
        });
        reg.register("random", "uniformly random seeded schedule", "random", |key| {
            key.check_known(&[])?;
            Ok(Box::new(|_, seed| Box::new(RandomAdversary::new(seed))))
        });
        reg.register(
            "collisions",
            "schedules the largest same-target group back to back",
            "collisions",
            |key| {
                key.check_known(&[])?;
                Ok(Box::new(|_, _| Box::new(CollisionMaximizer::default())))
            },
        );
        reg.register(
            "stall",
            "defers winning-kind announces (TAS / tau-request) behind everyone else",
            "stall",
            |key| {
                key.check_known(&[])?;
                Ok(Box::new(|_, _| {
                    Box::new(StallWinners::new(Box::new(|a: &Access| a.is_winning_kind())))
                }))
            },
        );
        reg.register(
            "crash",
            "fair schedule + crashes at winning announces (p permille, cap % of n)",
            "crash:p=20,cap=10",
            |key| {
                key.check_known(&["p", "cap"])?;
                let p: u32 = key.get("p", 20)?;
                let cap: u32 = key.get("cap", 10)?;
                if p > 1000 {
                    return Err(format!("crash probability p={p} exceeds 1000 permille"));
                }
                Ok(Box::new(move |n, seed| {
                    Box::new(CrashAdversary::new(
                        FairAdversary::default(),
                        p as f64 / 1000.0,
                        n * cap as usize / 100,
                        seed,
                    ))
                }))
            },
        );
        reg.register(
            "lookahead",
            "oblivious k-step lookahead: commits to the next k runnable pids from one view",
            "lookahead:k=4",
            |key| {
                key.check_known(&["k"])?;
                let k: usize = key.get("k", 4)?;
                if k == 0 {
                    return Err("lookahead needs k >= 1, got 0".to_string());
                }
                Ok(Box::new(move |_, _| Box::new(LookaheadAdversary::new(k))))
            },
        );
        reg.register(
            "bursty",
            "bursts of len fair grants separated by gap grants of the lowest runnable pid",
            "bursty:len=8,gap=4",
            |key| {
                key.check_known(&["len", "gap"])?;
                let len: usize = key.get("len", 8)?;
                let gap: usize = key.get("gap", 4)?;
                if len == 0 {
                    return Err("bursty needs len >= 1, got 0".to_string());
                }
                Ok(Box::new(move |_, _| Box::new(BurstyAdversary::new(len, gap))))
            },
        );
        reg.register(
            "diurnal",
            "sinusoidal duty cycle: the eligible prefix of runnable pids swells with period P",
            "diurnal:period=64",
            |key| {
                key.check_known(&["period"])?;
                let period: u64 = key.get("period", 64)?;
                if period < 2 {
                    return Err(format!("diurnal needs period >= 2, got {period}"));
                }
                Ok(Box::new(move |_, _| Box::new(DiurnalAdversary::new(period))))
            },
        );
        reg.register(
            "victim",
            "fair schedule that starves pid V, granting it only when it runs alone",
            "victim:pid=0",
            |key| {
                key.check_known(&["pid"])?;
                let pid: usize = key.get("pid", 0)?;
                Ok(Box::new(move |_, _| Box::new(VictimAdversary::new(pid))))
            },
        );
        reg.register(
            "explore",
            "bounded exhaustive DFS over the schedule tree (serial seeds visit it in order)",
            "explore:depth=6,crashes=0",
            |key| {
                let shared = SharedExplorer::from_parsed(key)?;
                Ok(Box::new(move |_, _| Box::new(shared.adversary())))
            },
        );
        reg.register(
            "fuzz",
            "coverage-guided schedule fuzzer (mutates corpus tapes, keeps novel interleavings)",
            "fuzz:rounds=64,strength=250",
            |key| {
                let shared = SharedFuzzer::from_parsed(key)?;
                Ok(Box::new(move |n, seed| Box::new(shared.adversary(n, seed))))
            },
        );
        reg
    }

    /// Registers `name` with a one-line `summary`, an `example` key, and
    /// a factory that validates a parsed key and returns a per-run
    /// builder. Re-registering a name replaces the entry.
    pub fn register(
        &mut self,
        name: &str,
        summary: &'static str,
        example: &'static str,
        factory: impl Fn(&ParsedKey) -> Result<AdversaryBuilder, String> + Send + Sync + 'static,
    ) {
        self.entries
            .insert(name.to_string(), Entry { factory: Arc::new(factory), summary, example });
    }

    /// Validates `key` and returns its per-run builder.
    ///
    /// # Errors
    /// Returns a message on an unknown name or bad parameters.
    pub fn prepare(&self, key: &str) -> Result<AdversaryBuilder, String> {
        let parsed = ParsedKey::parse(key)?;
        let entry = self.entries.get(&parsed.name).ok_or_else(|| {
            format!("unknown adversary `{}` (registered: {})", parsed.name, self.keys().join(", "))
        })?;
        (entry.factory)(&parsed)
    }

    /// Builds one adversary for a run at size `n` with `seed`.
    ///
    /// # Errors
    /// Same conditions as [`AdversaryRegistry::prepare`].
    pub fn build(&self, key: &str, n: usize, seed: u64) -> Result<Box<dyn Adversary>, String> {
        Ok(self.prepare(key)?(n, seed))
    }

    /// Registered names, sorted.
    pub fn keys(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// `(name, summary, example)` rows for `--list`-style output.
    pub fn entries(&self) -> Vec<(&str, &'static str, &'static str)> {
        self.entries.iter().map(|(k, e)| (k.as_str(), e.summary, e.example)).collect()
    }
}

/// The process-wide standard registry (built once, immutable).
pub fn standard() -> &'static AdversaryRegistry {
    static STANDARD: OnceLock<AdversaryRegistry> = OnceLock::new();
    STANDARD.get_or_init(AdversaryRegistry::with_standard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{Decision, ViewFixture};
    use crate::ids::Pid;

    #[test]
    fn parse_key_grammar() {
        let k = ParsedKey::parse("crash:p=200,cap=25").unwrap();
        assert_eq!(k.name, "crash");
        assert_eq!(k.get::<u32>("p", 0).unwrap(), 200);
        assert_eq!(k.get::<u32>("cap", 0).unwrap(), 25);
        assert_eq!(k.get::<u32>("missing", 7).unwrap(), 7);
        assert_eq!(ParsedKey::parse("fair").unwrap().name, "fair");
        assert!(ParsedKey::parse("").is_err());
        assert!(ParsedKey::parse(":p=1").is_err());
        assert!(ParsedKey::parse("crash:p").is_err());
        assert!(ParsedKey::parse("crash:p=x").unwrap().get::<u32>("p", 0).is_err());
    }

    #[test]
    fn check_known_rejects_typos() {
        let k = ParsedKey::parse("crash:P=20").unwrap();
        assert!(k.check_known(&["p", "cap"]).is_err());
        assert!(k.check_known(&["P"]).is_ok());
    }

    #[test]
    fn standard_names_build() {
        for key in [
            "fair",
            "random",
            "collisions",
            "stall",
            "crash",
            "crash:p=200,cap=25",
            "lookahead",
            "lookahead:k=3",
            "bursty",
            "bursty:len=2,gap=7",
            "diurnal",
            "diurnal:period=16",
            "victim",
            "victim:pid=5",
            "explore:depth=4",
            "explore:depth=3,crashes=1",
            "fuzz:rounds=8,strength=500",
        ] {
            let adv = standard().build(key, 16, 3).unwrap();
            assert!(!adv.name().is_empty(), "{key}");
        }
    }

    #[test]
    fn unknown_name_and_params_error() {
        assert!(standard().build("livelock", 8, 0).is_err());
        assert!(standard().build("fair:x=1", 8, 0).is_err());
        assert!(standard().build("crash:q=1", 8, 0).is_err());
        assert!(standard().build("crash:p=2000", 8, 0).is_err());
        assert!(standard().build("explore:depth=0", 8, 0).is_err());
        assert!(standard().build("explore:d=3", 8, 0).is_err());
        assert!(standard().build("fuzz:strength=1500", 8, 0).is_err());
        assert!(standard().build("fuzz:rounds=0", 8, 0).is_err());
        assert_eq!(
            standard().build("lookahead:k=0", 8, 0).err().unwrap(),
            "lookahead needs k >= 1, got 0"
        );
        assert_eq!(
            standard().build("bursty:len=0", 8, 0).err().unwrap(),
            "bursty needs len >= 1, got 0"
        );
        assert_eq!(
            standard().build("diurnal:period=1", 8, 0).err().unwrap(),
            "diurnal needs period >= 2, got 1"
        );
        assert!(standard().build("victim:p=0", 8, 0).is_err());
        assert!(standard().build("lookahead:k=x", 8, 0).is_err());
    }

    #[test]
    fn registered_entries_listed() {
        let keys = standard().keys();
        assert_eq!(
            keys,
            vec![
                "bursty",
                "collisions",
                "crash",
                "diurnal",
                "explore",
                "fair",
                "fuzz",
                "lookahead",
                "random",
                "stall",
                "victim",
            ]
        );
        assert_eq!(standard().entries().len(), 11);
    }

    /// A prepared `explore` builder shares one DFS across its builds —
    /// serial seeds enumerate distinct schedules, and a fresh `prepare`
    /// starts the walk over from the first schedule.
    #[test]
    fn prepared_explore_builder_walks_the_schedule_tree() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 2]);
        let first_grant = |adv: &mut Box<dyn Adversary>| match adv.decide(&fx.view()) {
            Decision::Grant(p) => p,
            d => panic!("unexpected {d:?}"),
        };
        let builder = standard().prepare("explore:depth=2").unwrap();
        let mut first = builder(2, 0);
        assert_eq!(
            first_grant(&mut first),
            Pid::new(0),
            "first schedule starts at the root choice"
        );
        drop(first); // merges the trace, advancing the DFS
        let mut second = builder(2, 1);
        assert_eq!(
            first_grant(&mut second),
            Pid::new(1),
            "second schedule takes the sibling branch"
        );
        // A fresh prepare is a fresh search.
        let builder2 = standard().prepare("explore:depth=2").unwrap();
        assert_eq!(first_grant(&mut builder2(2, 0)), Pid::new(0));
    }

    #[test]
    fn crash_key_matches_manual_construction() {
        // The registry and a hand-built CrashAdversary must make the same
        // decisions given the same seed — single source of truth.
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Tas { array: 0, index: 0 }); 8]);
        let mut from_key = standard().build("crash:p=500,cap=50", 8, 9).unwrap();
        let mut manual = CrashAdversary::new(FairAdversary::default(), 0.5, 4, 9);
        for _ in 0..32 {
            let a = from_key.decide(&fx.view());
            let b = manual.decide(&fx.view());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn stall_prefers_non_winning_kinds() {
        let fx = ViewFixture::new(crate::entity_vec![
            Some(Access::Tas { array: 0, index: 0 }),
            Some(Access::Read { array: 0, index: 0 }),
        ]);
        let mut adv = standard().build("stall", 2, 0).unwrap();
        assert_eq!(adv.decide(&fx.view()), Decision::Grant(Pid::new(1)));
    }
}
