//! A vendored mini-loom: exhaustive interleaving checking for the
//! lock-free core.
//!
//! The schedule-space explorer ([`crate::explore`]) quantifies over all
//! *protocol-level* schedules, but below it sit two lock-free
//! primitives — `ConcurrentTauRegister`'s one-CAS bitmap and
//! [`AtomicTasArray`](rr_shmem::tas::AtomicTasArray)'s fetch-or words —
//! whose correctness claims live at the *atomic-instruction* level.
//! This module checks them there:
//!
//! * [`TracedWord`] implements
//!   [`AtomicWord`], so the production
//!   structs instantiate with it unchanged (`AtomicTasArray<TracedWord>`,
//!   `ConcurrentTauRegister<TracedWord>`). Every load/store/CAS/fetch-or
//!   becomes a **visibility event**: the calling thread parks until the
//!   model scheduler grants exactly that operation.
//! * [`check`] runs a scenario (a set of closures over shared traced
//!   state plus an outcome checker) under **every** interleaving of its
//!   atomic operations, enumerating schedules with the same
//!   [`Odometer`] DFS as the schedule explorer, pruned by DPOR-style
//!   *sleep sets*: after a branch explores thread `t`, `t` sleeps in
//!   the sibling subtrees until some dependent operation (same atomic,
//!   at least one write) executes. Sleep sets prune only re-orderings
//!   of independent (commuting) operations, so every Mazurkiewicz trace
//!   — and hence every distinct outcome — is still visited.
//! * A failing interleaving (checker rejection or a panic inside a
//!   model thread) is minimized across the whole bounded search —
//!   fewest context switches, then fewest events — and rendered by
//!   [`ModelTrace::to_text`] in the same compact one-token-per-step
//!   spirit as [`Tape::to_text`](crate::replay::Tape::to_text).
//!
//! # Scope and bounds
//!
//! The model is **sequentially consistent**: it explores all
//! interleavings of whole atomic operations, not weak-memory
//! reorderings. For this workspace that is the right contract — every
//! checked primitive synchronizes exclusively through `Acquire`/
//! `Release`/`AcqRel` RMWs on the traced words themselves, and claims
//! (linearizability against a sequential oracle) are interleaving
//! properties. Threads must be lock-free and finite: a model thread may
//! only block inside a traced operation, and the explorer re-executes
//! the scenario once per schedule, so scenarios must stay small (2–4
//! threads, a handful of events each — exactly the bounded regime where
//! exhaustive certificates are meaningful). Spurious CAS-weak failure
//! is not modelled: `TracedWord::compare_exchange_weak` fails only on
//! value mismatch, which keeps the tree finite and matches every
//! caller's retry loop semantics.

use crate::explore::Odometer;
use rr_shmem::atomics::AtomicWord;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};

/// Model-checked alias for the shim, mirroring `std::sync::atomic`
/// naming: `model::AtomicU64` is the instrumented drop-in for the
/// production word.
pub type AtomicU64 = TracedWord;

/// What kind of visibility event an operation is, for dependence
/// analysis: two events conflict iff they touch the same atomic and at
/// least one of them writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Atomic read-modify-write (CAS, fetch-or, fetch-add).
    Rmw,
}

/// A pending or executed atomic operation on one traced word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    atomic: usize,
    kind: OpKind,
}

impl Op {
    /// Dependence in the DPOR sense: same atomic, not both loads.
    fn depends(self, other: Op) -> bool {
        self.atomic == other.atomic && !(self.kind == OpKind::Load && other.kind == OpKind::Load)
    }
}

/// One executed visibility event, for trace rendering.
#[derive(Debug, Clone)]
pub struct Event {
    /// Model thread index that executed the operation.
    pub thread: usize,
    /// Traced-word index (creation order within the scenario).
    pub atomic: usize,
    /// Rendered operation, e.g. `load=3` or `cas 0->1`.
    pub label: String,
}

/// A minimal failing interleaving with the reason it fails.
#[derive(Debug, Clone)]
pub struct ModelTrace {
    /// The events of the failing execution, in schedule order.
    pub events: Vec<Event>,
    /// Checker rejection message or thread panic payload.
    pub reason: String,
}

impl ModelTrace {
    /// Number of scheduler context switches in the event sequence.
    pub fn context_switches(&self) -> usize {
        self.events.windows(2).filter(|w| w[0].thread != w[1].thread).count()
    }

    /// Compact rendering, one token per event, space-joined — the
    /// interleaving-level sibling of `Tape::to_text`:
    /// `t0:a0.cas 0->1 t1:a0.load=1 …`.
    pub fn to_text(&self) -> String {
        self.events
            .iter()
            .map(|e| format!("t{}:a{}.{}", e.thread, e.atomic, e.label))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// What a bounded exhaustive interleaving search found.
#[derive(Debug)]
pub struct ModelReport {
    /// Distinct interleavings executed and checked (one representative
    /// per Mazurkiewicz trace; sleep-set-pruned duplicates excluded).
    pub interleavings: u64,
    /// Redundant executions cut short by sleep-set pruning.
    pub pruned: u64,
    /// Whether the whole interleaving tree was visited (false only when
    /// the `limit` was hit).
    pub exhausted: bool,
    /// Interleavings whose outcome failed the checker (or panicked).
    pub failures: u64,
    /// The minimal failing trace over the whole search, if any.
    pub counterexample: Option<ModelTrace>,
}

impl ModelReport {
    /// True when every explored interleaving passed the checker.
    pub fn passed(&self) -> bool {
        self.failures == 0
    }
}

/// One scenario execution: the model threads to interleave and the
/// outcome checker to run once they all finish.
///
/// Shared state is whatever the closures capture — typically `Arc`
/// clones of structs instantiated over [`TracedWord`] inside the
/// scenario builder passed to [`check`].
pub struct ModelRun<R> {
    threads: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
    check: CheckFn<R>,
}

/// The outcome checker a [`ModelRun`] carries: per-thread results in,
/// `Err(reason)` out on a non-linearizable (or otherwise wrong) outcome.
type CheckFn<R> = Box<dyn FnOnce(&[R]) -> Result<(), String>>;

impl<R> ModelRun<R> {
    /// A scenario over `threads`, validated by `check` against the
    /// per-thread results (indexed by thread) after all threads finish.
    ///
    /// # Panics
    /// Panics on zero threads or more than [`MAX_THREADS`].
    pub fn new(
        threads: Vec<Box<dyn FnOnce() -> R + Send + 'static>>,
        check: impl FnOnce(&[R]) -> Result<(), String> + 'static,
    ) -> Self {
        assert!(!threads.is_empty(), "model run needs at least one thread");
        assert!(
            threads.len() <= MAX_THREADS,
            "model run capped at {MAX_THREADS} threads (got {})",
            threads.len()
        );
        Self { threads, check: Box::new(check) }
    }
}

/// Hard cap on model threads — sleep and enabled sets are word-wide
/// bitmasks, and exhaustive exploration beyond a handful of threads is
/// meaningless anyway.
pub const MAX_THREADS: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    /// Executing thread-local code (or not started yet).
    Running,
    /// Parked at an atomic op, waiting for a grant.
    Pending(Op),
    /// Granted; will perform its op and go back to Running.
    Granted,
    /// Closure returned (or panicked).
    Finished,
}

#[derive(Debug)]
struct ExecInner {
    states: Vec<ThreadState>,
    events: Vec<Event>,
    atomics: usize,
}

/// Shared scheduler state for one execution: the parent grants one
/// pending operation at a time; threads park on the condvar.
#[derive(Debug)]
struct ExecState {
    inner: Mutex<ExecInner>,
    cv: Condvar,
}

impl ExecState {
    fn new(threads: usize) -> Self {
        Self {
            inner: Mutex::new(ExecInner {
                states: vec![ThreadState::Running; threads],
                events: Vec::new(),
                atomics: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

/// The ambient model context of the current OS thread: which execution
/// it belongs to and which model thread it is (`None` for the
/// scheduler's own thread, whose accesses apply directly).
#[derive(Clone)]
struct Ctx {
    exec: Arc<ExecState>,
    tid: Option<usize>,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Sets the thread-local context for the duration of the guard.
struct CtxGuard;

impl CtxGuard {
    fn set(ctx: Ctx) -> Self {
        CURRENT.with(|c| *c.borrow_mut() = Some(ctx));
        CtxGuard
    }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

/// The instrumented atomic word: a drop-in
/// [`AtomicWord`] whose every operation
/// is a schedulable visibility event.
///
/// Created inside a [`check`] scenario builder it registers with the
/// current execution and parks the calling model thread at each
/// operation; created (or used) outside any model context — e.g. by the
/// outcome checker after the threads joined — operations apply
/// directly. Values live behind a `Mutex<u64>` (never contended: the
/// scheduler admits one thread at a time), keeping the whole model
/// checker `forbid(unsafe_code)`-clean.
#[derive(Debug)]
pub struct TracedWord {
    id: usize,
    cell: Mutex<u64>,
}

impl TracedWord {
    fn op(&self, kind: OpKind, apply: impl FnOnce(&mut u64) -> String) -> u64 {
        let scheduled = current_ctx().and_then(|ctx| ctx.tid.map(|tid| (ctx.exec, tid)));
        match scheduled {
            Some((exec, tid)) => {
                let op = Op { atomic: self.id, kind };
                // Park until the scheduler grants exactly this op.
                {
                    let mut g = exec.inner.lock().expect("model lock");
                    g.states[tid] = ThreadState::Pending(op);
                    exec.cv.notify_all();
                    while g.states[tid] != ThreadState::Granted {
                        g = exec.cv.wait(g).expect("model lock");
                    }
                    g.states[tid] = ThreadState::Running;
                }
                // Granted: this is the only admitted thread until it
                // parks again, so the operation is atomic by schedule.
                let mut v = self.cell.lock().expect("model cell");
                let before = *v;
                let label = apply(&mut v);
                drop(v);
                let mut g = exec.inner.lock().expect("model lock");
                g.events.push(Event { thread: tid, atomic: self.id, label });
                before
            }
            None => {
                let mut v = self.cell.lock().expect("model cell");
                let before = *v;
                apply(&mut v);
                before
            }
        }
    }
}

impl Default for TracedWord {
    fn default() -> Self {
        <Self as AtomicWord>::new(0)
    }
}

impl AtomicWord for TracedWord {
    fn new(value: u64) -> Self {
        let id = match current_ctx() {
            Some(ctx) => {
                let mut g = ctx.exec.inner.lock().expect("model lock");
                let id = g.atomics;
                g.atomics += 1;
                id
            }
            None => usize::MAX,
        };
        Self { id, cell: Mutex::new(value) }
    }

    fn load(&self, _order: Ordering) -> u64 {
        self.op(OpKind::Load, |v| format!("load={v}"))
    }

    fn store(&self, value: u64, _order: Ordering) {
        self.op(OpKind::Store, |v| {
            *v = value;
            format!("store={value}")
        });
    }

    fn compare_exchange_weak(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        let before = self.op(OpKind::Rmw, |v| {
            if *v == current {
                *v = new;
                format!("cas {current}->{new}")
            } else {
                format!("cas!{current} saw={v}")
            }
        });
        if before == current {
            Ok(before)
        } else {
            Err(before)
        }
    }

    fn fetch_or(&self, value: u64, _order: Ordering) -> u64 {
        self.op(OpKind::Rmw, |v| {
            *v |= value;
            format!("or {value:#x}->{v:#x}")
        })
    }

    fn fetch_add(&self, value: u64, _order: Ordering) -> u64 {
        self.op(OpKind::Rmw, |v| {
            *v = v.wrapping_add(value);
            format!("add {value}->{v}")
        })
    }

    fn unsync_mut(&mut self) -> &mut u64 {
        self.cell.get_mut().expect("model cell")
    }
}

/// Per-execution outcome fed back to the explorer.
struct ExecOutcome {
    trace: Vec<(u32, u32)>,
    events: Vec<Event>,
    pruned: bool,
    failure: Option<String>,
}

/// Runs one execution of `run` under the digit `prefix`, with sleep-set
/// bookkeeping. Returns the branch trace (for the odometer), the event
/// log, and the failure reason if any.
fn execute<R: Send + 'static>(
    run: ModelRun<R>,
    exec: Arc<ExecState>,
    prefix: &[usize],
) -> ExecOutcome {
    let n = run.threads.len();
    let handles: Vec<_> = run
        .threads
        .into_iter()
        .enumerate()
        .map(|(tid, f)| {
            let exec = Arc::clone(&exec);
            std::thread::spawn(move || {
                let _guard = CtxGuard::set(Ctx { exec: Arc::clone(&exec), tid: Some(tid) });
                let result = catch_unwind(AssertUnwindSafe(f));
                let mut g = exec.inner.lock().expect("model lock");
                g.states[tid] = ThreadState::Finished;
                exec.cv.notify_all();
                drop(g);
                result
            })
        })
        .collect();

    let mut trace: Vec<(u32, u32)> = Vec::new();
    let mut sleep: u16 = 0; // bit per sleeping model thread
    let mut pruned = false;
    let mut at = 0usize;
    loop {
        // Wait until every thread is parked at an op or finished.
        let (enabled, pending): (u16, Vec<Option<Op>>) = {
            let mut g = exec.inner.lock().expect("model lock");
            loop {
                let quiescent = g
                    .states
                    .iter()
                    .all(|s| matches!(s, ThreadState::Pending(_) | ThreadState::Finished));
                if quiescent {
                    break;
                }
                g = exec.cv.wait(g).expect("model lock");
            }
            let mut enabled = 0u16;
            let pending = g
                .states
                .iter()
                .enumerate()
                .map(|(i, s)| match s {
                    ThreadState::Pending(op) => {
                        enabled |= 1 << i;
                        Some(*op)
                    }
                    _ => None,
                })
                .collect();
            (enabled, pending)
        };
        if enabled == 0 {
            break; // all finished
        }

        let chosen = if pruned {
            // Redundant subtree: drain canonically without branching.
            enabled.trailing_zeros() as usize
        } else {
            let explorable: Vec<usize> =
                (0..n).filter(|&t| enabled & (1 << t) != 0 && sleep & (1 << t) == 0).collect();
            if explorable.is_empty() {
                // Every enabled thread sleeps: all continuations are
                // re-orderings already covered in sibling subtrees.
                pruned = true;
                enabled.trailing_zeros() as usize
            } else {
                let digit = prefix.get(at).copied().unwrap_or(0);
                assert!(
                    digit < explorable.len(),
                    "interleaving tree changed shape at decision {at}: digit {digit} of {} \
                     choices (model scenarios must be deterministic)",
                    explorable.len()
                );
                trace.push((digit as u32, explorable.len() as u32));
                at += 1;
                let chosen = explorable[digit];
                // Sleep-set maintenance: earlier siblings at this node
                // go to sleep in this subtree; executing a dependent op
                // wakes a sleeper.
                for &t in &explorable[..digit] {
                    sleep |= 1 << t;
                }
                let chosen_op = pending[chosen].expect("enabled implies pending");
                for (t, p) in pending.iter().enumerate().take(n) {
                    if sleep & (1 << t) != 0 {
                        let op = p.expect("sleeping implies pending");
                        if op.depends(chosen_op) {
                            sleep &= !(1 << t);
                        }
                    }
                }
                chosen
            }
        };

        let mut g = exec.inner.lock().expect("model lock");
        g.states[chosen] = ThreadState::Granted;
        exec.cv.notify_all();
    }

    let mut results = Vec::with_capacity(n);
    let mut failure = None;
    for (tid, h) in handles.into_iter().enumerate() {
        match h.join().expect("model thread") {
            Ok(r) => results.push(r),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                failure.get_or_insert(format!("thread {tid} panicked: {msg}"));
            }
        }
    }
    if failure.is_none() && results.len() == n {
        failure = (run.check)(&results).err();
    }
    let events = std::mem::take(&mut exec.inner.lock().expect("model lock").events);
    ExecOutcome { trace, events, pruned, failure }
}

/// Exhaustively explores every interleaving of the scenario's atomic
/// operations (up to `limit` executions) and checks each outcome.
///
/// `scenario` is called once per execution and must build the same
/// deterministic [`ModelRun`] every time — fresh traced state, fresh
/// closures; the only varying input is the schedule. The search keeps
/// the **minimal** failing trace (fewest context switches, then fewest
/// events) across all failures rather than stopping at the first.
///
/// ```
/// use rr_sched::model::{check, ModelRun, TracedWord};
/// use rr_shmem::atomics::AtomicWord;
/// use rr_shmem::tas::{AtomicTasArray, TasMemory};
/// use std::sync::Arc;
///
/// // Three contenders TAS the same register: exactly one may win,
/// // under every one of the 3! orderings.
/// let report = check(1_000, || {
///     let arr = Arc::new(AtomicTasArray::<TracedWord>::with_atomics(1));
///     let threads = (0..3)
///         .map(|_| {
///             let arr = Arc::clone(&arr);
///             Box::new(move || arr.tas(0)) as Box<dyn FnOnce() -> bool + Send>
///         })
///         .collect();
///     ModelRun::new(threads, |wins: &[bool]| {
///         let w = wins.iter().filter(|&&b| b).count();
///         if w == 1 { Ok(()) } else { Err(format!("{w} winners")) }
///     })
/// });
/// assert!(report.passed());
/// assert!(report.exhausted);
/// assert_eq!(report.interleavings, 6);
/// ```
pub fn check<R: Send + 'static>(
    limit: u64,
    mut scenario: impl FnMut() -> ModelRun<R>,
) -> ModelReport {
    let mut odo = Odometer::new();
    let mut pruned_total = 0u64;
    let mut counted = 0u64;
    let mut failures = 0u64;
    let mut best: Option<ModelTrace> = None;
    while counted + pruned_total < limit {
        let Some(prefix) = odo.prefix() else { break };
        let prefix = prefix.to_vec();
        let exec = Arc::new(ExecState::new(0));
        // Build the scenario under a schedulerless context so traced
        // words created by the builder get deterministic ids.
        let run = {
            let _guard = CtxGuard::set(Ctx { exec: Arc::clone(&exec), tid: None });
            scenario()
        };
        let n = run.threads.len();
        let atomics = exec.inner.lock().expect("model lock").atomics;
        let exec = Arc::new(ExecState::new(n));
        exec.inner.lock().expect("model lock").atomics = atomics;
        let out = execute(run, exec, &prefix);
        odo.record(&out.trace);
        if out.pruned {
            pruned_total += 1;
            continue;
        }
        counted += 1;
        if let Some(reason) = out.failure {
            failures += 1;
            let candidate = ModelTrace { events: out.events, reason };
            let better = match &best {
                None => true,
                Some(b) => {
                    (candidate.context_switches(), candidate.events.len())
                        < (b.context_switches(), b.events.len())
                }
            };
            if better {
                best = Some(candidate);
            }
        }
    }
    ModelReport {
        interleavings: counted,
        pruned: pruned_total,
        exhausted: odo.exhausted(),
        failures,
        counterexample: best,
    }
}

/// Enumerates all permutations of `0..k` (Heap's algorithm), returning
/// `true` as soon as `ok` accepts one — the building block for
/// linearizability checks: an outcome is linearizable iff **some**
/// sequential order of the completed operations reproduces it against
/// the sequential oracle.
///
/// # Panics
/// Panics when `k > 8` (8! = 40320 is already generous for model-scale
/// histories).
pub fn any_permutation(k: usize, mut ok: impl FnMut(&[usize]) -> bool) -> bool {
    assert!(k <= 8, "permutation check capped at 8 operations (got {k})");
    let mut items: Vec<usize> = (0..k).collect();
    // Heap's algorithm, iterative.
    let mut c = vec![0usize; k];
    if ok(&items) {
        return true;
    }
    let mut i = 0;
    while i < k {
        if c[i] < i {
            if i % 2 == 0 {
                items.swap(0, i);
            } else {
                items.swap(c[i], i);
            }
            if ok(&items) {
                return true;
            }
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_shmem::tas::{AtomicTasArray, TasMemory};

    fn tas_scenario(contenders: usize, slots: usize) -> ModelRun<bool> {
        let arr = Arc::new(AtomicTasArray::<TracedWord>::with_atomics(slots));
        let check_arr = Arc::clone(&arr);
        let threads = (0..contenders)
            .map(|i| {
                let arr = Arc::clone(&arr);
                Box::new(move || arr.tas(i % slots)) as Box<dyn FnOnce() -> bool + Send>
            })
            .collect();
        ModelRun::new(threads, move |wins: &[bool]| {
            let winners = wins.iter().filter(|&&w| w).count();
            if winners == slots.min(wins.len()) && check_arr.count_set() == slots.min(wins.len()) {
                Ok(())
            } else {
                Err(format!("{winners} winners over {slots} slots"))
            }
        })
    }

    #[test]
    fn two_contenders_two_interleavings() {
        let report = check(100, || tas_scenario(2, 1));
        assert!(report.passed(), "{:?}", report.counterexample);
        assert!(report.exhausted);
        // Both ops hit the same word: fully dependent, no pruning.
        assert_eq!(report.interleavings, 2);
        assert_eq!(report.pruned, 0);
    }

    #[test]
    fn independent_ops_prune_to_one_trace() {
        // Two threads TAS *different words* (slots 0 and 64 land in
        // different u64s): the two orders commute, so sleep sets leave
        // a single representative.
        let report = check(100, || {
            let arr = Arc::new(AtomicTasArray::<TracedWord>::with_atomics(65));
            let a = Arc::clone(&arr);
            let b = Arc::clone(&arr);
            ModelRun::new(
                vec![Box::new(move || a.tas(0)), Box::new(move || b.tas(64))],
                |wins: &[bool]| {
                    if wins == [true, true] {
                        Ok(())
                    } else {
                        Err(format!("{wins:?}"))
                    }
                },
            )
        });
        assert!(report.passed(), "{:?}", report.counterexample);
        assert!(report.exhausted);
        assert_eq!(report.interleavings, 1);
        assert_eq!(report.pruned, 1);
    }

    #[test]
    fn limit_stops_exploration() {
        let report = check(1, || tas_scenario(2, 1));
        assert!(!report.exhausted);
        assert_eq!(report.interleavings + report.pruned, 1);
    }

    #[test]
    fn broken_checker_failure_is_minimal_and_rendered() {
        // Deliberately reject everything: the minimal trace must be the
        // zero-context-switch canonical schedule, rendered compactly.
        let report = check(100, || {
            let arr = Arc::new(AtomicTasArray::<TracedWord>::with_atomics(1));
            let a = Arc::clone(&arr);
            let b = Arc::clone(&arr);
            ModelRun::new(
                vec![
                    Box::new(move || a.tas(0)) as Box<dyn FnOnce() -> bool + Send>,
                    Box::new(move || b.tas(0)),
                ],
                |_: &[bool]| Err("always wrong".into()),
            )
        });
        assert_eq!(report.failures, report.interleavings);
        let trace = report.counterexample.expect("failing trace");
        assert_eq!(trace.reason, "always wrong");
        assert_eq!(trace.context_switches(), 1);
        assert_eq!(trace.to_text(), "t0:a0.or 0x1->0x1 t1:a0.or 0x1->0x1");
    }

    #[test]
    fn model_thread_panic_is_a_counterexample() {
        let report = check(100, || {
            ModelRun::new(
                vec![Box::new(|| {
                    let w = TracedWord::new(0);
                    w.store(1, Ordering::SeqCst);
                    panic!("boom");
                }) as Box<dyn FnOnce() + Send>],
                |_: &[()]| Ok(()),
            )
        });
        assert_eq!(report.failures, report.interleavings);
        let trace = report.counterexample.expect("failing trace");
        assert!(trace.reason.contains("thread 0 panicked: boom"), "{}", trace.reason);
    }

    #[test]
    fn permutations_enumerate_exactly() {
        let mut seen = Vec::new();
        assert!(!any_permutation(3, |p| {
            seen.push(p.to_vec());
            false
        }));
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        assert!(any_permutation(3, |p| p == [2, 0, 1]));
    }

    #[test]
    fn traced_word_works_standalone() {
        // Outside any model context every op applies directly.
        let w = TracedWord::new(7);
        assert_eq!(w.load(Ordering::Acquire), 7);
        w.store(3, Ordering::Release);
        assert_eq!(w.fetch_add(2, Ordering::Relaxed), 3);
        assert_eq!(w.fetch_or(8, Ordering::AcqRel), 5);
        assert_eq!(w.compare_exchange_weak(13, 1, Ordering::AcqRel, Ordering::Acquire), Ok(13));
        assert_eq!(w.compare_exchange_weak(13, 1, Ordering::AcqRel, Ordering::Acquire), Err(1));
        let mut w = w;
        assert_eq!(*w.unsync_mut(), 1);
    }
}
