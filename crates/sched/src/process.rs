//! The process abstraction: renaming protocols as polled state machines.
//!
//! The paper charges one *step* per shared-memory access (test-and-set or
//! read of one register / TAS bit). To make that cost model enforceable —
//! and to let an adaptive adversary interleave processes at access
//! granularity — every algorithm in this workspace is a [`Process`] state
//! machine: [`Process::announce`] publishes the next access (performing
//! any coin flips, so the adversary legally sees them), and
//! [`Process::step`] executes exactly that access.
//!
//! One representation, two executors: `rr-sched::virtual_exec` polls
//! processes under an adversary (the paper's model, exact step counts,
//! scales to n = 2²⁰ without threads), and `rr-sched::thread_exec` drives
//! each process on its own OS thread against real atomics (wall-clock
//! benchmarks).

use crate::ids::Pid;
use rr_shmem::Access;

/// Result of executing one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The process needs more steps.
    Continue,
    /// The process acquired this name and halts.
    Done(usize),
    /// The process exhausted its step budget without a name and halts —
    /// the legitimate outcome of the paper's *k-almost-tight* protocols
    /// (Lemmas 6 and 8), whose point is that only `o(n)` processes end
    /// this way.
    GaveUp,
}

/// Shared memory that can serve a *block* of announced
/// [`Access::TauRequest`] steps from one batched τ-register CAS.
///
/// Implemented by workload shared-memory structs (e.g. the tight
/// protocol's `TightShared`) and consumed by the arena's macro-step
/// dispatch: when a contiguous run of granted decisions all announce
/// requests on the same τ-register of the same host object, the
/// executor claims the whole run through [`TauBatchHost::request_block`]
/// (≈ one CAS) and hands each process its outcome via
/// [`Process::step_claimed`]. The block must answer exactly as the same
/// bits fed one at a time in order — the contiguity of the run is what
/// makes a single commit point bit-identical to sequential execution.
pub trait TauBatchHost {
    /// Claims `bits` on τ-register `register` as one linearizable
    /// block, pushing one outcome per entry (in order) onto `wins`.
    fn request_block(&self, register: usize, bits: &[usize], wins: &mut Vec<bool>);
}

/// A renaming participant as a pollable state machine.
///
/// # Contract
/// * `announce` is idempotent until the following `step`: executors may
///   call it repeatedly (e.g. to rebuild an adversary view) and must see
///   the same access. Coin flips happen on the *first* announce after a
///   step, then stick.
/// * `step` performs exactly one shared-memory access — the announced one.
/// * After `Done` is returned, neither method is called again.
pub trait Process: Send {
    /// Publish the next shared-memory access.
    fn announce(&mut self) -> Access;

    /// Execute the announced access.
    fn step(&mut self) -> StepOutcome;

    /// The process id (stable, `0..n`).
    fn pid(&self) -> Pid;

    /// The shared memory backing this process's announced
    /// [`Access::TauRequest`] steps, if the executor may serve them
    /// from a batched [`TauBatchHost::request_block`]. Two processes
    /// are batched together only when both return the *same object*
    /// (compared by address). Default: no batching.
    fn tau_host(&self) -> Option<&dyn TauBatchHost> {
        None
    }

    /// Executes the announced τ-request step with `won` — the outcome
    /// the executor already claimed for this process through
    /// [`TauBatchHost::request_block`]. Must apply exactly the state
    /// transition [`Process::step`] would after an identical
    /// per-request outcome, without touching the register again.
    ///
    /// Only called when [`Process::tau_host`] returned a host and the
    /// announced access was a τ-request; the default is therefore
    /// unreachable.
    fn step_claimed(&mut self, _won: bool) -> StepOutcome {
        unreachable!("step_claimed on a process without a tau_host")
    }

    /// Raw RNG draws made so far, if this process draws randomness —
    /// the per-process draw-schedule fingerprint the draws-per-step
    /// goldens sum and pin. Units are backend-defined (see
    /// `ProcessRng::words_drawn`). Deterministic processes return
    /// `None`.
    fn rng_words(&self) -> Option<u64> {
        None
    }
}

/// Boxed processes delegate — the compatibility shim that lets the flat
/// arena core ([`crate::dense::Arena`]) drive `Vec<Box<dyn Process>>`
/// workloads with the same loop that runs monomorphized slices.
impl<P: Process + ?Sized> Process for Box<P> {
    fn announce(&mut self) -> Access {
        (**self).announce()
    }

    fn step(&mut self) -> StepOutcome {
        (**self).step()
    }

    fn pid(&self) -> Pid {
        (**self).pid()
    }

    fn tau_host(&self) -> Option<&dyn TauBatchHost> {
        (**self).tau_host()
    }

    fn step_claimed(&mut self, won: bool) -> StepOutcome {
        (**self).step_claimed(won)
    }

    fn rng_words(&self) -> Option<u64> {
        (**self).rng_words()
    }
}

/// Drives one process to completion without any scheduling, returning
/// `(name_or_gave_up, steps_taken)`. Test helper and building block for
/// the free-running executor.
///
/// # Panics
/// Panics if the process exceeds `max_steps` (livelock guard).
pub fn run_to_completion<P: Process + ?Sized>(p: &mut P, max_steps: u64) -> (Option<usize>, u64) {
    let mut steps = 0;
    loop {
        let _ = p.announce();
        steps += 1;
        assert!(steps <= max_steps, "process {} exceeded {max_steps} steps", p.pid());
        match p.step() {
            StepOutcome::Continue => {}
            StepOutcome::Done(name) => return (Some(name), steps),
            StepOutcome::GaveUp => return (None, steps),
        }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use rr_shmem::tas::TasMemory;

    /// A trivially simple process: scans registers left to right until it
    /// wins one. Used to exercise the executors before the real
    /// algorithms exist.
    pub struct ScanProcess<M: TasMemory> {
        pub pid: usize,
        pub mem: std::sync::Arc<M>,
        pub cursor: usize,
    }

    impl<M: TasMemory + Send + Sync> Process for ScanProcess<M> {
        fn announce(&mut self) -> Access {
            Access::Tas { array: 0, index: self.cursor }
        }

        fn step(&mut self) -> StepOutcome {
            let idx = self.cursor;
            self.cursor += 1;
            if self.mem.tas(idx) {
                StepOutcome::Done(idx)
            } else {
                StepOutcome::Continue
            }
        }

        fn pid(&self) -> Pid {
            Pid::new(self.pid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::ScanProcess;
    use super::*;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    #[test]
    fn run_to_completion_counts_steps() {
        let mem = Arc::new(AtomicTasArray::new(8));
        mem.tas(0);
        mem.tas(1);
        let mut p = ScanProcess { pid: 0, mem, cursor: 0 };
        let (name, steps) = run_to_completion(&mut p, 100);
        assert_eq!(name, Some(2));
        assert_eq!(steps, 3);
    }

    #[test]
    fn gave_up_is_reported() {
        struct Quitter;
        impl Process for Quitter {
            fn announce(&mut self) -> Access {
                Access::Local
            }
            fn step(&mut self) -> StepOutcome {
                StepOutcome::GaveUp
            }
            fn pid(&self) -> Pid {
                Pid::new(0)
            }
        }
        let (name, steps) = run_to_completion(&mut Quitter, 10);
        assert_eq!(name, None);
        assert_eq!(steps, 1);
    }

    use rr_shmem::Access;

    #[test]
    #[should_panic(expected = "exceeded")]
    fn livelock_guard_fires() {
        // A scan over an exhausted array walks off the end — the guard
        // must fire before the out-of-bounds panic can be mistaken for
        // normal behaviour... except tas() panics first; so use max 1.
        let mem = Arc::new(AtomicTasArray::new(4));
        mem.tas(0);
        mem.tas(1);
        mem.tas(2);
        let mut p = ScanProcess { pid: 0, mem, cursor: 0 };
        run_to_completion(&mut p, 1);
    }

    use rr_shmem::tas::TasMemory;
}
