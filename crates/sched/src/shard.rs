//! Sharded entity-keyed arenas — the execution core behind every backend.
//!
//! Two layers live here:
//!
//! 1. [`Arena`] — the flat struct-of-arrays execution loop (moved from
//!    `crate::dense`, which remains as a re-export shim). All per-process
//!    tables are [`EntityVec`]s keyed by typed [`Pid`]s; raw `usize`
//!    indexing into pid space no longer type-checks.
//! 2. [`run_sharded`] — the multi-arena engine: the pid space is
//!    partitioned round-robin by a [`ShardMap`] into `S` shards, each
//!    shard drives its own sub-instance in its own [`Arena`] on its own
//!    thread, and the shards are *coupled* at adversary-decision
//!    boundaries through a deterministic round ledger
//!    ([`ShardCoupler`]).
//!
//! # Determinism of the sharded execution
//!
//! Cross-shard information flows through exactly one channel: every
//! `every` decisions a shard publishes its local named-count to the
//! ledger and reads the other shards' counts *for that same round index*
//! (a finished shard's final count stands in for rounds it never
//! reached). By induction on the round index, everything a shard
//! publishes at boundary `k` is a pure function of the per-shard seeds
//! and of values published at boundaries `< k` — OS thread scheduling
//! can reorder the *waiting*, never the *values*. The merged outcome is
//! therefore a pure function of `(seed, S)`, which the determinism suite
//! in `rr-bench` pins across `RR_RUNNER_THREADS` settings, and
//! `backend_equiv` pins the `S = 1` case bit-identical to the serial
//! dense backend.
//!
//! **Scheduling semantics of [`Arena::run`] are bit-identical to the
//! historical executor by construction** — same announce cadence, and a
//! [`RunView`] served from word-packed state
//! ([`crate::bits::StatusBitmap`]) whose observable surface reproduces
//! the historical tombstoned `active` vector exactly: the
//! [`crate::bits::SlotSnapshot`] roster is recaptured under the same
//! lazy-compaction threshold, so `slot_count()`/`slot(i)` return the
//! same bytes `active.len()`/`active[i]` did, and word-at-a-time
//! runnable scans enumerate the same sorted runnable set the old
//! tombstone-filtering walks did. Adversary decisions are applied in
//! *macro-step batches* ([`Adversary::decide_batch`]): strategies that
//! can commit to several grants from one view (fair) hand the executor
//! a straight-line run of process segments to execute without
//! re-entering the dispatch loop, and every other strategy defaults to
//! one decision per view. An adversary cannot tell which backend is
//! driving it, so step counts, crash patterns and RNG consumption all
//! reproduce exactly.

use crate::adversary::{Adversary, Decision, RunView};
use crate::bits::{SlotSnapshot, Status, StatusBitmap};
use crate::ids::{EntityVec, LocalIdx, Pid, ShardId, ShardMap};
use crate::process::{Process, StepOutcome, TauBatchHost};
use crate::virtual_exec::{ExecError, RunOutcome};
use rr_shmem::Access;
use std::sync::{Condvar, Mutex};

/// Decisions requested from the adversary per dispatch — one runnable
/// word's worth. Strategies that cannot batch ignore it (their default
/// [`Adversary::decide_batch`] emits exactly one decision), so this is a
/// ceiling on the macro-step length, not part of the schedule semantics.
const DECISION_BATCH: usize = 32;

/// Reusable execution scratch: the allocation-free (after warm-up) arena
/// every backend's runs execute in.
///
/// Create one per worker thread and feed it run after run — buffers grow
/// to the largest n seen and are reused verbatim afterwards:
///
/// ```
/// use rr_sched::adversary::FairAdversary;
/// use rr_sched::ids::Pid;
/// use rr_sched::process::{Process, StepOutcome};
/// use rr_sched::shard::Arena;
/// use rr_shmem::Access;
///
/// struct Count { pid: usize, left: usize }
/// impl Process for Count {
///     fn announce(&mut self) -> Access { Access::Local }
///     fn step(&mut self) -> StepOutcome {
///         if self.left == 0 { StepOutcome::Done(self.pid) }
///         else { self.left -= 1; StepOutcome::Continue }
///     }
///     fn pid(&self) -> Pid { Pid::new(self.pid) }
/// }
///
/// let mut arena = Arena::new();
/// for _seed in 0..3 {
///     // A plain Vec of concrete processes: static dispatch, no boxing.
///     let mut procs: Vec<Count> = (0..4).map(|pid| Count { pid, left: pid }).collect();
///     let out = arena.run(&mut procs, &mut FairAdversary::default(), 1000).unwrap();
///     out.verify_renaming(4).unwrap();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Arena {
    announced: EntityVec<Pid, Option<Access>>,
    status: StatusBitmap,
    slots: SlotSnapshot,
    steps: EntityVec<Pid, u64>,
    names: EntityVec<Pid, usize>,
    /// Per-batch-position outcomes pre-claimed through a
    /// [`TauBatchHost::request_block`]; `None` = execute live.
    claimed: Vec<Option<bool>>,
    /// Scratch for the current candidate run (see `try_claim_run`).
    block_pids: Vec<Pid>,
    block_bits: Vec<usize>,
    block_wins: Vec<bool>,
    /// Batched-CAS accounting since construction: block claims issued
    /// and announced τ-request steps served from them.
    block_claims: u64,
    block_steps: u64,
}

impl Arena {
    /// An empty arena; buffers are sized lazily by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.announced.clear();
        self.announced.resize(n, None);
        self.status.reset(n);
        // Initial roster = all n pids, like the historical `active`
        // vector's `0..n` fill.
        self.slots.capture(&self.status);
        self.steps.clear();
        self.steps.resize(n, 0);
        self.names.clear();
        self.names.resize(n, usize::MAX);
    }

    /// Runs `processes` to completion under `adversary` — the shared
    /// execution loop behind every backend.
    ///
    /// `processes[i]` must be the state machine with `pid() == i` (every
    /// workload factory in this workspace builds them that way). The
    /// outcome vectors are freshly allocated (they escape the arena); all
    /// scratch is reused across calls.
    ///
    /// # Errors
    /// [`ExecError::StepBudgetExceeded`] past `step_budget` total steps,
    /// [`ExecError::BadDecision`] if the adversary addresses a pid that
    /// is not runnable.
    ///
    /// # Panics
    /// Panics if some `processes[i].pid() != i`.
    pub fn run<P, A>(
        &mut self,
        processes: &mut [P],
        adversary: &mut A,
        step_budget: u64,
    ) -> Result<RunOutcome, ExecError>
    where
        P: Process,
        A: Adversary + ?Sized,
    {
        let n = processes.len();
        self.reset(n);
        let mut named = 0usize;
        let mut decisions = 0u64;
        let mut total_steps = 0u64;

        // Initial announcements (and the pid-layout contract check).
        for (i, p) in processes.iter_mut().enumerate() {
            assert_eq!(p.pid().index(), i, "arena requires processes[i].pid() == i");
            self.announced[Pid::new(i)] = Some(p.announce());
        }

        // The slot roster keeps stale entries: halted pids stay in the
        // captured snapshot until more than half the slots are dead,
        // then one O(n/64) recapture reclaims them. The `RunView`
        // contract reflects this: `slots` is a sorted superset of the
        // runnable pids; the status bitmap (≡ `announced[pid].is_some()`)
        // is the ground truth. The recapture threshold is observable
        // (RandomAdversary rejection-samples over the roster), so it
        // must never drift from the historical executor's tombstone
        // compaction policy. The trigger is checked per *batch*, which
        // matches the historical per-decision check because every
        // strategy that reads the roster batches one decision per view.
        //
        // Each batch is a macro-step: the adversary commits to up to
        // `DECISION_BATCH` decisions from one view, and the straight-line
        // process segments run back to back without re-entering the
        // dispatch loop.
        let mut live = n;
        let mut batch: Vec<Decision> = Vec::with_capacity(DECISION_BATCH);
        while live > 0 {
            if self.slots.len() > 2 * live {
                self.slots.capture(&self.status);
            }
            batch.clear();
            {
                let view =
                    RunView::new(&self.status, &self.slots, &self.announced, &self.steps, named);
                adversary.decide_batch(&view, &mut batch, DECISION_BATCH);
            }
            if batch.is_empty() {
                return Err(ExecError::BadDecision { decision: "empty decision batch".into() });
            }
            self.claimed.clear();
            self.claimed.resize(batch.len(), None);
            for (at, &decision) in batch.iter().enumerate() {
                decisions += 1;
                match decision {
                    Decision::Grant(pid) => {
                        if pid.index() >= n || self.announced[pid].is_none() {
                            return Err(ExecError::BadDecision {
                                decision: format!("{decision:?}"),
                            });
                        }
                        self.steps[pid] += 1;
                        total_steps += 1;
                        if total_steps > step_budget {
                            return Err(ExecError::StepBudgetExceeded { budget: step_budget });
                        }
                        if self.claimed[at].is_none() {
                            self.try_claim_run(processes, &batch, at, total_steps, step_budget);
                        }
                        let outcome = match self.claimed[at] {
                            Some(won) => processes[pid.index()].step_claimed(won),
                            None => processes[pid.index()].step(),
                        };
                        match outcome {
                            StepOutcome::Continue => {
                                self.announced[pid] = Some(processes[pid.index()].announce());
                            }
                            StepOutcome::Done(name) => {
                                self.names[pid] = name;
                                self.status.set(pid, Status::Named);
                                named += 1;
                                self.announced[pid] = None;
                                live -= 1;
                            }
                            StepOutcome::GaveUp => {
                                self.status.set(pid, Status::GaveUp);
                                self.announced[pid] = None;
                                live -= 1;
                            }
                        }
                    }
                    Decision::Crash(pid) => {
                        if pid.index() >= n || self.announced[pid].is_none() {
                            return Err(ExecError::BadDecision {
                                decision: format!("{decision:?}"),
                            });
                        }
                        self.status.set(pid, Status::Crashed);
                        self.announced[pid] = None;
                        live -= 1;
                    }
                }
            }
        }

        Ok(self.outcome(decisions))
    }

    /// Macro-step τ-CAS batching: if positions `at..` of `batch` form a
    /// contiguous run of ≥ 2 grants whose announced accesses all
    /// request bits of one τ-register on one shared
    /// [`TauBatchHost`] (same object, compared by address), claims the
    /// whole run with a single
    /// [`request_block`](TauBatchHost::request_block) and stashes the
    /// per-position outcomes in `self.claimed`. Positions the claim
    /// does not cover stay `None` and execute live.
    ///
    /// Bit-identity argument: the lookahead runs at *execution* time of
    /// position `at` — every earlier decision of the batch has already
    /// executed, so the announces it reads are exactly the ones the
    /// sequential loop would execute (a repeated pid breaks the run,
    /// because its later announce is not yet knowable). The run being
    /// contiguous, no other access can observe the register between the
    /// run's steps, so committing them at one linearization point
    /// answers each request exactly as per-step execution would. Runs
    /// that would straddle the step budget are left unclaimed so the
    /// budget error fires at the same step with the same shared state.
    fn try_claim_run<P: Process>(
        &mut self,
        processes: &[P],
        batch: &[Decision],
        at: usize,
        total_steps: u64,
        step_budget: u64,
    ) {
        let first = match batch[at] {
            Decision::Grant(pid) => pid,
            Decision::Crash(_) => return,
        };
        let register = match self.announced[first] {
            Some(Access::TauRequest { register, .. }) => register,
            _ => return,
        };
        let host = match processes[first.index()].tau_host() {
            Some(h) => h,
            None => return,
        };
        let host_addr = host as *const dyn TauBatchHost as *const ();
        self.block_pids.clear();
        self.block_bits.clear();
        for d in &batch[at..] {
            let pid = match *d {
                Decision::Grant(p) => p,
                Decision::Crash(_) => break,
            };
            if pid.index() >= processes.len() || self.block_pids.contains(&pid) {
                break;
            }
            let bit = match self.announced[pid] {
                Some(Access::TauRequest { register: r, bit }) if r == register => bit,
                _ => break,
            };
            let same_host = processes[pid.index()].tau_host().is_some_and(|h| {
                std::ptr::eq(h as *const dyn TauBatchHost as *const (), host_addr)
            });
            if !same_host {
                break;
            }
            self.block_pids.push(pid);
            self.block_bits.push(bit);
        }
        // `total_steps` already counts position `at`; the run adds
        // `len - 1` more steps.
        if self.block_bits.len() < 2
            || total_steps + (self.block_bits.len() as u64 - 1) > step_budget
        {
            return;
        }
        self.block_wins.clear();
        host.request_block(register, &self.block_bits, &mut self.block_wins);
        self.block_claims += 1;
        self.block_steps += self.block_wins.len() as u64;
        for (offset, &won) in self.block_wins.iter().enumerate() {
            self.claimed[at + offset] = Some(won);
        }
    }

    /// `(block CASes issued, τ-request steps they served)` since this
    /// arena was built — the batching-effectiveness numerator/denominator
    /// the backends experiment reports. Zero/zero when no workload
    /// exposed a [`TauBatchHost`].
    pub fn block_stats(&self) -> (u64, u64) {
        (self.block_claims, self.block_steps)
    }

    /// Unpacks the packed bitmap state into the public [`RunOutcome`]
    /// shape.
    fn outcome(&self, decisions: u64) -> RunOutcome {
        let pids = || (0..self.status.len()).map(Pid::new);
        RunOutcome {
            names: pids()
                .map(|p| (self.status.get(p) == Status::Named).then(|| self.names[p]))
                .collect(),
            steps: self.steps.clone(),
            crashed: pids().map(|p| self.status.get(p) == Status::Crashed).collect(),
            gave_up: pids().map(|p| self.status.get(p) == Status::GaveUp).collect(),
            decisions,
        }
    }
}

/// Per-shard seed derivation: shard 0 keeps the run seed unchanged (so a
/// single-shard execution consumes randomness exactly like the serial
/// backends), later shards mix in a golden-ratio stride.
pub fn shard_seed(seed: u64, shard: ShardId) -> u64 {
    if shard.index() == 0 {
        seed
    } else {
        seed ^ (shard.index() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }
}

/// Decisions between coupling rounds — how often each shard publishes to
/// the [`ShardCoupler`] ledger and refreshes its view of the other
/// shards' named counts. Part of the execution semantics (a different
/// cadence is a different schedule), so all backends use this one value.
pub const DEFAULT_COUPLING_EVERY: u64 = 1024;

/// The deterministic round ledger coupling shard executions.
///
/// Every shard publishes its local named-count at boundary `k` *before*
/// waiting for the others' boundary-`k` values (publish-before-wait, so
/// rounds cannot deadlock), and a shard that finishes its run marks
/// itself finished — its final count answers every later round. Values
/// are stored per round: a shard reading round `k` always sees the
/// other shards' counts *at round `k`*, never "whatever they are up to
/// by now", which is what makes the exchange a pure function of the
/// round index.
#[derive(Debug)]
pub struct ShardCoupler {
    state: Mutex<CouplerState>,
    woken: Condvar,
    shards: usize,
}

#[derive(Debug)]
struct CouplerState {
    /// `published[s][k]` — shard `s`'s local named count at boundary `k`.
    published: Vec<Vec<usize>>,
    /// Final named count of each finished shard.
    finished: Vec<Option<usize>>,
}

impl ShardCoupler {
    /// A ledger for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            state: Mutex::new(CouplerState {
                published: vec![Vec::new(); shards],
                finished: vec![None; shards],
            }),
            woken: Condvar::new(),
            shards,
        }
    }

    /// Publishes `local_named` as `shard`'s boundary-`round` value, waits
    /// until every other shard has either published the same round or
    /// finished, and returns the sum of their counts at that round.
    pub fn sync(&self, shard: ShardId, round: usize, local_named: usize) -> usize {
        let mut st = self.state.lock().expect("coupler lock poisoned");
        debug_assert_eq!(
            st.published[shard.index()].len(),
            round,
            "shard {shard} must publish rounds in order"
        );
        st.published[shard.index()].push(local_named);
        self.woken.notify_all();
        let others_ready = |st: &CouplerState| {
            (0..self.shards).all(|s| {
                s == shard.index() || st.published[s].len() > round || st.finished[s].is_some()
            })
        };
        while !others_ready(&st) {
            st = self.woken.wait(st).expect("coupler lock poisoned");
        }
        (0..self.shards)
            .filter(|&s| s != shard.index())
            .map(|s| {
                if st.published[s].len() > round {
                    st.published[s][round]
                } else {
                    st.finished[s].expect("unfinished shard must have published this round")
                }
            })
            .sum()
    }

    /// Marks `shard` finished with `final_named` named processes — the
    /// value that answers every round the shard never reached. Must be
    /// called on *every* exit path (including errors and panics; the
    /// engine uses a drop guard), or waiting shards deadlock.
    fn finish(&self, shard: ShardId, final_named: usize) {
        let mut st = self.state.lock().expect("coupler lock poisoned");
        st.finished[shard.index()] = Some(final_named);
        self.woken.notify_all();
    }
}

/// Ensures [`ShardCoupler::finish`] runs even if the shard body panics
/// or errors, so sibling shards waiting on the ledger always unblock.
struct FinishGuard<'c> {
    coupler: &'c ShardCoupler,
    shard: ShardId,
    done: bool,
}

impl<'c> FinishGuard<'c> {
    fn new(coupler: &'c ShardCoupler, shard: ShardId) -> Self {
        Self { coupler, shard, done: false }
    }

    fn complete(mut self, final_named: usize) {
        self.coupler.finish(self.shard, final_named);
        self.done = true;
    }
}

impl Drop for FinishGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.coupler.finish(self.shard, 0);
        }
    }
}

/// What [`run_sharded`] hands each shard body: its identity plus the
/// hook to couple the shard's adversary to the global ledger.
pub struct ShardContext<'c> {
    coupler: &'c ShardCoupler,
    shard: ShardId,
    map: ShardMap,
    every: u64,
}

impl<'c> ShardContext<'c> {
    /// Which shard this context belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Wraps the shard's adversary so its views carry global named
    /// counts and the global [`ShardMap`], refreshed at each coupling
    /// round. Every shard body must route its adversary through this —
    /// it is the only legal cross-shard channel.
    pub fn couple<A: Adversary>(self, inner: A) -> CoupledAdversary<'c, A> {
        CoupledAdversary {
            inner,
            coupler: self.coupler,
            shard: self.shard,
            map: self.map,
            every: self.every,
            decisions: 0,
            cached_remote: 0,
        }
    }
}

/// Adversary wrapper installed by [`ShardContext::couple`]: before the
/// inner strategy decides, the local view is widened to the global one —
/// `named` becomes local + remote (as of the last coupling round) and
/// `shards` becomes the run's real partition. With `S = 1` the remote
/// count is always zero and the map is [`ShardMap::single`], so the
/// inner adversary sees byte-for-byte the view the serial dense backend
/// would hand it.
pub struct CoupledAdversary<'c, A> {
    inner: A,
    coupler: &'c ShardCoupler,
    shard: ShardId,
    map: ShardMap,
    every: u64,
    decisions: u64,
    cached_remote: usize,
}

impl<A: Adversary> CoupledAdversary<'_, A> {
    /// Publishes + refreshes the remote named-count if the next decision
    /// sits on a coupling boundary.
    fn sync_if_due(&mut self, local_named: usize) {
        if self.decisions % self.every == 0 {
            let round = (self.decisions / self.every) as usize;
            self.cached_remote = self.coupler.sync(self.shard, round, local_named);
        }
    }

    /// The local view widened to the global one: `named` becomes local +
    /// remote (as of the last coupling round), `shards` the real map.
    fn widen<'v>(&self, view: &RunView<'v>) -> RunView<'v> {
        RunView {
            status: view.status,
            slots: view.slots,
            announced: view.announced,
            steps: view.steps,
            named: view.named + self.cached_remote,
            shards: self.map,
        }
    }
}

impl<A: Adversary> Adversary for CoupledAdversary<'_, A> {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        self.sync_if_due(view.named);
        self.decisions += 1;
        self.inner.decide(&self.widen(view))
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        self.sync_if_due(view.named);
        // Cap the batch at the next coupling boundary, so a batch never
        // straddles one: the boundary decision is always the first of
        // its batch and syncs against the fresh view it decides from —
        // exactly the single-stepped cadence.
        let cap = (self.every - self.decisions % self.every) as usize;
        let global = self.widen(view);
        let start = out.len();
        self.inner.decide_batch(&global, out, max.min(cap));
        self.decisions += (out.len() - start) as u64;
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

/// One shard's completed sub-run: its local [`RunOutcome`] (indexed by
/// local pid) and the size `m` of its local name space.
pub struct ShardRun {
    /// The shard's local outcome; tables are indexed by local pid.
    pub outcome: RunOutcome,
    /// Name-space size of the sub-instance (local names are `< m`).
    pub m: usize,
}

/// Runs one logical n-process execution as `S` coupled shard
/// sub-instances and merges the results.
///
/// `run_shard(s, n_s, ctx)` must drive shard `s`'s `n_s`-process
/// sub-instance to completion — building its processes and adversary
/// itself (seed them with [`shard_seed`]), routing the adversary through
/// [`ShardContext::couple`], and reporting the local name-space size `m`.
/// Shards run on one scoped thread each (`S = 1` runs inline on the
/// caller's thread); coupling happens every `every` decisions.
///
/// Returns the merged outcome plus the merged name-space size
/// `m_total = Σ m_s`: shard `s`'s names are offset by `Σ_{s' < s} m_s'`,
/// and all per-pid tables are scattered back to global pid order through
/// the run's [`ShardMap`]. The merged outcome is a pure function of the
/// seeds and `S` (see the module docs for the argument).
///
/// # Errors
/// The first failing shard's [`ExecError`] (by shard index, so error
/// selection is deterministic too).
pub fn run_sharded<F>(
    n: usize,
    shards: usize,
    every: u64,
    run_shard: F,
) -> Result<(RunOutcome, usize), ExecError>
where
    F: Fn(ShardId, usize, ShardContext<'_>) -> Result<ShardRun, ExecError> + Sync,
{
    assert!(shards >= 1, "a sharded run needs at least one shard");
    assert!(every >= 1, "coupling cadence must be at least one decision");
    let map = ShardMap::new(shards);
    let coupler = ShardCoupler::new(shards);

    let body = |s: ShardId| {
        let ctx = ShardContext { coupler: &coupler, shard: s, map, every };
        let guard = FinishGuard::new(&coupler, s);
        let res = run_shard(s, map.shard_len(s, n), ctx);
        guard.complete(res.as_ref().map(|r| r.outcome.named_count()).unwrap_or(0));
        res
    };

    let results: Vec<Result<ShardRun, ExecError>> = if shards == 1 {
        vec![body(ShardId::new(0))]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = map.shard_ids().map(|s| scope.spawn(move || body(s))).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| std::panic::resume_unwind(payload)))
                .collect()
        })
    };

    let mut names: EntityVec<Pid, Option<usize>> = crate::entity_vec![None; n];
    let mut steps: EntityVec<Pid, u64> = crate::entity_vec![0; n];
    let mut crashed: EntityVec<Pid, bool> = crate::entity_vec![false; n];
    let mut gave_up: EntityVec<Pid, bool> = crate::entity_vec![false; n];
    let mut decisions = 0u64;
    let mut name_offset = 0usize;
    for (s, result) in results.into_iter().enumerate() {
        let run = result?;
        let s = ShardId::new(s);
        let n_s = map.shard_len(s, n);
        assert_eq!(run.outcome.names.len(), n_s, "shard {s} outcome must cover its {n_s} pids");
        for l in (0..n_s).map(LocalIdx::new) {
            let local = Pid::new(l.index());
            let global = map.global_of(s, l);
            names[global] = run.outcome.names[local].map(|name| name + name_offset);
            steps[global] = run.outcome.steps[local];
            crashed[global] = run.outcome.crashed[local];
            gave_up[global] = run.outcome.gave_up[local];
        }
        decisions += run.outcome.decisions;
        name_offset += run.m;
    }
    Ok((RunOutcome { names, steps, crashed, gave_up, decisions }, name_offset))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashAdversary, FairAdversary, RandomAdversary};
    use crate::process::testutil::ScanProcess;
    use crate::virtual_exec;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    fn scan_processes(
        n: usize,
        m: usize,
    ) -> (Vec<ScanProcess<AtomicTasArray>>, Arc<AtomicTasArray>) {
        let mem = Arc::new(AtomicTasArray::new(m));
        let procs =
            (0..n).map(|pid| ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 }).collect();
        (procs, mem)
    }

    #[test]
    fn typed_run_matches_boxed_virtual_run_bit_for_bit() {
        for seed in 0..4u64 {
            let (mut typed, _m1) = scan_processes(24, 24);
            let mut arena = Arena::new();
            let dense = arena.run(&mut typed, &mut RandomAdversary::new(seed), 100_000).unwrap();

            let (boxed, _m2) = scan_processes(24, 24);
            let boxed: Vec<Box<dyn Process>> =
                boxed.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
            let virt = virtual_exec::run(boxed, &mut RandomAdversary::new(seed), 100_000).unwrap();

            assert_eq!(dense.names, virt.names, "seed {seed}");
            assert_eq!(dense.steps, virt.steps, "seed {seed}");
            assert_eq!(dense.crashed, virt.crashed, "seed {seed}");
            assert_eq!(dense.gave_up, virt.gave_up, "seed {seed}");
            assert_eq!(dense.decisions, virt.decisions, "seed {seed}");
        }
    }

    #[test]
    fn arena_buffers_are_reused_across_runs_without_leakage() {
        let mut arena = Arena::new();
        // Big run first: buffers grow.
        let (mut big, _m) = scan_processes(64, 64);
        let out = arena.run(&mut big, &mut FairAdversary::default(), 100_000).unwrap();
        out.verify_renaming(64).unwrap();
        // Small run next: outcome must be sized to the small n, with no
        // stale state from the big run.
        let (mut small, _m) = scan_processes(5, 5);
        let out = arena.run(&mut small, &mut FairAdversary::default(), 1_000).unwrap();
        assert_eq!(out.names.len(), 5);
        assert_eq!(out.steps.as_slice(), &[1, 2, 3, 4, 5]);
        out.verify_renaming(5).unwrap();
        // And a crashy run after that still accounts correctly.
        let (mut procs, _m) = scan_processes(10, 10);
        let mut adv = CrashAdversary::new(FairAdversary::default(), 0.5, 3, 7);
        let out = arena.run(&mut procs, &mut adv, 100_000).unwrap();
        assert_eq!(out.crashed.iter().filter(|&&c| c).count(), adv.crashes());
        out.verify_renaming(10).unwrap();
    }

    #[test]
    fn empty_slice_is_trivial() {
        let mut arena = Arena::new();
        let mut procs: Vec<ScanProcess<AtomicTasArray>> = Vec::new();
        let out = arena.run(&mut procs, &mut FairAdversary::default(), 10).unwrap();
        assert_eq!(out.decisions, 0);
        assert!(out.names.is_empty());
    }

    #[test]
    fn step_budget_enforced_in_arena() {
        let (mut procs, _m) = scan_processes(4, 4);
        let err = Arena::new().run(&mut procs, &mut FairAdversary::default(), 2).unwrap_err();
        assert!(matches!(err, ExecError::StepBudgetExceeded { budget: 2 }));
    }

    #[test]
    #[should_panic(expected = "pid() == i")]
    fn pid_layout_contract_enforced() {
        let mem = Arc::new(AtomicTasArray::new(4));
        let mut procs = vec![ScanProcess { pid: 3, mem, cursor: 0 }];
        let _ = Arena::new().run(&mut procs, &mut FairAdversary::default(), 10);
    }

    /// Inherits the default one-decision `decide_batch`, disabling the
    /// inner strategy's batching without touching its choices.
    struct SingleStep<A>(A);

    impl<A: Adversary> Adversary for SingleStep<A> {
        fn decide(&mut self, view: &RunView<'_>) -> Decision {
            self.0.decide(view)
        }

        fn name(&self) -> &'static str {
            self.0.name()
        }
    }

    #[test]
    fn batched_fair_is_bit_identical_to_single_stepped_fair() {
        // Sizes straddling the 32-lane and 64-bit word boundaries, so
        // ragged tails and multi-word scans are all exercised.
        for n in [1usize, 5, 24, 31, 32, 33, 64, 65, 130] {
            let (mut procs, _m) = scan_processes(n, n);
            let batched =
                Arena::new().run(&mut procs, &mut FairAdversary::default(), 1 << 20).unwrap();

            let (mut procs, _m) = scan_processes(n, n);
            let single = Arena::new()
                .run(&mut procs, &mut SingleStep(FairAdversary::default()), 1 << 20)
                .unwrap();

            assert_eq!(batched.names, single.names, "n {n}");
            assert_eq!(batched.steps, single.steps, "n {n}");
            assert_eq!(batched.crashed, single.crashed, "n {n}");
            assert_eq!(batched.gave_up, single.gave_up, "n {n}");
            assert_eq!(batched.decisions, single.decisions, "n {n}");
        }
    }

    #[test]
    fn shard_seed_keeps_shard_zero_identity() {
        assert_eq!(shard_seed(42, ShardId::new(0)), 42);
        assert_ne!(shard_seed(42, ShardId::new(1)), 42);
        assert_ne!(shard_seed(42, ShardId::new(1)), shard_seed(42, ShardId::new(2)));
    }

    /// Shard body driving a scan sub-instance: each shard gets its own
    /// n_s-register memory, so m_s = n_s and m_total = n.
    fn scan_shard(
        seed: u64,
    ) -> impl Fn(ShardId, usize, ShardContext<'_>) -> Result<ShardRun, ExecError> + Sync {
        move |s, n_s, ctx| {
            let (mut procs, _mem) = scan_processes(n_s, n_s);
            let mut adv = ctx.couple(RandomAdversary::new(shard_seed(seed, s)));
            let outcome = Arena::new().run(&mut procs, &mut adv, 1 << 20)?;
            Ok(ShardRun { outcome, m: n_s })
        }
    }

    #[test]
    fn single_shard_is_bit_identical_to_serial_dense() {
        for seed in 0..4u64 {
            let (merged, m_total) = run_sharded(24, 1, 8, scan_shard(seed)).unwrap();
            assert_eq!(m_total, 24);
            let (mut procs, _mem) = scan_processes(24, 24);
            let dense =
                Arena::new().run(&mut procs, &mut RandomAdversary::new(seed), 1 << 20).unwrap();
            assert_eq!(merged.names, dense.names, "seed {seed}");
            assert_eq!(merged.steps, dense.steps, "seed {seed}");
            assert_eq!(merged.crashed, dense.crashed, "seed {seed}");
            assert_eq!(merged.gave_up, dense.gave_up, "seed {seed}");
            assert_eq!(merged.decisions, dense.decisions, "seed {seed}");
        }
    }

    #[test]
    fn merged_run_renames_into_offset_disjoint_namespace() {
        let (merged, m_total) = run_sharded(23, 3, 8, scan_shard(7)).unwrap();
        assert_eq!(m_total, 23);
        merged.verify_renaming(m_total).unwrap();
        assert_eq!(merged.named_count(), 23);
    }

    #[test]
    fn sharded_run_is_deterministic_across_invocations() {
        let run = || {
            let (out, m) = run_sharded(29, 4, 4, scan_shard(11)).unwrap();
            (out.names, out.steps, out.crashed, out.gave_up, out.decisions, m)
        };
        // Repeated runs race their threads differently; outcomes must not.
        let first = run();
        for _ in 0..8 {
            assert_eq!(run(), first);
        }
    }

    #[test]
    fn merge_preserves_per_shard_step_counts_exactly() {
        // RandomAdversary never reads `named`, so each coupled shard run
        // is step-for-step the standalone sub-instance run — the merge
        // must preserve that exactly, scattered to global pid order.
        let n = 22;
        let shards = 3;
        let seed = 5;
        let (merged, _m) = run_sharded(n, shards, 4, scan_shard(seed)).unwrap();
        let map = ShardMap::new(shards);
        for s in map.shard_ids() {
            let n_s = map.shard_len(s, n);
            let (mut procs, _mem) = scan_processes(n_s, n_s);
            let standalone = Arena::new()
                .run(&mut procs, &mut RandomAdversary::new(shard_seed(seed, s)), 1 << 20)
                .unwrap();
            for l in (0..n_s).map(LocalIdx::new) {
                let global = map.global_of(s, l);
                assert_eq!(
                    merged.steps[global],
                    standalone.steps[Pid::new(l.index())],
                    "shard {s} local {l}"
                );
            }
        }
    }

    #[test]
    fn failing_shard_propagates_error_without_deadlock() {
        let err = run_sharded(16, 4, 2, |s, n_s, ctx| {
            let budget = if s.index() == 2 { 1 } else { 1 << 20 };
            let (mut procs, _mem) = scan_processes(n_s, n_s);
            let mut adv = ctx.couple(RandomAdversary::new(shard_seed(3, s)));
            let outcome = Arena::new().run(&mut procs, &mut adv, budget)?;
            Ok(ShardRun { outcome, m: n_s })
        })
        .unwrap_err();
        assert!(matches!(err, ExecError::StepBudgetExceeded { budget: 1 }));
    }

    #[test]
    fn coupler_serves_per_round_values_to_stragglers() {
        // Shard 0 races ahead publishing rounds 0..4, then shard 1 reads
        // round 0 — it must see shard 0's round-0 value, not the latest.
        let coupler = ShardCoupler::new(2);
        std::thread::scope(|scope| {
            let fast = scope.spawn(|| {
                let mut remote = Vec::new();
                for round in 0..4 {
                    remote.push(coupler.sync(ShardId::new(0), round, round * 10));
                }
                coupler.finish(ShardId::new(0), 100);
                remote
            });
            let slow = scope.spawn(|| {
                let r0 = coupler.sync(ShardId::new(1), 0, 7);
                let r1 = coupler.sync(ShardId::new(1), 1, 8);
                let r2 = coupler.sync(ShardId::new(1), 2, 9);
                coupler.finish(ShardId::new(1), 9);
                (r0, r1, r2)
            });
            let fast_remote = fast.join().unwrap();
            let (r0, r1, r2) = slow.join().unwrap();
            assert_eq!(r0, 0, "round-0 value, not the latest");
            assert_eq!(r1, 10);
            assert_eq!(r2, 20);
            // Shard 0's reads of shard 1: rounds 0..3 published (7, 8, 9);
            // round 3 is past shard 1's last publish, so its finish value
            // (also 9) stands in.
            assert_eq!(fast_remote, vec![7, 8, 9, 9]);
        });
    }
}
