//! Pre-shard home of the flat arena core.
//!
//! The [`Arena`] (struct-of-arrays state, scratch reuse, monomorphized
//! dispatch) now lives in [`crate::shard`] alongside the multi-arena
//! sharded engine; this module re-exports it so `rr_sched::dense::Arena`
//! paths keep compiling. New code should import from [`crate::shard`]
//! (or the crate root).

pub use crate::shard::Arena;
