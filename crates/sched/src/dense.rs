//! The flat arena execution core — one loop, every backend.
//!
//! [`virtual_exec::run`](crate::virtual_exec::run) historically drove
//! `Vec<Box<dyn Process>>` with a virtual call per announce and per step
//! and re-allocated its bookkeeping vectors on every run, which is what
//! made n = 2²⁰ sweeps slow and n = 2²² impractical. The [`Arena`] here
//! is the replacement hot path:
//!
//! * **Struct-of-arrays state.** Per-process lifecycle is one packed
//!   status byte per pid (running / named / gave-up / crashed)
//!   instead of the scattered `Vec<Option<usize>>` + `Vec<bool>` pair;
//!   names and steps live in dense parallel arrays.
//! * **Scratch reuse.** All working vectors (`announced`, `active`,
//!   `status`, `steps`, `names`) are owned by the arena and reused across
//!   seeds — a batch at n = 2²⁰ allocates its ~50 MB of bookkeeping once,
//!   not once per seed.
//! * **Monomorphized dispatch.** [`Arena::run`] is generic over the
//!   process type: algorithms that build their state machines as a plain
//!   `Vec<ConcreteProcess>` (see `RenamingAlgorithm::run_dense` in
//!   `rr-renaming`) get the announce/step calls statically dispatched and
//!   inlined, with all n machines contiguous in memory — no per-pid `Box`
//!   allocation, no vtable chase per step. The boxed path still works:
//!   `Box<dyn Process>` itself implements [`Process`]
//!   (see [`crate::process`]), so `virtual_exec::run` is now a thin shim
//!   over this same loop.
//!
//! **Scheduling semantics are bit-identical to the historical executor by
//! construction** — same announce cadence, same tombstoned `active`
//! vector with the same lazy-compaction threshold, same [`View`] handed
//! to the adversary before every decision. An adversary cannot tell which
//! backend is driving it, so step counts, crash patterns and RNG
//! consumption all reproduce exactly (the cross-backend equivalence tests
//! in `rr-bench` pin this for every registry algorithm × adversary).

use crate::adversary::{Adversary, Decision, View};
use crate::process::{Process, StepOutcome};
use crate::virtual_exec::{ExecError, RunOutcome};
use rr_shmem::Access;

/// Packed per-process lifecycle state — one byte per pid, the
/// struct-of-arrays replacement for `names: Vec<Option<usize>>` +
/// `crashed: Vec<bool>` + `gave_up: Vec<bool>` during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Status {
    /// Still taking steps.
    Running = 0,
    /// Halted holding a name (in `Arena::names`).
    Named = 1,
    /// Halted unnamed of its own accord.
    GaveUp = 2,
    /// Crashed by the adversary.
    Crashed = 3,
}

/// Reusable execution scratch: the allocation-free (after warm-up) arena
/// every backend's runs execute in.
///
/// Create one per worker thread and feed it run after run — buffers grow
/// to the largest n seen and are reused verbatim afterwards:
///
/// ```
/// use rr_sched::adversary::FairAdversary;
/// use rr_sched::dense::Arena;
/// use rr_sched::process::{Process, StepOutcome};
/// use rr_shmem::Access;
///
/// struct Count { pid: usize, left: usize }
/// impl Process for Count {
///     fn announce(&mut self) -> Access { Access::Local }
///     fn step(&mut self) -> StepOutcome {
///         if self.left == 0 { StepOutcome::Done(self.pid) }
///         else { self.left -= 1; StepOutcome::Continue }
///     }
///     fn pid(&self) -> usize { self.pid }
/// }
///
/// let mut arena = Arena::new();
/// for _seed in 0..3 {
///     // A plain Vec of concrete processes: static dispatch, no boxing.
///     let mut procs: Vec<Count> = (0..4).map(|pid| Count { pid, left: pid }).collect();
///     let out = arena.run(&mut procs, &mut FairAdversary::default(), 1000).unwrap();
///     out.verify_renaming(4).unwrap();
/// }
/// ```
#[derive(Debug, Default)]
pub struct Arena {
    announced: Vec<Option<Access>>,
    active: Vec<usize>,
    status: Vec<Status>,
    steps: Vec<u64>,
    names: Vec<usize>,
}

impl Arena {
    /// An empty arena; buffers are sized lazily by the first run.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, n: usize) {
        self.announced.clear();
        self.announced.resize(n, None);
        self.active.clear();
        self.active.extend(0..n);
        self.status.clear();
        self.status.resize(n, Status::Running);
        self.steps.clear();
        self.steps.resize(n, 0);
        self.names.clear();
        self.names.resize(n, usize::MAX);
    }

    /// Runs `processes` to completion under `adversary` — the shared
    /// execution loop behind every backend.
    ///
    /// `processes[i]` must be the state machine with `pid() == i` (every
    /// workload factory in this workspace builds them that way). The
    /// outcome vectors are freshly allocated (they escape the arena); all
    /// scratch is reused across calls.
    ///
    /// # Errors
    /// [`ExecError::StepBudgetExceeded`] past `step_budget` total steps,
    /// [`ExecError::BadDecision`] if the adversary addresses a pid that
    /// is not runnable.
    ///
    /// # Panics
    /// Panics if some `processes[i].pid() != i`.
    pub fn run<P, A>(
        &mut self,
        processes: &mut [P],
        adversary: &mut A,
        step_budget: u64,
    ) -> Result<RunOutcome, ExecError>
    where
        P: Process,
        A: Adversary + ?Sized,
    {
        let n = processes.len();
        self.reset(n);
        let mut named = 0usize;
        let mut decisions = 0u64;
        let mut total_steps = 0u64;

        // Initial announcements (and the pid-layout contract check).
        for (pid, p) in processes.iter_mut().enumerate() {
            assert_eq!(p.pid(), pid, "arena requires processes[i].pid() == i");
            self.announced[pid] = Some(p.announce());
        }

        // `active` uses tombstones: halted pids stay in the vector (their
        // `announced` slot is `None`) until more than half are dead, then
        // one O(len) compaction reclaims them — amortized O(1) per halt.
        // The `View` contract reflects this: `active` is a sorted
        // superset of the runnable pids; `announced[pid].is_some()` is
        // the ground truth. This policy is observable (RandomAdversary
        // rejection-samples over it), so it must never drift from the
        // historical executor's.
        let mut live = n;
        while live > 0 {
            if self.active.len() > 2 * live {
                let announced = &self.announced;
                self.active.retain(|&pid| announced[pid].is_some());
            }
            let decision = {
                let view = View {
                    active: &self.active,
                    announced: &self.announced,
                    steps: &self.steps,
                    named,
                };
                adversary.decide(&view)
            };
            decisions += 1;
            match decision {
                Decision::Grant(pid) => {
                    if pid >= n || self.announced[pid].is_none() {
                        return Err(ExecError::BadDecision { decision: format!("{decision:?}") });
                    }
                    self.steps[pid] += 1;
                    total_steps += 1;
                    if total_steps > step_budget {
                        return Err(ExecError::StepBudgetExceeded { budget: step_budget });
                    }
                    match processes[pid].step() {
                        StepOutcome::Continue => {
                            self.announced[pid] = Some(processes[pid].announce());
                        }
                        StepOutcome::Done(name) => {
                            self.names[pid] = name;
                            self.status[pid] = Status::Named;
                            named += 1;
                            self.announced[pid] = None;
                            live -= 1;
                        }
                        StepOutcome::GaveUp => {
                            self.status[pid] = Status::GaveUp;
                            self.announced[pid] = None;
                            live -= 1;
                        }
                    }
                }
                Decision::Crash(pid) => {
                    if pid >= n || self.announced[pid].is_none() {
                        return Err(ExecError::BadDecision { decision: format!("{decision:?}") });
                    }
                    self.status[pid] = Status::Crashed;
                    self.announced[pid] = None;
                    live -= 1;
                }
            }
        }

        Ok(self.outcome(decisions))
    }

    /// Unpacks the packed SoA state into the public [`RunOutcome`] shape.
    fn outcome(&self, decisions: u64) -> RunOutcome {
        RunOutcome {
            names: self
                .status
                .iter()
                .zip(&self.names)
                .map(|(&s, &name)| (s == Status::Named).then_some(name))
                .collect(),
            steps: self.steps.clone(),
            crashed: self.status.iter().map(|&s| s == Status::Crashed).collect(),
            gave_up: self.status.iter().map(|&s| s == Status::GaveUp).collect(),
            decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{CrashAdversary, FairAdversary, RandomAdversary};
    use crate::process::testutil::ScanProcess;
    use crate::virtual_exec;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    fn scan_processes(
        n: usize,
        m: usize,
    ) -> (Vec<ScanProcess<AtomicTasArray>>, Arc<AtomicTasArray>) {
        let mem = Arc::new(AtomicTasArray::new(m));
        let procs =
            (0..n).map(|pid| ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 }).collect();
        (procs, mem)
    }

    #[test]
    fn typed_run_matches_boxed_virtual_run_bit_for_bit() {
        for seed in 0..4u64 {
            let (mut typed, _m1) = scan_processes(24, 24);
            let mut arena = Arena::new();
            let dense = arena.run(&mut typed, &mut RandomAdversary::new(seed), 100_000).unwrap();

            let (boxed, _m2) = scan_processes(24, 24);
            let boxed: Vec<Box<dyn Process>> =
                boxed.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
            let virt = virtual_exec::run(boxed, &mut RandomAdversary::new(seed), 100_000).unwrap();

            assert_eq!(dense.names, virt.names, "seed {seed}");
            assert_eq!(dense.steps, virt.steps, "seed {seed}");
            assert_eq!(dense.crashed, virt.crashed, "seed {seed}");
            assert_eq!(dense.gave_up, virt.gave_up, "seed {seed}");
            assert_eq!(dense.decisions, virt.decisions, "seed {seed}");
        }
    }

    #[test]
    fn arena_buffers_are_reused_across_runs_without_leakage() {
        let mut arena = Arena::new();
        // Big run first: buffers grow.
        let (mut big, _m) = scan_processes(64, 64);
        let out = arena.run(&mut big, &mut FairAdversary::default(), 100_000).unwrap();
        out.verify_renaming(64).unwrap();
        // Small run next: outcome must be sized to the small n, with no
        // stale state from the big run.
        let (mut small, _m) = scan_processes(5, 5);
        let out = arena.run(&mut small, &mut FairAdversary::default(), 1_000).unwrap();
        assert_eq!(out.names.len(), 5);
        assert_eq!(out.steps, vec![1, 2, 3, 4, 5]);
        out.verify_renaming(5).unwrap();
        // And a crashy run after that still accounts correctly.
        let (mut procs, _m) = scan_processes(10, 10);
        let mut adv = CrashAdversary::new(FairAdversary::default(), 0.5, 3, 7);
        let out = arena.run(&mut procs, &mut adv, 100_000).unwrap();
        assert_eq!(out.crashed.iter().filter(|&&c| c).count(), adv.crashes());
        out.verify_renaming(10).unwrap();
    }

    #[test]
    fn empty_slice_is_trivial() {
        let mut arena = Arena::new();
        let mut procs: Vec<ScanProcess<AtomicTasArray>> = Vec::new();
        let out = arena.run(&mut procs, &mut FairAdversary::default(), 10).unwrap();
        assert_eq!(out.decisions, 0);
        assert!(out.names.is_empty());
    }

    #[test]
    fn step_budget_enforced_in_arena() {
        let (mut procs, _m) = scan_processes(4, 4);
        let err = Arena::new().run(&mut procs, &mut FairAdversary::default(), 2).unwrap_err();
        assert!(matches!(err, ExecError::StepBudgetExceeded { budget: 2 }));
    }

    #[test]
    #[should_panic(expected = "pid() == i")]
    fn pid_layout_contract_enforced() {
        let mem = Arc::new(AtomicTasArray::new(4));
        let mut procs = vec![ScanProcess { pid: 3, mem, cursor: 0 }];
        let _ = Arena::new().run(&mut procs, &mut FairAdversary::default(), 10);
    }
}
