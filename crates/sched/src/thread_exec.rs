//! Free-running executor: one OS thread per process, real atomics, wall
//! clock. This is the mode the Criterion benchmarks use; the state
//! machines are identical to the ones the virtual executor polls, so the
//! numbers measure the same algorithm.

use crate::process::{run_to_completion, Process};
use crate::virtual_exec::RunOutcome;

/// Drives every process on its own thread until all have a name.
///
/// `max_steps_per_process` is a livelock guard (the thread panics past
/// it, failing the run loudly rather than hanging a benchmark).
///
/// Returns the same [`RunOutcome`] shape as the virtual executor
/// (`crashed` is all-false: crash injection is a scheduler power, and
/// free-running mode has no scheduler).
pub fn run_threads(
    processes: Vec<Box<dyn Process + Send + '_>>,
    max_steps_per_process: u64,
) -> RunOutcome {
    // Outcome vectors are indexed by pid, which need not equal the
    // position in `processes` (bounded waves pass sub-batches).
    let n = processes.iter().map(|p| p.pid() + 1).max().unwrap_or(0);
    let mut names: Vec<Option<usize>> = vec![None; n];
    let mut steps: Vec<u64> = vec![0; n];
    let mut gave_up = vec![false; n];

    std::thread::scope(|scope| {
        let handles: Vec<_> = processes
            .into_iter()
            .map(|mut p| {
                scope.spawn(move || {
                    let pid = p.pid();
                    let (name, taken) = run_to_completion(p.as_mut(), max_steps_per_process);
                    (pid, name, taken)
                })
            })
            .collect();
        for h in handles {
            let (pid, name, taken) = h.join().expect("process thread panicked");
            names[pid] = name;
            gave_up[pid] = name.is_none();
            steps[pid] = taken;
        }
    });

    RunOutcome { names, steps, crashed: vec![false; n], gave_up, decisions: 0 }
}

/// Like [`run_threads`] but caps the number of concurrent OS threads at
/// `threads`, running processes in waves. Benchmarks use this to sweep
/// "hardware parallelism" without oversubscribing the machine when n is
/// large.
pub fn run_threads_bounded(
    processes: Vec<Box<dyn Process + Send + '_>>,
    threads: usize,
    max_steps_per_process: u64,
) -> RunOutcome {
    assert!(threads > 0);
    let n = processes.iter().map(|p| p.pid() + 1).max().unwrap_or(0);
    let mut names: Vec<Option<usize>> = vec![None; n];
    let mut steps: Vec<u64> = vec![0; n];
    let mut gave_up = vec![false; n];

    let mut queue = processes;
    while !queue.is_empty() {
        let take = queue.len().min(threads);
        let wave: Vec<_> = queue.drain(..take).collect();
        let out = run_threads(wave, max_steps_per_process);
        for (pid, name) in out.names.iter().enumerate() {
            if name.is_some() || out.gave_up[pid] {
                names[pid] = *name;
                gave_up[pid] = out.gave_up[pid];
                steps[pid] = out.steps[pid];
            }
        }
    }

    RunOutcome { names, steps, crashed: vec![false; n], gave_up, decisions: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::testutil::ScanProcess;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    fn scan_processes(n: usize, m: usize) -> Vec<Box<dyn Process + Send + 'static>> {
        let mem = Arc::new(AtomicTasArray::new(m));
        (0..n)
            .map(|pid| {
                Box::new(ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 })
                    as Box<dyn Process + Send>
            })
            .collect()
    }

    #[test]
    fn threads_rename_everyone_distinctly() {
        let out = run_threads(scan_processes(16, 16), 1_000);
        out.verify_renaming(16).unwrap();
        assert!(out.steps.iter().all(|&s| s >= 1));
    }

    #[test]
    fn bounded_waves_cover_all_processes() {
        let out = run_threads_bounded(scan_processes(20, 20), 4, 1_000);
        out.verify_renaming(20).unwrap();
        assert_eq!(out.names.iter().filter(|n| n.is_some()).count(), 20);
    }

    #[test]
    fn single_thread_bound_is_sequential() {
        let out = run_threads_bounded(scan_processes(5, 5), 1, 1_000);
        out.verify_renaming(5).unwrap();
        // Sequential waves: pid 0 wins reg 0 in 1 step, pid 1 probes 0
        // then wins 1, etc.
        assert_eq!(out.steps, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input() {
        let out = run_threads(Vec::new(), 10);
        assert!(out.names.is_empty());
    }
}
