//! Free-running executor: one OS thread per process, real atomics, wall
//! clock. This is the mode the Criterion benchmarks use; the state
//! machines are identical to the ones the virtual executor polls, so the
//! numbers measure the same algorithm.

use crate::ids::{EntityVec, Pid};
use crate::process::{run_to_completion, Process};
use crate::virtual_exec::RunOutcome;

/// Drives every process on its own thread until all have a name.
///
/// `max_steps_per_process` is a livelock guard (the thread panics past
/// it, failing the run loudly rather than hanging a benchmark).
///
/// Returns the same [`RunOutcome`] shape as the virtual executor. The
/// outcome vectors are indexed by pid, which need not be contiguous
/// (bounded waves pass sub-batches): slots whose pid was **not** in
/// `processes` are marked `crashed` — the crash-equivalent convention
/// that keeps [`RunOutcome::verify_renaming`] honest on sparse pid sets
/// (absent pids are excused from completeness, exactly like a process
/// the scheduler removed; a present pid is never marked crashed, since
/// free-running mode has no crash-injecting scheduler).
pub fn run_threads(
    processes: Vec<Box<dyn Process + Send + '_>>,
    max_steps_per_process: u64,
) -> RunOutcome {
    let n = processes.iter().map(|p| p.pid().index() + 1).max().unwrap_or(0);
    let mut names: EntityVec<Pid, Option<usize>> = crate::entity_vec![None; n];
    let mut steps: EntityVec<Pid, u64> = crate::entity_vec![0; n];
    let mut gave_up: EntityVec<Pid, bool> = crate::entity_vec![false; n];
    // Every slot starts crash-equivalent (absent); joining a process's
    // thread marks its pid present.
    let mut crashed: EntityVec<Pid, bool> = crate::entity_vec![true; n];

    std::thread::scope(|scope| {
        let handles: Vec<_> = processes
            .into_iter()
            .map(|mut p| {
                scope.spawn(move || {
                    let pid = p.pid();
                    let (name, taken) = run_to_completion(p.as_mut(), max_steps_per_process);
                    (pid, name, taken)
                })
            })
            .collect();
        for h in handles {
            let (pid, name, taken) = h.join().expect("process thread panicked");
            names[pid] = name;
            gave_up[pid] = name.is_none();
            steps[pid] = taken;
            crashed[pid] = false;
        }
    });

    RunOutcome { names, steps, crashed, gave_up, decisions: 0 }
}

/// Like [`run_threads`] but caps the number of concurrent OS threads at
/// `threads`, running processes in waves. Benchmarks use this to sweep
/// "hardware parallelism" without oversubscribing the machine when n is
/// large.
pub fn run_threads_bounded(
    processes: Vec<Box<dyn Process + Send + '_>>,
    threads: usize,
    max_steps_per_process: u64,
) -> RunOutcome {
    assert!(threads > 0);
    let n = processes.iter().map(|p| p.pid().index() + 1).max().unwrap_or(0);
    let mut names: EntityVec<Pid, Option<usize>> = crate::entity_vec![None; n];
    let mut steps: EntityVec<Pid, u64> = crate::entity_vec![0; n];
    let mut gave_up: EntityVec<Pid, bool> = crate::entity_vec![false; n];
    // Same crash-equivalent convention as [`run_threads`]: a slot stays
    // marked absent until some wave actually ran its pid.
    let mut crashed: EntityVec<Pid, bool> = crate::entity_vec![true; n];

    // Consume the queue with a cursor (the amortized-scan idiom the
    // replayers use): `drain(..take)` shifted every remaining element on
    // every wave — O(n²/threads) element moves for large n — whereas the
    // consuming iterator hands out each process exactly once.
    let mut remaining = processes.into_iter();
    loop {
        let wave: Vec<_> = remaining.by_ref().take(threads).collect();
        if wave.is_empty() {
            break;
        }
        // The merge is total over the wave's actual members: every pid
        // handed to the wave is copied back wholesale (names, gave_up,
        // *and* steps — the old name-or-gave-up filter silently dropped
        // the step counts of any process it skipped). The wave outcome's
        // own presence mask double-checks the accounting.
        let wave_pids: Vec<Pid> = wave.iter().map(|p| p.pid()).collect();
        let out = run_threads(wave, max_steps_per_process);
        for &pid in &wave_pids {
            assert!(!out.crashed[pid], "wave member {pid} missing from its own wave outcome");
            names[pid] = out.names[pid];
            gave_up[pid] = out.gave_up[pid];
            steps[pid] = out.steps[pid];
            crashed[pid] = false;
        }
    }

    RunOutcome { names, steps, crashed, gave_up, decisions: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::testutil::ScanProcess;
    use rr_shmem::tas::AtomicTasArray;
    use std::sync::Arc;

    fn scan_processes(n: usize, m: usize) -> Vec<Box<dyn Process + Send + 'static>> {
        let mem = Arc::new(AtomicTasArray::new(m));
        (0..n)
            .map(|pid| {
                Box::new(ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 })
                    as Box<dyn Process + Send>
            })
            .collect()
    }

    #[test]
    fn threads_rename_everyone_distinctly() {
        let out = run_threads(scan_processes(16, 16), 1_000);
        out.verify_renaming(16).unwrap();
        assert!(out.steps.iter().all(|&s| s >= 1));
    }

    #[test]
    fn bounded_waves_cover_all_processes() {
        let out = run_threads_bounded(scan_processes(20, 20), 4, 1_000);
        out.verify_renaming(20).unwrap();
        assert_eq!(out.named_count(), 20);
    }

    #[test]
    fn single_thread_bound_is_sequential() {
        let out = run_threads_bounded(scan_processes(5, 5), 1, 1_000);
        out.verify_renaming(5).unwrap();
        // Sequential waves: pid 0 wins reg 0 in 1 step, pid 1 probes 0
        // then wins 1, etc.
        assert_eq!(out.steps.as_slice(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_input() {
        let out = run_threads(Vec::new(), 10);
        assert!(out.names.is_empty());
    }

    /// Builds scan processes for an arbitrary (possibly sparse) pid set
    /// over one shared memory.
    fn sparse_scans(
        pids: std::ops::Range<usize>,
        m: usize,
    ) -> Vec<Box<dyn Process + Send + 'static>> {
        let mem = Arc::new(AtomicTasArray::new(m));
        pids.map(|pid| {
            Box::new(ScanProcess { pid, mem: Arc::clone(&mem), cursor: 0 })
                as Box<dyn Process + Send>
        })
        .collect()
    }

    /// Regression: a sparse pid set (a bounded-wave sub-batch) used to
    /// produce phantom slots with `names = None`, `crashed = false`,
    /// `gave_up = false`, which `verify_renaming` misread as "surviving
    /// process got no name". Absent pids are crash-equivalent.
    #[test]
    fn sparse_pid_set_passes_verification() {
        let out = run_threads(sparse_scans(4..8, 4), 1_000);
        assert_eq!(out.names.len(), 8);
        out.verify_renaming(4).unwrap();
        assert!(
            out.crashed.as_slice()[..4].iter().all(|&c| c),
            "absent slots are crash-equivalent"
        );
        assert!(out.crashed.as_slice()[4..].iter().all(|&c| !c), "present pids never read crashed");
        assert_eq!(out.survivors(), (4..8).map(Pid::new).collect::<Vec<_>>());
        assert_eq!(out.named_count(), 4);
    }

    #[test]
    fn sparse_bounded_waves_pass_verification() {
        let out = run_threads_bounded(sparse_scans(3..9, 6), 2, 1_000);
        assert_eq!(out.names.len(), 9);
        out.verify_renaming(6).unwrap();
        assert!(out.crashed.as_slice()[..3].iter().all(|&c| c));
        assert!(out.crashed.as_slice()[3..].iter().all(|&c| !c));
        assert_eq!(out.named_count(), 6);
    }

    /// Regression: the wave merge used to copy a process's results only
    /// if it was named or gave up — making the merge total means steps
    /// survive for every member, and the accounting assert confirms each
    /// input pid landed in its wave's outcome.
    #[test]
    fn bounded_merge_is_total_over_wave_members() {
        /// Burns `fuel` steps, then gives up — named never.
        struct Spinner {
            pid: usize,
            fuel: u64,
        }
        impl Process for Spinner {
            fn announce(&mut self) -> rr_shmem::Access {
                rr_shmem::Access::Local
            }
            fn step(&mut self) -> crate::process::StepOutcome {
                if self.fuel == 0 {
                    return crate::process::StepOutcome::GaveUp;
                }
                self.fuel -= 1;
                crate::process::StepOutcome::Continue
            }
            fn pid(&self) -> Pid {
                Pid::new(self.pid)
            }
        }
        let procs: Vec<Box<dyn Process + Send>> = (0..6)
            .map(|pid| Box::new(Spinner { pid, fuel: pid as u64 }) as Box<dyn Process + Send>)
            .collect();
        let out = run_threads_bounded(procs, 2, 1_000);
        // Every spinner's steps are accounted: fuel Continues + the final
        // GaveUp step.
        let expect: Vec<u64> = (0..6).map(|pid| pid + 1).collect();
        assert_eq!(out.steps.as_slice(), expect.as_slice());
        assert!(out.gave_up.iter().all(|&g| g));
        assert!(out.crashed.iter().all(|&c| !c));
    }
}
