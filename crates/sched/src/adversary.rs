//! Adaptive adversaries (§II-A).
//!
//! The paper's adversary controls the order in which processes take steps
//! and which processes crash, and "is allowed to see the state of all
//! processes (including the results of coin flips) when making its
//! scheduling choices". Here that power is concrete: before every
//! decision the executor hands the adversary a [`RunView`] containing each
//! active process's *announced* next access — announcements are made
//! after the coin flip that chose the target register, so the adversary
//! schedules with full knowledge of the randomness.
//!
//! The view is served from the executor's word-packed state
//! ([`StatusBitmap`] for runnability, [`SlotSnapshot`] for the
//! slot-numbered roster that rejection-sampling strategies index), so
//! strategies that scan the runnable set do it word-at-a-time. Strategies
//! that can commit to several grants from one view implement
//! [`Adversary::decide_batch`] and the executor applies the whole batch
//! without re-entering the dispatch loop.

use crate::bits::{SlotSnapshot, StatusBitmap};
use crate::ids::{EntityVec, Pid, ShardMap};
use rand::rngs::ChaCha8Rng;
use rand::{RngExt, SeedableRng};
use rr_shmem::Access;

/// What the adversary sees before each decision — one context struct
/// rather than a growing positional-argument list, so shard-aware fields
/// can ride along without breaking every strategy.
#[derive(Debug)]
pub struct RunView<'a> {
    /// Packed per-process lifecycle state. `status.is_runnable(pid)` /
    /// `announced[pid].is_some()` are interchangeable ground truths for
    /// runnability; the word-wide scans ([`RunView::next_runnable`],
    /// [`RunView::runnable`]) come from here.
    pub status: &'a StatusBitmap,
    /// The slot-numbered roster as of the executor's last compaction
    /// point — a sorted *superset* of the runnable pids. Slots whose pid
    /// is no longer runnable are stale and must not be granted;
    /// strategies that sample slots by index re-check
    /// [`RunView::is_runnable`]. (This reproduces, observationally, the
    /// tombstoned `active` vector earlier revisions exposed, so seeded
    /// RNG streams replay bit-identically.)
    pub slots: &'a SlotSnapshot,
    /// `announced[pid]` — the access each runnable process will perform
    /// next (`None` for finished/crashed processes).
    pub announced: &'a EntityVec<Pid, Option<Access>>,
    /// Steps taken so far, indexed by pid.
    pub steps: &'a EntityVec<Pid, u64>,
    /// Number of processes that already hold a name (global across
    /// shards — under the shard backend this includes the other shards'
    /// counts as of the last coupling round).
    pub named: usize,
    /// How the run's pid space is partitioned across shards.
    /// [`ShardMap::single`] for every unsharded backend.
    pub shards: ShardMap,
}

impl<'a> RunView<'a> {
    /// An unsharded view — the common case for every serial executor and
    /// for tests.
    pub fn new(
        status: &'a StatusBitmap,
        slots: &'a SlotSnapshot,
        announced: &'a EntityVec<Pid, Option<Access>>,
        steps: &'a EntityVec<Pid, u64>,
        named: usize,
    ) -> Self {
        Self { status, slots, announced, steps, named, shards: ShardMap::single() }
    }

    /// Whether `pid` is still runnable (one load + mask).
    #[inline]
    pub fn is_runnable(&self, pid: Pid) -> bool {
        self.status.is_runnable(pid)
    }

    /// The first runnable pid with index ≥ `from`, scanned
    /// word-at-a-time.
    #[inline]
    pub fn next_runnable(&self, from: usize) -> Option<Pid> {
        self.status.next_runnable(from)
    }

    /// All runnable pids, ascending.
    pub fn runnable(&self) -> crate::bits::RunnableIter<'a> {
        self.status.runnable()
    }

    /// Number of runnable pids.
    pub fn runnable_count(&self) -> usize {
        self.status.runnable_count()
    }

    /// Number of slots in the roster (≥ the runnable count; the excess
    /// is stale slots awaiting the executor's next compaction).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The pid in roster slot `i`. May be stale — re-check
    /// [`RunView::is_runnable`] before granting.
    #[inline]
    pub fn slot(&self, i: usize) -> Pid {
        self.slots.select(i)
    }
}

/// One scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let `pid` execute its announced access.
    Grant(Pid),
    /// Crash `pid`: it takes no further steps (and never gets a name).
    Crash(Pid),
}

/// An adaptive adversary strategy.
pub trait Adversary {
    /// Chooses the next decision. The view has at least one runnable
    /// process.
    fn decide(&mut self, view: &RunView<'_>) -> Decision;

    /// Appends up to `max` decisions to `out` from one view — the
    /// macro-step hook: the executor applies the whole batch without
    /// re-entering the dispatch loop.
    ///
    /// **Contract:** an override must emit *exactly* the decisions that
    /// `max` sequential [`Adversary::decide`] calls would have made
    /// (possibly fewer, never zero), accounting for the fact that the
    /// view is not refreshed mid-batch: each granted pid is granted at
    /// most once per batch, since a grantee may halt on its step.
    /// Strategies whose next decision depends on mid-batch state (e.g.
    /// rejection samplers, whose RNG stream depends on each draw's
    /// runnability at decision time) must keep this default, which
    /// batches nothing.
    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        let _ = max;
        out.push(self.decide(view));
    }

    /// Strategy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Boxed adversaries delegate — so registry-built strategies can be
/// wrapped by [`crate::replay::RecordingAdversary`] and friends.
impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        (**self).decide(view)
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        (**self).decide_batch(view, out, max)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Round-robin over active processes — the "benign" schedule.
///
/// The whole strategy is one word-scan: grant the first runnable pid at
/// or after the cursor, wrapping once past the end. Because its choices
/// depend only on *which pids are runnable* — not on slots, steps, or
/// randomness — fair can batch: from one view it commits to a strictly
/// ascending run of grants ([`Adversary::decide_batch`]), which is
/// provably what sequential `decide` calls would have granted (the
/// runnable set only shrinks mid-batch, and only by a grantee halting on
/// its own step, which never affects a *later*, strictly greater pid's
/// runnability at its grant time).
#[derive(Debug, Default)]
pub struct FairAdversary {
    cursor: usize,
}

impl Adversary for FairAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let pid = view
            .next_runnable(self.cursor)
            .or_else(|| view.next_runnable(0))
            .expect("decide() requires at least one runnable process");
        self.cursor = pid.index() + 1;
        Decision::Grant(pid)
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        // Strictly ascending grants only: no wrap inside a batch, so no
        // pid is granted twice from one (unrefreshed) view.
        let start = out.len();
        let mut from = self.cursor;
        while out.len() - start < max {
            match view.next_runnable(from) {
                Some(pid) => {
                    out.push(Decision::Grant(pid));
                    from = pid.index() + 1;
                }
                None => break,
            }
        }
        if out.len() == start {
            // Cursor past every runnable pid: wrap, as decide() would,
            // but commit to just the one grant.
            let pid =
                view.next_runnable(0).expect("decide() requires at least one runnable process");
            out.push(Decision::Grant(pid));
            from = pid.index() + 1;
        }
        self.cursor = from;
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

/// Uniformly random schedule.
///
/// Keeps the default single-decision [`Adversary::decide_batch`] on
/// purpose: each RNG draw's accept/reject depends on the sampled pid's
/// runnability *at that decision*, so batching draws against a stale view
/// would change the consumed RNG stream whenever a grantee halts
/// mid-batch — breaking bit-identity with the recorded baselines. The
/// view does not permit batching this strategy.
#[derive(Debug)]
pub struct RandomAdversary {
    rng: ChaCha8Rng,
}

impl RandomAdversary {
    /// Seeded random schedule.
    pub fn new(seed: u64) -> Self {
        Self { rng: ChaCha8Rng::seed_from_u64(seed) }
    }
}

impl Adversary for RandomAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        // Rejection-sample past stale slots (< 50% of the roster by the
        // executor's compaction policy, so ≤ 2 tries expected).
        loop {
            let i = self.rng.random_range(0..view.slot_count());
            let pid = view.slot(i);
            if view.is_runnable(pid) {
                return Decision::Grant(pid);
            }
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Maximizes collisions: finds the register announced by the most
/// processes and schedules all of them back to back, so every contested
/// TAS wastes the maximum number of steps. This is the natural attack on
/// randomized probing and exactly what the adversary's coin-flip
/// knowledge enables.
#[derive(Debug, Default)]
pub struct CollisionMaximizer {
    /// Pids queued for consecutive scheduling.
    burst: Vec<Pid>,
}

impl Adversary for CollisionMaximizer {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        // Drain the current burst first (skip pids no longer runnable).
        while let Some(pid) = self.burst.pop() {
            if view.announced.get(pid).is_some_and(|a| a.is_some()) {
                return Decision::Grant(pid);
            }
        }
        // Group runnable pids by announced target; pick the biggest
        // group.
        let mut groups: std::collections::HashMap<(u32, usize), Vec<Pid>> =
            std::collections::HashMap::new();
        for pid in view.runnable() {
            if let Some(acc) = view.announced[pid] {
                let key = match acc {
                    Access::Tas { array, index } => (array, index),
                    Access::Read { array, index } => (array, index),
                    Access::TauRequest { register, bit } => (u32::MAX, register * 64 + bit),
                    Access::Local => (u32::MAX - 1, pid.index()),
                };
                groups.entry(key).or_default().push(pid);
            }
        }
        let mut best = groups
            .into_values()
            .max_by_key(|v| (v.len(), usize::MAX - v[0].index()))
            .expect("decide() requires at least one runnable process");
        // Grant one now, queue the rest.
        let pid = best.pop().unwrap();
        self.burst = best;
        Decision::Grant(pid)
    }

    fn name(&self) -> &'static str {
        "collision-max"
    }
}

/// Stalls likely winners: processes whose announced access would *win*
/// (per the supplied probe) are scheduled last; everyone burning a wasted
/// step goes first. With the probe wired to the actual TAS state this is
/// the strongest schedule-only attack against probing algorithms.
pub struct StallWinners {
    probe: Box<dyn FnMut(&Access) -> bool>,
}

impl StallWinners {
    /// `probe(access)` should return `true` if the access would currently
    /// succeed (e.g. the targeted register is still unset).
    pub fn new(probe: Box<dyn FnMut(&Access) -> bool>) -> Self {
        Self { probe }
    }
}

impl Adversary for StallWinners {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        for pid in view.runnable() {
            if let Some(acc) = view.announced[pid] {
                if !(self.probe)(&acc) {
                    return Decision::Grant(pid);
                }
            }
        }
        // Everyone would win; grant the first runnable (some progress is
        // forced — an adversary cannot block all processes forever).
        let pid = view.next_runnable(0).expect("decide() requires at least one runnable process");
        Decision::Grant(pid)
    }

    fn name(&self) -> &'static str {
        "stall-winners"
    }
}

impl std::fmt::Debug for StallWinners {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StallWinners").finish_non_exhaustive()
    }
}

/// Crash wrapper: delegates scheduling to `inner`, but whenever a process
/// announces a *winning-kind* access (TAS / τ-request), crashes it with
/// probability `p` — the cruelest moment, since the process may have
/// already been admitted somewhere. Total crashes capped by `budget`
/// (crashing everyone would make renaming vacuous).
///
/// Keeps the default single-decision [`Adversary::decide_batch`]: the
/// crash scan (and its RNG draws) must run against a fresh view before
/// *every* decision, exactly as the recorded baselines did.
#[derive(Debug)]
pub struct CrashAdversary<A> {
    inner: A,
    p: f64,
    budget: usize,
    crashed: usize,
    rng: ChaCha8Rng,
}

impl<A: Adversary> CrashAdversary<A> {
    /// Wraps `inner`, crashing at winning-kind announces with probability
    /// `p`, at most `budget` times.
    pub fn new(inner: A, p: f64, budget: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self { inner, p, budget, crashed: 0, rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Number of processes crashed so far.
    pub fn crashes(&self) -> usize {
        self.crashed
    }
}

impl<A: Adversary> Adversary for CrashAdversary<A> {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        // Guard on the roster length (not the runnable count): this is
        // the byte the recorded baselines observed, and it only errs on
        // the side of crashing less near the end of a run.
        if self.crashed < self.budget && view.slot_count() > 1 {
            for pid in view.runnable() {
                let winning = view.announced[pid].is_some_and(|a| a.is_winning_kind());
                if winning && self.rng.random_bool(self.p) {
                    self.crashed += 1;
                    return Decision::Crash(pid);
                }
            }
        }
        self.inner.decide(view)
    }

    fn name(&self) -> &'static str {
        "crash"
    }
}

/// Oblivious adversary with a k-step lookahead window: it commits to
/// the next `k` runnable pids (ascending, wrapping once) from a single
/// view, then drains that commitment before looking again. Pids that
/// halt between commitment and grant are skipped — the window is a
/// *plan*, not a promise.
///
/// Because the committed window holds distinct pids and a grant can
/// only change the *grantee's* own runnability, draining the window is
/// batchable: [`Adversary::decide_batch`] drains the current window
/// (skipping stale entries exactly as `decide` would) and stops at the
/// refill boundary, which is provably the same grant sequence as
/// sequential `decide` calls. `k = 1` degenerates to the fair schedule.
#[derive(Debug)]
pub struct LookaheadAdversary {
    k: usize,
    cursor: usize,
    window: std::collections::VecDeque<Pid>,
}

impl LookaheadAdversary {
    /// Lookahead of `k ≥ 1` decisions.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "lookahead needs k >= 1");
        Self { k, cursor: 0, window: std::collections::VecDeque::new() }
    }

    /// Commits to up to `k` runnable pids from `view`: ascending from
    /// the cursor, wrapping once to the pids strictly below it (so the
    /// window never holds a duplicate).
    fn refill(&mut self, view: &RunView<'_>) {
        let start = self.cursor;
        let mut from = start;
        while self.window.len() < self.k {
            match view.next_runnable(from) {
                Some(pid) => {
                    self.window.push_back(pid);
                    from = pid.index() + 1;
                }
                None => break,
            }
        }
        let mut from = 0;
        while self.window.len() < self.k {
            match view.next_runnable(from) {
                Some(pid) if pid.index() < start => {
                    self.window.push_back(pid);
                    from = pid.index() + 1;
                }
                _ => break,
            }
        }
        if let Some(last) = self.window.back() {
            self.cursor = last.index() + 1;
        }
    }
}

impl Adversary for LookaheadAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        loop {
            match self.window.pop_front() {
                Some(pid) if view.is_runnable(pid) => return Decision::Grant(pid),
                Some(_) => continue, // committed pid has since halted
                None => self.refill(view),
            }
        }
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        // Drain the already-committed window only — the refill reads the
        // runnable set, which a mid-batch halt changes, so a refill
        // always starts a fresh batch. Halted entries are popped only as
        // the prefix of an actual grant: sequential `decide` calls skip
        // them exactly one-grant-at-a-time, so a trailing run of stale
        // entries must survive for the *next* decision to consume.
        let start = out.len();
        while out.len() - start < max {
            match self.window.iter().position(|&p| view.is_runnable(p)) {
                Some(skip) => {
                    self.window.drain(..skip);
                    let pid = self.window.pop_front().expect("position() found an entry");
                    out.push(Decision::Grant(pid));
                }
                None => break,
            }
        }
        if out.len() == start {
            out.push(self.decide(view));
        }
    }

    fn name(&self) -> &'static str {
        "lookahead"
    }
}

/// Bursty load: `len` fair ascending grants, then `gap` grants that all
/// hammer the lowest runnable pid, repeating. The burst phase spreads
/// steps like the fair schedule; the gap phase serializes everything
/// behind the front of the pid space — the classic duty-cycle load
/// shape that stresses protocols whose contention window assumes steady
/// interleaving.
///
/// Burst-phase grants are strictly ascending with no wrap, so they
/// batch exactly like [`FairAdversary`]; the gap phase grants the
/// lowest runnable pid, which may halt on its own grant and change the
/// *next* gap grant — so a gap decision is always a batch of one, as is
/// the burst wrap.
#[derive(Debug)]
pub struct BurstyAdversary {
    len: usize,
    gap: usize,
    cursor: usize,
    tick: usize,
}

impl BurstyAdversary {
    /// Bursts of `len ≥ 1` fair grants separated by `gap` front-hammer
    /// grants (`gap = 0` degenerates to the fair schedule).
    pub fn new(len: usize, gap: usize) -> Self {
        assert!(len >= 1, "bursty needs len >= 1");
        Self { len, gap, cursor: 0, tick: 0 }
    }
}

impl Adversary for BurstyAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let phase = self.tick % (self.len + self.gap);
        self.tick += 1;
        let pid = if phase < self.len {
            let pid = view
                .next_runnable(self.cursor)
                .or_else(|| view.next_runnable(0))
                .expect("decide() requires at least one runnable process");
            self.cursor = pid.index() + 1;
            pid
        } else {
            view.next_runnable(0).expect("decide() requires at least one runnable process")
        };
        Decision::Grant(pid)
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        let phase = self.tick % (self.len + self.gap);
        if phase >= self.len {
            out.push(self.decide(view));
            return;
        }
        // Burst: strictly ascending grants, cut at the burst boundary
        // and at the end of pid space (the wrap is its own batch).
        let start = out.len();
        let room = max.min(self.len - phase);
        let mut from = self.cursor;
        while out.len() - start < room {
            match view.next_runnable(from) {
                Some(pid) => {
                    out.push(Decision::Grant(pid));
                    from = pid.index() + 1;
                }
                None => break,
            }
        }
        if out.len() == start {
            out.push(self.decide(view));
            return;
        }
        self.cursor = from;
        self.tick += out.len() - start;
    }

    fn name(&self) -> &'static str {
        "bursty"
    }
}

/// Diurnal rate: the eligible prefix of the runnable set swells and
/// shrinks with a period-`P` duty cycle, emulating a trace whose offered
/// load follows a day/night sinusoid. The wave is an integer triangle
/// approximation of the sinusoid — kept integral on purpose, since
/// `f64::sin` is not bit-identical across platforms and every schedule
/// here must replay exactly.
///
/// Keeps the default single-decision [`Adversary::decide_batch`] on
/// purpose: the eligible prefix is indexed into the *live* runnable
/// set, which shrinks whenever a mid-batch grantee halts — batching
/// against a stale view would grant outside the window sequential
/// decisions would have used. (The opt-out mirrors `random`, whose
/// per-decision RNG is the schedule; here the per-decision runnable
/// census is.)
#[derive(Debug)]
pub struct DiurnalAdversary {
    period: u64,
    tick: u64,
}

impl DiurnalAdversary {
    /// Duty cycle of `period ≥ 2` decisions.
    pub fn new(period: u64) -> Self {
        assert!(period >= 2, "diurnal needs period >= 2");
        Self { period, tick: 0 }
    }
}

impl Adversary for DiurnalAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let count = view.runnable_count() as u64;
        let phase = self.tick % self.period;
        let half = self.period / 2;
        // Triangle wave over [0, period]: 0 at phase 0, peak mid-period.
        let amp = if phase < half { 2 * phase } else { 2 * (self.period - phase) };
        let eligible = (count * amp / self.period).clamp(1, count) as usize;
        let idx = (self.tick % eligible as u64) as usize;
        self.tick += 1;
        let pid =
            view.runnable().nth(idx).expect("decide() requires at least one runnable process");
        Decision::Grant(pid)
    }

    fn name(&self) -> &'static str {
        "diurnal"
    }
}

/// Targeted-victim starvation: the fair schedule over everyone *except*
/// pid `victim`, which is granted only when it is the last runnable
/// process (an adversary cannot block all processes forever). The
/// strongest schedule-only starvation attack against one process —
/// wait-free protocols must still name the victim, merely late.
///
/// A `victim ≥ n` names nobody and degenerates to the fair schedule.
/// Batching is [`FairAdversary`]'s argument verbatim with one pid
/// excluded: strictly ascending non-victim grants from one view; the
/// wrap and the victim-only endgame are single-decision batches.
#[derive(Debug)]
pub struct VictimAdversary {
    victim: usize,
    cursor: usize,
}

impl VictimAdversary {
    /// Starves `victim`.
    pub fn new(victim: usize) -> Self {
        Self { victim, cursor: 0 }
    }

    /// First runnable non-victim pid at or after `from`.
    fn next_non_victim(&self, view: &RunView<'_>, mut from: usize) -> Option<Pid> {
        while let Some(pid) = view.next_runnable(from) {
            if pid.index() != self.victim {
                return Some(pid);
            }
            from = pid.index() + 1;
        }
        None
    }
}

impl Adversary for VictimAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let pid = self
            .next_non_victim(view, self.cursor)
            .or_else(|| self.next_non_victim(view, 0))
            .unwrap_or_else(|| {
                // Only the victim is left — forced progress.
                view.next_runnable(0).expect("decide() requires at least one runnable process")
            });
        self.cursor = pid.index() + 1;
        Decision::Grant(pid)
    }

    fn decide_batch(&mut self, view: &RunView<'_>, out: &mut Vec<Decision>, max: usize) {
        let start = out.len();
        let mut from = self.cursor;
        while out.len() - start < max {
            match self.next_non_victim(view, from) {
                Some(pid) => {
                    out.push(Decision::Grant(pid));
                    from = pid.index() + 1;
                }
                None => break,
            }
        }
        if out.len() == start {
            out.push(self.decide(view));
            return;
        }
        self.cursor = from;
    }

    fn name(&self) -> &'static str {
        "victim"
    }
}

/// Owns the packed state a [`RunView`] borrows — for unit tests and
/// microbenches that drive an adversary without a full executor.
///
/// Built from the announcement table alone: pids with an announced
/// access are runnable, the rest are marked halted, and the slot roster
/// is captured *after* marking (so `slot_count() == runnable_count()`;
/// tests that need stale slots build the pieces by hand).
#[derive(Debug)]
pub struct ViewFixture {
    status: StatusBitmap,
    slots: SlotSnapshot,
    announced: EntityVec<Pid, Option<Access>>,
    steps: EntityVec<Pid, u64>,
    named: usize,
}

impl ViewFixture {
    /// A fixture where exactly the `Some` entries of `announced` are
    /// runnable.
    pub fn new(announced: EntityVec<Pid, Option<Access>>) -> Self {
        let n = announced.len();
        let mut status = StatusBitmap::new();
        status.reset(n);
        for (pid, ann) in announced.iter_enumerated() {
            if ann.is_none() {
                status.set(pid, crate::bits::Status::GaveUp);
            }
        }
        let mut slots = SlotSnapshot::new();
        slots.capture(&status);
        Self { status, slots, announced, steps: vec![0u64; n].into(), named: 0 }
    }

    /// A borrowed view over the fixture's state.
    pub fn view(&self) -> RunView<'_> {
        RunView::new(&self.status, &self.slots, &self.announced, &self.steps, self.named)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::Status;

    fn grant(d: Decision) -> usize {
        match d {
            Decision::Grant(p) => p.index(),
            _ => panic!("expected a grant, got {d:?}"),
        }
    }

    #[test]
    fn fair_is_round_robin() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 3]);
        let mut adv = FairAdversary::default();
        let picks: Vec<_> = (0..6).map(|_| grant(adv.decide(&fx.view()))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn fair_skips_inactive() {
        let fx = ViewFixture::new(crate::entity_vec![
            None,
            Some(Access::Local),
            None,
            Some(Access::Local),
            None,
        ]);
        let mut adv = FairAdversary::default();
        let p1 = adv.decide(&fx.view());
        let p2 = adv.decide(&fx.view());
        let p3 = adv.decide(&fx.view());
        assert_eq!(p1, Decision::Grant(Pid::new(1)));
        assert_eq!(p2, Decision::Grant(Pid::new(3)));
        assert_eq!(p3, Decision::Grant(Pid::new(1)));
    }

    #[test]
    fn fair_batch_matches_sequential_decides() {
        // Against an unchanging view, a batch must be a prefix of what
        // sequential decide() calls produce — including the wrap, which
        // only ever happens as a batch of one.
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 5]);
        let mut sequential = FairAdversary::default();
        let expect: Vec<_> = (0..8).map(|_| sequential.decide(&fx.view())).collect();

        let mut batched = FairAdversary::default();
        let mut got = Vec::new();
        while got.len() < 8 {
            let want = 8 - got.len();
            batched.decide_batch(&fx.view(), &mut got, want);
        }
        assert_eq!(got, expect);
        // First batch runs to the end of pid space (5 grants), the wrap
        // is its own single-grant batch.
        let mut first = Vec::new();
        FairAdversary::default().decide_batch(&fx.view(), &mut first, 8);
        assert_eq!(first.len(), 5);
    }

    #[test]
    fn random_is_deterministic_given_seed() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 10]);
        let run = |seed| {
            let mut adv = RandomAdversary::new(seed);
            (0..20).map(|_| grant(adv.decide(&fx.view()))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn random_rejects_stale_slots() {
        // Roster captured while all 4 pids ran; pid 1 has since halted.
        // Sampling must reject slot 1 and re-draw, never granting it.
        let mut status = StatusBitmap::new();
        status.reset(4);
        let mut slots = SlotSnapshot::new();
        slots.capture(&status);
        status.set(Pid::new(1), Status::Named);
        let announced: EntityVec<Pid, Option<Access>> = crate::entity_vec![
            Some(Access::Local),
            None,
            Some(Access::Local),
            Some(Access::Local),
        ];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 4];
        let view = RunView::new(&status, &slots, &announced, &steps, 0);
        assert_eq!(view.slot_count(), 4);
        assert_eq!(view.runnable_count(), 3);
        let mut adv = RandomAdversary::new(3);
        for _ in 0..50 {
            assert_ne!(grant(adv.decide(&view)), 1);
        }
    }

    #[test]
    fn collision_maximizer_groups_by_target() {
        // pids 0,2 target register 5; pid 1 targets register 9.
        let fx = ViewFixture::new(crate::entity_vec![
            Some(Access::Tas { array: 0, index: 5 }),
            Some(Access::Tas { array: 0, index: 9 }),
            Some(Access::Tas { array: 0, index: 5 }),
        ]);
        let mut adv = CollisionMaximizer::default();
        let first = grant(adv.decide(&fx.view()));
        let second = grant(adv.decide(&fx.view()));
        let granted = [first, second];
        // Both members of the largest group come before pid 1.
        assert!(granted.contains(&0) && granted.contains(&2), "granted {granted:?}");
    }

    #[test]
    fn stall_winners_prefers_losers() {
        let fx = ViewFixture::new(crate::entity_vec![
            Some(Access::Tas { array: 0, index: 0 }), // would win
            Some(Access::Tas { array: 0, index: 1 }), // would lose
        ]);
        let mut adv = StallWinners::new(Box::new(|a: &Access| a.index() == Some(0)));
        assert_eq!(adv.decide(&fx.view()), Decision::Grant(Pid::new(1)));
    }

    #[test]
    fn stall_winners_grants_when_all_win() {
        let fx = ViewFixture::new({
            let mut v = vec![None; 5];
            v[3] = Some(Access::Tas { array: 0, index: 0 });
            v[4] = Some(Access::Tas { array: 0, index: 1 });
            v.into()
        });
        let mut adv = StallWinners::new(Box::new(|_| true));
        assert_eq!(adv.decide(&fx.view()), Decision::Grant(Pid::new(3)));
    }

    #[test]
    fn crash_adversary_respects_budget() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Tas { array: 0, index: 0 }); 10]);
        let mut adv = CrashAdversary::new(FairAdversary::default(), 1.0, 3, 1);
        let mut crashes = 0;
        for _ in 0..50 {
            if let Decision::Crash(_) = adv.decide(&fx.view()) {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 3);
        assert_eq!(adv.crashes(), 3);
    }

    #[test]
    fn crash_adversary_never_crashes_last_process() {
        let fx = ViewFixture::new({
            let mut v = vec![None; 6];
            v[5] = Some(Access::Tas { array: 0, index: 0 });
            v.into()
        });
        let mut adv = CrashAdversary::new(FairAdversary::default(), 1.0, 100, 1);
        for _ in 0..10 {
            assert!(matches!(
                adv.decide(&fx.view()),
                Decision::Grant(p) if p == Pid::new(5)
            ));
        }
    }

    #[test]
    fn crash_zero_probability_never_crashes() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Tas { array: 0, index: 0 }); 4]);
        let mut adv = CrashAdversary::new(FairAdversary::default(), 0.0, 100, 1);
        for _ in 0..20 {
            assert!(matches!(adv.decide(&fx.view()), Decision::Grant(_)));
        }
    }

    #[test]
    fn lookahead_one_is_fair() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 4]);
        let mut look = LookaheadAdversary::new(1);
        let mut fair = FairAdversary::default();
        for _ in 0..10 {
            assert_eq!(look.decide(&fx.view()), fair.decide(&fx.view()));
        }
    }

    #[test]
    fn lookahead_commits_a_window_and_skips_stale_entries() {
        // Window committed over 4 runnable pids; pid 2 halts before its
        // grant. The plan skips it without re-planning.
        let mut status = StatusBitmap::new();
        status.reset(4);
        let mut slots = SlotSnapshot::new();
        slots.capture(&status);
        let announced: EntityVec<Pid, Option<Access>> = crate::entity_vec![Some(Access::Local); 4];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 4];
        let view = RunView::new(&status, &slots, &announced, &steps, 0);
        let mut adv = LookaheadAdversary::new(4);
        assert_eq!(grant(adv.decide(&view)), 0);
        status.set(Pid::new(2), Status::Named);
        let view = RunView::new(&status, &slots, &announced, &steps, 0);
        assert_eq!(grant(adv.decide(&view)), 1);
        assert_eq!(grant(adv.decide(&view)), 3, "halted pid 2 skipped, not granted");
    }

    #[test]
    fn lookahead_batch_is_a_prefix_of_sequential_decides() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 5]);
        let mut sequential = LookaheadAdversary::new(3);
        let expect: Vec<_> = (0..9).map(|_| sequential.decide(&fx.view())).collect();
        let mut batched = LookaheadAdversary::new(3);
        let mut got = Vec::new();
        while got.len() < 9 {
            let want = 9 - got.len();
            batched.decide_batch(&fx.view(), &mut got, want);
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn bursty_alternates_fair_bursts_and_front_hammering() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 5]);
        let mut adv = BurstyAdversary::new(3, 2);
        let picks: Vec<_> = (0..10).map(|_| grant(adv.decide(&fx.view()))).collect();
        // 3 fair grants, 2 grants of the lowest pid, repeat.
        assert_eq!(picks, vec![0, 1, 2, 0, 0, 3, 4, 0, 0, 0]);
    }

    #[test]
    fn bursty_batch_stops_at_the_phase_boundary() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 5]);
        let mut adv = BurstyAdversary::new(3, 1);
        let mut out = Vec::new();
        adv.decide_batch(&fx.view(), &mut out, 10);
        assert_eq!(out.len(), 3, "burst batches never cross into the gap");
        out.clear();
        adv.decide_batch(&fx.view(), &mut out, 10);
        assert_eq!(out, vec![Decision::Grant(Pid::new(0))], "gap is a batch of one");
    }

    #[test]
    fn diurnal_stays_in_the_eligible_prefix_and_is_deterministic() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 8]);
        let run = || {
            let mut adv = DiurnalAdversary::new(8);
            (0..32).map(|_| grant(adv.decide(&fx.view()))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        // At phase 0 the window collapses to a single pid.
        let mut adv = DiurnalAdversary::new(8);
        assert_eq!(grant(adv.decide(&fx.view())), 0);
        // Across a full period every grant is a legal runnable pid and
        // the mid-period window opens past the front.
        let picks = run();
        assert!(picks.iter().all(|&p| p < 8));
        assert!(picks.iter().any(|&p| p > 0), "window must open mid-period");
    }

    #[test]
    fn victim_granted_only_when_alone() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 3]);
        let mut adv = VictimAdversary::new(1);
        let picks: Vec<_> = (0..6).map(|_| grant(adv.decide(&fx.view()))).collect();
        assert_eq!(picks, vec![0, 2, 0, 2, 0, 2], "victim 1 never granted while others run");
        // Victim alone: forced progress.
        let fx = ViewFixture::new(crate::entity_vec![None, Some(Access::Local), None]);
        assert_eq!(grant(adv.decide(&fx.view())), 1);
    }

    #[test]
    fn victim_out_of_range_degenerates_to_fair() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 3]);
        let mut adv = VictimAdversary::new(99);
        let mut fair = FairAdversary::default();
        for _ in 0..7 {
            assert_eq!(adv.decide(&fx.view()), fair.decide(&fx.view()));
        }
    }

    #[test]
    fn victim_batch_matches_sequential_decides() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 5]);
        let mut sequential = VictimAdversary::new(2);
        let expect: Vec<_> = (0..8).map(|_| sequential.decide(&fx.view())).collect();
        let mut batched = VictimAdversary::new(2);
        let mut got = Vec::new();
        while got.len() < 8 {
            let want = 8 - got.len();
            batched.decide_batch(&fx.view(), &mut got, want);
        }
        assert_eq!(got, expect);
        assert!(got.iter().all(|&d| d != Decision::Grant(Pid::new(2))));
    }

    #[test]
    fn zoo_names_are_stable() {
        assert_eq!(LookaheadAdversary::new(2).name(), "lookahead");
        assert_eq!(BurstyAdversary::new(4, 2).name(), "bursty");
        assert_eq!(DiurnalAdversary::new(16).name(), "diurnal");
        assert_eq!(VictimAdversary::new(0).name(), "victim");
    }

    #[test]
    fn view_defaults_to_a_single_shard() {
        let fx = ViewFixture::new(crate::entity_vec![Some(Access::Local); 2]);
        assert_eq!(fx.view().shards, ShardMap::single());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FairAdversary::default().name(), "fair");
        assert_eq!(RandomAdversary::new(0).name(), "random");
        assert_eq!(CollisionMaximizer::default().name(), "collision-max");
    }
}

#[cfg(test)]
mod stall_integration {
    use super::*;
    use crate::process::Process;
    use crate::virtual_exec::run;
    use rr_shmem::tas::{AtomicTasArray, TasMemory};
    use std::sync::Arc;

    /// A probing process: random-ish scan until it wins.
    struct Prober {
        pid: usize,
        mem: Arc<AtomicTasArray>,
        cursor: usize,
    }

    impl Process for Prober {
        fn announce(&mut self) -> Access {
            Access::Tas { array: 0, index: self.cursor }
        }
        fn step(&mut self) -> crate::process::StepOutcome {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.mem.len();
            if self.mem.tas(i) {
                crate::process::StepOutcome::Done(i)
            } else {
                crate::process::StepOutcome::Continue
            }
        }
        fn pid(&self) -> Pid {
            Pid::new(self.pid)
        }
    }

    #[test]
    fn stall_winners_with_live_memory_probe_is_safe_and_slower() {
        let n = 32;
        let mem = Arc::new(AtomicTasArray::new(n));
        let make = |mem: &Arc<AtomicTasArray>| -> Vec<Box<dyn Process>> {
            (0..n)
                .map(|pid| {
                    Box::new(Prober { pid, mem: Arc::clone(mem), cursor: pid }) as Box<dyn Process>
                })
                .collect()
        };
        // Baseline under fair scheduling.
        let fair_out = run(make(&mem), &mut FairAdversary::default(), 1 << 20).unwrap();
        fair_out.verify_renaming(n).unwrap();

        // StallWinners wired to the *real* register state: an access
        // "would win" iff its target is still unset.
        let mem2 = Arc::new(AtomicTasArray::new(n));
        let probe_mem = Arc::clone(&mem2);
        let mut adv = StallWinners::new(Box::new(move |a: &Access| {
            a.index().is_some_and(|i| !probe_mem.is_set(i))
        }));
        let out = run(make(&mem2), &mut adv, 1 << 20).unwrap();
        out.verify_renaming(n).unwrap();
        // The staller wastes steps but cannot prevent completion.
        assert!(out.total_steps() >= fair_out.total_steps());
    }
}
