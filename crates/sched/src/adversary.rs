//! Adaptive adversaries (§II-A).
//!
//! The paper's adversary controls the order in which processes take steps
//! and which processes crash, and "is allowed to see the state of all
//! processes (including the results of coin flips) when making its
//! scheduling choices". Here that power is concrete: before every
//! decision the executor hands the adversary a [`RunView`] containing each
//! active process's *announced* next access — announcements are made
//! after the coin flip that chose the target register, so the adversary
//! schedules with full knowledge of the randomness.

use crate::ids::{EntityVec, Pid, ShardMap};
use rand::rngs::ChaCha8Rng;
use rand::{RngExt, SeedableRng};
use rr_shmem::Access;

/// What the adversary sees before each decision — one context struct
/// rather than a growing positional-argument list, so shard-aware fields
/// can ride along without breaking every strategy.
#[derive(Debug)]
pub struct RunView<'a> {
    /// Sorted *superset* of the pids still running: the executor
    /// tombstones halted pids and compacts lazily, so entries whose
    /// `announced` slot is `None` are already done/crashed and must not
    /// be granted. `announced[pid].is_some()` is the ground truth for
    /// runnability.
    pub active: &'a [Pid],
    /// `announced[pid]` — the access each runnable process will perform
    /// next (`None` for finished/crashed processes).
    pub announced: &'a EntityVec<Pid, Option<Access>>,
    /// Steps taken so far, indexed by pid.
    pub steps: &'a EntityVec<Pid, u64>,
    /// Number of processes that already hold a name (global across
    /// shards — under the shard backend this includes the other shards'
    /// counts as of the last coupling round).
    pub named: usize,
    /// How the run's pid space is partitioned across shards.
    /// [`ShardMap::single`] for every unsharded backend.
    pub shards: ShardMap,
}

impl<'a> RunView<'a> {
    /// An unsharded view — the common case for every serial executor and
    /// for tests.
    pub fn new(
        active: &'a [Pid],
        announced: &'a EntityVec<Pid, Option<Access>>,
        steps: &'a EntityVec<Pid, u64>,
        named: usize,
    ) -> Self {
        Self { active, announced, steps, named, shards: ShardMap::single() }
    }
}

/// Pre-redesign name of [`RunView`].
#[deprecated(note = "renamed to RunView; decide() now takes one context struct")]
pub type View<'a> = RunView<'a>;

/// One scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Let `pid` execute its announced access.
    Grant(Pid),
    /// Crash `pid`: it takes no further steps (and never gets a name).
    Crash(Pid),
}

/// An adaptive adversary strategy.
pub trait Adversary {
    /// Chooses the next decision. `view.active` is non-empty.
    fn decide(&mut self, view: &RunView<'_>) -> Decision;

    /// Strategy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Boxed adversaries delegate — so registry-built strategies can be
/// wrapped by [`crate::replay::RecordingAdversary`] and friends.
impl<A: Adversary + ?Sized> Adversary for Box<A> {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        (**self).decide(view)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Round-robin over active processes — the "benign" schedule.
#[derive(Debug, Default)]
pub struct FairAdversary {
    cursor: usize,
    /// Cached guess for the index of the first `active` entry ≥ cursor.
    /// Round-robin advances through `active` almost sequentially, so the
    /// guess is usually exact; it is *validated* against the sorted
    /// vector before use (two adjacent reads) and falls back to binary
    /// search when the executor's lazy compaction shifted the entries.
    /// Pure optimization: the granted sequence is identical either way,
    /// but at n = 2²⁰ the per-decision `partition_point` over an 8 MB
    /// vector was a measurable fraction of whole-run wall clock.
    hint: usize,
}

impl Adversary for FairAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        let active = view.active;
        let len = active.len();
        // Index of the first active entry ≥ cursor: the validated hint,
        // or a binary search when the hint is stale.
        let start = if self.hint <= len
            && (self.hint == 0 || active[self.hint - 1].index() < self.cursor)
            && (self.hint == len || active[self.hint].index() >= self.cursor)
        {
            self.hint
        } else {
            active.partition_point(|&p| p.index() < self.cursor)
        };
        // Grant the first runnable pid at or after the cursor, skipping
        // tombstones (amortized O(1): each tombstone is skipped at most
        // once per round-robin lap between compactions).
        let (offset, pid) = active[start..]
            .iter()
            .chain(active[..start].iter())
            .copied()
            .enumerate()
            .find(|&(_, p)| view.announced[p].is_some())
            .expect("decide() requires at least one runnable process");
        let index = if start + offset < len { start + offset } else { start + offset - len };
        self.cursor = pid.index() + 1;
        self.hint = index + 1;
        Decision::Grant(pid)
    }

    fn name(&self) -> &'static str {
        "fair"
    }
}

/// Uniformly random schedule.
#[derive(Debug)]
pub struct RandomAdversary {
    rng: ChaCha8Rng,
}

impl RandomAdversary {
    /// Seeded random schedule.
    pub fn new(seed: u64) -> Self {
        Self { rng: ChaCha8Rng::seed_from_u64(seed) }
    }
}

impl Adversary for RandomAdversary {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        // Rejection-sample past tombstones (< 50% of the vector by the
        // executor's compaction policy, so ≤ 2 tries expected).
        loop {
            let i = self.rng.random_range(0..view.active.len());
            let pid = view.active[i];
            if view.announced[pid].is_some() {
                return Decision::Grant(pid);
            }
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Maximizes collisions: finds the register announced by the most
/// processes and schedules all of them back to back, so every contested
/// TAS wastes the maximum number of steps. This is the natural attack on
/// randomized probing and exactly what the adversary's coin-flip
/// knowledge enables.
#[derive(Debug, Default)]
pub struct CollisionMaximizer {
    /// Pids queued for consecutive scheduling.
    burst: Vec<Pid>,
}

impl Adversary for CollisionMaximizer {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        // Drain the current burst first (skip pids no longer runnable).
        while let Some(pid) = self.burst.pop() {
            if view.announced.get(pid).is_some_and(|a| a.is_some()) {
                return Decision::Grant(pid);
            }
        }
        // Group active pids by announced target; pick the biggest group.
        let mut groups: std::collections::HashMap<(u32, usize), Vec<Pid>> =
            std::collections::HashMap::new();
        for &pid in view.active {
            if let Some(acc) = view.announced[pid] {
                let key = match acc {
                    Access::Tas { array, index } => (array, index),
                    Access::Read { array, index } => (array, index),
                    Access::TauRequest { register, bit } => (u32::MAX, register * 64 + bit),
                    Access::Local => (u32::MAX - 1, pid.index()),
                };
                groups.entry(key).or_default().push(pid);
            }
        }
        let mut best = groups
            .into_values()
            .max_by_key(|v| (v.len(), usize::MAX - v[0].index()))
            .expect("decide() requires at least one runnable process");
        // Grant one now, queue the rest.
        let pid = best.pop().unwrap();
        self.burst = best;
        Decision::Grant(pid)
    }

    fn name(&self) -> &'static str {
        "collision-max"
    }
}

/// Stalls likely winners: processes whose announced access would *win*
/// (per the supplied probe) are scheduled last; everyone burning a wasted
/// step goes first. With the probe wired to the actual TAS state this is
/// the strongest schedule-only attack against probing algorithms.
pub struct StallWinners {
    probe: Box<dyn FnMut(&Access) -> bool>,
}

impl StallWinners {
    /// `probe(access)` should return `true` if the access would currently
    /// succeed (e.g. the targeted register is still unset).
    pub fn new(probe: Box<dyn FnMut(&Access) -> bool>) -> Self {
        Self { probe }
    }
}

impl Adversary for StallWinners {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        for &pid in view.active {
            if let Some(acc) = view.announced[pid] {
                if !(self.probe)(&acc) {
                    return Decision::Grant(pid);
                }
            }
        }
        // Everyone would win; grant the first runnable (some progress is
        // forced — an adversary cannot block all processes forever).
        let pid = view
            .active
            .iter()
            .copied()
            .find(|&p| view.announced[p].is_some())
            .expect("decide() requires at least one runnable process");
        Decision::Grant(pid)
    }

    fn name(&self) -> &'static str {
        "stall-winners"
    }
}

impl std::fmt::Debug for StallWinners {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StallWinners").finish_non_exhaustive()
    }
}

/// Crash wrapper: delegates scheduling to `inner`, but whenever a process
/// announces a *winning-kind* access (TAS / τ-request), crashes it with
/// probability `p` — the cruelest moment, since the process may have
/// already been admitted somewhere. Total crashes capped by `budget`
/// (crashing everyone would make renaming vacuous).
#[derive(Debug)]
pub struct CrashAdversary<A> {
    inner: A,
    p: f64,
    budget: usize,
    crashed: usize,
    rng: ChaCha8Rng,
}

impl<A: Adversary> CrashAdversary<A> {
    /// Wraps `inner`, crashing at winning-kind announces with probability
    /// `p`, at most `budget` times.
    pub fn new(inner: A, p: f64, budget: usize, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        Self { inner, p, budget, crashed: 0, rng: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Number of processes crashed so far.
    pub fn crashes(&self) -> usize {
        self.crashed
    }
}

impl<A: Adversary> Adversary for CrashAdversary<A> {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        if self.crashed < self.budget && view.active.len() > 1 {
            for &pid in view.active {
                let winning = view.announced[pid].is_some_and(|a| a.is_winning_kind());
                if winning && self.rng.random_bool(self.p) {
                    self.crashed += 1;
                    return Decision::Crash(pid);
                }
            }
        }
        self.inner.decide(view)
    }

    fn name(&self) -> &'static str {
        "crash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::pids;

    fn view<'a>(
        active: &'a [Pid],
        announced: &'a EntityVec<Pid, Option<Access>>,
        steps: &'a EntityVec<Pid, u64>,
    ) -> RunView<'a> {
        RunView::new(active, announced, steps, 0)
    }

    fn grant(d: Decision) -> usize {
        match d {
            Decision::Grant(p) => p.index(),
            _ => panic!("expected a grant, got {d:?}"),
        }
    }

    #[test]
    fn fair_is_round_robin() {
        let active: Vec<Pid> = pids(3).collect();
        let ann: EntityVec<Pid, _> = crate::entity_vec![Some(Access::Local); 3];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 3];
        let mut adv = FairAdversary::default();
        let picks: Vec<_> =
            (0..6).map(|_| grant(adv.decide(&view(&active, &ann, &steps)))).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn fair_skips_inactive() {
        let ann: EntityVec<Pid, _> = crate::entity_vec![Some(Access::Local); 5];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 5];
        let mut adv = FairAdversary::default();
        let active = [Pid::new(1), Pid::new(3)];
        let p1 = adv.decide(&view(&active, &ann, &steps));
        let p2 = adv.decide(&view(&active, &ann, &steps));
        let p3 = adv.decide(&view(&active, &ann, &steps));
        assert_eq!(p1, Decision::Grant(Pid::new(1)));
        assert_eq!(p2, Decision::Grant(Pid::new(3)));
        assert_eq!(p3, Decision::Grant(Pid::new(1)));
    }

    #[test]
    fn random_is_deterministic_given_seed() {
        let active: Vec<Pid> = pids(10).collect();
        let ann: EntityVec<Pid, _> = crate::entity_vec![Some(Access::Local); 10];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 10];
        let run = |seed| {
            let mut adv = RandomAdversary::new(seed);
            (0..20).map(|_| grant(adv.decide(&view(&active, &ann, &steps)))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn collision_maximizer_groups_by_target() {
        // pids 0,2 target register 5; pid 1 targets register 9.
        let active: Vec<Pid> = pids(3).collect();
        let ann: EntityVec<Pid, _> = crate::entity_vec![
            Some(Access::Tas { array: 0, index: 5 }),
            Some(Access::Tas { array: 0, index: 9 }),
            Some(Access::Tas { array: 0, index: 5 }),
        ];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 3];
        let mut adv = CollisionMaximizer::default();
        let first = grant(adv.decide(&view(&active, &ann, &steps)));
        let second = grant(adv.decide(&view(&active, &ann, &steps)));
        let granted = [first, second];
        // Both members of the largest group come before pid 1.
        assert!(granted.contains(&0) && granted.contains(&2), "granted {granted:?}");
    }

    #[test]
    fn stall_winners_prefers_losers() {
        let active: Vec<Pid> = pids(2).collect();
        let ann: EntityVec<Pid, _> = crate::entity_vec![
            Some(Access::Tas { array: 0, index: 0 }), // would win
            Some(Access::Tas { array: 0, index: 1 }), // would lose
        ];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 2];
        let mut adv = StallWinners::new(Box::new(|a: &Access| a.index() == Some(0)));
        assert_eq!(adv.decide(&view(&active, &ann, &steps)), Decision::Grant(Pid::new(1)));
    }

    #[test]
    fn stall_winners_grants_when_all_win() {
        let active = [Pid::new(3), Pid::new(4)];
        let ann: EntityVec<Pid, _> = {
            let mut v = vec![None; 5];
            v[3] = Some(Access::Tas { array: 0, index: 0 });
            v[4] = Some(Access::Tas { array: 0, index: 1 });
            v.into()
        };
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 5];
        let mut adv = StallWinners::new(Box::new(|_| true));
        assert_eq!(adv.decide(&view(&active, &ann, &steps)), Decision::Grant(Pid::new(3)));
    }

    #[test]
    fn crash_adversary_respects_budget() {
        let active: Vec<Pid> = pids(10).collect();
        let ann: EntityVec<Pid, _> =
            crate::entity_vec![Some(Access::Tas { array: 0, index: 0 }); 10];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 10];
        let mut adv = CrashAdversary::new(FairAdversary::default(), 1.0, 3, 1);
        let mut crashes = 0;
        for _ in 0..50 {
            if let Decision::Crash(_) = adv.decide(&view(&active, &ann, &steps)) {
                crashes += 1;
            }
        }
        assert_eq!(crashes, 3);
        assert_eq!(adv.crashes(), 3);
    }

    #[test]
    fn crash_adversary_never_crashes_last_process() {
        let active = [Pid::new(5)];
        let ann: EntityVec<Pid, _> = {
            let mut v = vec![None; 6];
            v[5] = Some(Access::Tas { array: 0, index: 0 });
            v.into()
        };
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 6];
        let mut adv = CrashAdversary::new(FairAdversary::default(), 1.0, 100, 1);
        for _ in 0..10 {
            assert!(matches!(
                adv.decide(&view(&active, &ann, &steps)),
                Decision::Grant(p) if p == Pid::new(5)
            ));
        }
    }

    #[test]
    fn crash_zero_probability_never_crashes() {
        let active: Vec<Pid> = pids(4).collect();
        let ann: EntityVec<Pid, _> =
            crate::entity_vec![Some(Access::Tas { array: 0, index: 0 }); 4];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 4];
        let mut adv = CrashAdversary::new(FairAdversary::default(), 0.0, 100, 1);
        for _ in 0..20 {
            assert!(matches!(adv.decide(&view(&active, &ann, &steps)), Decision::Grant(_)));
        }
    }

    #[test]
    fn view_defaults_to_a_single_shard() {
        let active: Vec<Pid> = pids(2).collect();
        let ann: EntityVec<Pid, _> = crate::entity_vec![Some(Access::Local); 2];
        let steps: EntityVec<Pid, u64> = crate::entity_vec![0; 2];
        let v = RunView::new(&active, &ann, &steps, 0);
        assert_eq!(v.shards, ShardMap::single());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(FairAdversary::default().name(), "fair");
        assert_eq!(RandomAdversary::new(0).name(), "random");
        assert_eq!(CollisionMaximizer::default().name(), "collision-max");
    }
}

#[cfg(test)]
mod stall_integration {
    use super::*;
    use crate::process::Process;
    use crate::virtual_exec::run;
    use rr_shmem::tas::{AtomicTasArray, TasMemory};
    use std::sync::Arc;

    /// A probing process: random-ish scan until it wins.
    struct Prober {
        pid: usize,
        mem: Arc<AtomicTasArray>,
        cursor: usize,
    }

    impl Process for Prober {
        fn announce(&mut self) -> Access {
            Access::Tas { array: 0, index: self.cursor }
        }
        fn step(&mut self) -> crate::process::StepOutcome {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.mem.len();
            if self.mem.tas(i) {
                crate::process::StepOutcome::Done(i)
            } else {
                crate::process::StepOutcome::Continue
            }
        }
        fn pid(&self) -> Pid {
            Pid::new(self.pid)
        }
    }

    #[test]
    fn stall_winners_with_live_memory_probe_is_safe_and_slower() {
        let n = 32;
        let mem = Arc::new(AtomicTasArray::new(n));
        let make = |mem: &Arc<AtomicTasArray>| -> Vec<Box<dyn Process>> {
            (0..n)
                .map(|pid| {
                    Box::new(Prober { pid, mem: Arc::clone(mem), cursor: pid }) as Box<dyn Process>
                })
                .collect()
        };
        // Baseline under fair scheduling.
        let fair_out = run(make(&mem), &mut FairAdversary::default(), 1 << 20).unwrap();
        fair_out.verify_renaming(n).unwrap();

        // StallWinners wired to the *real* register state: an access
        // "would win" iff its target is still unset.
        let mem2 = Arc::new(AtomicTasArray::new(n));
        let probe_mem = Arc::clone(&mem2);
        let mut adv = StallWinners::new(Box::new(move |a: &Access| {
            a.index().is_some_and(|i| !probe_mem.is_set(i))
        }));
        let out = run(make(&mem2), &mut adv, 1 << 20).unwrap();
        out.verify_renaming(n).unwrap();
        // The staller wastes steps but cannot prevent completion.
        assert!(out.total_steps() >= fair_out.total_steps());
    }
}
