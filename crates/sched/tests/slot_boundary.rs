//! Pins [`SlotSnapshot`] behavior at the exact `len() > 2 · live`
//! lazy-compaction boundary the executor uses (see the recapture
//! trigger in `shard.rs`).
//!
//! The threshold is observable — `RandomAdversary` rejection-samples
//! slot indices, so a recapture one decision early or late changes the
//! RNG stream and every schedule after it. These tests freeze the
//! boundary semantics on both sides: at `len == 2 · live` the roster
//! must stay stale (halted pids still occupy slots), and at
//! `len == 2 · live + 1` a recapture must compact to exactly the
//! runnable set.

use rr_sched::{Pid, SlotSnapshot, Status, StatusBitmap};

/// Replicates the executor's per-batch trigger.
fn maybe_recapture(slots: &mut SlotSnapshot, status: &StatusBitmap, live: usize) -> bool {
    if slots.len() > 2 * live {
        slots.capture(status);
        true
    } else {
        false
    }
}

fn pids(slots: &SlotSnapshot) -> Vec<usize> {
    slots.iter().map(Pid::index).collect()
}

#[test]
fn at_exactly_two_x_live_the_roster_stays_stale() {
    let n = 8;
    let mut status = StatusBitmap::new();
    status.reset(n);
    let mut slots = SlotSnapshot::new();
    slots.capture(&status);
    assert_eq!(slots.len(), n);

    // Halt half: live = 4, len = 8 = 2·live — NOT strictly greater, so
    // the executor would not recapture and every stale slot survives.
    for i in [1, 3, 4, 6] {
        status.set(Pid::new(i), Status::GaveUp);
    }
    let live = status.runnable_count();
    assert_eq!(live, 4);
    assert!(!maybe_recapture(&mut slots, &status, live));
    assert_eq!(slots.len(), 8, "len == 2·live must keep the stale roster");
    assert_eq!(pids(&slots), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    // select() still rank-indexes the capture-time set, halted or not:
    assert_eq!(slots.select(3), Pid::new(3));
    assert!(!status.is_runnable(slots.select(3)), "stale slots may point at halted pids");
}

#[test]
fn one_past_the_boundary_recaptures_to_the_runnable_set() {
    let n = 8;
    let mut status = StatusBitmap::new();
    status.reset(n);
    let mut slots = SlotSnapshot::new();
    slots.capture(&status);
    for i in [1, 3, 4, 6] {
        status.set(Pid::new(i), Status::GaveUp);
    }
    // One more halt: live = 3, len = 8 > 6 — recapture compacts.
    status.set(Pid::new(0), Status::Crashed);
    let live = status.runnable_count();
    assert_eq!(live, 3);
    assert!(maybe_recapture(&mut slots, &status, live));
    assert_eq!(slots.len(), 3);
    assert_eq!(pids(&slots), vec![2, 5, 7], "recapture keeps exactly the runnable pids, sorted");
    assert_eq!(slots.select(0), Pid::new(2));
    assert_eq!(slots.select(2), Pid::new(7));
}

#[test]
fn boundary_holds_across_word_boundaries() {
    // 130 pids span three 64-bit runnable words; halt everything except
    // three survivors placed in different words, crossing the boundary
    // exactly as in the small case.
    let n = 130;
    let mut status = StatusBitmap::new();
    status.reset(n);
    let mut slots = SlotSnapshot::new();
    slots.capture(&status);
    assert_eq!(slots.len(), n);

    let survivors = [5usize, 70, 129];
    for i in 0..n {
        if !survivors.contains(&i) {
            status.set(Pid::new(i), Status::GaveUp);
        }
    }
    let live = status.runnable_count();
    assert_eq!(live, 3);

    // Stale read just before the executor's check would fire: slot i is
    // still pid i.
    assert_eq!(slots.select(69), Pid::new(69));
    assert_eq!(slots.select(129), Pid::new(129));

    assert!(maybe_recapture(&mut slots, &status, live));
    assert_eq!(slots.len(), 3);
    assert_eq!(pids(&slots), vec![5, 70, 129]);
}

#[test]
#[should_panic(expected = "slot 3 out of range 3")]
fn select_past_len_panics_with_the_pinned_message() {
    let mut status = StatusBitmap::new();
    status.reset(3);
    let mut slots = SlotSnapshot::new();
    slots.capture(&status);
    let _ = slots.select(3);
}
