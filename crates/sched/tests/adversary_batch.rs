//! Property test pinning the [`Adversary::decide_batch`] contract for
//! every adversary in the standard registry.
//!
//! The contract (see the trait doc): from one unrefreshed view, a
//! batch of length `k ≤ max` must be *exactly* the decisions that `k`
//! sequential [`Adversary::decide`] calls on an identically-seeded
//! twin would have made against that same frozen view — never zero
//! decisions, and never granting the same pid twice in one batch.
//!
//! The oracle is literally that twin: for each registry key we build
//! the strategy twice with the same `(n, seed)`, drive one through
//! `decide_batch` and the other through sequential `decide` calls over
//! a seeded stream of randomized fixtures, and require the streams to
//! stay identical round after round (so batching can also never skew
//! the strategy's *future* state).

use rand::rngs::ChaCha8Rng;
use rand::{RngExt, SeedableRng};
use rr_sched::adversary::{Adversary, Decision, ViewFixture};
use rr_sched::registry::standard;
use rr_sched::{entity_vec, EntityVec, Pid};
use rr_shmem::intent::Access;

/// A randomized announcement table with at least one runnable process.
fn random_fixture(rng: &mut ChaCha8Rng, n: usize) -> ViewFixture {
    let mut announced: EntityVec<Pid, Option<Access>> = entity_vec![None; n];
    loop {
        for pid in 0..n {
            let ann = match rng.random_range(0..6u32) {
                0 => None,
                1 => Some(Access::Local),
                2 => Some(Access::Tas {
                    array: rng.random_range(0..2),
                    index: rng.random_range(0..4),
                }),
                3 => Some(Access::Read {
                    array: rng.random_range(0..2),
                    index: rng.random_range(0..4),
                }),
                4 => Some(Access::TauRequest {
                    register: rng.random_range(0..2),
                    bit: rng.random_range(0..4),
                }),
                _ => Some(Access::Tas { array: 0, index: 0 }),
            };
            announced[Pid::from(pid)] = ann;
        }
        if announced.iter().any(Option::is_some) {
            return ViewFixture::new(announced);
        }
    }
}

fn granted_pids(batch: &[Decision]) -> Vec<Pid> {
    batch
        .iter()
        .filter_map(|d| match d {
            Decision::Grant(p) => Some(*p),
            Decision::Crash(_) => None,
        })
        .collect()
}

#[test]
fn decide_batch_matches_sequential_decide_for_every_registry_key() {
    let registry = standard();
    let keys = registry.keys();
    assert!(keys.len() >= 7, "expected the full standard registry, got {keys:?}");
    for key in keys {
        for seed in 0..8u64 {
            for n in [1usize, 2, 3, 5, 9, 17] {
                let mut batched = registry.build(key, n, seed).expect("registry key builds");
                let mut oracle = registry.build(key, n, seed).expect("registry key builds");
                let mut fixture_rng = ChaCha8Rng::seed_from_u64(seed ^ (n as u64) << 32);
                for round in 0..12 {
                    let fx = random_fixture(&mut fixture_rng, n);
                    let view = fx.view();
                    let max = 1 + (round % 4);
                    let mut batch = Vec::new();
                    batched.decide_batch(&view, &mut batch, max);
                    assert!(
                        !batch.is_empty() && batch.len() <= max,
                        "{key}: batch size {} outside 1..={max}",
                        batch.len()
                    );
                    let mut grants = granted_pids(&batch);
                    grants.sort_unstable();
                    let before = grants.len();
                    grants.dedup();
                    assert_eq!(
                        before,
                        grants.len(),
                        "{key}: a pid was granted twice in one batch (seed {seed}, n {n})"
                    );
                    let expected: Vec<Decision> =
                        batch.iter().map(|_| oracle.decide(&view)).collect();
                    assert_eq!(
                        batch, expected,
                        "{key}: batch diverged from sequential decide (seed {seed}, n {n}, round {round})"
                    );
                }
            }
        }
    }
}
