//! # rr-report — the reproduction report subsystem
//!
//! Closes the loop back to the paper: consumes the scenario engine's
//! record streams (`BENCH_*.json` files or in-memory records from a
//! `ReportSink`), evaluates every numbered claim — Lemmas 3/4/6/8,
//! Theorem 5, Corollaries 7/9 — against the bound it states, and
//! renders a deterministic `REPRODUCTION.md` with a PASS / FAIL /
//! INCONCLUSIVE verdict, the fitted scaling curve, and a hand-rolled
//! inline SVG chart per claim.
//!
//! The pipeline is pure: [`records`] parses the `JsonSink` format back,
//! [`claims`] + [`cross`] compute verdicts (re-deriving predicted
//! bounds from `rr-renaming`'s committed parameterizations and the
//! Chernoff machinery in `rr-analysis`), [`svg`] draws, [`render`]
//! emits markdown. No timestamps, no wall-clock fields — the report is
//! a function of its inputs, so CI pins it byte-for-byte.
//!
//! ```
//! use rr_report::{generate, records::parse_records};
//!
//! let recs = parse_records(
//!     r#"[
//! {"scenario":"E1","section":"","algorithm":"tight-tau:c=4","n":256,"seeds":5,
//!  "steps_p50":50,"steps_max":50,"unnamed_max":0,"violations":0},
//! {"scenario":"E1","section":"","algorithm":"tight-tau:c=4","n":1024,"seeds":5,
//!  "steps_p50":57,"steps_max":57,"unnamed_max":0,"violations":0}
//! ]"#,
//! )
//! .unwrap();
//! let report = generate(&recs, vec!["inline".into()]);
//! let theorem5 = report.claims.iter().find(|c| c.id == "theorem5").unwrap();
//! assert_eq!(theorem5.verdict.label(), "PASS");
//! assert!(report.to_markdown().contains("# Reproduction report"));
//! ```

#![forbid(unsafe_code)]

pub mod claims;
pub mod cross;
pub mod records;
pub mod render;
pub mod svg;

pub use claims::{claim_ids, evaluate_claims, ClaimOutcome};
pub use cross::{evaluate_cross, CrossOutcome};
pub use records::{parse_records, Rec};
pub use render::slugify;
pub use rr_analysis::verdict::Verdict;

/// The fully evaluated report: every paper claim plus the cross-checks.
#[derive(Debug, Clone)]
pub struct Report {
    /// Numbered paper claims, in paper order.
    pub claims: Vec<ClaimOutcome>,
    /// Matrix-safety and schedule-space cross-checks.
    pub cross: Vec<CrossOutcome>,
    /// Display names of the record inputs (file names or `"in-memory"`).
    pub inputs: Vec<String>,
}

/// Evaluates all claims and cross-checks over `recs`.
pub fn generate(recs: &[Rec], inputs: Vec<String>) -> Report {
    Report { claims: evaluate_claims(recs), cross: evaluate_cross(recs), inputs }
}

impl Report {
    /// Renders the deterministic markdown (the `REPRODUCTION.md` body).
    pub fn to_markdown(&self) -> String {
        render::to_markdown(self)
    }

    /// The worst verdict across claims and cross-checks — `Fail` is the
    /// CI gate (`exp_report` exits non-zero on it).
    pub fn worst_verdict(&self) -> Verdict {
        self.claims
            .iter()
            .map(|c| c.verdict)
            .chain(self.cross.iter().map(|c| c.verdict))
            .fold(Verdict::Pass, Verdict::worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_all_inconclusive_never_fail() {
        let report = generate(&[], vec![]);
        assert_eq!(report.claims.len(), 7);
        assert_eq!(report.cross.len(), 3);
        assert_eq!(report.worst_verdict(), Verdict::Inconclusive);
    }

    #[test]
    fn worst_verdict_is_the_ci_gate() {
        let mut report = generate(&[], vec![]);
        report.claims[0].verdict = Verdict::Pass;
        assert_eq!(report.worst_verdict(), Verdict::Inconclusive);
        report.cross[1].verdict = Verdict::Fail;
        assert_eq!(report.worst_verdict(), Verdict::Fail);
    }

    #[test]
    fn markdown_is_deterministic() {
        let report = generate(&[], vec!["a.json".into()]);
        assert_eq!(report.to_markdown(), report.to_markdown());
    }
}
