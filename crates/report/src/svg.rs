//! Hand-rolled inline SVG charts for the reproduction report — no
//! dependencies, no scripts, fully deterministic output (every
//! coordinate is formatted to a fixed precision), so the generated
//! `REPRODUCTION.md` can be byte-pinned by a golden test.
//!
//! Design rules (from the data-viz method this repo follows): at most
//! three categorical series per chart, hues assigned in fixed validated
//! order; measured data is solid line + markers and the predicted bound
//! is a dashed curve in the *same* hue (color follows the ℓ-series
//! entity, line style carries measured-vs-bound); recessive grid; an
//! explicit light surface so the chart stays readable on dark viewers;
//! the markdown data table next to each chart is the table view.

use std::fmt::Write as _;

/// Categorical palette, fixed assignment order (validated light-mode
/// slots: blue, orange, aqua).
const PALETTE: [&str; 3] = ["#2a78d6", "#eb6834", "#1baf7a"];
const SURFACE: &str = "#fcfcfb";
const INK: &str = "#0b0b0b";
const INK_SOFT: &str = "#52514e";
const GRID: &str = "#e4e3df";
const AXIS: &str = "#b9b8b2";

/// One measured series plus its optional predicted-bound curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label for the measured points (`"ℓ = 1"`, `"steps max"`).
    pub label: String,
    /// Measured `(x, y)` points, drawn as a solid line with markers.
    pub points: Vec<(f64, f64)>,
    /// Predicted bound: legend label and curve points, drawn dashed in
    /// the series hue.
    pub bound: Option<(String, Vec<(f64, f64)>)>,
}

/// A complete chart description; [`Chart::render`] emits the SVG.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Chart title (top left).
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// y-axis label (rendered horizontally above the axis).
    pub y_label: String,
    /// Plot x on a log₂ scale (the `n` sweeps); ticks still show the
    /// raw values.
    pub log_x: bool,
    /// The series — at most three (the validated palette cap).
    pub series: Vec<Series>,
}

const W: f64 = 640.0;
const H: f64 = 320.0;
const ML: f64 = 64.0; // left margin (y tick labels)
const MR: f64 = 168.0; // right margin (legend)
const MT: f64 = 40.0;
const MB: f64 = 48.0;

fn fmt_coord(v: f64) -> String {
    format!("{v:.1}")
}

/// Tick label: integers plain, everything else with two decimals.
fn fmt_tick(v: f64) -> String {
    if v == v.round() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// Largest "nice" step (1/2/5 × 10^k) giving at most 5 intervals.
fn nice_step(span: f64) -> f64 {
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    for m in [1.0, 2.0, 5.0, 10.0] {
        if raw <= m * mag {
            return m * mag;
        }
    }
    10.0 * mag
}

impl Chart {
    fn tx(&self, x: f64) -> f64 {
        if self.log_x {
            x.max(1.0).log2()
        } else {
            x
        }
    }

    /// Renders the chart as a self-contained `<svg>` element (single
    /// trailing newline, no blank lines — safe to embed in markdown).
    ///
    /// # Panics
    /// Panics when more than three series are supplied (the validated
    /// palette caps categorical series; fold or facet instead) or when
    /// no series has any point.
    pub fn render(&self) -> String {
        assert!(
            self.series.len() <= PALETTE.len(),
            "at most {} series per chart (fold or facet)",
            PALETTE.len()
        );
        let all_xy = |f: &mut dyn FnMut(f64, f64)| {
            for s in &self.series {
                for &(x, y) in &s.points {
                    f(x, y);
                }
                if let Some((_, pts)) = &s.bound {
                    for &(x, y) in pts {
                        f(x, y);
                    }
                }
            }
        };
        let (mut xmin, mut xmax, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        all_xy(&mut |x, y| {
            let tx = self.tx(x);
            xmin = xmin.min(tx);
            xmax = xmax.max(tx);
            ymax = ymax.max(y);
        });
        assert!(xmin.is_finite(), "chart `{}` has no points", self.title);
        if xmax - xmin < 1e-9 {
            xmin -= 0.5;
            xmax += 0.5;
        }
        let ymax = if ymax <= 0.0 { 1.0 } else { ymax * 1.08 };
        let pw = W - ML - MR;
        let ph = H - MT - MB;
        let px = |x: f64| ML + (self.tx(x) - xmin) / (xmax - xmin) * pw;
        let py = |y: f64| MT + ph - (y / ymax) * ph;

        let mut s = String::new();
        let _ = writeln!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {W} {H}\" width=\"{W}\" \
             height=\"{H}\" role=\"img\" aria-label=\"{}\" \
             font-family=\"system-ui, sans-serif\">",
            esc(&self.title)
        );
        let _ = writeln!(s, "<rect width=\"{W}\" height=\"{H}\" rx=\"6\" fill=\"{SURFACE}\"/>");
        let _ = writeln!(
            s,
            "<text x=\"{ML}\" y=\"22\" font-size=\"13\" font-weight=\"600\" fill=\"{INK}\">{}\
             </text>",
            esc(&self.title)
        );

        // Horizontal grid + y ticks.
        let step = nice_step(ymax);
        let mut yt = 0.0;
        while yt <= ymax + 1e-9 {
            let y = py(yt);
            let _ = writeln!(
                s,
                "<line x1=\"{ML}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"{GRID}\" \
                 stroke-width=\"1\"/>",
                fmt_coord(y),
                fmt_coord(W - MR),
            );
            let _ = writeln!(
                s,
                "<text x=\"{0}\" y=\"{1}\" font-size=\"10\" fill=\"{INK_SOFT}\" \
                 text-anchor=\"end\">{2}</text>",
                fmt_coord(ML - 8.0),
                fmt_coord(y + 3.5),
                fmt_tick(yt)
            );
            yt += step;
        }
        // x ticks: every distinct measured x, thinned to at most 8.
        let mut xs: Vec<f64> = Vec::new();
        for series in &self.series {
            for &(x, _) in &series.points {
                if !xs.iter().any(|&v| (v - x).abs() < 1e-9) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(f64::total_cmp);
        let keep_every = xs.len().div_ceil(8).max(1);
        for (i, &x) in xs.iter().enumerate() {
            if i % keep_every != 0 && i + 1 != xs.len() {
                continue;
            }
            let xpx = px(x);
            let _ = writeln!(
                s,
                "<line x1=\"{0}\" y1=\"{1}\" x2=\"{0}\" y2=\"{2}\" stroke=\"{AXIS}\" \
                 stroke-width=\"1\"/>",
                fmt_coord(xpx),
                fmt_coord(MT + ph),
                fmt_coord(MT + ph + 4.0),
            );
            let _ = writeln!(
                s,
                "<text x=\"{0}\" y=\"{1}\" font-size=\"10\" fill=\"{INK_SOFT}\" \
                 text-anchor=\"middle\">{2}</text>",
                fmt_coord(xpx),
                fmt_coord(MT + ph + 16.0),
                fmt_tick(x)
            );
        }
        // Axes.
        let _ = writeln!(
            s,
            "<line x1=\"{ML}\" y1=\"{0}\" x2=\"{1}\" y2=\"{0}\" stroke=\"{AXIS}\" \
             stroke-width=\"1\"/>",
            fmt_coord(MT + ph),
            fmt_coord(W - MR),
        );
        let _ = writeln!(
            s,
            "<text x=\"{0}\" y=\"{1}\" font-size=\"11\" fill=\"{INK_SOFT}\" \
             text-anchor=\"middle\">{2}</text>",
            fmt_coord(ML + pw / 2.0),
            fmt_coord(H - 12.0),
            esc(&self.x_label)
        );
        let _ = writeln!(
            s,
            "<text x=\"{0}\" y=\"{1}\" font-size=\"11\" fill=\"{INK_SOFT}\">{2}</text>",
            fmt_coord(8.0),
            fmt_coord(MT - 10.0),
            esc(&self.y_label)
        );

        // Series: bound (dashed, under) then measured (solid + markers).
        for (i, series) in self.series.iter().enumerate() {
            let color = PALETTE[i];
            if let Some((_, pts)) = &series.bound {
                let _ = writeln!(
                    s,
                    "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" \
                     stroke-dasharray=\"6 4\" opacity=\"0.75\" points=\"{}\"/>",
                    poly(pts, &px, &py)
                );
            }
            if series.points.len() > 1 {
                let _ = writeln!(
                    s,
                    "<polyline fill=\"none\" stroke=\"{color}\" stroke-width=\"2\" \
                     points=\"{}\"/>",
                    poly(&series.points, &px, &py)
                );
            }
            for &(x, y) in &series.points {
                let _ = writeln!(
                    s,
                    "<circle cx=\"{}\" cy=\"{}\" r=\"3.5\" fill=\"{color}\" \
                     stroke=\"{SURFACE}\" stroke-width=\"2\"/>",
                    fmt_coord(px(x)),
                    fmt_coord(py(y)),
                );
            }
        }

        // Legend (always present — every chart here has a bound or ≥ 2
        // entries to distinguish).
        let lx = W - MR + 14.0;
        let mut ly = MT + 6.0;
        for (i, series) in self.series.iter().enumerate() {
            let color = PALETTE[i];
            let _ = writeln!(
                s,
                "<line x1=\"{0}\" y1=\"{1}\" x2=\"{2}\" y2=\"{1}\" stroke=\"{color}\" \
                 stroke-width=\"2\"/><circle cx=\"{3}\" cy=\"{1}\" r=\"3\" fill=\"{color}\"/>",
                fmt_coord(lx),
                fmt_coord(ly),
                fmt_coord(lx + 22.0),
                fmt_coord(lx + 11.0),
            );
            let _ = writeln!(
                s,
                "<text x=\"{0}\" y=\"{1}\" font-size=\"11\" fill=\"{INK}\">{2}</text>",
                fmt_coord(lx + 28.0),
                fmt_coord(ly + 3.5),
                esc(&series.label)
            );
            ly += 16.0;
            if let Some((blabel, _)) = &series.bound {
                let _ = writeln!(
                    s,
                    "<line x1=\"{0}\" y1=\"{1}\" x2=\"{2}\" y2=\"{1}\" stroke=\"{color}\" \
                     stroke-width=\"2\" stroke-dasharray=\"6 4\" opacity=\"0.75\"/>",
                    fmt_coord(lx),
                    fmt_coord(ly),
                    fmt_coord(lx + 22.0),
                );
                let _ = writeln!(
                    s,
                    "<text x=\"{0}\" y=\"{1}\" font-size=\"11\" fill=\"{INK_SOFT}\">{2}</text>",
                    fmt_coord(lx + 28.0),
                    fmt_coord(ly + 3.5),
                    esc(blabel)
                );
                ly += 16.0;
            }
        }
        s.push_str("</svg>\n");
        s
    }
}

fn poly(pts: &[(f64, f64)], px: &dyn Fn(f64) -> f64, py: &dyn Fn(f64) -> f64) -> String {
    let mut sorted: Vec<(f64, f64)> = pts.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    sorted
        .iter()
        .map(|&(x, y)| format!("{},{}", fmt_coord(px(x)), fmt_coord(py(y))))
        .collect::<Vec<_>>()
        .join(" ")
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;").replace('"', "&quot;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Chart {
        Chart {
            title: "steps vs n".into(),
            x_label: "n".into(),
            y_label: "steps".into(),
            log_x: true,
            series: vec![Series {
                label: "measured".into(),
                points: vec![(256.0, 50.0), (1024.0, 57.0)],
                bound: Some(("8 log2 n".into(), vec![(256.0, 64.0), (1024.0, 80.0)])),
            }],
        }
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = demo().render();
        assert!(svg.starts_with("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(!svg.contains("\n\n"), "blank lines would break the markdown HTML block");
        assert_eq!(svg.matches("<circle").count(), 2 + 1, "2 markers + legend swatch");
        assert!(svg.contains("stroke-dasharray"), "bound curve is dashed");
        assert!(svg.contains("256") && svg.contains("1024"), "raw n tick labels");
        assert!(svg.contains("8 log2 n"));
    }

    #[test]
    fn deterministic() {
        assert_eq!(demo().render(), demo().render());
    }

    #[test]
    fn escapes_markup_in_labels() {
        let mut c = demo();
        c.title = "a < b & \"c\"".into();
        let svg = c.render();
        assert!(svg.contains("a &lt; b &amp; &quot;c&quot;"));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn more_than_three_series_panics() {
        let mut c = demo();
        let s = c.series[0].clone();
        c.series = vec![s.clone(), s.clone(), s.clone(), s];
        c.render();
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn empty_chart_panics() {
        let mut c = demo();
        c.series[0].points.clear();
        c.series[0].bound = None;
        c.render();
    }

    #[test]
    fn nice_steps_are_1_2_5() {
        assert_eq!(nice_step(10.0), 2.0);
        assert_eq!(nice_step(100.0), 20.0);
        assert_eq!(nice_step(7.0), 2.0);
        assert_eq!(nice_step(0.5), 0.1);
        assert_eq!(nice_step(2500.0), 500.0);
    }
}
