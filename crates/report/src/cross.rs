//! Cross-cutting checks that are not numbered paper claims but belong
//! in the reproduction report: the registry-wide safety matrix
//! (`BENCH_scenarios.json`), the schedule-space search
//! (`BENCH_explore.json`) and the route-family depth-vs-steps identity
//! (`BENCH_route.json`). They turn "we also ran everything else" into
//! audited statements with verdicts.

use crate::records::Rec;
use rr_analysis::verdict::{overall, Check, Verdict};
use std::collections::BTreeSet;

/// One evaluated cross-check section.
#[derive(Debug, Clone)]
pub struct CrossOutcome {
    /// Section heading.
    pub heading: &'static str,
    /// What this section establishes and where its records come from.
    pub statement: &'static str,
    /// Folded verdict over the checks.
    pub verdict: Verdict,
    /// The named checks.
    pub checks: Vec<Check>,
}

/// Evaluates every cross-check against `recs`.
pub fn evaluate_cross(recs: &[Rec]) -> Vec<CrossOutcome> {
    vec![matrix_safety(recs), schedule_space(recs), route_depth(recs)]
}

fn matrix_safety(recs: &[Rec]) -> CrossOutcome {
    let rows: Vec<&Rec> =
        recs.iter().filter(|r| r.scenario() == "MATRIX" && r.str("kind").is_none()).collect();
    let mut checks = Vec::new();
    if rows.is_empty() {
        checks.push(Check::inconclusive(
            "records present",
            "no MATRIX records in the input set — include BENCH_scenarios.json",
        ));
    } else {
        let algos: BTreeSet<&str> = rows.iter().filter_map(|r| r.str("algorithm")).collect();
        let advs: BTreeSet<&str> = rows.iter().filter_map(|r| r.str("adversary")).collect();
        checks.push(Check::pass(
            "coverage",
            format!(
                "{} cells over {} algorithms × {} adversaries",
                rows.len(),
                algos.len(),
                advs.len()
            ),
        ));
        let violations: u64 = rows.iter().filter_map(|r| r.u64("violations")).sum();
        checks.push(Check::new(
            "renaming safety across the whole matrix",
            format!("{violations} violations over all cells"),
            violations == 0,
        ));
    }
    CrossOutcome {
        heading: "Cross-check — registry matrix safety",
        statement: "Every registered algorithm under every stock adversary (the \
                    `exp_matrix` snapshot): the renaming-safety audit must be clean in \
                    every cell.",
        verdict: overall(&checks),
        checks,
    }
}

fn schedule_space(recs: &[Rec]) -> CrossOutcome {
    let rows: Vec<&Rec> =
        recs.iter().filter(|r| r.scenario() == "EXPLORE" && r.str("kind").is_none()).collect();
    let counterexamples = recs.iter().filter(|r| r.str("kind") == Some("counterexample")).count();
    let mut checks = Vec::new();
    if rows.is_empty() {
        checks.push(Check::inconclusive(
            "records present",
            "no EXPLORE records in the input set — include BENCH_explore.json",
        ));
    } else {
        let exhaustive: Vec<&&Rec> = rows.iter().filter(|r| r.get("exhausted").is_some()).collect();
        let schedules: u64 = exhaustive.iter().filter_map(|r| r.u64("schedules")).sum();
        let all_exhausted = exhaustive.iter().all(|r| r.u64("exhausted") == Some(1));
        checks.push(Check::new(
            "bounded schedule trees exhausted",
            format!(
                "{}/{} trees exhausted, {schedules} schedules executed",
                exhaustive.iter().filter(|r| r.u64("exhausted") == Some(1)).count(),
                exhaustive.len()
            ),
            all_exhausted,
        ));
        let worst = exhaustive
            .iter()
            .filter_map(|r| Some((r.u64("worst_steps")?, r.str("algorithm")?.to_string())))
            .max();
        if let Some((steps, algo)) = worst {
            checks.push(Check::pass(
                "worst case over all explored schedules",
                format!("{steps} steps ({algo}) — stronger than any single stock adversary"),
            ));
        }
        let violations: u64 = rows.iter().filter_map(|r| r.u64("violations")).sum();
        checks.push(Check::new(
            "no violations on any explored schedule",
            format!("{violations} violations over all searched runs"),
            violations == 0,
        ));
    }
    checks.push(Check::new(
        "no shrunk counterexample tapes",
        format!("{counterexamples} kind:\"counterexample\" records"),
        counterexamples == 0,
    ));
    CrossOutcome {
        heading: "Cross-check — schedule-space search",
        statement: "The paper quantifies over all schedules; the bounded exhaustive DFS \
                    and fuzzing snapshot (`exp_explore`) must exhaust its trees with no \
                    safety violation and no minimized counterexample tape.",
        verdict: overall(&checks),
        checks,
    }
}

/// The `route:` family's geometric identity: every stage of a
/// switching network pairs all wires, so total steps must equal
/// `n × depth` in every crash-free cell, and the closed-form depths
/// must order butterfly (`q`) < Beneš (`2q − 1`) < variant (`2q`) at
/// each width. Re-derived here from the `exp_route` records — a change
/// to the network builder that silently added or dropped a switch
/// layer would move `steps` away from `depth × n` and fail this.
fn route_depth(recs: &[Rec]) -> CrossOutcome {
    let rows: Vec<&Rec> =
        recs.iter().filter(|r| r.scenario() == "ROUTE" && r.str("kind").is_none()).collect();
    let mut checks = Vec::new();
    if rows.is_empty() {
        checks.push(Check::inconclusive(
            "records present",
            "no ROUTE records in the input set — include BENCH_route.json",
        ));
    } else {
        let exact = rows
            .iter()
            .filter(|r| match (r.u64("steps"), r.u64("depth"), r.u64("n")) {
                (Some(steps), Some(depth), Some(n)) => steps == depth * n,
                _ => false,
            })
            .count();
        checks.push(Check::new(
            "steps equal n × network depth",
            format!("{exact}/{} cells satisfy the identity exactly", rows.len()),
            exact == rows.len(),
        ));
        let unnamed: u64 = rows.iter().filter_map(|r| r.u64("unnamed")).sum();
        checks.push(Check::new(
            "total under every crash-free schedule",
            format!("{unnamed} processes gave up over all cells"),
            unnamed == 0,
        ));
        // Closed-form depth ordering per width, from rows without a
        // `stages` override (the override replaces the closed form).
        let mut by_width: std::collections::BTreeMap<u64, std::collections::BTreeMap<&str, u64>> =
            std::collections::BTreeMap::new();
        for r in rows.iter().filter(|r| r.get("stages").is_none()) {
            if let (Some(w), Some(net), Some(d)) = (r.u64("width"), r.str("net"), r.u64("depth")) {
                by_width.entry(w).or_default().insert(net, d);
            }
        }
        let complete: Vec<(u64, u64, u64, u64)> = by_width
            .iter()
            .filter_map(|(&w, nets)| {
                Some((w, *nets.get("butterfly")?, *nets.get("benes")?, *nets.get("variant")?))
            })
            .collect();
        if complete.is_empty() {
            checks.push(Check::inconclusive(
                "closed-form depth ordering",
                "no width covers all three topologies",
            ));
        } else {
            let ordered = complete.iter().all(|&(_, fly, benes, var)| fly < benes && benes < var);
            let widths: Vec<u64> = complete.iter().map(|&(w, ..)| w).collect();
            checks.push(Check::new(
                "closed-form depth ordering",
                format!("butterfly < Beneš < variant at widths {widths:?}"),
                ordered,
            ));
        }
    }
    CrossOutcome {
        heading: "Cross-check — route depth vs steps",
        statement: "The topology-routed family is geometric: the `exp_route` snapshot must \
                    show total steps exactly n × network depth in every crash-free cell, \
                    with the closed-form depths ordered butterfly < Beneš < variant at \
                    each width.",
        verdict: overall(&checks),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::parse_records;

    #[test]
    fn missing_sections_are_inconclusive() {
        let cross = evaluate_cross(&[]);
        assert_eq!(cross.len(), 3);
        assert_eq!(cross[0].verdict, Verdict::Inconclusive);
        // No explore records at all still proves "no counterexamples",
        // but the missing records keep the section inconclusive.
        assert_eq!(cross[1].verdict, Verdict::Inconclusive);
        assert_eq!(cross[2].verdict, Verdict::Inconclusive);
    }

    #[test]
    fn route_identity_and_ordering_pass_on_clean_records() {
        let recs = parse_records(
            r#"[
{"scenario":"ROUTE","section":"depth","algorithm":"route:net=butterfly","net":"butterfly","adversary":"fair","n":48,"width":64,"depth":6,"steps":288,"unnamed":0},
{"scenario":"ROUTE","section":"depth","algorithm":"route:net=benes","net":"benes","adversary":"fair","n":48,"width":64,"depth":11,"steps":528,"unnamed":0},
{"scenario":"ROUTE","section":"depth","algorithm":"route:net=variant","net":"variant","adversary":"fair","n":48,"width":64,"depth":12,"steps":576,"unnamed":0},
{"scenario":"ROUTE","section":"depth","algorithm":"route:net=benes,stages=4","net":"benes","adversary":"fair","n":48,"width":64,"depth":4,"steps":192,"unnamed":0,"stages":4},
{"scenario":"ROUTE","section":"depth","kind":"throughput","algorithm":"route:net=benes","n":48,"steps":528,"wall_ms":0.1,"steps_per_sec":1.0}
]"#,
        )
        .unwrap();
        let route = &evaluate_cross(&recs)[2];
        assert_eq!(route.verdict, Verdict::Pass, "{:#?}", route.checks);
        assert!(route.checks[0].detail.contains("4/4 cells"), "{:#?}", route.checks);
        assert!(route.checks[2].detail.contains("widths [64]"), "{:#?}", route.checks);
    }

    #[test]
    fn route_identity_violation_fails() {
        // One switch layer silently dropped: steps < depth × n.
        let recs = parse_records(
            r#"[{"scenario":"ROUTE","section":"depth","algorithm":"route:net=benes","net":"benes","adversary":"fair","n":48,"width":64,"depth":11,"steps":480,"unnamed":0}]"#,
        )
        .unwrap();
        assert_eq!(evaluate_cross(&recs)[2].verdict, Verdict::Fail);
    }

    #[test]
    fn route_stages_override_is_excluded_from_the_ordering() {
        // Only an overridden benes row at width 64: no complete triple,
        // so the ordering is inconclusive — not failed by depth 4.
        let recs = parse_records(
            r#"[{"scenario":"ROUTE","section":"depth","algorithm":"route:net=benes,stages=4","net":"benes","adversary":"fair","n":48,"width":64,"depth":4,"steps":192,"unnamed":0,"stages":4}]"#,
        )
        .unwrap();
        let route = &evaluate_cross(&recs)[2];
        assert_eq!(route.verdict, Verdict::Inconclusive, "{:#?}", route.checks);
    }

    #[test]
    fn clean_matrix_and_explore_pass() {
        let recs = parse_records(
            r#"[
{"scenario":"MATRIX","section":"","algorithm":"aagw","adversary":"fair","n":256,"violations":0},
{"scenario":"MATRIX","section":"","algorithm":"cor9","adversary":"stall","n":256,"violations":0},
{"scenario":"EXPLORE","section":"exhaustive","algorithm":"aagw","adversary":"explore","n":4,"schedules":96,"exhausted":1,"worst_steps":4,"violations":0}
]"#,
        )
        .unwrap();
        let cross = evaluate_cross(&recs);
        assert_eq!(cross[0].verdict, Verdict::Pass, "{:#?}", cross[0].checks);
        assert_eq!(cross[1].verdict, Verdict::Pass, "{:#?}", cross[1].checks);
        assert!(cross[0].checks[0].detail.contains("2 cells over 2 algorithms"));
    }

    #[test]
    fn counterexample_record_fails_the_search_section() {
        let recs = parse_records(
            r#"[
{"scenario":"EXPLORE","section":"exhaustive","algorithm":"aagw","adversary":"explore","n":4,"schedules":96,"exhausted":1,"worst_steps":4,"violations":0},
{"scenario":"EXPLORE","section":"exhaustive","kind":"counterexample","algorithm":"aagw","tape":"g0 g1"}
]"#,
        )
        .unwrap();
        let cross = evaluate_cross(&recs);
        assert_eq!(cross[1].verdict, Verdict::Fail);
    }

    #[test]
    fn matrix_violation_fails() {
        let recs = parse_records(
            r#"[{"scenario":"MATRIX","section":"","algorithm":"aagw","adversary":"fair","n":256,"violations":1}]"#,
        )
        .unwrap();
        assert_eq!(evaluate_cross(&recs)[0].verdict, Verdict::Fail);
    }
}
