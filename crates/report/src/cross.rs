//! Cross-cutting checks that are not numbered paper claims but belong
//! in the reproduction report: the registry-wide safety matrix
//! (`BENCH_scenarios.json`) and the schedule-space search
//! (`BENCH_explore.json`). They turn "we also ran everything else" into
//! audited statements with verdicts.

use crate::records::Rec;
use rr_analysis::verdict::{overall, Check, Verdict};
use std::collections::BTreeSet;

/// One evaluated cross-check section.
#[derive(Debug, Clone)]
pub struct CrossOutcome {
    /// Section heading.
    pub heading: &'static str,
    /// What this section establishes and where its records come from.
    pub statement: &'static str,
    /// Folded verdict over the checks.
    pub verdict: Verdict,
    /// The named checks.
    pub checks: Vec<Check>,
}

/// Evaluates both cross-checks against `recs`.
pub fn evaluate_cross(recs: &[Rec]) -> Vec<CrossOutcome> {
    vec![matrix_safety(recs), schedule_space(recs)]
}

fn matrix_safety(recs: &[Rec]) -> CrossOutcome {
    let rows: Vec<&Rec> =
        recs.iter().filter(|r| r.scenario() == "MATRIX" && r.str("kind").is_none()).collect();
    let mut checks = Vec::new();
    if rows.is_empty() {
        checks.push(Check::inconclusive(
            "records present",
            "no MATRIX records in the input set — include BENCH_scenarios.json",
        ));
    } else {
        let algos: BTreeSet<&str> = rows.iter().filter_map(|r| r.str("algorithm")).collect();
        let advs: BTreeSet<&str> = rows.iter().filter_map(|r| r.str("adversary")).collect();
        checks.push(Check::pass(
            "coverage",
            format!(
                "{} cells over {} algorithms × {} adversaries",
                rows.len(),
                algos.len(),
                advs.len()
            ),
        ));
        let violations: u64 = rows.iter().filter_map(|r| r.u64("violations")).sum();
        checks.push(Check::new(
            "renaming safety across the whole matrix",
            format!("{violations} violations over all cells"),
            violations == 0,
        ));
    }
    CrossOutcome {
        heading: "Cross-check — registry matrix safety",
        statement: "Every registered algorithm under every stock adversary (the \
                    `exp_matrix` snapshot): the renaming-safety audit must be clean in \
                    every cell.",
        verdict: overall(&checks),
        checks,
    }
}

fn schedule_space(recs: &[Rec]) -> CrossOutcome {
    let rows: Vec<&Rec> =
        recs.iter().filter(|r| r.scenario() == "EXPLORE" && r.str("kind").is_none()).collect();
    let counterexamples = recs.iter().filter(|r| r.str("kind") == Some("counterexample")).count();
    let mut checks = Vec::new();
    if rows.is_empty() {
        checks.push(Check::inconclusive(
            "records present",
            "no EXPLORE records in the input set — include BENCH_explore.json",
        ));
    } else {
        let exhaustive: Vec<&&Rec> = rows.iter().filter(|r| r.get("exhausted").is_some()).collect();
        let schedules: u64 = exhaustive.iter().filter_map(|r| r.u64("schedules")).sum();
        let all_exhausted = exhaustive.iter().all(|r| r.u64("exhausted") == Some(1));
        checks.push(Check::new(
            "bounded schedule trees exhausted",
            format!(
                "{}/{} trees exhausted, {schedules} schedules executed",
                exhaustive.iter().filter(|r| r.u64("exhausted") == Some(1)).count(),
                exhaustive.len()
            ),
            all_exhausted,
        ));
        let worst = exhaustive
            .iter()
            .filter_map(|r| Some((r.u64("worst_steps")?, r.str("algorithm")?.to_string())))
            .max();
        if let Some((steps, algo)) = worst {
            checks.push(Check::pass(
                "worst case over all explored schedules",
                format!("{steps} steps ({algo}) — stronger than any single stock adversary"),
            ));
        }
        let violations: u64 = rows.iter().filter_map(|r| r.u64("violations")).sum();
        checks.push(Check::new(
            "no violations on any explored schedule",
            format!("{violations} violations over all searched runs"),
            violations == 0,
        ));
    }
    checks.push(Check::new(
        "no shrunk counterexample tapes",
        format!("{counterexamples} kind:\"counterexample\" records"),
        counterexamples == 0,
    ));
    CrossOutcome {
        heading: "Cross-check — schedule-space search",
        statement: "The paper quantifies over all schedules; the bounded exhaustive DFS \
                    and fuzzing snapshot (`exp_explore`) must exhaust its trees with no \
                    safety violation and no minimized counterexample tape.",
        verdict: overall(&checks),
        checks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::parse_records;

    #[test]
    fn missing_sections_are_inconclusive() {
        let cross = evaluate_cross(&[]);
        assert_eq!(cross.len(), 2);
        assert_eq!(cross[0].verdict, Verdict::Inconclusive);
        // No explore records at all still proves "no counterexamples",
        // but the missing records keep the section inconclusive.
        assert_eq!(cross[1].verdict, Verdict::Inconclusive);
    }

    #[test]
    fn clean_matrix_and_explore_pass() {
        let recs = parse_records(
            r#"[
{"scenario":"MATRIX","section":"","algorithm":"aagw","adversary":"fair","n":256,"violations":0},
{"scenario":"MATRIX","section":"","algorithm":"cor9","adversary":"stall","n":256,"violations":0},
{"scenario":"EXPLORE","section":"exhaustive","algorithm":"aagw","adversary":"explore","n":4,"schedules":96,"exhausted":1,"worst_steps":4,"violations":0}
]"#,
        )
        .unwrap();
        let cross = evaluate_cross(&recs);
        assert_eq!(cross[0].verdict, Verdict::Pass, "{:#?}", cross[0].checks);
        assert_eq!(cross[1].verdict, Verdict::Pass, "{:#?}", cross[1].checks);
        assert!(cross[0].checks[0].detail.contains("2 cells over 2 algorithms"));
    }

    #[test]
    fn counterexample_record_fails_the_search_section() {
        let recs = parse_records(
            r#"[
{"scenario":"EXPLORE","section":"exhaustive","algorithm":"aagw","adversary":"explore","n":4,"schedules":96,"exhausted":1,"worst_steps":4,"violations":0},
{"scenario":"EXPLORE","section":"exhaustive","kind":"counterexample","algorithm":"aagw","tape":"g0 g1"}
]"#,
        )
        .unwrap();
        let cross = evaluate_cross(&recs);
        assert_eq!(cross[1].verdict, Verdict::Fail);
    }

    #[test]
    fn matrix_violation_fails() {
        let recs = parse_records(
            r#"[{"scenario":"MATRIX","section":"","algorithm":"aagw","adversary":"fair","n":256,"violations":1}]"#,
        )
        .unwrap();
        assert_eq!(evaluate_cross(&recs)[0].verdict, Verdict::Fail);
    }
}
