//! The paper's quantitative claims as executable evaluators: each claim
//! consumes the record stream of its scenario (E1–E7), re-derives the
//! predicted bound from the committed parameterizations in
//! `rr-renaming`, runs the checks, fits the predicted scaling form, and
//! returns a [`ClaimOutcome`] with a PASS / FAIL / INCONCLUSIVE verdict.
//!
//! The claim ids here are the contract with the scenario layer: every
//! `ScenarioSpec` in `rr-bench` that sets a `ClaimCheck` names one of
//! [`claim_ids`], and a drift test on the bench side keeps the two
//! registries aligned.

use crate::records::Rec;
use crate::svg::{Chart, Series};
use rr_analysis::chernoff::whp_exponent;
use rr_analysis::fit::{fit_form, fit_power, ScalingForm};
use rr_analysis::table::{fnum, fprob};
use rr_analysis::verdict::{overall, Check, Verdict};
use rr_renaming::registry::ParsedKey;
use rr_renaming::{spare, Lemma6Schedule, Lemma8Schedule, TightPlan};

/// The evaluated state of one paper claim — everything the renderer
/// needs for its report section.
#[derive(Debug, Clone)]
pub struct ClaimOutcome {
    /// Claim id (`"theorem5"`, `"lemma3"`, …) — the key scenario specs
    /// declare in their `ClaimCheck` metadata.
    pub id: &'static str,
    /// Section heading (claim + scenario id + one-line reading).
    pub heading: &'static str,
    /// The paper's statement, quoted for the report.
    pub statement: &'static str,
    /// The bound under test, as the scenario metadata states it.
    pub bound: &'static str,
    /// Source scenario id (`"E1"`, …).
    pub scenario: &'static str,
    /// The folded verdict over [`ClaimOutcome::checks`].
    pub verdict: Verdict,
    /// The individual named checks with measured details.
    pub checks: Vec<Check>,
    /// Human line about the fitted scaling curve (or why none applies).
    pub fit_note: String,
    /// Data-table header for the report section.
    pub table_header: Vec<&'static str>,
    /// Data-table rows (already formatted).
    pub table: Vec<Vec<String>>,
    /// Inline SVG chart; absent when there is no data to draw.
    pub chart: Option<String>,
}

/// The claim ids this registry evaluates, in paper order.
pub fn claim_ids() -> Vec<&'static str> {
    vec!["lemma3", "lemma4", "theorem5", "lemma6", "cor7", "lemma8", "cor9"]
}

/// Evaluates every claim against `recs` (any mix of record streams —
/// each claim filters by its scenario id). Always returns all claims in
/// paper order; a claim whose scenario has no records comes back
/// INCONCLUSIVE, never silently missing.
pub fn evaluate_claims(recs: &[Rec]) -> Vec<ClaimOutcome> {
    vec![
        lemma3(recs),
        lemma4(recs),
        theorem5(recs),
        lemma6(recs),
        cor7(recs),
        lemma8(recs),
        cor9(recs),
    ]
}

/// The deterministic (non-wall-clock) records of one scenario.
fn rows<'a>(recs: &'a [Rec], scenario: &str) -> Vec<&'a Rec> {
    recs.iter().filter(|r| r.scenario() == scenario && r.str("kind").is_none()).collect()
}

/// Distinct `n` values across `rows`, ascending.
fn distinct_ns(rows: &[&Rec]) -> Vec<u64> {
    let mut ns: Vec<u64> = rows.iter().filter_map(|r| r.u64("n")).collect();
    ns.sort_unstable();
    ns.dedup();
    ns
}

/// The `l` parameter of an algorithm key like `"loose-l6:l=2"`.
fn ell_of(key: &str) -> u32 {
    ParsedKey::parse(key).ok().and_then(|k| k.get("l", 1).ok()).unwrap_or(1)
}

/// `(log₂ log₂ n)²` with the same clamping the fit forms use.
fn lln_sq(n: u64) -> f64 {
    ScalingForm::LogLogSq.eval(n as f64)
}

fn no_records(mut outcome: ClaimOutcome) -> ClaimOutcome {
    outcome.checks = vec![Check::inconclusive(
        "records present",
        format!("no {} records in the input set — re-run exp_report or add the snapshot", {
            outcome.scenario
        }),
    )];
    outcome.verdict = Verdict::Inconclusive;
    outcome.fit_note = "n/a (no records)".into();
    outcome
}

fn finish(mut outcome: ClaimOutcome) -> ClaimOutcome {
    outcome.verdict = overall(&outcome.checks);
    outcome
}

/// A bounded-comparison check over rows: `measured ≤ limit` everywhere,
/// reporting the worst margin. An empty row set (records present but
/// missing the needed fields) is missing data, not a violation —
/// INCONCLUSIVE, never FAIL or a panic: ingested `--from` files are
/// user input.
fn bounded_check(
    name: &str,
    rows: &[(String, f64, f64)], // (row label, measured, limit)
) -> Check {
    let Some(worst) =
        rows.iter().max_by(|a, b| (a.1 / a.2.max(1e-12)).total_cmp(&(b.1 / b.2.max(1e-12))))
    else {
        return Check::inconclusive(name, "no rows carry the fields this check compares");
    };
    Check::new(
        name,
        format!(
            "worst at {}: {} <= {} ({} rows)",
            worst.0,
            fnum(worst.1, 2),
            fnum(worst.2, 2),
            rows.len()
        ),
        rows.iter().all(|(_, measured, limit)| measured <= limit),
    )
}

/// `field == 0` in every row; rows lacking the field make the check
/// INCONCLUSIVE (missing data), never FAIL. `detail` renders the
/// measured values when every row carries the field.
fn all_zero_check(
    name: &str,
    rows: &[&Rec],
    field: &str,
    detail: impl Fn(&[u64]) -> String,
) -> Check {
    let values: Vec<u64> = rows.iter().filter_map(|r| r.u64(field)).collect();
    if values.len() < rows.len() {
        return Check::inconclusive(
            name,
            format!(
                "{} of {} rows lack the `{field}` field",
                rows.len() - values.len(),
                rows.len()
            ),
        );
    }
    Check::new(name, detail(&values), values.iter().all(|&v| v == 0))
}

// ---------------------------------------------------------------- E2 —

fn lemma3(recs: &[Rec]) -> ClaimOutcome {
    let base = ClaimOutcome {
        id: "lemma3",
        heading: "Lemma 3 (E2) — balls into bins leaves few empty bins",
        statement: "Throwing 2c·log n balls uniformly at random into 2·log n bins leaves at \
                    most log n empty bins with probability at least 1 − n^−ℓ, for every \
                    c ≥ max(ln 2, 2ℓ + 2).",
        bound: "<= log n empty bins with probability >= 1 - n^-l for c >= 2l+2",
        scenario: "E2",
        verdict: Verdict::Inconclusive,
        checks: vec![],
        fit_note: String::new(),
        table_header: vec![
            "n",
            "c",
            "trials",
            "mean empty",
            "max empty",
            "threshold log2 n",
            "P[viol] measured",
            "P[viol] bound",
        ],
        table: vec![],
        chart: None,
    };
    let rows = rows(recs, "E2");
    if rows.is_empty() {
        return no_records(base);
    }
    let mut outcome = base;
    // The claim needs c ≥ 2ℓ+2 = 4 at ℓ = 1; smaller c rows are the
    // contrast that shows the constant matters.
    let claim_rows: Vec<&&Rec> = rows.iter().filter(|r| r.u64("c").unwrap_or(0) >= 4).collect();
    // No rows in the claim regime is missing data, not a violation.
    outcome.checks.push(if claim_rows.is_empty() {
        Check::inconclusive(
            "claim-regime rows present (c >= 4)",
            format!("0 of {} rows have c >= 4 — not evidence against the claim", rows.len()),
        )
    } else {
        Check::pass(
            "claim-regime rows present (c >= 4)",
            format!("{} of {} rows have c >= 4", claim_rows.len(), rows.len()),
        )
    });
    if !claim_rows.is_empty() {
        outcome.checks.push(bounded_check(
            "empty bins within log n (c >= 4)",
            &claim_rows
                .iter()
                .map(|r| {
                    (
                        format!("n={}, c={}", r.u64("n").unwrap_or(0), r.u64("c").unwrap_or(0)),
                        r.u64("max_empty").unwrap_or(u64::MAX) as f64,
                        r.u64("threshold").unwrap_or(0) as f64,
                    )
                })
                .collect::<Vec<_>>(),
        ));
        let worst_rate =
            claim_rows.iter().map(|r| r.f64("viol_rate").unwrap_or(1.0)).fold(0.0, f64::max);
        let trials: u64 = claim_rows.iter().filter_map(|r| r.u64("trials")).sum();
        outcome.checks.push(Check::new(
            "measured violation rate is 0 (c >= 4)",
            format!("worst rate {} over {trials} total trials", fprob(worst_rate)),
            worst_rate == 0.0,
        ));
        // The analytic (Chernoff, Lemma 1) bound must be inverse
        // polynomial: ≤ n^-1 in the ℓ = 1 regime.
        let mut weakest = f64::INFINITY;
        let mut weakest_at = String::new();
        for r in &claim_rows {
            let (n, bound) = (r.u64("n").unwrap_or(2), r.f64("viol_bound").unwrap_or(1.0));
            let e = whp_exponent(bound.min(1.0), n.max(2) as usize);
            if e < weakest {
                weakest = e;
                weakest_at = format!("n={n}, c={}", r.u64("c").unwrap_or(0));
            }
        }
        outcome.checks.push(Check::new(
            "Chernoff bound is inverse polynomial",
            format!("weakest analytic tail exponent {} at {weakest_at} (need >= 1)", {
                fnum(weakest, 2)
            }),
            weakest >= 1.0,
        ));
    }
    outcome.fit_note =
        "n/a (tail-probability claim — the Chernoff exponents above are the scaling read)".into();
    for r in &rows {
        outcome.table.push(vec![
            r.u64("n").unwrap_or(0).to_string(),
            r.u64("c").unwrap_or(0).to_string(),
            r.u64("trials").unwrap_or(0).to_string(),
            fnum(r.f64("mean_empty").unwrap_or(f64::NAN), 2),
            r.u64("max_empty").unwrap_or(0).to_string(),
            r.u64("threshold").unwrap_or(0).to_string(),
            fprob(r.f64("viol_rate").unwrap_or(f64::NAN)),
            fprob(r.f64("viol_bound").unwrap_or(f64::NAN)),
        ]);
    }
    // Chart: worst empty-bin count vs n for c ∈ {1, 4, 8} against the
    // log n threshold (c = 2 stays in the table).
    let mut series = Vec::new();
    for (i, c) in [1u64, 4, 8].into_iter().enumerate() {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.u64("c") == Some(c))
            .filter_map(|r| Some((r.u64("n")? as f64, r.u64("max_empty")? as f64)))
            .collect();
        if pts.is_empty() {
            continue;
        }
        let bound = (i == 0).then(|| {
            (
                "threshold log2 n".to_string(),
                rows.iter()
                    .filter(|r| r.u64("c") == Some(c))
                    .filter_map(|r| Some((r.u64("n")? as f64, r.u64("threshold")? as f64)))
                    .collect(),
            )
        });
        series.push(Series { label: format!("c = {c}"), points: pts, bound });
    }
    if !series.is_empty() {
        outcome.chart = Some(
            Chart {
                title: "Lemma 3 — worst empty-bin count vs n".into(),
                x_label: "n (log scale)".into(),
                y_label: "max empty bins".into(),
                log_x: true,
                series,
            }
            .render(),
        );
    }
    finish(outcome)
}

// ---------------------------------------------------------------- E3 —

fn lemma4(recs: &[Rec]) -> ClaimOutcome {
    let base = ClaimOutcome {
        id: "lemma4",
        heading: "Lemma 4 (E3) — every register saturates in every round",
        statement: "In every round of the §III protocol, every (log n)-register receives \
                    4c·log n requests in expectation and at least 2c·log n with high \
                    probability.",
        bound: ">= 2c log n requests per register w.h.p. (4c log n in expectation)",
        scenario: "E3",
        verdict: Verdict::Inconclusive,
        checks: vec![],
        fit_note: String::new(),
        table_header: vec![
            "variant",
            "round",
            "registers",
            "req min",
            "req mean",
            "2cL (w.h.p.)",
            "4cL (expected)",
            "full",
        ],
        table: vec![],
        chart: None,
    };
    let rows = rows(recs, "E3");
    if rows.is_empty() {
        return no_records(base);
    }
    let mut outcome = base;
    outcome.checks.push(bounded_check(
        "every register clears the 2cL w.h.p. target",
        &rows
            .iter()
            .map(|r| {
                (
                    format!(
                        "{} round {}",
                        r.str("variant").unwrap_or("?"),
                        r.u64("round").unwrap_or(0)
                    ),
                    r.u64("whp_target").unwrap_or(u64::MAX) as f64,
                    r.u64("req_min").unwrap_or(0) as f64,
                )
            })
            .collect::<Vec<_>>(),
    ));
    let calibrated: Vec<&&Rec> =
        rows.iter().filter(|r| r.str("variant") == Some("calibrated")).collect();
    // Absent calibrated rows are missing data, not a violation.
    outcome.checks.push(if calibrated.is_empty() {
        Check::inconclusive(
            "calibrated rows present",
            "0 calibrated rounds recorded — not evidence against the claim",
        )
    } else {
        Check::pass(
            "calibrated rows present",
            format!("{} calibrated rounds recorded", calibrated.len()),
        )
    });
    if !calibrated.is_empty() {
        let ok = calibrated.iter().all(|r| {
            let mean = r.f64("req_mean").unwrap_or(0.0);
            let expected = r.u64("expected").unwrap_or(u64::MAX) as f64;
            mean >= 0.5 * expected && mean <= 2.0 * expected
        });
        let worst = calibrated
            .iter()
            .map(|r| {
                r.f64("req_mean").unwrap_or(0.0) / r.u64("expected").unwrap_or(1).max(1) as f64
            })
            .fold(
                f64::NAN,
                |a, b| if a.is_nan() || (b - 1.0).abs() > (a - 1.0).abs() { b } else { a },
            );
        outcome.checks.push(Check::new(
            "calibrated mean tracks 4cL",
            format!("mean/4cL stays within [0.5, 2]; farthest ratio {}", fnum(worst, 2)),
            ok,
        ));
        let all_full = calibrated
            .iter()
            .all(|r| r.u64("full").unwrap_or(0) == r.u64("registers").unwrap_or(1));
        outcome.checks.push(Check::new(
            "every calibrated register reaches its tau quota",
            format!(
                "full = registers in {}/{} rounds",
                calibrated
                    .iter()
                    .filter(|r| r.u64("full").unwrap_or(0) == r.u64("registers").unwrap_or(1))
                    .count(),
                calibrated.len()
            ),
            all_full,
        ));
    }
    outcome.fit_note = "n/a (per-round saturation claim — no n sweep in this table)".into();
    for r in &rows {
        outcome.table.push(vec![
            r.str("variant").unwrap_or("?").to_string(),
            r.u64("round").unwrap_or(0).to_string(),
            r.u64("registers").unwrap_or(0).to_string(),
            r.u64("req_min").unwrap_or(0).to_string(),
            fnum(r.f64("req_mean").unwrap_or(f64::NAN), 1),
            r.u64("whp_target").unwrap_or(0).to_string(),
            r.u64("expected").unwrap_or(0).to_string(),
            format!("{}/{}", r.u64("full").unwrap_or(0), r.u64("registers").unwrap_or(0)),
        ]);
    }
    if !calibrated.is_empty() {
        let mean_pts: Vec<(f64, f64)> = calibrated
            .iter()
            .filter_map(|r| Some((r.u64("round")? as f64, r.f64("req_mean")?)))
            .collect();
        let min_pts: Vec<(f64, f64)> = calibrated
            .iter()
            .filter_map(|r| Some((r.u64("round")? as f64, r.u64("req_min")? as f64)))
            .collect();
        let expected: Vec<(f64, f64)> = calibrated
            .iter()
            .filter_map(|r| Some((r.u64("round")? as f64, r.u64("expected")? as f64)))
            .collect();
        let target: Vec<(f64, f64)> = calibrated
            .iter()
            .filter_map(|r| Some((r.u64("round")? as f64, r.u64("whp_target")? as f64)))
            .collect();
        // Rows missing the round/request fields leave nothing to draw.
        if mean_pts.is_empty() && min_pts.is_empty() {
            return finish(outcome);
        }
        outcome.chart = Some(
            Chart {
                title: "Lemma 4 — per-round register saturation (calibrated)".into(),
                x_label: "round".into(),
                y_label: "requests per register".into(),
                log_x: false,
                series: vec![
                    Series {
                        label: "req mean".into(),
                        points: mean_pts,
                        bound: Some(("4cL expected".into(), expected)),
                    },
                    Series {
                        label: "req min".into(),
                        points: min_pts,
                        bound: Some(("2cL w.h.p. target".into(), target)),
                    },
                ],
            }
            .render(),
        );
    }
    finish(outcome)
}

// ---------------------------------------------------------------- E1 —

fn theorem5(recs: &[Rec]) -> ClaimOutcome {
    let base = ClaimOutcome {
        id: "theorem5",
        heading: "Theorem 5 (E1) — tight renaming in O(log n) steps",
        statement: "n processes rename into exactly n names in O(log n) steps per process \
                    with high probability, using O(n) space, against the adaptive \
                    adversary.",
        bound: "O(log n) steps w.h.p., O(n) space, m = n",
        scenario: "E1",
        verdict: Verdict::Inconclusive,
        checks: vec![],
        fit_note: String::new(),
        table_header: vec![
            "n",
            "seeds",
            "steps p50",
            "steps max",
            "max/log2 n",
            "unnamed",
            "space/n",
        ],
        table: vec![],
        chart: None,
    };
    let rows = rows(recs, "E1");
    if rows.is_empty() {
        return no_records(base);
    }
    let mut outcome = base;
    let ns = distinct_ns(&rows);
    if ns.len() < 2 {
        outcome.checks.push(Check::inconclusive(
            "size sweep",
            format!("only {} distinct n — need >= 2 for a scaling read", ns.len()),
        ));
    }
    outcome.checks.push(all_zero_check(
        "full tight renaming (unnamed = 0)",
        &rows,
        "unnamed_max",
        |v| format!("max unnamed {} over all rows", v.iter().max().copied().unwrap_or(0)),
    ));
    outcome.checks.push(all_zero_check("renaming-safety audit clean", &rows, "violations", |v| {
        format!("{} violations total", v.iter().sum::<u64>())
    }));
    outcome.checks.push(bounded_check(
        "step complexity within 8·log2 n",
        &rows
            .iter()
            .filter_map(|r| {
                let n = r.u64("n")?;
                Some((format!("n={n}"), r.u64("steps_max")? as f64, 8.0 * (n.max(2) as f64).log2()))
            })
            .collect::<Vec<_>>(),
    ));
    // Space is a pure function of the committed parameterization — re-derive
    // it from TightPlan rather than trusting the table.
    outcome.checks.push(bounded_check(
        "space per process within 8 (O(n) total)",
        &ns.iter()
            .map(|&n| {
                let plan = TightPlan::calibrated(n as usize, 4);
                (format!("n={n}"), (plan.total_bits() + plan.total_names()) as f64 / n as f64, 8.0)
            })
            .collect::<Vec<_>>(),
    ));
    let runs: u64 = rows.iter().filter_map(|r| r.u64("seeds")).sum();
    if runs > 0 {
        let n_max = *ns.last().unwrap_or(&2) as usize;
        outcome.checks.push(Check::pass(
            "w.h.p. evidence (Chernoff frame)",
            format!(
                "0 of {runs} runs violated any bound: empirical failure rate < {}, i.e. below \
                 n^-{} at n = {n_max} (more seeds sharpen the exponent)",
                fprob(1.0 / runs as f64),
                fnum(whp_exponent(1.0 / runs as f64, n_max.max(2)), 2)
            ),
        ));
    }
    let pts: Vec<(f64, f64)> = rows
        .iter()
        .filter_map(|r| Some((r.u64("n")? as f64, r.u64("steps_max")? as f64)))
        .collect();
    for r in &rows {
        let n = r.u64("n").unwrap_or(2);
        let plan = TightPlan::calibrated(n as usize, 4);
        outcome.table.push(vec![
            n.to_string(),
            r.u64("seeds").unwrap_or(0).to_string(),
            r.u64("steps_p50").unwrap_or(0).to_string(),
            r.u64("steps_max").unwrap_or(0).to_string(),
            fnum(r.u64("steps_max").unwrap_or(0) as f64 / (n.max(2) as f64).log2(), 2),
            r.u64("unnamed_max").unwrap_or(0).to_string(),
            fnum((plan.total_bits() + plan.total_names()) as f64 / n as f64, 2),
        ]);
    }
    // Rows without n/steps_max fields can come from hand-trimmed --from
    // files; missing data degrades the fit and chart, never panics.
    if pts.is_empty() {
        outcome.fit_note = "n/a (rows lack the n/steps_max fields)".into();
        return finish(outcome);
    }
    let fit = fit_form(&pts, ScalingForm::LogN);
    let power = fit_power(&pts);
    outcome.fit_note = format!(
        "steps_max ≈ {}·log2 n + {} (R² = {}); log–log exponent {} (≪ 1 ⇒ sub-polynomial)",
        fnum(fit.scale, 2),
        fnum(fit.offset, 2),
        fnum(fit.r2, 3),
        fnum(power.exponent, 2)
    );
    let fitted: Vec<(f64, f64)> =
        pts.iter().map(|&(n, _)| (n, fit.scale * ScalingForm::LogN.eval(n) + fit.offset)).collect();
    outcome.chart = Some(
        Chart {
            title: "Theorem 5 — step complexity vs n".into(),
            x_label: "n (log scale)".into(),
            y_label: "steps (max over processes)".into(),
            log_x: true,
            series: vec![Series {
                label: "steps max".into(),
                points: pts,
                bound: Some((
                    format!("fit {}·log2 n + {}", fnum(fit.scale, 2), fnum(fit.offset, 2)),
                    fitted,
                )),
            }],
        }
        .render(),
    );
    finish(outcome)
}

// ---------------------------------------------------------------- E4 —

fn lemma6(recs: &[Rec]) -> ClaimOutcome {
    let base = ClaimOutcome {
        id: "lemma6",
        heading: "Lemma 6 (E4) — almost-tight renaming, unnamed within 2n/(loglog n)^l",
        statement: "The ℓ-phase loose protocol renames all but n/(log log n)^ℓ processes \
                    into n names within the exact step schedule Σ 2^i; the unnamed count \
                    stays below 2n/(log log n)^ℓ with high probability.",
        bound: "unnamed <= 2n/(loglog n)^l w.h.p., steps <= the exact schedule ceiling",
        scenario: "E4",
        verdict: Verdict::Inconclusive,
        checks: vec![],
        fit_note: String::new(),
        table_header: vec!["n", "l", "steps max", "step bound", "unnamed max", "bound 2n/(lln)^l"],
        table: vec![],
        chart: None,
    };
    let rows = rows(recs, "E4");
    if rows.is_empty() {
        return no_records(base);
    }
    let mut outcome = base;
    let ns = distinct_ns(&rows);
    if ns.len() < 2 {
        outcome.checks.push(Check::inconclusive(
            "size sweep",
            format!("only {} distinct n — need >= 2 for a scaling read", ns.len()),
        ));
    }
    // (label, n, l, steps_max, step_bound, unnamed_max, unnamed_bound)
    let derived: Vec<(String, u64, u32, f64, f64, f64, f64)> = rows
        .iter()
        .filter_map(|r| {
            let n = r.u64("n")?;
            let ell = ell_of(r.str("algorithm")?);
            let sched = Lemma6Schedule::new(n as usize, ell);
            Some((
                format!("n={n}, l={ell}"),
                n,
                ell,
                r.u64("steps_max")? as f64,
                sched.total_steps as f64,
                r.u64("unnamed_max")? as f64,
                sched.unnamed_bound,
            ))
        })
        .collect();
    outcome.checks.push(bounded_check(
        "steps within the exact schedule ceiling",
        &derived.iter().map(|d| (d.0.clone(), d.3, d.4)).collect::<Vec<_>>(),
    ));
    outcome.checks.push(bounded_check(
        "unnamed within 2n/(loglog n)^l",
        &derived.iter().map(|d| (d.0.clone(), d.5, d.6)).collect::<Vec<_>>(),
    ));
    outcome.checks.push(all_zero_check("renaming-safety audit clean", &rows, "violations", |v| {
        format!("{} violations total", v.iter().sum::<u64>())
    }));
    let un_l1: Vec<(f64, f64)> =
        derived.iter().filter(|d| d.2 == 1).map(|d| (d.1 as f64, d.5)).collect();
    let power = fit_power(&un_l1);
    outcome.fit_note = format!(
        "unnamed (ℓ = 1) grows like n^{} (R² = {}) — linear-in-n over polyloglog, as the \
         bound allows; steps are flat in n at each ℓ (the schedule depends on n only \
         through loglog n)",
        fnum(power.exponent, 2),
        fnum(power.r2, 3)
    );
    for d in &derived {
        outcome.table.push(vec![
            d.1.to_string(),
            d.2.to_string(),
            fnum(d.3, 0),
            fnum(d.4, 0),
            fnum(d.5, 0),
            fnum(d.6, 1),
        ]);
    }
    let mut series = Vec::new();
    for ell in [1u32, 2, 3] {
        let pts: Vec<(f64, f64)> =
            derived.iter().filter(|d| d.2 == ell).map(|d| (d.1 as f64, d.5)).collect();
        if pts.is_empty() {
            continue;
        }
        let bound: Vec<(f64, f64)> =
            derived.iter().filter(|d| d.2 == ell).map(|d| (d.1 as f64, d.6)).collect();
        series.push(Series {
            label: format!("unnamed, l = {ell}"),
            points: pts,
            bound: Some((format!("2n/(lln)^{ell}"), bound)),
        });
    }
    if !series.is_empty() {
        outcome.chart = Some(
            Chart {
                title: "Lemma 6 — unnamed processes vs n".into(),
                x_label: "n (log scale)".into(),
                y_label: "unnamed (max over seeds)".into(),
                log_x: true,
                series,
            }
            .render(),
        );
    }
    finish(outcome)
}

// ------------------------------------------------------------ E5/E7 —

/// Shared shape of the two full-loose-renaming corollaries; they differ
/// only in the spare-sizing function and its display.
fn corollary(
    recs: &[Rec],
    base: ClaimOutcome,
    spare_of: fn(usize, u32) -> usize,
    spare_label: &str,
) -> ClaimOutcome {
    let rows = rows(recs, base.scenario);
    if rows.is_empty() {
        return no_records(base);
    }
    let mut outcome = base;
    let ns = distinct_ns(&rows);
    if ns.len() < 2 {
        outcome.checks.push(Check::inconclusive(
            "size sweep",
            format!("only {} distinct n — need >= 2 for a scaling read", ns.len()),
        ));
    }
    // (label, n, l, steps_max, step_limit 8l²(lln)², m/n)
    let derived: Vec<(String, u64, u32, f64, f64, f64)> = rows
        .iter()
        .filter_map(|r| {
            let n = r.u64("n")?;
            let ell = ell_of(r.str("algorithm")?);
            let m = n as f64 + spare_of(n as usize, ell) as f64;
            Some((
                format!("n={n}, l={ell}"),
                n,
                ell,
                r.u64("steps_max")? as f64,
                8.0 * (ell * ell) as f64 * lln_sq(n),
                m / n as f64,
            ))
        })
        .collect();
    outcome.checks.push(all_zero_check("full renaming (unnamed = 0)", &rows, "unnamed_max", |v| {
        format!("max unnamed {} over all rows", v.iter().max().copied().unwrap_or(0))
    }));
    outcome.checks.push(bounded_check(
        "steps within 8·l²·(loglog n)²",
        &derived.iter().map(|d| (d.0.clone(), d.3, d.4)).collect::<Vec<_>>(),
    ));
    outcome.checks.push(if derived.is_empty() {
        Check::inconclusive("name space is (1 + o(1))·n", "no rows carry n/algorithm fields")
    } else {
        let worst_mn = derived.iter().map(|d| d.5).fold(0.0, f64::max);
        Check::new(
            "name space is (1 + o(1))·n",
            format!("worst m/n = {} ({}); shrinks as n or l grows", fnum(worst_mn, 3), {
                spare_label
            }),
            worst_mn <= 2.0,
        )
    });
    outcome.checks.push(all_zero_check("renaming-safety audit clean", &rows, "violations", |v| {
        format!("{} violations total", v.iter().sum::<u64>())
    }));
    let l1: Vec<(f64, f64)> =
        derived.iter().filter(|d| d.2 == 1).map(|d| (d.1 as f64, d.3)).collect();
    // An ingested record set may carry no ℓ = 1 rows — skip the fit
    // rather than panic on the empty sample.
    outcome.fit_note = if l1.is_empty() {
        "n/a (no l = 1 rows to fit)".into()
    } else {
        let fit = fit_form(&l1, ScalingForm::LogLogSq);
        let power = fit_power(&l1);
        format!(
            "steps_max (ℓ = 1) ≈ {}·(loglog n)² + {} (R² = {}); log–log exponent {}",
            fnum(fit.scale, 2),
            fnum(fit.offset, 2),
            fnum(fit.r2, 3),
            fnum(power.exponent, 2)
        )
    };
    for d in &derived {
        outcome.table.push(vec![
            d.1.to_string(),
            d.2.to_string(),
            fnum(d.5, 4),
            fnum(d.3, 0),
            fnum(d.4, 1),
            rows.iter()
                .find(|r| {
                    r.u64("n") == Some(d.1) && ell_of(r.str("algorithm").unwrap_or("")) == d.2
                })
                .and_then(|r| r.u64("unnamed_max"))
                .unwrap_or(0)
                .to_string(),
        ]);
    }
    let mut series = Vec::new();
    for ell in [1u32, 2] {
        let pts: Vec<(f64, f64)> =
            derived.iter().filter(|d| d.2 == ell).map(|d| (d.1 as f64, d.3)).collect();
        if pts.is_empty() {
            continue;
        }
        let bound: Vec<(f64, f64)> =
            derived.iter().filter(|d| d.2 == ell).map(|d| (d.1 as f64, d.4)).collect();
        series.push(Series {
            label: format!("steps max, l = {ell}"),
            points: pts,
            bound: Some((format!("8·{}·(lln)²", ell * ell), bound)),
        });
    }
    if !series.is_empty() {
        outcome.chart = Some(
            Chart {
                title: format!(
                    "{} — step complexity vs n",
                    outcome.heading.split(" (").next().unwrap_or("")
                ),
                x_label: "n (log scale)".into(),
                y_label: "steps (max over processes)".into(),
                log_x: true,
                series,
            }
            .render(),
        );
    }
    finish(outcome)
}

fn cor7(recs: &[Rec]) -> ClaimOutcome {
    corollary(
        recs,
        ClaimOutcome {
            id: "cor7",
            heading: "Corollary 7 (E5) — full loose renaming, m = n + 2n/(loglog n)^l",
            statement: "Composing the almost-tight protocol of Lemma 6 with the finisher \
                        yields full renaming into n + 2n/(log log n)^ℓ names in \
                        O((log log n)^ℓ) + O((log log n)²) steps with high probability.",
            bound: "full renaming into m = n + 2n/(loglog n)^l names, poly-loglog steps",
            scenario: "E5",
            verdict: Verdict::Inconclusive,
            checks: vec![],
            fit_note: String::new(),
            table_header: vec!["n", "l", "m/n", "steps max", "8·l²·(lln)²", "unnamed"],
            table: vec![],
            chart: None,
        },
        spare::cor7,
        "m = n + 2n/(loglog n)^l",
    )
}

fn cor9(recs: &[Rec]) -> ClaimOutcome {
    corollary(
        recs,
        ClaimOutcome {
            id: "cor9",
            heading: "Corollary 9 (E7) — full loose renaming, m = n + 2n/(log n)^l",
            statement: "The headline loose result: full renaming into n + 2n/(log n)^ℓ \
                        names — polynomially close to n — in O((log log n)²) steps with \
                        high probability.",
            bound: "full renaming into m = n + 2n/(log n)^l names, O((loglog n)^2) steps",
            scenario: "E7",
            verdict: Verdict::Inconclusive,
            checks: vec![],
            fit_note: String::new(),
            table_header: vec!["n", "l", "m/n", "steps max", "8·l²·(lln)²", "unnamed"],
            table: vec![],
            chart: None,
        },
        spare::cor9,
        "m = n + 2n/(log n)^l",
    )
}

// ---------------------------------------------------------------- E6 —

fn lemma8(recs: &[Rec]) -> ClaimOutcome {
    let base = ClaimOutcome {
        id: "lemma8",
        heading: "Lemma 8 (E6) — almost-tight renaming, unnamed near n/(log n)^l",
        statement: "The geometric-cluster protocol renames all but ~n/(log n)^ℓ processes \
                    in 2ℓ(log log n)² steps (corrected schedule: ℓ·⌈loglog n⌉ phases); \
                    the structural floor n − capacity is part of the unnamed count.",
        bound: "unnamed ~ n/(log n)^l + structural floor, steps <= 2l(loglog n)^2",
        scenario: "E6",
        verdict: Verdict::Inconclusive,
        checks: vec![],
        fit_note: String::new(),
        table_header: vec![
            "n",
            "l",
            "steps max",
            "step bound",
            "unnamed max",
            "floor n-cap",
            "bound n/(ln)^l",
            "floor + 2·bound",
        ],
        table: vec![],
        chart: None,
    };
    let rows = rows(recs, "E6");
    if rows.is_empty() {
        return no_records(base);
    }
    let mut outcome = base;
    let ns = distinct_ns(&rows);
    if ns.len() < 2 {
        outcome.checks.push(Check::inconclusive(
            "size sweep",
            format!("only {} distinct n — need >= 2 for a scaling read", ns.len()),
        ));
    }
    /// One E6 row joined with its recomputed schedule:
    /// (label, n, l, steps_max, step_bound, unnamed_max, floor, bound).
    type L8Row = (String, u64, u32, f64, f64, f64, f64, f64);
    let derived: Vec<L8Row> = rows
        .iter()
        .filter_map(|r| {
            let n = r.u64("n")?;
            let ell = ell_of(r.str("algorithm")?);
            let sched = Lemma8Schedule::new(n as usize, ell);
            Some((
                format!("n={n}, l={ell}"),
                n,
                ell,
                r.u64("steps_max")? as f64,
                sched.total_steps() as f64,
                r.u64("unnamed_max")? as f64,
                (n as usize - sched.capacity()) as f64,
                sched.unnamed_bound,
            ))
        })
        .collect();
    outcome.checks.push(bounded_check(
        "steps within the 2l(loglog n)^2 schedule",
        &derived.iter().map(|d| (d.0.clone(), d.3, d.4)).collect::<Vec<_>>(),
    ));
    outcome.checks.push(bounded_check(
        "unnamed within floor + 2·bound",
        &derived.iter().map(|d| (d.0.clone(), d.5, d.6 + 2.0 * d.7)).collect::<Vec<_>>(),
    ));
    outcome.checks.push(all_zero_check("renaming-safety audit clean", &rows, "violations", |v| {
        format!("{} violations total", v.iter().sum::<u64>())
    }));
    let un_l1: Vec<(f64, f64)> =
        derived.iter().filter(|d| d.2 == 1).map(|d| (d.1 as f64, d.5)).collect();
    let power = fit_power(&un_l1);
    outcome.fit_note = format!(
        "unnamed (ℓ = 1) grows like n^{} (R² = {}) — n over a polylog, as predicted",
        fnum(power.exponent, 2),
        fnum(power.r2, 3)
    );
    for d in &derived {
        outcome.table.push(vec![
            d.1.to_string(),
            d.2.to_string(),
            fnum(d.3, 0),
            fnum(d.4, 0),
            fnum(d.5, 0),
            fnum(d.6, 0),
            fnum(d.7, 1),
            fnum(d.6 + 2.0 * d.7, 1),
        ]);
    }
    let mut series = Vec::new();
    for ell in [1u32, 2] {
        let pts: Vec<(f64, f64)> =
            derived.iter().filter(|d| d.2 == ell).map(|d| (d.1 as f64, d.5)).collect();
        if pts.is_empty() {
            continue;
        }
        let bound: Vec<(f64, f64)> =
            derived.iter().filter(|d| d.2 == ell).map(|d| (d.1 as f64, d.6 + 2.0 * d.7)).collect();
        series.push(Series {
            label: format!("unnamed, l = {ell}"),
            points: pts,
            bound: Some((format!("floor + 2·n/(ln)^{ell}"), bound)),
        });
    }
    if !series.is_empty() {
        outcome.chart = Some(
            Chart {
                title: "Lemma 8 — unnamed processes vs n".into(),
                x_label: "n (log scale)".into(),
                y_label: "unnamed (max over seeds)".into(),
                log_x: true,
                series,
            }
            .render(),
        );
    }
    finish(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::parse_records;

    fn e1_recs() -> Vec<Rec> {
        parse_records(
            r#"[
{"scenario":"E1","section":"","algorithm":"tight-tau:c=4","n":256,"seeds":5,"steps_p50":50,"steps_max":50,"unnamed_max":0,"violations":0},
{"scenario":"E1","section":"","kind":"throughput","algorithm":"tight-tau:c=4","n":256,"wall_ms":1.0},
{"scenario":"E1","section":"","algorithm":"tight-tau:c=4","n":1024,"seeds":5,"steps_p50":57,"steps_max":57,"unnamed_max":0,"violations":0}
]"#,
        )
        .unwrap()
    }

    #[test]
    fn all_claims_present_in_paper_order() {
        let outcomes = evaluate_claims(&[]);
        let ids: Vec<&str> = outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, claim_ids());
        assert!(outcomes.iter().all(|o| o.verdict == Verdict::Inconclusive));
    }

    #[test]
    fn theorem5_passes_on_well_shaped_records() {
        let outcomes = evaluate_claims(&e1_recs());
        let t5 = outcomes.iter().find(|o| o.id == "theorem5").unwrap();
        assert_eq!(t5.verdict, Verdict::Pass, "{:#?}", t5.checks);
        assert_eq!(t5.table.len(), 2, "throughput record must be skipped");
        assert!(t5.chart.as_deref().unwrap().starts_with("<svg"));
        assert!(t5.fit_note.contains("log2 n"));
    }

    #[test]
    fn theorem5_fails_on_violated_bound() {
        let mut recs = e1_recs();
        // A step count far beyond 8·log2 n must flip the verdict.
        for r in &mut recs {
            for (k, v) in &mut r.fields {
                if k == "steps_max" {
                    *v = crate::records::Value::U64(10_000);
                }
            }
        }
        let t5 = evaluate_claims(&recs).into_iter().find(|o| o.id == "theorem5").unwrap();
        assert_eq!(t5.verdict, Verdict::Fail);
        let failed: Vec<&Check> = t5.checks.iter().filter(|c| c.verdict == Verdict::Fail).collect();
        assert!(failed.iter().any(|c| c.name.contains("step complexity")), "{failed:?}");
    }

    #[test]
    fn single_size_is_inconclusive_not_fail() {
        let recs = &e1_recs()[..1];
        let t5 = evaluate_claims(recs).into_iter().find(|o| o.id == "theorem5").unwrap();
        assert_eq!(t5.verdict, Verdict::Inconclusive);
        assert!(t5.checks.iter().any(|c| c.name == "size sweep"));
    }

    #[test]
    fn lemma3_claim_regime_filter() {
        let recs = parse_records(
            r#"[
{"scenario":"E2","section":"","n":1024,"c":1,"balls":20,"bins":20,"trials":2000,"mean_empty":7.1,"max_empty":11,"threshold":10,"viol_rate":0.006,"viol_bound":0.65},
{"scenario":"E2","section":"","n":1024,"c":4,"balls":80,"bins":20,"trials":2000,"mean_empty":0.3,"max_empty":3,"threshold":10,"viol_rate":0,"viol_bound":0.000000000066}
]"#,
        )
        .unwrap();
        let l3 = evaluate_claims(&recs).into_iter().find(|o| o.id == "lemma3").unwrap();
        // The c = 1 row violates the threshold (11 > 10) but sits outside
        // the claim regime, so the verdict stays PASS.
        assert_eq!(l3.verdict, Verdict::Pass, "{:#?}", l3.checks);
        assert_eq!(l3.table.len(), 2, "contrast rows stay in the table");
    }

    /// Regression: rows outside the claim regime are missing data —
    /// INCONCLUSIVE, never FAIL (FAIL is the CI gate and means a bound
    /// was violated).
    #[test]
    fn out_of_regime_rows_are_inconclusive_not_fail() {
        let recs = parse_records(
            r#"[
{"scenario":"E2","section":"","n":1024,"c":1,"balls":20,"bins":20,"trials":2000,"mean_empty":7.1,"max_empty":11,"threshold":10,"viol_rate":0.006,"viol_bound":0.65},
{"scenario":"E3","section":"","variant":"paper-exact","n":1024,"round":1,"registers":6,"req_min":152,"req_mean":170.7,"req_max":185,"full":6,"whp_target":80,"expected":160}
]"#,
        )
        .unwrap();
        let outcomes = evaluate_claims(&recs);
        let l3 = outcomes.iter().find(|o| o.id == "lemma3").unwrap();
        assert_eq!(l3.verdict, Verdict::Inconclusive, "{:#?}", l3.checks);
        let l4 = outcomes.iter().find(|o| o.id == "lemma4").unwrap();
        assert_eq!(l4.verdict, Verdict::Inconclusive, "{:#?}", l4.checks);
    }

    /// Regression: hand-trimmed `--from` files may carry rows without
    /// the fields a claim needs, or without the ℓ = 1 series — the
    /// evaluators must degrade to INCONCLUSIVE, never panic.
    #[test]
    fn degenerate_ingested_rows_never_panic() {
        // E1 rows lacking n/steps_max entirely.
        let sparse = parse_records(r#"[{"scenario":"E1","section":"","algorithm":"x"}]"#).unwrap();
        let t5 = evaluate_claims(&sparse).into_iter().find(|o| o.id == "theorem5").unwrap();
        assert_eq!(t5.verdict, Verdict::Inconclusive, "{:#?}", t5.checks);
        assert!(t5.chart.is_none());
        // E5/E7 record sets with no ℓ = 1 rows (fit must be skipped).
        let l2_only = parse_records(
            r#"[
{"scenario":"E5","section":"","algorithm":"cor7:l=2","n":1024,"seeds":5,"steps_max":33,"unnamed_max":0,"violations":0},
{"scenario":"E7","section":"","algorithm":"cor9:l=2","n":1024,"seeds":5,"steps_max":131,"unnamed_max":0,"violations":0}
]"#,
        )
        .unwrap();
        for outcome in evaluate_claims(&l2_only) {
            if outcome.id == "cor7" || outcome.id == "cor9" {
                assert_ne!(outcome.verdict, Verdict::Fail, "{:#?}", outcome.checks);
                assert_eq!(outcome.fit_note, "n/a (no l = 1 rows to fit)");
            }
        }
        // E3 rows claiming the calibrated variant but missing the
        // per-round fields.
        let bare_e3 =
            parse_records(r#"[{"scenario":"E3","section":"","variant":"calibrated"}]"#).unwrap();
        let l4 = evaluate_claims(&bare_e3).into_iter().find(|o| o.id == "lemma4").unwrap();
        assert!(l4.chart.is_none());
    }

    #[test]
    fn ell_parsing_and_lln() {
        assert_eq!(ell_of("loose-l6:l=3"), 3);
        assert_eq!(ell_of("cor9"), 1);
        assert_eq!(ell_of("definitely not a key ::"), 1);
        assert!((lln_sq(65536) - (16.0f64).log2().powi(2)).abs() < 1e-9);
    }
}
