//! Reading experiment records back: the exact inverse of the scenario
//! engine's hand-rolled `JsonSink` writer (`BENCH_*.json` files) — an
//! array of flat objects whose values are strings, numbers or `null`.
//!
//! No serde in the container, so this is a small recursive-descent
//! parser for precisely that subset. Nested arrays/objects are rejected:
//! a record stream is flat by construction, and a loud error beats a
//! silently dropped measurement.

use std::fmt;

/// One parsed field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Non-negative integer without fraction or exponent.
    U64(u64),
    /// Any other finite number.
    F64(f64),
    /// String.
    Str(String),
    /// `null` (the sink writes non-finite floats as `null`).
    Null,
}

impl Value {
    /// The value as `u64` (also accepts an integral `F64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::F64(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Null => f.write_str("null"),
        }
    }
}

/// One record: ordered `(name, value)` fields, with the sink's leading
/// `scenario`/`section` fields accessible like any other.
#[derive(Debug, Clone, PartialEq)]
pub struct Rec {
    /// Fields in file order.
    pub fields: Vec<(String, Value)>,
}

impl Rec {
    /// The field named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Integer field accessor.
    pub fn u64(&self, name: &str) -> Option<u64> {
        self.get(name).and_then(Value::as_u64)
    }

    /// Float field accessor.
    pub fn f64(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Value::as_f64)
    }

    /// String field accessor.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Value::as_str)
    }

    /// The record's scenario id (`"E1"`, `"MATRIX"`, …).
    pub fn scenario(&self) -> &str {
        self.str("scenario").unwrap_or("")
    }

    /// Whether this is a wall-clock record (`kind` field present, e.g.
    /// `"throughput"`) — the report generator skips these: they are
    /// measurements of the machine, not of the algorithm.
    pub fn is_wall_clock(&self) -> bool {
        self.str("kind") == Some("throughput")
    }
}

/// Parses a `JsonSink` file: a JSON array of flat objects.
///
/// # Errors
/// Returns a message with a byte offset on any deviation from the
/// record-stream subset (nested values, trailing garbage, bad escapes).
pub fn parse_records(input: &str) -> Result<Vec<Rec>, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'[')?;
    let mut recs = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            recs.push(p.object()?);
            p.skip_ws();
            match p.next() {
                Some(b',') => p.skip_ws(),
                Some(b']') => break,
                other => return Err(p.err(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after the record array".into()));
    }
    Ok(recs)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: String) -> String {
        format!("record parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(self.err(format!("expected `{}`, got {other:?}", want as char))),
        }
    }

    fn object(&mut self) -> Result<Rec, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Rec { fields });
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.next() {
                Some(b',') => {}
                Some(b'}') => break,
                other => return Err(self.err(format!("expected `,` or `}}`, got {other:?}"))),
            }
        }
        Ok(Rec { fields })
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'n') => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            Some(b'0'..=b'9' | b'-') => self.number(),
            Some(b'[' | b'{') => Err(self.err("nested values are not record fields".into())),
            other => Err(self.err(format!("expected a value, got {other:?}"))),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if !text.contains(['.', 'e', 'E', '-']) {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err(format!("bad number literal `{text}`")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string".into())),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if self.pos + 4 > self.bytes.len() {
                            return Err(self.err("truncated \\u escape".into()));
                        }
                        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                            .map_err(|_| self.err("non-ascii \\u escape".into()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.err(format!("bad \\u escape `{hex}`")))?;
                        self.pos += 4;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err(format!("invalid codepoint {code}")))?,
                        );
                    }
                    other => return Err(self.err(format!("bad escape {other:?}"))),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos - 1..])
                        .map_err(|_| self.err("invalid utf8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
{"scenario":"E1","section":"","n":1024,"ratio":3.5,"bad":null,"name":"tight-tau:c=4"},
{"scenario":"E2","section":"s","viol_rate":0.006,"big":18446744073709551615}
]
"#;

    #[test]
    fn round_trips_the_sink_format() {
        let recs = parse_records(SAMPLE).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].scenario(), "E1");
        assert_eq!(recs[0].u64("n"), Some(1024));
        assert_eq!(recs[0].f64("ratio"), Some(3.5));
        assert_eq!(recs[0].get("bad"), Some(&Value::Null));
        assert_eq!(recs[0].str("name"), Some("tight-tau:c=4"));
        assert_eq!(recs[1].f64("viol_rate"), Some(0.006));
        assert_eq!(recs[1].u64("big"), Some(u64::MAX));
        assert!(!recs[0].is_wall_clock());
    }

    #[test]
    fn wall_clock_records_are_flagged() {
        let recs =
            parse_records(r#"[{"scenario":"E1","kind":"throughput","wall_ms":1.5}]"#).unwrap();
        assert!(recs[0].is_wall_clock());
    }

    #[test]
    fn empty_array_and_escapes() {
        assert!(parse_records("[]\n").unwrap().is_empty());
        let recs = parse_records(r#"[{"a":"x\"y\\z\nw","u":"é"}]"#).unwrap();
        assert_eq!(recs[0].str("a"), Some("x\"y\\z\nw"));
        assert_eq!(recs[0].str("u"), Some("é"));
    }

    #[test]
    fn unicode_passthrough() {
        let recs = parse_records("[{\"s\":\"τ-register ≤ bound\"}]").unwrap();
        assert_eq!(recs[0].str("s"), Some("τ-register ≤ bound"));
    }

    #[test]
    fn negative_and_exponent_numbers_are_floats() {
        let recs = parse_records(r#"[{"a":-3,"b":1e3,"c":2.5}]"#).unwrap();
        assert_eq!(recs[0].f64("a"), Some(-3.0));
        assert_eq!(recs[0].f64("b"), Some(1000.0));
        assert_eq!(recs[0].u64("b"), Some(1000), "integral float converts");
        assert_eq!(recs[0].u64("c"), None);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_records("").is_err());
        assert!(parse_records("[{").is_err());
        assert!(parse_records(r#"[{"a":[1]}]"#).is_err(), "nested array");
        assert!(parse_records(r#"[{"a":{}}]"#).is_err(), "nested object");
        assert!(parse_records(r#"[{"a":1}] extra"#).is_err(), "trailing garbage");
        assert!(parse_records(r#"[{"a":tru}]"#).is_err());
        let err = parse_records(r#"[{"a":}]"#).unwrap_err();
        assert!(err.contains("byte"), "{err}");
    }
}
