//! Golden pin of the committed `REPRODUCTION.md`: regenerating the
//! report from the committed record snapshots must reproduce it
//! byte-for-byte, with every claim verdict exactly as committed. The
//! wall-clock (`kind:"throughput"`) records in the snapshots are
//! ignored by construction — asserted here by stripping them and
//! re-generating.

use rr_report::{generate, parse_records, Rec, Verdict};
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The committed snapshot set, in the canonical `exp_report` order.
const INPUTS: [&str; 4] =
    ["BENCH_report.json", "BENCH_scenarios.json", "BENCH_explore.json", "BENCH_route.json"];

fn committed_records() -> Vec<Rec> {
    let mut recs = Vec::new();
    for name in INPUTS {
        let body = std::fs::read_to_string(repo_root().join(name))
            .unwrap_or_else(|e| panic!("committed snapshot {name} must exist: {e}"));
        recs.extend(parse_records(&body).unwrap_or_else(|e| panic!("{name}: {e}")));
    }
    recs
}

fn committed_report() -> String {
    std::fs::read_to_string(repo_root().join("REPRODUCTION.md"))
        .expect("committed REPRODUCTION.md must exist")
}

#[test]
fn regenerated_report_is_byte_identical_to_committed() {
    let report = generate(&committed_records(), INPUTS.iter().map(|s| s.to_string()).collect());
    let fresh = report.to_markdown();
    let committed = committed_report();
    if fresh != committed {
        let diff_at = fresh
            .lines()
            .zip(committed.lines())
            .position(|(a, b)| a != b)
            .map_or("length".to_string(), |i| format!("line {}", i + 1));
        panic!(
            "REPRODUCTION.md drifted from the committed snapshots (first difference: \
             {diff_at}).\nRegenerate with:\n  cargo run --release -p rr-bench --bin \
             exp_report -- --ingest --from {} --out REPRODUCTION.md",
            INPUTS.join(",")
        );
    }
}

#[test]
fn committed_verdicts_are_exactly_pass() {
    let report = generate(&committed_records(), INPUTS.iter().map(|s| s.to_string()).collect());
    for claim in &report.claims {
        assert_eq!(
            claim.verdict,
            Verdict::Pass,
            "claim {} must PASS on the committed snapshots: {:#?}",
            claim.id,
            claim.checks
        );
        assert!(claim.chart.is_some(), "claim {} must render a chart", claim.id);
    }
    for cross in &report.cross {
        assert_eq!(cross.verdict, Verdict::Pass, "{}: {:#?}", cross.heading, cross.checks);
    }
    assert_eq!(report.worst_verdict(), Verdict::Pass);
}

#[test]
fn wall_clock_records_are_masked_out_of_the_report() {
    let all = committed_records();
    let stripped: Vec<Rec> =
        all.iter().filter(|r| r.str("kind") != Some("throughput")).cloned().collect();
    assert!(stripped.len() < all.len(), "snapshots should contain throughput records to mask");
    let inputs: Vec<String> = INPUTS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        generate(&all, inputs.clone()).to_markdown(),
        generate(&stripped, inputs).to_markdown(),
        "wall-clock records must not influence a single report byte"
    );
}

#[test]
fn generation_is_deterministic() {
    let recs = committed_records();
    let inputs: Vec<String> = INPUTS.iter().map(|s| s.to_string()).collect();
    assert_eq!(
        generate(&recs, inputs.clone()).to_markdown(),
        generate(&recs, inputs).to_markdown()
    );
}

#[test]
fn committed_report_has_a_chart_and_verdict_per_claim_section() {
    let committed = committed_report();
    assert_eq!(committed.matches("<svg ").count(), 7, "one chart per paper claim");
    // 7 claims + 3 cross-checks in the summary table, all PASS.
    assert_eq!(committed.matches("| **PASS** |").count(), 10);
    assert_eq!(committed.matches("**Verdict: PASS**").count(), 10);
    assert!(!committed.contains("**Verdict: FAIL**"));
}
