//! # rr-tau — the τ-register and its counting device
//!
//! Cycle-accurate simulation of the special hardware register proposed in
//! §II-B/§II-C of Berenbrink et al. (IPDPS 2015). The paper itself notes
//! the register is "unlikely … \[to\] be actually built", so this crate
//! *is* the artifact: it executes the published register-transfer
//! pseudocode per clock cycle.
//!
//! * [`device`] — [`CountingDevice`]: `2·log n` TAS bits whose confirmed
//!   population never exceeds τ, implemented with the two-phase cycle
//!   (request, discard) from the paper, including a literal transcription
//!   of the shift/`popcnt`/bit-test selection ([`device::rtl`]).
//! * [`register`] — [`TauRegister`]: the device plus τ name slots and the
//!   systematic slot search a winner performs.
//! * [`concurrent`] — [`ConcurrentTauRegister`]: lock-free front end
//!   so free-running OS threads share a register; concurrent requests are
//!   answered at cycle boundaries exactly like the asynchronous hardware.
//! * [`trace`] — cycle-by-cycle rendering for demos and experiments.
//!
//! ```
//! use rr_tau::CountingDevice;
//!
//! // A width-8 device with quota tau = 4: however many concurrent
//! // requests a cycle absorbs, the confirmed population never exceeds
//! // tau — the §II-B invariant.
//! let mut device = CountingDevice::new(8, 4);
//! let requests: Vec<(usize, usize)> = (0..6).map(|p| (p, p % 8)).collect();
//! let report = device.clock_cycle(&requests);
//! assert!(report.win_count() <= 4);
//! assert!(device.confirmed_count() <= device.tau());
//! ```

#![forbid(unsafe_code)]

pub mod concurrent;
pub mod device;
pub mod register;
pub mod trace;

pub use concurrent::ConcurrentTauRegister;
pub use device::{BitOutcome, CountingDevice, CycleReport};
pub use register::TauRegister;
