//! The τ-register (§II-B): τ name-holding TAS registers guarded by a
//! counting device.
//!
//! A process that wants one of the register's τ names must first win one
//! of the device's `2·log n` TAS bits; because the device confirms at
//! most τ bits, at most τ processes are ever admitted to the name search,
//! so every admitted process is guaranteed to win one of the τ name
//! slots. This module provides the *sequential* register used by the
//! deterministic experiments; [`crate::concurrent`] wraps it for
//! free-running threads.

use crate::device::{BitOutcome, CountingDevice, CycleReport, Request};
use rr_shmem::tas::{AtomicTasArray, TasMemory};

/// A τ-register: counting device + τ name slots mapped onto a base name.
#[derive(Debug)]
pub struct TauRegister {
    device: CountingDevice,
    slots: AtomicTasArray,
    base_name: usize,
}

impl TauRegister {
    /// A register handing out names `base_name .. base_name + tau`,
    /// guarded by a device of `width` TAS bits.
    pub fn new(width: u32, tau: u32, base_name: usize) -> Self {
        Self {
            device: CountingDevice::new(width, tau),
            slots: AtomicTasArray::new(tau as usize),
            base_name,
        }
    }

    /// The paper's `(log n)`-register: `2·⌈log₂ n⌉` device bits, τ =
    /// `⌈log₂ n⌉` names starting at `base_name`.
    pub fn log_register(n: usize, base_name: usize) -> Self {
        let device = CountingDevice::log_register(n);
        let tau = device.tau();
        Self { device, slots: AtomicTasArray::new(tau as usize), base_name }
    }

    /// Number of device TAS bits.
    pub fn width(&self) -> u32 {
        self.device.width()
    }

    /// Number of names this register holds.
    pub fn tau(&self) -> u32 {
        self.device.tau()
    }

    /// First name handed out by this register.
    pub fn base_name(&self) -> usize {
        self.base_name
    }

    /// Immutable view of the counting device.
    pub fn device(&self) -> &CountingDevice {
        &self.device
    }

    /// Runs one device clock cycle over `requests` (see
    /// [`CountingDevice::clock_cycle`]).
    pub fn clock_cycle(&mut self, requests: &[Request]) -> CycleReport {
        self.device.clock_cycle(requests)
    }

    /// Name-slot search (§II-B): an *admitted* process — one whose device
    /// bit is confirmed — systematically TASes the τ name slots until it
    /// wins one. Returns `(name, probes)` where `probes` is the number of
    /// TAS operations spent (each is one step in the paper's accounting).
    ///
    /// # Panics
    /// Panics if called by a process that was never admitted — the search
    /// is only defined for winners, and calling it otherwise would break
    /// the ≤ τ searchers invariant the guarantee rests on.
    pub fn claim_name(&self, won_bit: usize) -> (usize, u32) {
        assert!(
            self.device.is_confirmed(won_bit),
            "claim_name requires a confirmed device bit (bit {won_bit} is not)"
        );
        let mut probes = 0;
        for slot in 0..self.slots.len() {
            probes += 1;
            if self.slots.tas(slot) {
                return (self.base_name + slot, probes);
            }
        }
        unreachable!(
            "a confirmed process always finds a free slot: the device admits \
             at most τ searchers and there are τ slots"
        );
    }

    /// Number of name slots already claimed.
    pub fn claimed_slots(&self) -> usize {
        self.slots.count_set()
    }

    /// Convenience: request `bit` as a single-request cycle and, on
    /// success, immediately claim a name. Returns `(outcome, name)`.
    pub fn request_and_claim(&mut self, pid: usize, bit: usize) -> (BitOutcome, Option<usize>) {
        let report = self.device.clock_cycle(&[(pid, bit)]);
        match report.outcomes[0].1 {
            BitOutcome::Won => {
                let (name, _) = self.claim_name(bit);
                (BitOutcome::Won, Some(name))
            }
            BitOutcome::Lost => (BitOutcome::Lost, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admitted_process_claims_name() {
        let mut r = TauRegister::new(8, 4, 100);
        let (outcome, name) = r.request_and_claim(0, 3);
        assert_eq!(outcome, BitOutcome::Won);
        assert_eq!(name, Some(100));
        let (_, name2) = r.request_and_claim(1, 5);
        assert_eq!(name2, Some(101));
    }

    #[test]
    fn all_tau_names_distinct_and_in_range() {
        let mut r = TauRegister::new(16, 8, 64);
        let mut names = Vec::new();
        for bit in 0..8 {
            let (_, name) = r.request_and_claim(bit, bit);
            names.push(name.unwrap());
        }
        names.sort_unstable();
        assert_eq!(names, (64..72).collect::<Vec<_>>());
        assert_eq!(r.claimed_slots(), 8);
        // The device is full; a ninth request loses.
        let (outcome, name) = r.request_and_claim(8, 9);
        assert_eq!(outcome, BitOutcome::Lost);
        assert_eq!(name, None);
    }

    #[test]
    fn losers_get_no_name() {
        let mut r = TauRegister::new(4, 1, 0);
        assert_eq!(r.request_and_claim(0, 0).1, Some(0));
        assert_eq!(r.request_and_claim(1, 1).1, None);
        assert_eq!(r.request_and_claim(2, 0).1, None);
    }

    #[test]
    #[should_panic(expected = "confirmed device bit")]
    fn unadmitted_claim_rejected() {
        let r = TauRegister::new(8, 4, 0);
        r.claim_name(2);
    }

    #[test]
    fn log_register_shape() {
        let r = TauRegister::log_register(1 << 16, 0);
        assert_eq!(r.width(), 32);
        assert_eq!(r.tau(), 16);
        assert_eq!(r.base_name(), 0);
    }

    #[test]
    fn probe_count_bounded_by_tau() {
        let mut r = TauRegister::new(8, 4, 0);
        for bit in 0..4 {
            let report = r.clock_cycle(&[(bit, bit)]);
            assert_eq!(report.win_count(), 1);
            let (_, probes) = r.claim_name(bit);
            assert!(probes <= 4);
        }
    }

    #[test]
    fn batch_cycle_respects_quota_then_all_claim() {
        let mut r = TauRegister::new(16, 8, 0);
        let reqs: Vec<_> = (0..16).map(|p| (p, p)).collect();
        let report = r.clock_cycle(&reqs);
        assert_eq!(report.win_count(), 8);
        let mut names: Vec<_> = report
            .outcomes
            .iter()
            .filter(|(_, o)| *o == BitOutcome::Won)
            .map(|&(pid, _)| r.claim_name(pid).0) // pid == bit in this setup
            .collect();
        names.sort_unstable();
        assert_eq!(names, (0..8).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Against any admission order, every admitted process claims a
        /// distinct in-range name, never more than τ are admitted, and
        /// slot probes stay ≤ τ.
        #[test]
        fn admitted_claims_are_distinct(
            width in 2u32..=64,
            tau_raw in 1u32..=64,
            bits in proptest::collection::vec(0u32..64, 1..80),
        ) {
            let tau = tau_raw.min(width);
            let mut reg = TauRegister::new(width, tau, 1000);
            let mut names = Vec::new();
            for (pid, bit) in bits.into_iter().enumerate() {
                let bit = (bit % width) as usize;
                let (_, name) = reg.request_and_claim(pid, bit);
                if let Some(name) = name {
                    prop_assert!((1000..1000 + tau as usize).contains(&name));
                    names.push(name);
                }
            }
            let mut sorted = names.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), names.len(), "duplicate names");
            prop_assert!(names.len() <= tau as usize);
            prop_assert_eq!(reg.claimed_slots(), names.len());
            prop_assert_eq!(reg.device().confirmed_count() as usize, names.len());
        }

        /// Batched cycles and single-request cycles admit the same
        /// *number* of processes when all requested bits are distinct.
        #[test]
        fn batching_preserves_admission_count(
            width in 4u32..=64,
            tau_raw in 1u32..=64,
            k in 1usize..64,
        ) {
            let tau = tau_raw.min(width);
            let k = k.min(width as usize);
            // Batch: all k distinct bits in one cycle.
            let mut batched = TauRegister::new(width, tau, 0);
            let reqs: Vec<_> = (0..k).map(|p| (p, p)).collect();
            let batch_wins = batched.clock_cycle(&reqs).win_count();
            // Serial: one request per cycle.
            let mut serial = TauRegister::new(width, tau, 0);
            let serial_wins = (0..k)
                .filter(|&p| serial.request_and_claim(p, p).1.is_some())
                .count();
            prop_assert_eq!(batch_wins, k.min(tau as usize));
            prop_assert_eq!(serial_wins, k.min(tau as usize));
        }
    }
}
