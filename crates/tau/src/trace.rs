//! Human-readable cycle traces of the counting device, used by the
//! `tau_register_demo` example and the E10 experiment to show the
//! hardware doing its job cycle by cycle.

use crate::device::{BitOutcome, CycleReport};

/// Renders a register value as a `width`-bit string, most significant
/// position first (the paper's position 1 on the left).
pub fn bits(value: u64, width: u32) -> String {
    (0..width).rev().map(|b| if value >> b & 1 == 1 { '1' } else { '0' }).collect()
}

/// One formatted line per cycle: registers before/after, discards,
/// winners and losers.
pub fn render_cycle(report: &CycleReport, width: u32) -> String {
    let winners: Vec<String> = report
        .outcomes
        .iter()
        .filter(|(_, o)| *o == BitOutcome::Won)
        .map(|(t, _)| format!("p{t}"))
        .collect();
    let losers: Vec<String> = report
        .outcomes
        .iter()
        .filter(|(_, o)| *o == BitOutcome::Lost)
        .map(|(t, _)| format!("p{t}"))
        .collect();
    format!(
        "cycle {:>3}  in/out {} -> {}  discarded {}  won [{}]  lost [{}]",
        report.cycle,
        bits(report.before, width),
        bits(report.after, width),
        bits(report.discarded, width),
        winners.join(" "),
        losers.join(" "),
    )
}

/// Renders a whole trace.
pub fn render_trace(reports: &[CycleReport], width: u32) -> String {
    reports.iter().map(|r| render_cycle(r, width)).collect::<Vec<_>>().join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CountingDevice;

    #[test]
    fn bit_string_is_msb_first() {
        assert_eq!(bits(0b0001, 4), "0001");
        assert_eq!(bits(0b1000, 4), "1000");
        assert_eq!(bits(0, 4), "0000");
        assert_eq!(bits(u64::MAX, 8), "11111111");
    }

    #[test]
    fn cycle_rendering_contains_outcomes() {
        let mut d = CountingDevice::new(4, 1);
        let r = d.clock_cycle(&[(3, 0), (5, 2)]);
        let line = render_cycle(&r, 4);
        assert!(line.contains("cycle   0"));
        assert!(line.contains("won [p3]"));
        assert!(line.contains("lost [p5]"));
        assert!(line.contains("0001"));
    }

    #[test]
    fn trace_joins_lines() {
        let mut d = CountingDevice::new(4, 4);
        let r1 = d.clock_cycle(&[(0, 0)]);
        let r2 = d.clock_cycle(&[(1, 1)]);
        let trace = render_trace(&[r1, r2], 4);
        assert_eq!(trace.lines().count(), 2);
    }
}
