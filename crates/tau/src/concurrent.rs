//! Lock-free multi-thread front end for the τ-register.
//!
//! Real hardware clocks the counting device independently of the
//! processes; requests arrive asynchronously and are answered at the
//! next cycle boundary (§II-C). The batched form of that model — many
//! requests absorbed by one cycle — lives in
//! [`CountingDevice::clock_cycle`](crate::device::CountingDevice::clock_cycle) and is
//! exercised directly by the device experiments. This front end realizes
//! the degenerate (but equally legal) schedule in which every request is
//! its own cycle, which lets the whole device state live in **one atomic
//! word**: the confirmed bit map *is* the `in_reg`/`out_reg` of a device
//! between cycles, so a request is a single compare-and-swap that
//! validates "bit free **and** quota remaining" against one consistent
//! snapshot. No locks, no queues, no allocation:
//!
//! * single-threaded executors (`rr-sched`'s virtual and dense backends)
//!   pay a handful of nanoseconds per request — this is the hot path of
//!   every tight-renaming step at n = 2²⁰, where the earlier
//!   flat-combining design (ticket allocation plus queue and device
//!   locks per request) dominated whole-run wall clock;
//! * free-running threads get a linearizable register: the CAS either
//!   observes the bit free with quota remaining and wins, or loses —
//!   exactly one winner per bit, never more than τ winners total, no
//!   matter the interleaving.
//!
//! The outcome of an uncontended request is bit-for-bit the outcome of
//! [`CountingDevice::request_one`](crate::device::CountingDevice::request_one),
//! so the deterministic executors'
//! step counts are unchanged by the front-end representation.

use crate::device::MAX_WIDTH;
use rr_shmem::atomics::AtomicWord;
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A τ-register shared by free-running threads.
///
/// Cloning the handle is cheap (`Arc` internally); all clones address the
/// same hardware.
///
/// Generic over the [`AtomicWord`] instantiation of its state word and
/// name-slot array: production code uses the `AtomicU64` default (the
/// unqualified `ConcurrentTauRegister` type, identical codegen to the
/// pre-abstraction register), while `rr_sched::model` instantiates the
/// same struct with an instrumented word so every load/CAS/TAS becomes
/// a schedulable event in an exhaustive interleaving search.
#[derive(Debug)]
pub struct ConcurrentTauRegister<W: AtomicWord = AtomicU64> {
    inner: Arc<Inner<W>>,
}

// Manual impl: `#[derive(Clone)]` would demand `W: Clone`, but the
// handle only clones the `Arc`.
impl<W: AtomicWord> Clone for ConcurrentTauRegister<W> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

#[derive(Debug)]
struct Inner<W: AtomicWord> {
    /// The confirmed bit map — the device's `out_reg` (== `in_reg`
    /// between cycles). Single source of truth, updated by CAS.
    state: W,
    /// Clock cycles executed (one per answered request). Plain `std`
    /// atomic even under instrumentation: it is observability metadata,
    /// not checked state, and modelling it would double every
    /// interleaving point for no verification value.
    cycles: AtomicU64,
    width: u32,
    tau: u32,
    slots: AtomicTasArray<W>,
    base_name: usize,
}

impl ConcurrentTauRegister {
    /// A production (`AtomicU64`) register handing out names
    /// `base_name .. base_name + tau`. Defined on the default
    /// instantiation so plain `ConcurrentTauRegister::new(..)` call
    /// sites infer `W = AtomicU64`.
    ///
    /// # Panics
    /// Panics if `width == 0`, `width > 64` or `tau > width`.
    pub fn new(width: u32, tau: u32, base_name: usize) -> Self {
        Self::with_atomics(width, tau, base_name)
    }

    /// The paper's `(log n)`-register for population `n`: `2·⌈log₂ n⌉`
    /// bits with τ = `⌈log₂ n⌉` — sized by
    /// [`CountingDevice::log_register`](crate::device::CountingDevice::log_register)
    /// so the front end can never diverge from the device's policy.
    pub fn log_register(n: usize, base_name: usize) -> Self {
        let device = crate::device::CountingDevice::log_register(n);
        Self::new(device.width(), device.tau(), base_name)
    }
}

impl<W: AtomicWord> ConcurrentTauRegister<W> {
    /// A register over any [`AtomicWord`] instantiation (the model
    /// checker's entry point).
    ///
    /// # Panics
    /// Panics if `width == 0`, `width > 64` or `tau > width`.
    pub fn with_atomics(width: u32, tau: u32, base_name: usize) -> Self {
        assert!(width > 0, "device needs at least one bit");
        assert!(width <= MAX_WIDTH, "device width {width} exceeds one machine word");
        assert!(tau <= width, "threshold τ={tau} exceeds width {width}");
        Self {
            inner: Arc::new(Inner {
                state: W::new(0),
                cycles: AtomicU64::new(0),
                width,
                tau,
                slots: AtomicTasArray::with_atomics(tau as usize),
                base_name,
            }),
        }
    }

    /// Number of device TAS bits.
    pub fn width(&self) -> u32 {
        self.inner.width
    }

    /// Number of names (τ).
    pub fn tau(&self) -> u32 {
        self.inner.tau
    }

    /// First name handed out by this register.
    pub fn base_name(&self) -> usize {
        self.inner.base_name
    }

    /// Device clock cycles executed so far (one per answered request).
    pub fn cycles(&self) -> u64 {
        self.inner.cycles.load(Ordering::Relaxed)
    }

    /// Confirmed winner count (≤ τ always).
    pub fn confirmed_count(&self) -> u32 {
        self.confirmed_bits().count_ones()
    }

    /// Snapshot of the confirmed bit map (`out_reg`). The paper assumes
    /// all `2·log n` bits of a register can be read in one operation, so
    /// callers may charge this as a single step.
    pub fn confirmed_bits(&self) -> u64 {
        self.inner.state.load(Ordering::Acquire)
    }

    /// Remaining winner quota (τ − confirmed).
    pub fn remaining_quota(&self) -> u32 {
        self.inner.tau - self.confirmed_count()
    }

    /// `(remaining_quota, confirmed_bits)` from one atomic snapshot —
    /// the one-step register inspection the tight protocol's final-round
    /// sweep charges (the paper reads a whole register in one
    /// operation).
    pub fn quota_and_bits(&self) -> (u32, u64) {
        let bits = self.confirmed_bits();
        (self.inner.tau - bits.count_ones(), bits)
    }

    /// Requests device bit `bit`: one clock cycle, answered immediately.
    ///
    /// Returns `true` iff the bit was won. The compare-and-swap commits
    /// the bit only against a snapshot in which it was free **and** the
    /// τ quota had room — the device invariant (≤ τ confirmed winners,
    /// one winner per bit) holds under any interleaving.
    ///
    /// # Panics
    /// Panics if `bit` is out of range.
    pub fn request_bit(&self, bit: usize) -> bool {
        assert!(
            (bit as u32) < self.inner.width,
            "bit {bit} out of range (width {})",
            self.inner.width
        );
        let b = 1u64 << bit;
        let won = loop {
            let cur = self.inner.state.load(Ordering::Acquire);
            if cur & b != 0 || cur.count_ones() >= self.inner.tau {
                break false;
            }
            if self
                .inner
                .state
                .compare_exchange_weak(cur, cur | b, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                break true;
            }
        };
        self.inner.cycles.fetch_add(1, Ordering::Relaxed);
        won
    }

    /// Requests a block of device bits — up to the register width — in
    /// **one** CAS attempt, pushing one outcome per entry of `bits` (in
    /// order) onto `wins`.
    ///
    /// Outcomes are exactly those of calling [`Self::request_bit`] for
    /// each entry in sequence with no interference: the block is
    /// simulated against one atomic snapshot (repeated bits lose to the
    /// earlier entry, wins stop when the τ quota fills) and committed by
    /// a single compare-and-swap, so the whole block linearizes at that
    /// CAS. If the snapshot went stale — a concurrent writer moved the
    /// state, or the weak CAS failed spuriously — the simulated outcomes
    /// are discarded and the block falls back to per-bit
    /// [`Self::request_bit`] calls, which preserves every invariant at
    /// the old one-CAS-per-bit cost. Either path advances the cycle
    /// counter by `bits.len()`, one answered request per entry, so
    /// single-threaded executors observe identical metadata regardless
    /// of which path ran.
    ///
    /// # Panics
    /// Panics if any bit is out of range.
    pub fn request_block(&self, bits: &[usize], wins: &mut Vec<bool>) {
        for &bit in bits {
            assert!(
                (bit as u32) < self.inner.width,
                "bit {bit} out of range (width {})",
                self.inner.width
            );
        }
        let start = wins.len();
        let cur = self.inner.state.load(Ordering::Acquire);
        let mut next = cur;
        for &bit in bits {
            let b = 1u64 << bit;
            let won = next & b == 0 && next.count_ones() < self.inner.tau;
            if won {
                next |= b;
            }
            wins.push(won);
        }
        if next == cur {
            // Every entry lost against the snapshot alone — the block
            // linearizes at the load; nothing to commit.
            self.inner.cycles.fetch_add(bits.len() as u64, Ordering::Relaxed);
            return;
        }
        if self
            .inner
            .state
            .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            self.inner.cycles.fetch_add(bits.len() as u64, Ordering::Relaxed);
            return;
        }
        // Stale snapshot: discard and take the per-bit slow path (each
        // request_bit advances the cycle counter itself).
        wins.truncate(start);
        for &bit in bits {
            wins.push(self.request_bit(bit));
        }
    }

    /// Number of name slots (τ).
    pub fn slots_len(&self) -> usize {
        self.inner.slots.len()
    }

    /// TAS a single name slot — one shared-memory step. Returns `true`
    /// iff the slot (and hence name `base_name + slot`) was won. The
    /// step-granular building block the renaming state machines use
    /// instead of the batched [`Self::claim_name`].
    pub fn try_slot(&self, slot: usize) -> bool {
        self.inner.slots.tas(slot)
    }

    /// Name-slot search for a process that won a device bit: TAS the τ
    /// slots in order; guaranteed to succeed (≤ τ admitted searchers).
    /// Returns `(name, probes)`.
    pub fn claim_name(&self) -> (usize, u32) {
        let mut probes = 0;
        for slot in 0..self.inner.slots.len() {
            probes += 1;
            if self.inner.slots.tas(slot) {
                return (self.inner.base_name + slot, probes);
            }
        }
        unreachable!("≤ τ admitted searchers, τ slots: a free slot must exist");
    }

    /// Full acquisition: request `bit`; on admission, claim a name.
    /// Returns `(name, steps)` on success, `(steps)` spent on failure —
    /// steps counts the bit request (1) plus slot probes.
    pub fn acquire(&self, bit: usize) -> Result<(usize, u32), u32> {
        if self.request_bit(bit) {
            let (name, probes) = self.claim_name();
            Ok((name, 1 + probes))
        } else {
            Err(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::CountingDevice;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn single_thread_acquire() {
        let reg = ConcurrentTauRegister::new(8, 4, 10);
        assert_eq!(reg.acquire(0), Ok((10, 2)));
        // Slot 0 now taken: next winner probes twice.
        assert_eq!(reg.acquire(1), Ok((11, 3)));
        assert!(reg.acquire(0).is_err(), "bit 0 already set");
        assert_eq!(reg.confirmed_count(), 2);
    }

    #[test]
    fn quota_enforced_sequentially() {
        let reg = ConcurrentTauRegister::new(8, 2, 0);
        assert!(reg.acquire(0).is_ok());
        assert!(reg.acquire(1).is_ok());
        assert!(reg.acquire(2).is_err());
        assert!(reg.acquire(3).is_err());
        assert_eq!(reg.confirmed_count(), 2);
    }

    #[test]
    fn concurrent_contention_names_distinct_and_quota_held() {
        // 64 threads contend for a register with τ = 8 names over 16 bits.
        let reg = ConcurrentTauRegister::new(16, 8, 100);
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let reg = reg.clone();
                thread::spawn(move || reg.acquire(i % 16).ok().map(|(name, _)| name))
            })
            .collect();
        let names: Vec<usize> = handles.into_iter().filter_map(|h| h.join().unwrap()).collect();
        let distinct: HashSet<_> = names.iter().copied().collect();
        assert_eq!(names.len(), distinct.len(), "duplicate names handed out");
        assert!(names.len() <= 8, "more winners than τ");
        assert!(names.iter().all(|&n| (100..108).contains(&n)));
        assert_eq!(reg.confirmed_count() as usize, names.len());
    }

    #[test]
    fn all_names_eventually_handed_out_under_full_coverage() {
        // With every bit requested by some thread and τ = width/2, the
        // register must fill completely.
        let reg = ConcurrentTauRegister::new(16, 8, 0);
        let handles: Vec<_> = (0..16)
            .map(|bit| {
                let reg = reg.clone();
                thread::spawn(move || reg.acquire(bit).is_ok())
            })
            .collect();
        let wins = handles.into_iter().filter(|_| true).map(|h| h.join().unwrap());
        let won: usize = wins.filter(|&w| w).count();
        assert_eq!(won, 8);
        assert_eq!(reg.confirmed_count(), 8);
    }

    #[test]
    fn log_register_constructor() {
        let reg = ConcurrentTauRegister::log_register(256, 42);
        assert_eq!(reg.width(), 16);
        assert_eq!(reg.tau(), 8);
        assert_eq!(reg.base_name(), 42);
    }

    #[test]
    fn cycles_advance_only_with_requests() {
        let reg = ConcurrentTauRegister::new(8, 4, 0);
        assert_eq!(reg.cycles(), 0);
        reg.acquire(0).unwrap();
        assert!(reg.cycles() >= 1);
    }

    /// `request_block` answers exactly as the same bits fed one at a
    /// time through `request_bit` — including repeated bits inside one
    /// block and quota exhaustion mid-block — and advances the cycle
    /// counter identically.
    #[test]
    fn block_requests_match_per_bit_requests() {
        let blocks: [&[usize]; 4] = [&[3, 7, 3, 0], &[1, 1, 1], &[2, 9, 4, 5, 8], &[10, 0, 15]];
        let blocked = ConcurrentTauRegister::new(16, 6, 0);
        let serial = ConcurrentTauRegister::new(16, 6, 0);
        let mut wins = Vec::new();
        for bits in blocks {
            wins.clear();
            blocked.request_block(bits, &mut wins);
            let expect: Vec<bool> = bits.iter().map(|&b| serial.request_bit(b)).collect();
            assert_eq!(wins, expect, "block {bits:?}");
            assert_eq!(blocked.confirmed_bits(), serial.confirmed_bits(), "block {bits:?}");
            assert_eq!(blocked.cycles(), serial.cycles(), "block {bits:?}");
        }
        assert_eq!(blocked.confirmed_count(), 6, "τ quota filled across blocks");
    }

    #[test]
    fn block_appends_to_existing_wins() {
        let reg = ConcurrentTauRegister::new(8, 4, 0);
        let mut wins = vec![true];
        reg.request_block(&[0, 0], &mut wins);
        assert_eq!(wins, vec![true, true, false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_rejects_out_of_range_bits() {
        ConcurrentTauRegister::new(8, 4, 0).request_block(&[3, 8], &mut Vec::new());
    }

    /// Concurrent block and per-bit requesters still hand out at most
    /// one winner per bit and at most τ winners total.
    #[test]
    fn concurrent_blocks_hold_the_quota() {
        for trial in 0..32 {
            let reg = ConcurrentTauRegister::new(16, 5, 0);
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let reg = reg.clone();
                    thread::spawn(move || {
                        let bits = [(t + trial) % 16, (t + trial + 3) % 16];
                        let mut wins = Vec::new();
                        reg.request_block(&bits, &mut wins);
                        wins.iter().filter(|&&w| w).count()
                    })
                })
                .collect();
            let won: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(won as u32, reg.confirmed_count());
            assert!(reg.confirmed_count() <= 5, "quota overshoot");
        }
    }

    /// The lock-free front end and the batched device agree request for
    /// request when driven sequentially — the equivalence that keeps the
    /// deterministic executors' step counts independent of the front-end
    /// representation.
    #[test]
    fn sequential_requests_match_counting_device() {
        let reg = ConcurrentTauRegister::new(16, 6, 0);
        let mut device = CountingDevice::new(16, 6);
        // A fixed probe pattern with repeats and overflow attempts.
        let probes = [3usize, 7, 3, 0, 1, 2, 9, 4, 5, 8, 10, 0, 15];
        for &bit in &probes {
            let fast = reg.request_bit(bit);
            let slow = device.request_one(bit) == crate::device::BitOutcome::Won;
            assert_eq!(fast, slow, "bit {bit}");
            assert_eq!(reg.confirmed_bits(), device.confirmed(), "bit {bit}");
        }
        assert_eq!(reg.cycles(), probes.len() as u64);
        assert_eq!(reg.confirmed_count(), 6);
        assert_eq!(reg.remaining_quota(), 0);
        assert_eq!(reg.quota_and_bits(), (0, device.confirmed()));
    }
}
