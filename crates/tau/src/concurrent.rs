//! Free-running multi-thread front end for the τ-register.
//!
//! Real hardware would clock the counting device independently of the
//! processes; requests arrive asynchronously and are answered at the next
//! cycle boundary (§II-C: "since requests are only answered in a certain
//! phase, the processing may start with a (constant) delay"). We
//! reproduce that with **flat combining**: requests are published to an
//! injector queue, and whichever thread acquires the device lock drains
//! the queue and executes one clock cycle for the whole batch. Every
//! thread therefore pays O(1) publication plus a bounded
//! wait for its answer — the paper's "constant slowdown compared to a
//! standard TAS register" — and batching behaviour matches the hardware:
//! concurrent requests land in the same cycle.

use crate::device::{BitOutcome, CountingDevice};
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

const PENDING: u8 = 0;
const WON: u8 = 1;
const LOST: u8 = 2;

/// One published request awaiting its cycle.
#[derive(Debug)]
struct Ticket {
    bit: usize,
    outcome: AtomicU8,
}

/// A τ-register shared by free-running threads.
///
/// Cloning the handle is cheap (`Arc` internally); all clones address the
/// same hardware.
#[derive(Debug, Clone)]
pub struct ConcurrentTauRegister {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    device: Mutex<CountingDevice>,
    queue: Mutex<VecDeque<Arc<Ticket>>>,
    slots: AtomicTasArray,
    base_name: usize,
}

impl ConcurrentTauRegister {
    /// A register handing out names `base_name .. base_name + tau`.
    pub fn new(width: u32, tau: u32, base_name: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                device: Mutex::new(CountingDevice::new(width, tau)),
                queue: Mutex::new(VecDeque::new()),
                slots: AtomicTasArray::new(tau as usize),
                base_name,
            }),
        }
    }

    /// The paper's `(log n)`-register for population `n`.
    pub fn log_register(n: usize, base_name: usize) -> Self {
        let device = CountingDevice::log_register(n);
        let tau = device.tau();
        Self {
            inner: Arc::new(Inner {
                device: Mutex::new(device),
                queue: Mutex::new(VecDeque::new()),
                slots: AtomicTasArray::new(tau as usize),
                base_name,
            }),
        }
    }

    /// Number of device TAS bits.
    pub fn width(&self) -> u32 {
        self.inner.device.lock().unwrap().width()
    }

    /// Number of names (τ).
    pub fn tau(&self) -> u32 {
        self.inner.device.lock().unwrap().tau()
    }

    /// First name handed out by this register.
    pub fn base_name(&self) -> usize {
        self.inner.base_name
    }

    /// Device clock cycles executed so far.
    pub fn cycles(&self) -> u64 {
        self.inner.device.lock().unwrap().cycles()
    }

    /// Confirmed winner count (≤ τ always).
    pub fn confirmed_count(&self) -> u32 {
        self.inner.device.lock().unwrap().confirmed_count()
    }

    /// Snapshot of the confirmed bit map (`out_reg`). The paper assumes
    /// all `2·log n` bits of a register can be read in one operation, so
    /// callers may charge this as a single step.
    pub fn confirmed_bits(&self) -> u64 {
        self.inner.device.lock().unwrap().confirmed()
    }

    /// Remaining winner quota (τ − confirmed).
    pub fn remaining_quota(&self) -> u32 {
        self.inner.device.lock().unwrap().remaining_quota()
    }

    /// Requests device bit `bit` and waits for the cycle that answers it.
    ///
    /// Returns `true` iff the bit was won. Publication only touches the
    /// queue; the combining thread runs the cycle for everyone queued
    /// behind it.
    pub fn request_bit(&self, bit: usize) -> bool {
        let ticket = Arc::new(Ticket { bit, outcome: AtomicU8::new(PENDING) });
        self.inner.queue.lock().unwrap().push_back(Arc::clone(&ticket));
        loop {
            match ticket.outcome.load(Ordering::Acquire) {
                WON => return true,
                LOST => return false,
                _ => {}
            }
            match self.inner.device.try_lock() {
                Ok(mut device) => {
                    self.combine(&mut device);
                    // Our ticket may or may not have been in the drained
                    // batch; loop re-checks before combining again.
                    continue;
                }
                // A combiner panicked mid-cycle: propagate instead of
                // spinning forever on a ticket nobody will answer.
                Err(std::sync::TryLockError::Poisoned(e)) => {
                    panic!("counting device poisoned by a panicked combiner: {e}")
                }
                Err(std::sync::TryLockError::WouldBlock) => {}
            }
            std::hint::spin_loop();
        }
    }

    /// Drains the queue and executes one clock cycle for the batch.
    fn combine(&self, device: &mut CountingDevice) {
        let batch: Vec<Arc<Ticket>> = self.inner.queue.lock().unwrap().drain(..).collect();
        if batch.is_empty() {
            return;
        }
        let requests: Vec<(usize, usize)> =
            batch.iter().enumerate().map(|(i, t)| (i, t.bit)).collect();
        let report = device.clock_cycle(&requests);
        for (i, outcome) in report.outcomes {
            let value = match outcome {
                BitOutcome::Won => WON,
                BitOutcome::Lost => LOST,
            };
            batch[i].outcome.store(value, Ordering::Release);
        }
    }

    /// Number of name slots (τ).
    pub fn slots_len(&self) -> usize {
        self.inner.slots.len()
    }

    /// TAS a single name slot — one shared-memory step. Returns `true`
    /// iff the slot (and hence name `base_name + slot`) was won. The
    /// step-granular building block the renaming state machines use
    /// instead of the batched [`Self::claim_name`].
    pub fn try_slot(&self, slot: usize) -> bool {
        self.inner.slots.tas(slot)
    }

    /// Name-slot search for a process that won a device bit: TAS the τ
    /// slots in order; guaranteed to succeed (≤ τ admitted searchers).
    /// Returns `(name, probes)`.
    pub fn claim_name(&self) -> (usize, u32) {
        let mut probes = 0;
        for slot in 0..self.inner.slots.len() {
            probes += 1;
            if self.inner.slots.tas(slot) {
                return (self.inner.base_name + slot, probes);
            }
        }
        unreachable!("≤ τ admitted searchers, τ slots: a free slot must exist");
    }

    /// Full acquisition: request `bit`; on admission, claim a name.
    /// Returns `(name, steps)` on success, `(steps)` spent on failure —
    /// steps counts the bit request (1) plus slot probes.
    pub fn acquire(&self, bit: usize) -> Result<(usize, u32), u32> {
        if self.request_bit(bit) {
            let (name, probes) = self.claim_name();
            Ok((name, 1 + probes))
        } else {
            Err(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn single_thread_acquire() {
        let reg = ConcurrentTauRegister::new(8, 4, 10);
        assert_eq!(reg.acquire(0), Ok((10, 2)));
        // Slot 0 now taken: next winner probes twice.
        assert_eq!(reg.acquire(1), Ok((11, 3)));
        assert!(reg.acquire(0).is_err(), "bit 0 already set");
        assert_eq!(reg.confirmed_count(), 2);
    }

    #[test]
    fn quota_enforced_sequentially() {
        let reg = ConcurrentTauRegister::new(8, 2, 0);
        assert!(reg.acquire(0).is_ok());
        assert!(reg.acquire(1).is_ok());
        assert!(reg.acquire(2).is_err());
        assert!(reg.acquire(3).is_err());
        assert_eq!(reg.confirmed_count(), 2);
    }

    #[test]
    fn concurrent_contention_names_distinct_and_quota_held() {
        // 64 threads contend for a register with τ = 8 names over 16 bits.
        let reg = ConcurrentTauRegister::new(16, 8, 100);
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let reg = reg.clone();
                thread::spawn(move || reg.acquire(i % 16).ok().map(|(name, _)| name))
            })
            .collect();
        let names: Vec<usize> = handles.into_iter().filter_map(|h| h.join().unwrap()).collect();
        let distinct: HashSet<_> = names.iter().copied().collect();
        assert_eq!(names.len(), distinct.len(), "duplicate names handed out");
        assert!(names.len() <= 8, "more winners than τ");
        assert!(names.iter().all(|&n| (100..108).contains(&n)));
        assert_eq!(reg.confirmed_count() as usize, names.len());
    }

    #[test]
    fn all_names_eventually_handed_out_under_full_coverage() {
        // With every bit requested by some thread and τ = width/2, the
        // register must fill completely.
        let reg = ConcurrentTauRegister::new(16, 8, 0);
        let handles: Vec<_> = (0..16)
            .map(|bit| {
                let reg = reg.clone();
                thread::spawn(move || reg.acquire(bit).is_ok())
            })
            .collect();
        let wins = handles.into_iter().filter(|_| true).map(|h| h.join().unwrap());
        let won: usize = wins.filter(|&w| w).count();
        assert_eq!(won, 8);
        assert_eq!(reg.confirmed_count(), 8);
    }

    #[test]
    fn log_register_constructor() {
        let reg = ConcurrentTauRegister::log_register(256, 42);
        assert_eq!(reg.width(), 16);
        assert_eq!(reg.tau(), 8);
        assert_eq!(reg.base_name(), 42);
    }

    #[test]
    fn cycles_advance_only_with_requests() {
        let reg = ConcurrentTauRegister::new(8, 4, 0);
        assert_eq!(reg.cycles(), 0);
        reg.acquire(0).unwrap();
        assert!(reg.cycles() >= 1);
    }
}
