//! The counting device (§II-C of the paper), cycle-accurate.
//!
//! A counting device manages `w = 2·log n` single-bit TAS registers and
//! guarantees that at most `τ ≤ w` of them are ever *confirmed* set. It
//! operates in clock cycles of two phases:
//!
//! 1. **Request phase** (pseudocode lines 1–3): every pending request to
//!    bit `b` fails if `b` is already set in `in_reg`; otherwise exactly
//!    one requester preliminarily sets it.
//! 2. **Discard phase** (lines 4–14): if the preliminary bits push
//!    `popcnt(in_reg)` above τ, the device keeps only `allowed_bits =
//!    τ − popcnt(old)` of the *new* bits and unsets the rest; `out_reg`
//!    then mirrors `in_reg`. A process owns its bit only once it appears
//!    in `out_reg`.
//!
//! The published pseudocode selects the surviving new bits with a shift /
//! `popcnt` / bit-test search over auxiliary registers. Read with bit
//! position 1 as the **most significant** position of the `w`-bit window
//! (the only reading under which `bt(util_reg_i, 1)` can ever be true for
//! `i ≥ 2`), that search has a unique fixed point: *keep the
//! `allowed_bits` new bits with the lowest index*. [`rtl::shift_select`]
//! transcribes the search literally and the property tests pin it to the
//! direct oracle used by [`CountingDevice::clock_cycle`]. See DESIGN.md
//! ("Known gaps", item 2).

/// Maximum device width: the registers are simulated in one `u64` word,
/// exactly like the paper's assumption that all `2·log n` bits can be
/// read and combined in `O(1)` machine operations.
pub const MAX_WIDTH: u32 = 64;

/// Outcome of one request after the cycle that consumed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitOutcome {
    /// The request's bit is confirmed in `out_reg`; the process may go
    /// claim a name slot.
    Won,
    /// The bit was already set, lost the per-bit arbitration, or was
    /// discarded in phase 2. The process must try elsewhere.
    Lost,
}

/// A request presented to the device: `(tag, bit)`. The tag is opaque to
/// the hardware (process id in practice) and is only echoed in the report.
pub type Request = (usize, usize);

/// Everything one clock cycle did — consumed by tests, the E10 experiment
/// and the trace demo.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// Cycle number (0-based).
    pub cycle: u64,
    /// `in_reg` (== `out_reg`) before the cycle.
    pub before: u64,
    /// Confirmed register contents after the cycle.
    pub after: u64,
    /// Bits preliminarily set in phase 1 and then discarded in phase 2.
    pub discarded: u64,
    /// Per-request outcomes, same order as the request slice.
    pub outcomes: Vec<(usize, BitOutcome)>,
}

impl CycleReport {
    /// Tags that won their bit this cycle.
    pub fn winners(&self) -> impl Iterator<Item = usize> + '_ {
        self.outcomes.iter().filter(|(_, o)| *o == BitOutcome::Won).map(|(t, _)| *t)
    }

    /// Number of requests that won this cycle.
    pub fn win_count(&self) -> usize {
        self.outcomes.iter().filter(|(_, o)| *o == BitOutcome::Won).count()
    }
}

/// Cycle-accurate counting device state: `in_reg`, `out_reg`, width, τ.
///
/// ```
/// use rr_tau::CountingDevice;
///
/// // 8 TAS bits, at most 2 confirmed winners — ever.
/// let mut device = CountingDevice::new(8, 2);
/// let report = device.clock_cycle(&[(0, 1), (1, 4), (2, 6)]);
/// assert_eq!(report.win_count(), 2, "the discard phase unset one bit");
/// assert!(device.full());
/// assert_eq!(device.clock_cycle(&[(3, 0)]).win_count(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CountingDevice {
    width: u32,
    tau: u32,
    in_reg: u64,
    out_reg: u64,
    cycles: u64,
}

impl CountingDevice {
    /// A device with `width` TAS bits admitting at most `tau` winners.
    ///
    /// # Panics
    /// Panics if `width == 0`, `width > 64` or `tau > width`.
    pub fn new(width: u32, tau: u32) -> Self {
        assert!(width > 0, "device needs at least one bit");
        assert!(width <= MAX_WIDTH, "device width {width} exceeds one machine word");
        assert!(tau <= width, "threshold τ={tau} exceeds width {width}");
        Self { width, tau, in_reg: 0, out_reg: 0, cycles: 0 }
    }

    /// Device sized for the paper's `(log n)`-register: `2·⌈log₂ n⌉` bits
    /// with τ = `⌈log₂ n⌉`.
    pub fn log_register(n: usize) -> Self {
        let log_n = (usize::BITS - (n.max(2) - 1).leading_zeros()).max(1);
        Self::new(2 * log_n, log_n)
    }

    /// Number of TAS bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Winner threshold τ.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Confirmed register contents (`out_reg`).
    pub fn confirmed(&self) -> u64 {
        self.out_reg
    }

    /// Number of confirmed winners so far.
    pub fn confirmed_count(&self) -> u32 {
        self.out_reg.count_ones()
    }

    /// Remaining winner quota.
    pub fn remaining_quota(&self) -> u32 {
        self.tau - self.confirmed_count()
    }

    /// Whether the device has reached its τ quota.
    pub fn full(&self) -> bool {
        self.remaining_quota() == 0
    }

    /// Clock cycles executed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Whether `bit` is confirmed set.
    pub fn is_confirmed(&self, bit: usize) -> bool {
        assert!((bit as u32) < self.width);
        self.out_reg >> bit & 1 == 1
    }

    fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Executes one clock cycle over `requests`.
    ///
    /// Per-bit arbitration among same-cycle requesters picks the first in
    /// slice order (the paper allows "an arbitrary one"; the scheduler
    /// controls arrival order, so this is adversary-compatible).
    ///
    /// # Panics
    /// Panics if any requested bit is out of range.
    pub fn clock_cycle(&mut self, requests: &[Request]) -> CycleReport {
        let before = self.in_reg;
        debug_assert_eq!(self.in_reg, self.out_reg, "registers must agree between cycles");
        // Line 1: allowed_bits ← τ − popcnt(in_reg).
        let allowed = self.tau - self.in_reg.count_ones();

        // Phase 1 (lines 2–3): preliminary TAS of each requested bit.
        let mut prelim_winner: Vec<Option<usize>> = vec![None; requests.len()];
        for (slot, &(_, bit)) in requests.iter().enumerate() {
            assert!((bit as u32) < self.width, "bit {bit} out of range (width {})", self.width);
            let b = 1u64 << bit;
            if self.in_reg & b == 0 {
                self.in_reg |= b;
                prelim_winner[slot] = Some(bit);
            }
        }

        // Phase 2 (lines 4–14): discard supernumerary new bits.
        let new_bits = self.in_reg ^ self.out_reg;
        let (kept, discarded) = if self.in_reg.count_ones() > self.tau {
            let kept = keep_lowest(new_bits, allowed);
            (kept, new_bits & !kept)
        } else {
            (new_bits, 0)
        };
        self.out_reg |= kept;
        self.in_reg = self.out_reg;

        debug_assert!(self.out_reg.count_ones() <= self.tau, "τ invariant violated");
        debug_assert_eq!(self.out_reg & !self.mask(), 0, "bits outside the window");

        let outcomes = requests
            .iter()
            .zip(&prelim_winner)
            .map(|(&(tag, _), prelim)| {
                let won = prelim.is_some_and(|bit| self.out_reg >> bit & 1 == 1);
                (tag, if won { BitOutcome::Won } else { BitOutcome::Lost })
            })
            .collect();

        let report =
            CycleReport { cycle: self.cycles, before, after: self.out_reg, discarded, outcomes };
        self.cycles += 1;
        report
    }

    /// One-request clock cycle without the [`CycleReport`] allocation —
    /// the single-threaded executors' hot path. State transitions and
    /// outcome are exactly those of `clock_cycle(&[(tag, bit)])`:
    /// a set bit loses; an unset bit wins iff quota remains (with one
    /// request, phase 2 discards the preliminary TAS precisely when the
    /// device was already full).
    ///
    /// # Panics
    /// Panics if `bit` is out of range.
    pub fn request_one(&mut self, bit: usize) -> BitOutcome {
        assert!((bit as u32) < self.width, "bit {bit} out of range (width {})", self.width);
        debug_assert_eq!(self.in_reg, self.out_reg, "registers must agree between cycles");
        self.cycles += 1;
        let b = 1u64 << bit;
        if self.in_reg & b != 0 || self.in_reg.count_ones() >= self.tau {
            return BitOutcome::Lost;
        }
        self.in_reg |= b;
        self.out_reg = self.in_reg;
        BitOutcome::Won
    }
}

/// Keeps the `allowed` set bits of `bits` with the lowest indices; clears
/// the rest. The oracle form of the pseudocode's shift-select.
#[inline]
pub(crate) fn keep_lowest(bits: u64, allowed: u32) -> u64 {
    let mut kept = 0u64;
    let mut rest = bits;
    for _ in 0..allowed {
        if rest == 0 {
            break;
        }
        let lowest = rest & rest.wrapping_neg();
        kept |= lowest;
        rest ^= lowest;
    }
    kept
}

/// Literal register-transfer transcription of pseudocode lines 5–11.
pub mod rtl {
    /// Selects the surviving new bits exactly as the published shift
    /// search does, under MSB-first position numbering (position 1 = most
    /// significant bit of the `width`-bit window).
    ///
    /// `new_bits` is `out_reg xor in_reg` (the bits set this cycle),
    /// `allowed` is `τ − popcnt(old)`. Returns the kept subset of
    /// `new_bits`. Returns `new_bits` unchanged when no discarding is
    /// needed (`popcnt(new_bits) ≤ allowed`), mirroring the pseudocode's
    /// line-4 guard.
    pub fn shift_select(new_bits: u64, allowed: u32, width: u32) -> u64 {
        assert!((1..=64).contains(&width));
        let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        assert_eq!(new_bits & !mask, 0, "new bits outside the window");
        if new_bits.count_ones() <= allowed {
            return new_bits;
        }
        if allowed == 0 {
            return 0;
        }
        // util_reg_0 ← out_reg xor in_reg (line 5). Under MSB-first
        // numbering, the paper's left shift moves bits toward position 1,
        // i.e. toward the window's most significant bit; bits shifted past
        // it fall out of the register.
        let util0 = new_bits;
        for i in 1..=width {
            // Line 7: util_reg_i ← util_reg_0 << (i − 1), within the window.
            let util_i = (util0 << (i - 1)) & mask;
            // Line 8: popcnt(util_reg_i) = allowed_bits.
            // Line 9: bt(util_reg_i, 1) — position 1 is the window MSB.
            let msb_set = util_i >> (width - 1) & 1 == 1;
            if util_i.count_ones() == allowed && msb_set {
                // Line 10: shift back.
                return util_i >> (i - 1);
            }
        }
        unreachable!(
            "shift search always terminates: shifting until the \
             (popcnt−allowed+1)-th highest new bit reaches position 1 \
             satisfies both conditions"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_tau() {
        let mut d = CountingDevice::new(8, 3);
        let r = d.clock_cycle(&[(0, 0), (1, 1), (2, 2)]);
        assert_eq!(r.win_count(), 3);
        assert!(d.full());
        assert_eq!(d.confirmed(), 0b111);
    }

    #[test]
    fn rejects_beyond_tau_in_one_cycle() {
        let mut d = CountingDevice::new(8, 2);
        let r = d.clock_cycle(&[(10, 5), (11, 1), (12, 7), (13, 3)]);
        assert_eq!(r.win_count(), 2);
        // Lowest-indexed new bits survive: bits 1 and 3.
        assert_eq!(d.confirmed(), 0b0000_1010);
        assert_eq!(r.discarded, (1 << 5) | (1 << 7));
        let winners: Vec<_> = r.winners().collect();
        assert_eq!(winners, vec![11, 13]);
    }

    #[test]
    fn rejects_beyond_tau_across_cycles() {
        let mut d = CountingDevice::new(8, 2);
        assert_eq!(d.clock_cycle(&[(0, 0)]).win_count(), 1);
        assert_eq!(d.clock_cycle(&[(1, 1)]).win_count(), 1);
        assert_eq!(d.clock_cycle(&[(2, 2)]).win_count(), 0);
        assert_eq!(d.confirmed(), 0b11);
        assert_eq!(d.remaining_quota(), 0);
    }

    #[test]
    fn same_bit_single_winner() {
        let mut d = CountingDevice::new(8, 8);
        let r = d.clock_cycle(&[(0, 4), (1, 4), (2, 4)]);
        assert_eq!(r.win_count(), 1);
        assert_eq!(r.outcomes[0], (0, BitOutcome::Won));
        assert_eq!(r.outcomes[1], (1, BitOutcome::Lost));
        assert_eq!(r.outcomes[2], (2, BitOutcome::Lost));
    }

    #[test]
    fn already_set_bit_fails() {
        let mut d = CountingDevice::new(8, 8);
        d.clock_cycle(&[(0, 4)]);
        let r = d.clock_cycle(&[(1, 4)]);
        assert_eq!(r.win_count(), 0);
    }

    #[test]
    fn old_bits_never_discarded() {
        let mut d = CountingDevice::new(16, 3);
        d.clock_cycle(&[(0, 10), (1, 12)]);
        // Quota 1 left; request three low bits — only one may win, and
        // bits 10/12 must survive.
        let r = d.clock_cycle(&[(2, 0), (3, 1), (4, 2)]);
        assert_eq!(r.win_count(), 1);
        assert!(d.is_confirmed(10));
        assert!(d.is_confirmed(12));
        assert!(d.is_confirmed(0));
        assert_eq!(d.confirmed_count(), 3);
    }

    #[test]
    fn empty_cycle_is_noop() {
        let mut d = CountingDevice::new(8, 4);
        d.clock_cycle(&[(0, 0)]);
        let before = d.confirmed();
        let r = d.clock_cycle(&[]);
        assert_eq!(d.confirmed(), before);
        assert_eq!(r.win_count(), 0);
        assert_eq!(d.cycles(), 2);
    }

    #[test]
    fn log_register_dimensions() {
        let d = CountingDevice::log_register(1024);
        assert_eq!(d.width(), 20);
        assert_eq!(d.tau(), 10);
        let d = CountingDevice::log_register(1000);
        assert_eq!(d.width(), 20); // ⌈log₂ 1000⌉ = 10
        let d = CountingDevice::log_register(2);
        assert_eq!(d.width(), 2);
        assert_eq!(d.tau(), 1);
    }

    #[test]
    fn full_width_device() {
        let mut d = CountingDevice::new(64, 64);
        let reqs: Vec<_> = (0..64).map(|b| (b, b)).collect();
        assert_eq!(d.clock_cycle(&reqs).win_count(), 64);
        assert_eq!(d.confirmed(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds width")]
    fn tau_bounded_by_width() {
        CountingDevice::new(8, 9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_bounds_checked() {
        CountingDevice::new(8, 4).clock_cycle(&[(0, 8)]);
    }

    #[test]
    fn keep_lowest_oracle() {
        assert_eq!(keep_lowest(0b1011_0100, 2), 0b0001_0100);
        assert_eq!(keep_lowest(0b1011_0100, 0), 0);
        assert_eq!(keep_lowest(0b1011_0100, 10), 0b1011_0100);
        assert_eq!(keep_lowest(0, 3), 0);
    }

    #[test]
    fn rtl_matches_hand_example() {
        // Example from the module docs: width 4, new bits at positions
        // {1, 4} (u64 bits {3, 0}), allowed 1 ⇒ keep u64 bit 0.
        assert_eq!(rtl::shift_select(0b1001, 1, 4), 0b0001);
    }

    #[test]
    fn rtl_no_discard_needed() {
        assert_eq!(rtl::shift_select(0b0110, 2, 4), 0b0110);
        assert_eq!(rtl::shift_select(0b0110, 3, 4), 0b0110);
        assert_eq!(rtl::shift_select(0, 0, 8), 0);
    }

    #[test]
    fn rtl_allowed_zero() {
        assert_eq!(rtl::shift_select(0b0110, 0, 4), 0);
    }

    #[test]
    fn report_bookkeeping() {
        let mut d = CountingDevice::new(8, 1);
        let r = d.clock_cycle(&[(7, 2), (9, 6)]);
        assert_eq!(r.cycle, 0);
        assert_eq!(r.before, 0);
        assert_eq!(r.after, 0b100);
        assert_eq!(r.discarded, 1 << 6);
        assert_eq!(r.winners().collect::<Vec<_>>(), vec![7]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The literal RTL shift-select and the keep-lowest oracle agree
        /// on every input where discarding is required.
        #[test]
        fn rtl_equals_oracle(width in 1u32..=64, bits: u64, allowed in 0u32..=64) {
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let bits = bits & mask;
            let allowed = allowed.min(width);
            let rtl_result = rtl::shift_select(bits, allowed, width);
            let oracle = if bits.count_ones() <= allowed {
                bits
            } else {
                keep_lowest(bits, allowed)
            };
            prop_assert_eq!(rtl_result, oracle);
        }

        /// τ-invariant and monotonicity hold under arbitrary request
        /// sequences.
        #[test]
        fn device_invariants(
            width in 1u32..=32,
            tau_frac in 0u32..=32,
            cycles in proptest::collection::vec(
                proptest::collection::vec((0usize..1000, 0u32..32), 0..10), 0..20),
        ) {
            let tau = tau_frac.min(width);
            let mut d = CountingDevice::new(width, tau);
            let mut prev = 0u64;
            let mut total_wins = 0usize;
            for batch in cycles {
                let reqs: Vec<_> = batch
                    .into_iter()
                    .map(|(tag, bit)| (tag, (bit % width) as usize))
                    .collect();
                let r = d.clock_cycle(&reqs);
                total_wins += r.win_count();
                // Monotone: confirmed bits never disappear.
                prop_assert_eq!(d.confirmed() & prev, prev);
                // τ-invariant.
                prop_assert!(d.confirmed_count() <= tau);
                prev = d.confirmed();
            }
            // Exactly one win per confirmed bit.
            prop_assert_eq!(total_wins as u32, d.confirmed_count());
        }

        /// With quota available and distinct fresh bits requested, all
        /// requests win.
        #[test]
        fn fresh_distinct_requests_win(width in 2u32..=64, k in 1u32..=8) {
            let k = k.min(width);
            let mut d = CountingDevice::new(width, width);
            let reqs: Vec<_> = (0..k).map(|b| (b as usize, b as usize)).collect();
            let r = d.clock_cycle(&reqs);
            prop_assert_eq!(r.win_count(), k as usize);
        }
    }
}
