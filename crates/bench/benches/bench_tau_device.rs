//! Microbenchmarks of the counting device and the concurrent τ-register:
//! cost of one clock cycle (the "constant slowdown" the paper claims)
//! and of an acquire through the lock-free front end.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_tau::{ConcurrentTauRegister, CountingDevice};
use std::hint::black_box;

fn bench_clock_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("device_clock_cycle");
    for batch in [1usize, 8, 32, 64] {
        let reqs: Vec<(usize, usize)> = (0..batch).map(|t| (t, t % 64)).collect();
        g.bench_function(format!("batch={batch}"), |b| {
            b.iter(|| {
                // Fresh device per iteration so the quota never binds.
                let mut d = CountingDevice::new(64, 64);
                black_box(d.clock_cycle(black_box(&reqs)).win_count())
            })
        });
    }
    g.finish();
}

fn bench_discard_path(c: &mut Criterion) {
    // Worst case: every cycle overflows the quota and runs the
    // shift-select discard.
    let reqs: Vec<(usize, usize)> = (0..64).map(|t| (t, t % 64)).collect();
    c.bench_function("device_cycle_with_discard", |b| {
        b.iter(|| {
            let mut d = CountingDevice::new(64, 4);
            black_box(d.clock_cycle(black_box(&reqs)).win_count())
        })
    });
}

fn bench_rtl_select(c: &mut Criterion) {
    c.bench_function("rtl_shift_select", |b| {
        let mut x = 0x9e3779b97f4a7c15u64;
        b.iter(|| {
            x = x.rotate_left(7) ^ 0xdeadbeef;
            black_box(rr_tau::device::rtl::shift_select(black_box(x & 0xFFFF_FFFF), 7, 32))
        })
    });
}

fn bench_concurrent_acquire(c: &mut Criterion) {
    let mut g = c.benchmark_group("tau_register_acquire");
    g.sample_size(20);
    for threads in [1usize, 4, 16] {
        g.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| {
                let reg = ConcurrentTauRegister::new(64, 32, 0);
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let reg = reg.clone();
                        s.spawn(move || {
                            for bit in 0..(32 / threads).max(1) {
                                black_box(reg.acquire((t * 7 + bit) % 64).ok());
                            }
                        });
                    }
                });
                black_box(reg.confirmed_count())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_clock_cycle,
    bench_discard_path,
    bench_rtl_select,
    bench_concurrent_acquire
);
criterion_main!(benches);
