//! Microbenchmarks for the word-packed status bitmap behind the dense
//! and shard backends: next-runnable scan, runnable popcount, and
//! status transitions, each against a scalar per-pid reference loop.
//!
//! Every benchmark body first asserts that the packed answer equals the
//! scalar-scan answer on the same roster, so the speed numbers can
//! never drift away from a correctness regression silently.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_sched::ids::Pid;
use rr_sched::{Status, StatusBitmap};
use std::hint::black_box;

const N: usize = 1 << 16;

/// A roster with a deterministic mix of halted pids: every 7th pid is
/// Named, every 13th GaveUp, every 31st Crashed (first match wins).
fn mixed_roster(n: usize) -> StatusBitmap {
    let mut bm = StatusBitmap::new();
    bm.reset(n);
    for i in 0..n {
        let status = if i % 7 == 0 {
            Status::Named
        } else if i % 13 == 0 {
            Status::GaveUp
        } else if i % 31 == 0 {
            Status::Crashed
        } else {
            continue;
        };
        bm.set(Pid::new(i), status);
    }
    bm
}

/// Scalar reference: first runnable pid at or after `from`, wrapping
/// like the packed scanner's caller would.
fn scalar_next_runnable(bm: &StatusBitmap, from: usize) -> Option<usize> {
    (from..bm.len()).find(|&i| bm.get(Pid::new(i)) == Status::Running)
}

fn scalar_runnable_count(bm: &StatusBitmap) -> usize {
    (0..bm.len()).filter(|&i| bm.get(Pid::new(i)) == Status::Running).count()
}

/// An endgame roster: only every 503rd pid still runnable, the regime
/// where the scheduler spends its time once most processes have named
/// themselves and the scan must skip long halted stretches.
fn sparse_roster(n: usize) -> StatusBitmap {
    let mut bm = StatusBitmap::new();
    bm.reset(n);
    for i in 0..n {
        if i % 503 != 0 {
            bm.set(Pid::new(i), Status::Named);
        }
    }
    bm
}

fn bench_next_runnable(c: &mut Criterion) {
    let mut g = c.benchmark_group("bits_next_runnable");
    g.sample_size(20);
    for (tag, bm) in [("mixed", mixed_roster(N)), ("sparse", sparse_roster(N))] {
        for from in [0usize, N / 2, N - 1] {
            assert_eq!(
                bm.next_runnable(from).map(Pid::index),
                scalar_next_runnable(&bm, from),
                "packed next_runnable({from}) must match the scalar scan on the {tag} roster"
            );
        }
        g.bench_function(format!("packed/{tag}/n={N}"), |b| {
            b.iter(|| {
                let mut cursor = 0usize;
                let mut found = 0u64;
                while let Some(pid) = bm.next_runnable(cursor) {
                    cursor = pid.index() + 1;
                    found += 1;
                }
                black_box(found)
            })
        });
        g.bench_function(format!("scalar/{tag}/n={N}"), |b| {
            b.iter(|| {
                let mut cursor = 0usize;
                let mut found = 0u64;
                while let Some(i) = scalar_next_runnable(&bm, cursor) {
                    cursor = i + 1;
                    found += 1;
                }
                black_box(found)
            })
        });
    }
    g.finish();
}

fn bench_runnable_count(c: &mut Criterion) {
    let bm = mixed_roster(N);
    assert_eq!(
        bm.runnable_count(),
        scalar_runnable_count(&bm),
        "packed popcount must match the scalar scan"
    );
    let mut g = c.benchmark_group("bits_runnable_count");
    g.sample_size(20);
    g.bench_function(format!("packed/n={N}"), |b| b.iter(|| black_box(bm.runnable_count())));
    g.bench_function(format!("scalar/n={N}"), |b| b.iter(|| black_box(scalar_runnable_count(&bm))));
    g.finish();
}

fn bench_status_transition(c: &mut Criterion) {
    // Parity: after identically driving packed and Vec<Status> rosters
    // through the same halt sequence, every pid agrees.
    let mut bm = StatusBitmap::new();
    bm.reset(N);
    let mut vec_roster = vec![Status::Running; N];
    for i in (0..N).step_by(3) {
        let status = if i % 2 == 0 { Status::Named } else { Status::Crashed };
        bm.set(Pid::new(i), status);
        vec_roster[i] = status;
    }
    for (i, &status) in vec_roster.iter().enumerate() {
        assert_eq!(bm.get(Pid::new(i)), status, "status transition parity at pid {i}");
    }

    let mut g = c.benchmark_group("bits_status_transition");
    g.sample_size(20);
    g.bench_function(format!("packed/n={N}"), |b| {
        b.iter(|| {
            let mut bm = StatusBitmap::new();
            bm.reset(N);
            for i in 0..N {
                bm.set(Pid::new(i), Status::Named);
            }
            black_box(bm.runnable_count())
        })
    });
    g.bench_function(format!("scalar/n={N}"), |b| {
        b.iter(|| {
            let mut roster = vec![Status::Running; N];
            for slot in roster.iter_mut() {
                *slot = Status::Named;
            }
            black_box(roster.iter().filter(|&&s| s == Status::Running).count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_next_runnable, bench_runnable_count, bench_status_transition);
criterion_main!(benches);
