//! Microbenchmarks of the TAS substrate: single-thread TAS throughput,
//! contended TAS across threads, and the audit table's claim cost —
//! verifying the primitives are cheap enough that the experiment numbers
//! measure the algorithms, not the harness.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_shmem::namespace::NameSpaceAudit;
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};

fn bench_tas_single(c: &mut Criterion) {
    c.bench_function("tas_fresh_win", |b| {
        let mut arr = AtomicTasArray::new(1 << 16);
        let mut i = 0usize;
        b.iter(|| {
            if i == arr.len() {
                arr.reset();
                i = 0;
            }
            let won = arr.tas(black_box(i));
            i += 1;
            black_box(won)
        })
    });
    c.bench_function("tas_lose_set_register", |b| {
        let arr = AtomicTasArray::new(64);
        arr.tas(7);
        b.iter(|| black_box(arr.tas(black_box(7))))
    });
    c.bench_function("tas_read", |b| {
        let arr = AtomicTasArray::new(1 << 12);
        arr.tas(100);
        b.iter(|| black_box(arr.is_set(black_box(100))))
    });
}

fn bench_tas_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("tas_contended_sweep");
    g.sample_size(20);
    for threads in [2usize, 8] {
        g.bench_function(format!("threads={threads}"), |b| {
            b.iter(|| {
                let arr = AtomicTasArray::new(1 << 12);
                let wins = AtomicUsize::new(0);
                std::thread::scope(|s| {
                    for _ in 0..threads {
                        s.spawn(|| {
                            let mut local = 0;
                            for i in 0..arr.len() {
                                if arr.tas(i) {
                                    local += 1;
                                }
                            }
                            wins.fetch_add(local, Ordering::Relaxed);
                        });
                    }
                });
                assert_eq!(wins.load(Ordering::Relaxed), arr.len());
                black_box(())
            })
        });
    }
    g.finish();
}

fn bench_audit_claim(c: &mut Criterion) {
    c.bench_function("audit_claim", |b| {
        let audit = NameSpaceAudit::new(1 << 16, 1 << 16);
        let mut pid = 0usize;
        b.iter(|| {
            let r = audit.claim(pid % (1 << 16), pid % (1 << 16));
            pid += 1;
            black_box(r.is_ok())
        })
    });
}

criterion_group!(benches, bench_tas_single, bench_tas_contended, bench_audit_claim);
criterion_main!(benches);
