//! Wall-clock benchmark of §III tight renaming: virtual executor
//! (model-faithful, single thread) and free-running OS threads over the
//! same state machines. Sweep over n; the per-element cost should grow
//! only logarithmically.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_renaming::TightRenaming;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::{run_threads_bounded, virtual_exec};
use std::hint::black_box;

fn bench_virtual(c: &mut Criterion) {
    let mut g = c.benchmark_group("tight_virtual");
    g.sample_size(10);
    for n in [1usize << 8, 1 << 10, 1 << 12] {
        g.bench_function(format!("n={n}"), |b| {
            b.iter(|| {
                let (_s, procs) = TightRenaming::calibrated(4).instantiate_shared(n, 1);
                let boxed: Vec<Box<dyn Process>> =
                    procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
                let out = virtual_exec::run(boxed, &mut FairAdversary::default(), 1 << 32).unwrap();
                black_box(out.step_complexity())
            })
        });
    }
    g.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("tight_threads");
    g.sample_size(10);
    for n in [1usize << 8, 1 << 10] {
        g.bench_function(format!("n={n},threads=8"), |b| {
            b.iter(|| {
                let (_s, procs) = TightRenaming::calibrated(4).instantiate_shared(n, 1);
                let boxed: Vec<Box<dyn Process + Send>> =
                    procs.into_iter().map(|p| Box::new(p) as Box<dyn Process + Send>).collect();
                let out = run_threads_bounded(boxed, 8, 1 << 26);
                black_box(out.names.len())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_virtual, bench_threads);
criterion_main!(benches);
