//! Microbenchmarks for the per-process RNG backends: coin flips and
//! index draws on the ChaCha8 stream (the reproduction-grade default)
//! versus the counter backend (the flagged per-step cost-floor mode
//! with its amortized 64-bit coin block and power-of-two mask path).
//!
//! Every benchmark body first asserts the draw-schedule contract it is
//! timing — coins per word, words per index, cross-instance
//! determinism — so the speed numbers can never drift away from a
//! correctness regression silently.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_shmem::rng::{ProcessRng, RngMode};
use std::hint::black_box;

const FLIPS: usize = 1 << 12;
const DRAWS: usize = 1 << 12;

/// The pinned per-draw word costs: a ChaCha8 coin burns one 32-bit
/// cipher draw (the historical schedule, kept bit-exact); a counter
/// coin costs 1/64th of a mixer word; a counter index over a
/// power-of-two bound is exactly one word (the mask path never
/// redraws).
fn assert_draw_schedule() {
    let mut chacha = ProcessRng::new(7, 3);
    let before = chacha.words_drawn();
    chacha.coin();
    assert_eq!(chacha.words_drawn() - before, 1, "a ChaCha8 coin is one 32-bit draw");

    let mut counter = ProcessRng::with_mode(RngMode::Counter, 7, 3);
    let before = counter.words_drawn();
    for _ in 0..64 {
        counter.coin();
    }
    assert_eq!(counter.words_drawn() - before, 1, "64 counter coins share one 64-bit block");

    let mut counter = ProcessRng::with_mode(RngMode::Counter, 7, 3);
    let before = counter.words_drawn();
    for _ in 0..100 {
        let idx = counter.index(1 << 20);
        assert!(idx < 1 << 20);
    }
    assert_eq!(
        counter.words_drawn() - before,
        100,
        "the power-of-two mask path draws exactly one word per index"
    );

    // Both backends are pure functions of (mode, seed, pid).
    for mode in RngMode::ALL {
        let draw = |mut rng: ProcessRng| {
            (0..64).map(|i| if i % 2 == 0 { rng.index(97) as u64 } else { rng.coin() as u64 }).sum()
        };
        let a: u64 = draw(ProcessRng::with_mode(mode, 11, 5));
        let b: u64 = draw(ProcessRng::with_mode(mode, 11, 5));
        assert_eq!(a, b, "{mode}: same (seed, pid) must replay the same stream");
    }
}

fn bench_coin(c: &mut Criterion) {
    assert_draw_schedule();
    let mut g = c.benchmark_group("rng_coin");
    g.sample_size(20);
    for mode in RngMode::ALL {
        g.bench_function(format!("{}/flips={FLIPS}", mode.key()), |b| {
            b.iter(|| {
                let mut rng = ProcessRng::with_mode(mode, 42, 9);
                let mut heads = 0u64;
                for _ in 0..FLIPS {
                    heads += u64::from(rng.coin());
                }
                black_box(heads)
            })
        });
    }
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng_index");
    g.sample_size(20);
    // Power-of-two bound (mask fast path in counter mode) and the
    // general bound (exact-threshold rejection) — the pair shows what
    // the mask path is worth.
    for bound in [1usize << 20, (1 << 20) - 7] {
        for mode in RngMode::ALL {
            g.bench_function(format!("{}/bound={bound}/draws={DRAWS}", mode.key()), |b| {
                b.iter(|| {
                    let mut rng = ProcessRng::with_mode(mode, 42, 9);
                    let mut acc = 0usize;
                    for _ in 0..DRAWS {
                        acc = acc.wrapping_add(rng.index(bound));
                    }
                    black_box(acc)
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_coin, bench_index);
criterion_main!(benches);
