//! Wall-clock benchmark of the loose-renaming protocols (Lemma 6,
//! Lemma 8, Corollary 9) against uniform probing, in the virtual
//! executor and on threads. The loose protocols do a constant number of
//! probes per process, so total time should scale ~linearly in n with a
//! tiny constant.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_baselines::UniformProbing;
use rr_renaming::traits::{Cor9, LooseL6, LooseL8, RenamingAlgorithm};
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::virtual_exec;
use std::hint::black_box;

fn run_algo(algo: &dyn RenamingAlgorithm, n: usize) -> u64 {
    let inst = algo.instantiate(n, 1);
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    virtual_exec::run(procs, &mut FairAdversary::default(), algo.step_budget(n))
        .unwrap()
        .total_steps()
}

fn bench_loose_virtual(c: &mut Criterion) {
    let mut g = c.benchmark_group("loose_virtual");
    g.sample_size(10);
    let n = 1usize << 12;
    let algos: Vec<Box<dyn RenamingAlgorithm>> = vec![
        Box::new(LooseL6 { ell: 2 }),
        Box::new(LooseL8 { ell: 1 }),
        Box::new(Cor9 { ell: 1 }),
        Box::new(UniformProbing::double()),
    ];
    for algo in &algos {
        g.bench_function(format!("{},n={n}", algo.name()), |b| {
            b.iter(|| black_box(run_algo(algo.as_ref(), n)))
        });
    }
    g.finish();
}

fn bench_loose_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("cor9_scaling");
    g.sample_size(10);
    for n in [1usize << 10, 1 << 13, 1 << 16] {
        g.bench_function(format!("n={n}"), |b| b.iter(|| black_box(run_algo(&Cor9 { ell: 1 }, n))));
    }
    g.finish();
}

criterion_group!(benches, bench_loose_virtual, bench_loose_scaling);
criterion_main!(benches);
