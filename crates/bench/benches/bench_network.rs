//! Benchmarks of the comparator-network baseline: network construction
//! cost and full renaming runs, against the τ-register protocol at equal
//! n — the wall-clock side of the paper's O(log n) vs O(log² n) claim.

use criterion::{criterion_group, criterion_main, Criterion};
use rr_baselines::network::ComparatorNetwork;
use rr_baselines::BitonicRenaming;
use rr_renaming::traits::RenamingAlgorithm;
use rr_renaming::TightRenaming;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::virtual_exec;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("bitonic_construction");
    for w in [1usize << 8, 1 << 12, 1 << 16] {
        g.bench_function(format!("width={w}"), |b| {
            b.iter(|| black_box(ComparatorNetwork::bitonic(w).size()))
        });
    }
    g.finish();
}

fn run_algo(algo: &dyn RenamingAlgorithm, n: usize) -> u64 {
    let inst = algo.instantiate(n, 1);
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    virtual_exec::run(procs, &mut FairAdversary::default(), algo.step_budget(n))
        .unwrap()
        .total_steps()
}

fn bench_network_vs_tau(c: &mut Criterion) {
    let mut g = c.benchmark_group("tight_full_run");
    g.sample_size(10);
    for n in [1usize << 8, 1 << 10] {
        g.bench_function(format!("bitonic,n={n}"), |b| {
            b.iter(|| black_box(run_algo(&BitonicRenaming, n)))
        });
        g.bench_function(format!("tau,n={n}"), |b| {
            b.iter(|| black_box(run_algo(&TightRenaming::calibrated(4), n)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_construction, bench_network_vs_tau);
criterion_main!(benches);
