//! Golden certificates for the lock-free-core model checker.
//!
//! Pins the exact interleaving-tree size of every registered scenario
//! (`interleavings` = distinct Mazurkiewicz-trace representatives,
//! `pruned` = sleep-set-cut redundant executions) and demonstrates that
//! a deliberately-broken primitive produces a **minimal** rendered
//! counterexample trace. A drift in any pinned count means the
//! primitives' atomic-operation structure changed — which is exactly
//! the kind of silent hot-path change this layer exists to catch.

use rr_bench::modelcheck::{scenario_by_key, scenarios};
use rr_sched::model::{check, ModelRun, TracedWord};
use rr_shmem::atomics::AtomicWord;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Every registered scenario is linearizable, explored to exhaustion,
/// with the tree sizes pinned.
#[test]
fn all_scenarios_exhaustively_linearizable() {
    let pinned = [
        ("collect", 28, 34),
        ("tas", 2, 3),
        ("tas-collide", 6, 0),
        ("tau", 8, 5),
        ("tau-block", 4, 0),
        ("tau-collide", 4, 5),
        ("tau-quota", 4, 5),
    ];
    let all = scenarios();
    assert_eq!(
        all.iter().map(|s| s.key).collect::<Vec<_>>(),
        pinned.iter().map(|&(k, _, _)| k).collect::<Vec<_>>(),
        "scenario registry drifted"
    );
    for (scenario, (_, interleavings, pruned)) in all.iter().zip(pinned) {
        let report = scenario.run();
        assert!(
            report.passed(),
            "{}: non-linearizable trace: {:?}",
            scenario.key,
            report.counterexample.map(|t| (t.to_text(), t.reason))
        );
        assert!(report.exhausted, "{}: hit the execution budget", scenario.key);
        assert_eq!(report.interleavings, interleavings, "{}: tree size drifted", scenario.key);
        assert_eq!(report.pruned, pruned, "{}: pruning drifted", scenario.key);
    }
}

#[test]
fn unknown_scenario_key_lists_alternatives() {
    assert_eq!(
        scenario_by_key("livelock").unwrap_err(),
        "unknown model scenario `livelock` (known: collect, tas, tas-collide, tau, tau-block, \
         tau-collide, tau-quota)"
    );
    assert_eq!(scenario_by_key("tau").unwrap().key, "tau");
}

/// A test-and-set built the broken way: load, test, then store — the
/// textbook lost-update race the real `fetch_or` TAS avoids.
struct BrokenTas {
    word: TracedWord,
}

impl BrokenTas {
    fn tas(&self, index: usize) -> bool {
        let bit = 1u64 << index;
        let v = self.word.load(Ordering::Acquire);
        if v & bit != 0 {
            return false;
        }
        self.word.store(v | bit, Ordering::Release);
        true
    }
}

/// The broken TAS double-wins under some interleaving, and the checker
/// reports the *minimal* failing trace: both loads before either
/// store — 4 events, 2 context switches — rendered `Tape::to_text`
/// style.
#[test]
fn broken_tas_yields_minimal_counterexample() {
    let report = check(1_000, || {
        let broken = Arc::new(BrokenTas { word: TracedWord::new(0) });
        let a = Arc::clone(&broken);
        let b = Arc::clone(&broken);
        ModelRun::new(
            vec![
                Box::new(move || a.tas(0)) as Box<dyn FnOnce() -> bool + Send>,
                Box::new(move || b.tas(0)),
            ],
            |wins: &[bool]| {
                let w = wins.iter().filter(|&&b| b).count();
                if w == 1 {
                    Ok(())
                } else {
                    Err(format!("{w} winners of one register"))
                }
            },
        )
    });
    assert!(report.exhausted);
    assert!(report.failures > 0, "the broken TAS must lose under some interleaving");
    let trace = report.counterexample.expect("counterexample");
    assert_eq!(trace.reason, "2 winners of one register");
    assert_eq!(trace.events.len(), 4, "minimal trace is load,load,store,store");
    assert_eq!(trace.context_switches(), 2);
    assert_eq!(trace.to_text(), "t0:a0.load=0 t1:a0.load=0 t1:a0.store=1 t0:a0.store=1");
}

/// A τ-register bit request built the broken way: blind `fetch_or`
/// with a load-time quota test — two concurrent requesters can both
/// pass the quota check and overshoot τ. The sequential
/// `CountingDevice` oracle rejects the outcome.
struct BrokenQuota {
    state: TracedWord,
    tau: u32,
}

impl BrokenQuota {
    fn request_bit(&self, bit: usize) -> bool {
        let b = 1u64 << bit;
        let cur = self.state.load(Ordering::Acquire);
        if cur & b != 0 || cur.count_ones() >= self.tau {
            return false;
        }
        self.state.fetch_or(b, Ordering::AcqRel);
        true
    }
}

#[test]
fn broken_quota_check_is_caught() {
    let report = check(1_000, || {
        let reg = Arc::new(BrokenQuota { state: TracedWord::new(0), tau: 1 });
        let a = Arc::clone(&reg);
        let b = Arc::clone(&reg);
        ModelRun::new(
            vec![
                Box::new(move || a.request_bit(0)) as Box<dyn FnOnce() -> bool + Send>,
                Box::new(move || b.request_bit(1)),
            ],
            |wins: &[bool]| {
                let w = wins.iter().filter(|&&b| b).count();
                if w <= 1 {
                    Ok(())
                } else {
                    Err(format!("{w} winners exceed τ=1"))
                }
            },
        )
    });
    assert!(report.exhausted);
    assert!(report.failures > 0, "the broken quota check must overshoot τ");
    let trace = report.counterexample.expect("counterexample");
    assert_eq!(trace.reason, "2 winners exceed τ=1");
    // Minimal shape: both loads pass the quota test before either RMW.
    assert_eq!(trace.events.len(), 4);
    assert_eq!(trace.context_switches(), 2);
}

/// The real primitives under the same harness sizes as the broken
/// ones: zero failures — the contrast that makes the counterexamples
/// above meaningful.
#[test]
fn real_primitives_pass_where_broken_ones_fail() {
    use rr_shmem::tas::{AtomicTasArray, TasMemory};

    let report = check(1_000, || {
        let arr = Arc::new(AtomicTasArray::<TracedWord>::with_atomics(1));
        let a = Arc::clone(&arr);
        let b = Arc::clone(&arr);
        ModelRun::new(
            vec![
                Box::new(move || a.tas(0)) as Box<dyn FnOnce() -> bool + Send>,
                Box::new(move || b.tas(0)),
            ],
            |wins: &[bool]| {
                let w = wins.iter().filter(|&&b| b).count();
                if w == 1 {
                    Ok(())
                } else {
                    Err(format!("{w} winners"))
                }
            },
        )
    });
    assert!(report.passed() && report.exhausted);
    assert_eq!(report.interleavings, 2);
}
