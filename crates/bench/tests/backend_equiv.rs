//! Cross-backend equivalence: the contract that makes `--backend` a
//! free choice rather than a different experiment.
//!
//! * `dense` must reproduce the `virtual` backend's [`BatchStats`]
//!   **bit for bit** for every registry algorithm under every adversary
//!   family the engine schedules deterministically — same announce
//!   cadence, same observable slot roster (the packed bitmap's snapshot
//!   reproduces the old tombstoned vector exactly), same RNG
//!   consumption.
//! * `shard:s=1` is the degenerate partition (one shard, identity
//!   sub-seed, zero cross-shard traffic) and must likewise be
//!   bit-identical to `dense` — and therefore to `virtual`.
//! * `threads` is free-running (the machine schedules), so its step
//!   counts are not reproducible — but it must still satisfy
//!   `verify_renaming` and account for every process.
//!
//! Both key axes are enumerated **from the registries**, never from a
//! hand-written list: a future algorithm or adversary key lands in the
//! sweep the moment it is registered and can never be silently skipped.
//! The only exclusions are the schedule-space searchers `explore` and
//! `fuzz`, whose builders are stateful across a prepared batch (each
//! seed continues one shared walk), so two separately-prepared batches
//! are *defined* to diverge — there is no cross-backend identity to
//! assert. Every other adversary is swept through its registry
//! `example` key, so parameterized strategies are exercised with their
//! parameters bound.

use rr_bench::runner::{BatchRun, BatchStats, ExecBackend};
use rr_bench::scenario::registry;
use rr_renaming::registry::BoxedAlgorithm;
use rr_sched::registry::standard;

/// Sizes small enough that the full registry × adversary sweep stays in
/// CI territory while still exercising multi-round protocol behaviour.
const N: usize = 64;
const SEEDS: u64 = 2;

/// Every deterministically-schedulable adversary, as its registry
/// example key — the full registry minus the stateful searchers.
fn swept_adversary_keys() -> Vec<&'static str> {
    let swept: Vec<&'static str> = standard()
        .entries()
        .iter()
        .filter(|(name, ..)| !matches!(*name, "explore" | "fuzz"))
        .map(|&(_, _, example)| example)
        .collect();
    // The exclusion list is exactly the two searchers: a new registry
    // key is swept automatically, and this guard makes shrinking the
    // sweep a loud, deliberate edit.
    assert_eq!(swept.len(), standard().keys().len() - 2, "unexpected sweep exclusion");
    assert!(swept.len() >= 9, "adversary registry shrank: {swept:?}");
    swept
}

fn batch(
    algo: &BoxedAlgorithm,
    n: usize,
    seeds: u64,
    adv_key: &str,
    backend: ExecBackend,
    workers: usize,
) -> BatchStats {
    BatchRun::new(algo.as_ref(), n)
        .seeds(seeds)
        .adversary(adv_key)
        .backend(backend)
        .workers(workers)
        .stats()
        .unwrap()
}

fn assert_bit_identical(a: &BatchStats, b: &BatchStats, ctx: &str) {
    assert_eq!(a.step_complexity, b.step_complexity, "{ctx}");
    assert_eq!(a.total_steps, b.total_steps, "{ctx}");
    assert_eq!(a.unnamed, b.unnamed, "{ctx}");
    assert_eq!(a.crashed, b.crashed, "{ctx}");
    assert_eq!(a.runs, b.runs, "{ctx}");
    assert_eq!(a.violations, b.violations, "{ctx}");
    // f64 equality is bit equality — no tolerance.
    let ab: Vec<u64> = a.mean_steps.iter().map(|f| f.to_bits()).collect();
    let bb: Vec<u64> = b.mean_steps.iter().map(|f| f.to_bits()).collect();
    assert_eq!(ab, bb, "{ctx}");
}

#[test]
fn dense_matches_virtual_bit_for_bit_for_every_algorithm_and_adversary() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in swept_adversary_keys() {
            let virt = batch(&algo, N, SEEDS, adv_key, ExecBackend::Virtual, 2);
            let dense = batch(&algo, N, SEEDS, adv_key, ExecBackend::Dense, 2);
            assert_bit_identical(&virt, &dense, &format!("{algo_key} under {adv_key}"));
        }
    }
}

/// The shard backend with a single shard must be indistinguishable from
/// the serial dense core, for every registry cell: `shard_seed` leaves
/// shard 0's seed untouched, the partition is the identity, and the
/// coupler never adds remote names — so any divergence here is a
/// sharding bug, not a modelling choice.
#[test]
fn shard_with_one_shard_matches_dense_bit_for_bit_for_every_algorithm_and_adversary() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in swept_adversary_keys() {
            let dense = batch(&algo, N, SEEDS, adv_key, ExecBackend::Dense, 1);
            let shard = batch(&algo, N, SEEDS, adv_key, ExecBackend::Shard { s: 1 }, 1);
            assert_bit_identical(&dense, &shard, &format!("{algo_key} under {adv_key}"));
        }
    }
}

/// `shard:s=K` for K > 1 is not bit-identical to dense — the partition
/// changes every sub-instance — but it must be a pure function of
/// (seed, K): the same stats whatever the batch worker count, and the
/// renaming audit must pass for every registry algorithm.
#[test]
fn shard_with_many_shards_is_deterministic_for_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        let a = batch(&algo, N, 2, "random", ExecBackend::Shard { s: 4 }, 1);
        let b = batch(&algo, N, 2, "random", ExecBackend::Shard { s: 4 }, 2);
        assert_bit_identical(&a, &b, &format!("{algo_key}: shard:s=4 across worker counts"));
    }
}

/// Every registry algorithm must pass the renaming audit on the threads
/// backend, with every process accounted for: named, gave up, or (for
/// pids absent from the sparse slot range — none here) crash-equivalent.
/// For the full protocols the name count must equal the virtual
/// backend's (= n); the almost-tight protocols may split differently
/// between named and gave-up under free-running schedules, but the
/// partition must still be total.
#[test]
fn threads_backend_verifies_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        let n = 32;
        // BatchRun::run already panics on verify_renaming failure; it
        // returning is the audit passing.
        let stats = batch(&algo, n, 2, "fair", ExecBackend::Threads { t: 4 }, 1);
        assert_eq!(stats.runs, 2, "{algo_key}");
        assert_eq!(stats.violations, 0, "{algo_key}");
        for (unnamed, crashed) in stats.unnamed.iter().zip(&stats.crashed) {
            assert_eq!(*crashed, 0, "{algo_key}: threads backend never crashes present pids");
            if !algo.almost_tight() {
                assert_eq!(*unnamed, 0, "{algo_key}: full protocol must name all n");
            } else {
                assert!(*unnamed <= n, "{algo_key}");
            }
        }
    }
}
