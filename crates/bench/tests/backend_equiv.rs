//! Cross-backend equivalence: the contract that makes `--backend` a
//! free choice rather than a different experiment.
//!
//! * `dense` must reproduce the `virtual` backend's [`BatchStats`]
//!   **bit for bit** for every registry algorithm under every adversary
//!   family the engine schedules deterministically — same announce
//!   cadence, same tombstone compaction, same RNG consumption.
//! * `threads` is free-running (the machine schedules), so its step
//!   counts are not reproducible — but it must still satisfy
//!   `verify_renaming` and account for every process.

use rr_bench::runner::{run_batch_backend, ExecBackend};
use rr_bench::scenario::registry;

/// Sizes small enough that the full registry × adversary sweep stays in
/// CI territory while still exercising multi-round protocol behaviour.
const N: usize = 64;
const SEEDS: u64 = 3;

#[test]
fn dense_matches_virtual_bit_for_bit_for_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in ["fair", "random"] {
            let (virt, _) =
                run_batch_backend(algo.as_ref(), N, SEEDS, adv_key, ExecBackend::Virtual, 2)
                    .unwrap();
            let (dense, _) =
                run_batch_backend(algo.as_ref(), N, SEEDS, adv_key, ExecBackend::Dense, 2).unwrap();
            let ctx = format!("{algo_key} under {adv_key}");
            assert_eq!(virt.step_complexity, dense.step_complexity, "{ctx}");
            assert_eq!(virt.total_steps, dense.total_steps, "{ctx}");
            assert_eq!(virt.unnamed, dense.unnamed, "{ctx}");
            assert_eq!(virt.crashed, dense.crashed, "{ctx}");
            assert_eq!(virt.runs, dense.runs, "{ctx}");
            assert_eq!(virt.violations, dense.violations, "{ctx}");
            // f64 equality is bit equality — no tolerance.
            let vb: Vec<u64> = virt.mean_steps.iter().map(|f| f.to_bits()).collect();
            let db: Vec<u64> = dense.mean_steps.iter().map(|f| f.to_bits()).collect();
            assert_eq!(vb, db, "{ctx}");
        }
    }
}

/// The adversary families with internal randomness or crash injection
/// must also replay identically through the dense backend (crash
/// decisions consume adversary RNG in view order, so any divergence in
/// the view the backends present would surface here).
#[test]
fn dense_matches_virtual_under_adaptive_and_crash_adversaries() {
    let reg = registry();
    for algo_key in ["tight-tau:c=4", "cor9", "uniform"] {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in ["collisions", "stall", "crash:p=300,cap=25"] {
            let (virt, _) =
                run_batch_backend(algo.as_ref(), N, SEEDS, adv_key, ExecBackend::Virtual, 1)
                    .unwrap();
            let (dense, _) =
                run_batch_backend(algo.as_ref(), N, SEEDS, adv_key, ExecBackend::Dense, 1).unwrap();
            let ctx = format!("{algo_key} under {adv_key}");
            assert_eq!(virt.step_complexity, dense.step_complexity, "{ctx}");
            assert_eq!(virt.total_steps, dense.total_steps, "{ctx}");
            assert_eq!(virt.crashed, dense.crashed, "{ctx}");
            assert_eq!(virt.unnamed, dense.unnamed, "{ctx}");
        }
    }
}

/// Every registry algorithm must pass the renaming audit on the threads
/// backend, with every process accounted for: named, gave up, or (for
/// pids absent from the sparse slot range — none here) crash-equivalent.
/// For the full protocols the name count must equal the virtual
/// backend's (= n); the almost-tight protocols may split differently
/// between named and gave-up under free-running schedules, but the
/// partition must still be total.
#[test]
fn threads_backend_verifies_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        let n = 32;
        // run_batch_backend already panics on verify_renaming failure;
        // it returning is the audit passing.
        let (stats, _) =
            run_batch_backend(algo.as_ref(), n, 2, "fair", ExecBackend::Threads { t: 4 }, 1)
                .unwrap();
        assert_eq!(stats.runs, 2, "{algo_key}");
        assert_eq!(stats.violations, 0, "{algo_key}");
        for (unnamed, crashed) in stats.unnamed.iter().zip(&stats.crashed) {
            assert_eq!(*crashed, 0, "{algo_key}: threads backend never crashes present pids");
            if !algo.almost_tight() {
                assert_eq!(*unnamed, 0, "{algo_key}: full protocol must name all n");
            } else {
                assert!(*unnamed <= n, "{algo_key}");
            }
        }
    }
}
