//! Cross-backend equivalence: the contract that makes `--backend` a
//! free choice rather than a different experiment.
//!
//! * `dense` must reproduce the `virtual` backend's [`BatchStats`]
//!   **bit for bit** for every registry algorithm under every adversary
//!   family the engine schedules deterministically — same announce
//!   cadence, same observable slot roster (the packed bitmap's snapshot
//!   reproduces the old tombstoned vector exactly), same RNG
//!   consumption.
//! * `shard:s=1` is the degenerate partition (one shard, identity
//!   sub-seed, zero cross-shard traffic) and must likewise be
//!   bit-identical to `dense` — and therefore to `virtual`.
//! * `threads` is free-running (the machine schedules), so its step
//!   counts are not reproducible — but it must still satisfy
//!   `verify_renaming` and account for every process.

use rr_bench::runner::{BatchRun, BatchStats, ExecBackend};
use rr_bench::scenario::registry;
use rr_renaming::registry::BoxedAlgorithm;

/// Sizes small enough that the full registry × adversary sweep stays in
/// CI territory while still exercising multi-round protocol behaviour.
const N: usize = 64;
const SEEDS: u64 = 3;

fn batch(
    algo: &BoxedAlgorithm,
    n: usize,
    seeds: u64,
    adv_key: &str,
    backend: ExecBackend,
    workers: usize,
) -> BatchStats {
    BatchRun::new(algo.as_ref(), n)
        .seeds(seeds)
        .adversary(adv_key)
        .backend(backend)
        .workers(workers)
        .stats()
        .unwrap()
}

fn assert_bit_identical(a: &BatchStats, b: &BatchStats, ctx: &str) {
    assert_eq!(a.step_complexity, b.step_complexity, "{ctx}");
    assert_eq!(a.total_steps, b.total_steps, "{ctx}");
    assert_eq!(a.unnamed, b.unnamed, "{ctx}");
    assert_eq!(a.crashed, b.crashed, "{ctx}");
    assert_eq!(a.runs, b.runs, "{ctx}");
    assert_eq!(a.violations, b.violations, "{ctx}");
    // f64 equality is bit equality — no tolerance.
    let ab: Vec<u64> = a.mean_steps.iter().map(|f| f.to_bits()).collect();
    let bb: Vec<u64> = b.mean_steps.iter().map(|f| f.to_bits()).collect();
    assert_eq!(ab, bb, "{ctx}");
}

#[test]
fn dense_matches_virtual_bit_for_bit_for_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in ["fair", "random"] {
            let virt = batch(&algo, N, SEEDS, adv_key, ExecBackend::Virtual, 2);
            let dense = batch(&algo, N, SEEDS, adv_key, ExecBackend::Dense, 2);
            assert_bit_identical(&virt, &dense, &format!("{algo_key} under {adv_key}"));
        }
    }
}

/// The shard backend with a single shard must be indistinguishable from
/// the serial dense core, for every registry algorithm: `shard_seed`
/// leaves shard 0's seed untouched, the partition is the identity, and
/// the coupler never adds remote names — so any divergence here is a
/// sharding bug, not a modelling choice.
#[test]
fn shard_with_one_shard_matches_dense_bit_for_bit_for_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in ["fair", "random"] {
            let dense = batch(&algo, N, SEEDS, adv_key, ExecBackend::Dense, 2);
            let shard = batch(&algo, N, SEEDS, adv_key, ExecBackend::Shard { s: 1 }, 2);
            assert_bit_identical(&dense, &shard, &format!("{algo_key} under {adv_key}"));
        }
    }
}

/// The adversary families with internal randomness or crash injection
/// must also replay identically through the dense backend (crash
/// decisions consume adversary RNG in view order, so any divergence in
/// the view the backends present would surface here).
#[test]
fn dense_matches_virtual_under_adaptive_and_crash_adversaries() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in ["collisions", "stall", "crash:p=300,cap=25"] {
            let virt = batch(&algo, N, SEEDS, adv_key, ExecBackend::Virtual, 1);
            let dense = batch(&algo, N, SEEDS, adv_key, ExecBackend::Dense, 1);
            let ctx = format!("{algo_key} under {adv_key}");
            assert_eq!(virt.step_complexity, dense.step_complexity, "{ctx}");
            assert_eq!(virt.total_steps, dense.total_steps, "{ctx}");
            assert_eq!(virt.crashed, dense.crashed, "{ctx}");
            assert_eq!(virt.unnamed, dense.unnamed, "{ctx}");
        }
    }
}

/// `shard:s=1` must hold its dense equivalence under the same
/// RNG-consuming adversary families.
#[test]
fn shard_with_one_shard_matches_dense_under_adaptive_and_crash_adversaries() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        for adv_key in ["collisions", "stall", "crash:p=300,cap=25"] {
            let dense = batch(&algo, N, SEEDS, adv_key, ExecBackend::Dense, 1);
            let shard = batch(&algo, N, SEEDS, adv_key, ExecBackend::Shard { s: 1 }, 1);
            assert_bit_identical(&dense, &shard, &format!("{algo_key} under {adv_key}"));
        }
    }
}

/// `shard:s=K` for K > 1 is not bit-identical to dense — the partition
/// changes every sub-instance — but it must be a pure function of
/// (seed, K): the same stats whatever the batch worker count, and the
/// renaming audit must pass for every registry algorithm.
#[test]
fn shard_with_many_shards_is_deterministic_for_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        let a = batch(&algo, N, 2, "random", ExecBackend::Shard { s: 4 }, 1);
        let b = batch(&algo, N, 2, "random", ExecBackend::Shard { s: 4 }, 2);
        assert_bit_identical(&a, &b, &format!("{algo_key}: shard:s=4 across worker counts"));
    }
}

/// Every registry algorithm must pass the renaming audit on the threads
/// backend, with every process accounted for: named, gave up, or (for
/// pids absent from the sparse slot range — none here) crash-equivalent.
/// For the full protocols the name count must equal the virtual
/// backend's (= n); the almost-tight protocols may split differently
/// between named and gave-up under free-running schedules, but the
/// partition must still be total.
#[test]
fn threads_backend_verifies_every_algorithm() {
    let reg = registry();
    for algo_key in reg.keys() {
        let algo = reg.build(algo_key).unwrap();
        let n = 32;
        // BatchRun::run already panics on verify_renaming failure; it
        // returning is the audit passing.
        let stats = batch(&algo, n, 2, "fair", ExecBackend::Threads { t: 4 }, 1);
        assert_eq!(stats.runs, 2, "{algo_key}");
        assert_eq!(stats.violations, 0, "{algo_key}");
        for (unnamed, crashed) in stats.unnamed.iter().zip(&stats.crashed) {
            assert_eq!(*crashed, 0, "{algo_key}: threads backend never crashes present pids");
            if !algo.almost_tight() {
                assert_eq!(*unnamed, 0, "{algo_key}: full protocol must name all n");
            } else {
                assert!(*unnamed <= n, "{algo_key}");
            }
        }
    }
}
