//! README drift guards: the algorithm/adversary/backend key tables in
//! README.md are generated from the registries (the same state
//! `exp_matrix --list` prints). If a registration changes and the
//! committed README block is not regenerated, these tests fail with the
//! replacement text.

use rr_bench::listing::{registry_listing, registry_tables_markdown};

const BEGIN: &str = "<!-- BEGIN GENERATED REGISTRY TABLES \
                     (rr_bench::listing::registry_tables_markdown; drift-checked by \
                     crates/bench/tests/readme_sync.rs) -->";
const END: &str = "<!-- END GENERATED REGISTRY TABLES -->";

fn readme() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../README.md");
    std::fs::read_to_string(path).expect("README.md at the repo root")
}

fn generated_block(readme: &str) -> &str {
    let start = readme.find(BEGIN).expect("README must contain the BEGIN marker") + BEGIN.len();
    let end = readme.find(END).expect("README must contain the END marker");
    readme[start..end].trim_matches('\n')
}

#[test]
fn readme_registry_tables_match_the_registries() {
    let readme = readme();
    let committed = generated_block(&readme);
    let fresh = registry_tables_markdown();
    assert_eq!(
        committed,
        fresh.trim_matches('\n'),
        "README registry tables drifted from the registries — replace the block between \
         the markers with the output of rr_bench::listing::registry_tables_markdown()",
    );
}

/// The README tables and `exp_matrix --list` are the same listing
/// module; every key one shows, the other shows.
#[test]
fn readme_tables_and_matrix_list_agree_on_every_key() {
    let listing = registry_listing();
    let tables = registry_tables_markdown();
    let mut keys: Vec<String> =
        rr_bench::scenario::registry().keys().iter().map(|k| k.to_string()).collect();
    keys.extend(rr_sched::registry::standard().keys().iter().map(|k| k.to_string()));
    assert!(!keys.is_empty());
    for key in keys {
        assert!(listing.contains(&key), "exp_matrix --list lost key {key}");
        assert!(tables.contains(&format!("`{key}`")), "README tables lost key {key}");
    }
}

/// Every example key the README tables advertise actually builds.
#[test]
fn advertised_example_keys_build() {
    for (_, _, example, _) in rr_bench::scenario::registry().entries() {
        assert!(
            rr_bench::scenario::registry().build(example).is_ok(),
            "algorithm example key `{example}` no longer builds"
        );
    }
    for (_, _, example) in rr_sched::registry::standard().entries() {
        assert!(
            rr_sched::registry::standard().build(example, 16, 0).is_ok(),
            "adversary example key `{example}` no longer builds"
        );
    }
}
