//! Golden-output tests: the declarative specs must render **byte
//! identical** to what the hand-written `exp_*` binaries printed before
//! the scenario engine existed (quick mode; captured from the pre-engine
//! binaries and checked into `tests/golden/`).
//!
//! Every quantity in these tables is deterministic — instantiation, coin
//! flips and adversaries all derive from `(seed, pid)` streams, and the
//! parallel runner is bit-identical to serial — so an exact string
//! comparison is meaningful on any machine.

use rr_bench::runner::RunConfig;
use rr_bench::scenario::{render_to_string, specs};

fn quick() -> RunConfig {
    RunConfig { quick: true, ..RunConfig::default() }
}

#[test]
fn exp_theorem5_quick_output_is_golden() {
    let out = render_to_string(specs::theorem5(&quick()));
    let golden = include_str!("golden/exp_theorem5.quick.txt");
    assert_eq!(out, golden, "exp_theorem5 --quick output drifted from the pre-engine binary");
}

#[test]
fn exp_cor9_quick_output_is_golden() {
    let out = render_to_string(specs::cor9(&quick()));
    let golden = include_str!("golden/exp_cor9.quick.txt");
    assert_eq!(out, golden, "exp_cor9 --quick output drifted from the pre-engine binary");
}
