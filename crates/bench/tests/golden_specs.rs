//! Golden-output tests: the declarative specs must render **byte
//! identical** to what the hand-written `exp_*` binaries printed before
//! the scenario engine existed (quick mode; captured from the pre-engine
//! binaries and checked into `tests/golden/`).
//!
//! Every quantity in these tables is deterministic — instantiation, coin
//! flips and adversaries all derive from `(seed, pid)` streams, and the
//! parallel runner is bit-identical to serial — so an exact string
//! comparison is meaningful on any machine.

use rr_bench::runner::RunConfig;
use rr_bench::scenario::{render_to_string, run_spec, specs, JsonSink, Sink};

fn quick() -> RunConfig {
    RunConfig { quick: true, ..RunConfig::default() }
}

#[test]
fn exp_theorem5_quick_output_is_golden() {
    let out = render_to_string(specs::theorem5(&quick()));
    let golden = include_str!("golden/exp_theorem5.quick.txt");
    assert_eq!(out, golden, "exp_theorem5 --quick output drifted from the pre-engine binary");
}

#[test]
fn exp_cor9_quick_output_is_golden() {
    let out = render_to_string(specs::cor9(&quick()));
    let golden = include_str!("golden/exp_cor9.quick.txt");
    assert_eq!(out, golden, "exp_cor9 --quick output drifted from the pre-engine binary");
}

/// Replaces the value after every `"key":` in `keys` with `<t>` —
/// wall-clock fields vary per machine, but the record *shape* (field
/// names, order, and every seed-deterministic value) must not.
fn mask_volatile(body: &str, keys: &[&str]) -> String {
    let mut out = body.to_string();
    for key in keys {
        let needle = format!("\"{key}\":");
        let mut masked = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(pos) = rest.find(&needle) {
            let after = pos + needle.len();
            masked.push_str(&rest[..after]);
            masked.push_str("<t>");
            let tail = &rest[after..];
            let end = tail.find([',', '}', '\n']).unwrap_or(tail.len());
            rest = &tail[end..];
        }
        masked.push_str(rest);
        out = masked;
    }
    out
}

/// `exp_backends --quick --json` JSON shape: the throughput records'
/// field names, ordering, backends and every deterministic value
/// (n, runs, steps_total) are pinned; only wall-clock values are masked.
#[test]
fn exp_backends_quick_json_shape_is_golden() {
    let path = std::env::temp_dir().join(format!("rr_backends_golden_{}.json", std::process::id()));
    let cfg = quick();
    {
        let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(JsonSink::new(path.clone()))];
        run_spec(specs::backends(&cfg, &specs::BackendsOptions::defaults(&cfg)), &cfg, &mut sinks);
        for sink in &mut sinks {
            sink.finish().unwrap();
        }
    }
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let masked = mask_volatile(&body, &["wall_ms", "runs_per_sec", "steps_per_sec"]);
    let golden = include_str!("golden/exp_backends.quick.json.txt");
    assert_eq!(masked, golden, "exp_backends --quick JSON shape drifted");
}

/// `exp_route --quick --json` JSON shape: every coverage record's
/// steps/depth pair is seed-deterministic (the family is geometric), so
/// the whole snapshot is pinned with only wall-clock values masked.
#[test]
fn exp_route_quick_json_shape_is_golden() {
    let path = std::env::temp_dir().join(format!("rr_route_golden_{}.json", std::process::id()));
    let cfg = quick();
    {
        let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(JsonSink::new(path.clone()))];
        run_spec(specs::route(&cfg, &specs::RouteOptions::defaults(&cfg)), &cfg, &mut sinks);
        for sink in &mut sinks {
            sink.finish().unwrap();
        }
    }
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let masked = mask_volatile(&body, &["wall_ms", "steps_per_sec"]);
    let golden = include_str!("golden/exp_route.quick.json.txt");
    assert_eq!(masked, golden, "exp_route --quick JSON shape drifted");
}

#[test]
fn mask_volatile_rewrites_only_the_named_fields() {
    let masked =
        mask_volatile("{\"a\":1,\"wall_ms\":3.25,\"b\":\"x\"}\n{\"wall_ms\":9}", &["wall_ms"]);
    assert_eq!(masked, "{\"a\":1,\"wall_ms\":<t>,\"b\":\"x\"}\n{\"wall_ms\":<t>}");
}
