//! Property coverage for the topology-routed renaming family and the
//! adversary zoo's batching contract.
//!
//! The `route:` family is parameterized along three axes (topology,
//! stage override, occupancy); the pinned unit tests cover the corners,
//! and these properties cover the interior: for *random* cells the
//! protocol must rename uniquely into the declared space, stay total
//! under crash-free schedules, and cost exactly `n × depth` steps —
//! with `depth` matching the topology's closed form whenever no
//! override is given. The last property extends the registry-wide
//! twin-oracle suite (`rr-sched`'s `adversary_batch`) from the zoo's
//! default parameters to *random* parameters: `decide_batch` must be
//! exactly the prefix of sequential `decide` calls an identically-built
//! twin would make against the same frozen view.

use proptest::prelude::*;
use rr_baselines::{RouteRenaming, RouteTopology};
use rr_bench::runner::run_once_with_rng;
use rr_renaming::traits::RenamingAlgorithm;
use rr_sched::adversary::{Decision, ViewFixture};
use rr_sched::registry::standard;
use rr_sched::{entity_vec, EntityVec, Pid};
use rr_shmem::intent::Access;
use rr_shmem::rng::RngMode;

fn topology(idx: usize) -> RouteTopology {
    [RouteTopology::Benes, RouteTopology::Butterfly, RouteTopology::Variant][idx]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random (topology, stages, n, seed, schedule) cells: unique
    /// in-range names, totality, and the exact `steps = n × depth`
    /// identity — the schedule decides who wins each switch, never how
    /// many switches are crossed.
    #[test]
    fn random_route_cells_rename_uniquely_in_range(
        t in 0usize..3,
        stages_raw in 0usize..13,
        n in 1usize..49,
        seed in 0u64..500,
        adv_idx in 0usize..3,
    ) {
        // 0 encodes "no override" (the closed-form depth).
        let stages = if stages_raw == 0 { None } else { Some(stages_raw) };
        let algo = RouteRenaming { topology: topology(t), stages };
        let adversary = ["fair", "random", "collisions"][adv_idx];
        let mut adv = standard().build(adversary, n, seed).unwrap();
        let out = run_once_with_rng(&algo, n, seed, RngMode::ChaCha8, adv.as_mut());

        let m = algo.m(n);
        let mut names: Vec<usize> = out.names.iter().flatten().copied().collect();
        prop_assert_eq!(
            names.len(), n,
            "route({}) must stay total under the crash-free `{}` schedule",
            algo.topology.label(), adversary
        );
        for &name in &names {
            prop_assert!(name < m, "name {name} outside m={m} (n={n}, seed {seed})");
        }
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        prop_assert_eq!(names.len(), before, "duplicate name assigned");

        let depth = algo.depth(n) as u64;
        prop_assert_eq!(
            out.total_steps(), n as u64 * depth,
            "steps must equal n × depth under any crash-free schedule"
        );
    }

    /// Without a `stages` override the depth is the topology's closed
    /// form at the instantiated width — at full and partial occupancy —
    /// and equals the bit schedule's length; across topologies the
    /// closed forms order butterfly ≤ Beneš < variant (strict between
    /// butterfly and Beneš once q ≥ 2).
    #[test]
    fn depth_matches_the_closed_form(t in 0usize..3, q in 1u32..9) {
        let topo = topology(t);
        let width = 1usize << q;
        prop_assert_eq!(topo.bit_schedule(q).len(), topo.closed_form_depth(width));

        let algo = RouteRenaming { topology: topo, stages: None };
        prop_assert_eq!(algo.depth(width), topo.closed_form_depth(width));
        // Any partial occupancy that rounds up to the same width.
        let n = width / 2 + 1;
        prop_assert_eq!(algo.m(n), width);
        prop_assert_eq!(algo.depth(n), topo.closed_form_depth(width));

        let fly = RouteTopology::Butterfly.closed_form_depth(width);
        let benes = RouteTopology::Benes.closed_form_depth(width);
        let variant = RouteTopology::Variant.closed_form_depth(width);
        prop_assert!(fly <= benes && benes < variant);
        if q >= 2 {
            prop_assert!(fly < benes);
        }
    }
}

/// Decodes a fixture cell: 0 = not runnable, anything else an announced
/// access (the zoo strategies only read runnability, but realistic
/// announcements keep the view honest).
fn access(code: u8) -> Option<Access> {
    match code {
        0 => None,
        1 => Some(Access::Local),
        2 => Some(Access::Tas { array: 0, index: 1 }),
        3 => Some(Access::Read { array: 1, index: 0 }),
        _ => Some(Access::TauRequest { register: 0, bit: 2 }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Twin-oracle over *random* zoo parameters: `rr-sched`'s
    /// `adversary_batch` suite pins the batching contract for every
    /// registry key at its default parameters; this property draws the
    /// parameters too. A batch of length `k` must be exactly the
    /// decisions `k` sequential `decide` calls on an identically-built
    /// twin make against the same frozen view, never empty and never
    /// granting a pid twice — round after round, so batching can never
    /// skew the strategy's future state either.
    #[test]
    fn zoo_decide_batch_is_the_sequential_prefix_for_random_parameters(
        which in 0usize..4,
        a in 0usize..64,
        b in 0usize..64,
        n in 1usize..12,
        seed in 0u64..64,
        rounds in proptest::collection::vec(proptest::collection::vec(0u8..6, 12..13), 1..8),
    ) {
        let key = match which {
            0 => format!("lookahead:k={}", 1 + a % 8),
            1 => format!("bursty:len={},gap={}", 1 + a % 6, b % 5),
            2 => format!("diurnal:period={}", 2 + a % 16),
            _ => format!("victim:pid={}", a % 7),
        };
        let mut batched = standard().build(&key, n, seed).unwrap();
        let mut oracle = standard().build(&key, n, seed).unwrap();
        for (round, codes) in rounds.iter().enumerate() {
            let mut announced: EntityVec<Pid, Option<Access>> = entity_vec![None; n];
            for pid in 0..n {
                announced[Pid::from(pid)] = access(codes[pid]);
            }
            if announced.iter().all(Option::is_none) {
                announced[Pid::from(0usize)] = Some(Access::Local);
            }
            let fx = ViewFixture::new(announced);
            let view = fx.view();
            let max = 1 + round % 4;

            let mut batch = Vec::new();
            batched.decide_batch(&view, &mut batch, max);
            prop_assert!(!batch.is_empty(), "{key}: a batch is never empty");
            prop_assert!(batch.len() <= max, "{key}: batch of {} exceeds max {max}", batch.len());
            let mut granted: Vec<Pid> = batch
                .iter()
                .filter_map(|d| match d {
                    Decision::Grant(p) => Some(*p),
                    Decision::Crash(_) => None,
                })
                .collect();
            granted.sort_unstable();
            let unique = granted.len();
            granted.dedup();
            prop_assert_eq!(granted.len(), unique, "{} granted a pid twice in one batch", &key);

            for (i, decision) in batch.iter().enumerate() {
                let expected = oracle.decide(&view);
                prop_assert_eq!(
                    decision, &expected,
                    "{} diverged from its sequential twin at round {round}, decision {i}",
                    &key
                );
            }
        }
    }
}
