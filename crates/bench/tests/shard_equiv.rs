//! Property coverage for the sharded execution core: the round-robin
//! partition plus the deterministic global merge must be *lossless*.
//!
//! Under an adversary that never reads the cross-shard view (`random`
//! consumes only its own RNG and the local active set), each shard of a
//! coupled run is indistinguishable from a standalone dense run of the
//! same sub-instance at `shard_seed(seed, s)`. So for random
//! `(n, S, seed)` the merged outcome must equal the `S` standalone runs
//! stitched back through [`ShardMap`]: per-pid step counts preserved
//! exactly, names offset by each shard's namespace prefix, and the
//! total decision count the sum of the parts.

use proptest::prelude::*;
use rr_bench::runner::run_once_sharded;
use rr_bench::scenario::registry;
use rr_sched::ids::{LocalIdx, Pid, ShardId, ShardMap};
use rr_sched::registry::standard;
use rr_sched::shard::{shard_seed, Arena};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partition + merge preserves per-pid step counts and offsets
    /// names by the shard namespace prefix, for random (n, S, seed).
    #[test]
    fn shard_merge_preserves_per_pid_outcomes(
        n in 8usize..96,
        s in 1usize..6,
        seed in 0u64..1000,
    ) {
        let s = s.min(n);
        let reg = registry();
        let algo = reg.build("tight-tau:c=4").unwrap();
        let build = standard().prepare("random").unwrap();

        let merged = run_once_sharded(
            algo.as_ref(),
            n,
            seed,
            &|n_s, sub_seed| build(n_s, sub_seed),
            s,
        );

        let map = ShardMap::new(s);
        let mut name_offset = 0usize;
        let mut decisions = 0u64;
        for shard in map.shard_ids() {
            let n_s = map.shard_len(shard, n);
            let sub_seed = shard_seed(seed, shard);
            let mut adversary = build(n_s, sub_seed);
            let standalone = algo
                .run_dense(n_s, sub_seed, adversary.as_mut(), &mut Arena::new())
                .unwrap();
            decisions += standalone.decisions;
            for l in (0..n_s).map(LocalIdx::new) {
                let p = map.global_of(shard, l);
                // The standalone sub-run's pid space *is* the shard's
                // local slot space.
                let lp = Pid::new(l.index());
                prop_assert_eq!(
                    merged.steps[p], standalone.steps[lp],
                    "steps diverged at pid {} (shard {}, slot {})", p, shard, l
                );
                prop_assert_eq!(
                    merged.names[p],
                    standalone.names[lp].map(|name| name + name_offset),
                    "name diverged at pid {} (shard {}, slot {})", p, shard, l
                );
                prop_assert_eq!(
                    merged.crashed[p], standalone.crashed[lp],
                    "crash flag diverged at pid {} (shard {}, slot {})", p, shard, l
                );
            }
            name_offset += algo.m(n_s);
        }
        prop_assert_eq!(merged.decisions, decisions, "merge must sum shard decision counts");
    }

    /// The merged outcome is a pure function of (seed, S): running the
    /// identical configuration twice gives bit-identical outcomes.
    #[test]
    fn sharded_run_is_deterministic(
        n in 8usize..96,
        s in 1usize..6,
        seed in 0u64..1000,
    ) {
        // Cor9's schedule construction needs n ≥ 4 in every shard.
        let s = s.min(n / 4).max(1);
        let reg = registry();
        let algo = reg.build("cor9").unwrap();
        let build = standard().prepare("random").unwrap();
        let run = || {
            run_once_sharded(algo.as_ref(), n, seed, &|n_s, sub| build(n_s, sub), s)
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.names, b.names);
        prop_assert_eq!(a.steps, b.steps);
        prop_assert_eq!(a.crashed, b.crashed);
        prop_assert_eq!(a.decisions, b.decisions);
    }
}

/// Shard seeds must decorrelate the sub-instances (identical seeds would
/// make every shard's pid-0 coin stream identical — a modelling bug the
/// striped partition is meant to avoid) while keeping shard 0 at the
/// caller's seed so s=1 degenerates to the serial run.
#[test]
fn shard_seeds_are_identity_at_zero_and_distinct() {
    assert_eq!(shard_seed(42, ShardId::new(0)), 42);
    let seeds: Vec<u64> = (0..8).map(|s| shard_seed(42, ShardId::new(s))).collect();
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), seeds.len(), "shard seeds must be pairwise distinct");
}
