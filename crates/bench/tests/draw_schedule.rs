//! Golden draw-schedule certificates: steps and RNG words per algorithm.
//!
//! Every randomized process now reports how many RNG words it drew
//! ([`rr_sched::process::Process::rng_words`]). This test pins, for
//! every registry algorithm at one fixed `(n, seed)` under the fair
//! schedule, the pair `(total steps, total RNG words drawn)` — in the
//! default ChaCha8 mode **and** in counter mode. Any change to a hot
//! path's draw schedule (an extra coin, a redrawn index, a reordered
//! probe) moves a number here and must be a deliberate, visible edit.
//!
//! Units are mode-specific by design: ChaCha8 counts 32-bit cipher
//! draws (a coin burns a whole draw — the historical schedule, kept
//! bit-exact); counter mode counts 64-bit mixer words (coins are served
//! from a cached 64-bit block, 64 flips per word). The per-algorithm
//! ratio between the two columns is the amortization the counter
//! backend buys.

use rr_bench::scenario::registry;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::shard::Arena;
use rr_shmem::rng::RngMode;

/// Runs `key` at `(n, seed)` on the dense arena under the fair
/// schedule and returns `(total_steps, Σ rng_words)`.
fn draw_schedule(key: &str, n: usize, seed: u64, rng: RngMode) -> (u64, u64) {
    let algo = registry().build(key).unwrap_or_else(|e| panic!("{key}: {e}"));
    let mut inst = algo.instantiate_rng(n, seed, rng);
    let mut arena = Arena::new();
    let out = arena
        .run(&mut inst.processes, &mut FairAdversary::default(), algo.step_budget(n))
        .unwrap_or_else(|e| panic!("{key}: {e}"));
    out.verify_renaming(inst.m).unwrap_or_else(|e| panic!("{key}: {e}"));
    let words: u64 = inst.processes.iter().map(|p| p.rng_words().unwrap_or(0)).sum();
    (out.total_steps(), words)
}

const N: usize = 256;
const SEED: u64 = 1;

/// The pinned schedule: `(key, steps, chacha8 words, steps under
/// counter mode, counter words)`. Deterministic baselines draw nothing
/// and must agree between modes step for step.
#[test]
fn per_algorithm_draw_schedule_is_pinned() {
    let pinned: &[(&str, u64, u64, u64, u64)] = &[
        ("aagw", 471, 942, 476, 476),
        ("adaptive", 8222, 14448, 8224, 7226),
        ("bitonic", 9216, 0, 9216, 0),
        ("cor7", 550, 1100, 574, 574),
        ("cor9", 1670, 3340, 1686, 1686),
        ("fetch-add", 256, 0, 256, 0),
        ("linear-scan", 32896, 0, 32896, 0),
        ("loose-l6", 524, 1048, 536, 536),
        ("loose-l8", 1612, 3224, 1623, 1623),
        // Beneš depth at width 256 is 2·8 − 1 = 15; full occupancy puts
        // every process through one switch per stage: 256·15 = 3840.
        ("route", 3840, 0, 3840, 0),
        ("splitter-grid", 131584, 0, 131584, 0),
        ("tight-tau", 4360, 6272, 4360, 3136),
        ("tight-tau-paper", 62728, 512, 62728, 256),
        ("uniform", 343, 686, 350, 350),
    ];
    let reg = registry();
    let mut keys = reg.keys();
    keys.sort_unstable();
    assert_eq!(
        keys,
        pinned.iter().map(|&(k, ..)| k).collect::<Vec<_>>(),
        "algorithm registry drifted"
    );
    let actual: Vec<(&str, u64, u64, u64, u64)> = pinned
        .iter()
        .map(|&(key, ..)| {
            let (steps, words) = draw_schedule(key, N, SEED, RngMode::ChaCha8);
            let (c_steps, c_words) = draw_schedule(key, N, SEED, RngMode::Counter);
            (key, steps, words, c_steps, c_words)
        })
        .collect();
    assert_eq!(actual, pinned, "draw schedule drifted — every change here must be deliberate");
}

/// Deterministic algorithms report no draw count at all (`None`, not
/// `Some(0)`) — the registry's randomized/deterministic split is
/// visible in the words column.
#[test]
fn deterministic_algorithms_report_no_draws() {
    for key in ["bitonic", "fetch-add", "linear-scan", "route", "splitter-grid"] {
        let algo = registry().build(key).unwrap();
        let inst = algo.instantiate(64, 0);
        for p in &inst.processes {
            assert_eq!(p.rng_words(), None, "{key} should draw nothing");
        }
    }
}

/// The amortized coin block pays: for every randomized algorithm the
/// counter-mode word count is below the ChaCha8 draw count at the same
/// size (coins cost 1/64th of a word instead of a full draw, and the
/// power-of-two index fast path never redraws).
#[test]
fn counter_mode_draws_fewer_words() {
    for key in ["aagw", "adaptive", "cor7", "cor9", "loose-l6", "loose-l8", "tight-tau", "uniform"]
    {
        let (_, chacha) = draw_schedule(key, N, SEED, RngMode::ChaCha8);
        let (_, counter) = draw_schedule(key, N, SEED, RngMode::Counter);
        assert!(
            counter < chacha,
            "{key}: counter mode drew {counter} words vs {chacha} chacha draws"
        );
    }
}
