//! Property coverage for the counter RNG backend across the full
//! algorithm registry.
//!
//! `rng:mode=counter` is a flagged modelling change: processes draw
//! from a SplitMix64 counter stream (amortized coin blocks, mask-path
//! index draws) instead of the reproduction-grade ChaCha8 stream. The
//! change is allowed to move step counts — it must **never** move
//! safety. For random `(algorithm, n, seed, adversary)` cells of the
//! registry matrix the counter-mode run must still rename uniquely
//! into the declared space, stay within the step budget, and keep the
//! step totals in the same envelope the default stream satisfies (the
//! Lemma-bound claim checks in `rr-report` read these totals; a draw
//! loop that redraws forever or a coin block that repeats would blow
//! the envelope long before it corrupts a name).

use proptest::prelude::*;
use rr_bench::runner::run_once_with_rng;
use rr_bench::scenario::registry;
use rr_sched::registry::standard;
use rr_shmem::rng::RngMode;

/// Keys whose protocols are total under the fair schedule (every
/// process names itself; the loose lemma stages leave stragglers by
/// design and are excluded).
const TOTAL_UNDER_FAIR: &[&str] = &[
    "aagw",
    "adaptive",
    "bitonic",
    "cor7",
    "cor9",
    "fetch-add",
    "linear-scan",
    "route",
    "splitter-grid",
    "tight-tau",
    "tight-tau-paper",
    "uniform",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Safety and step-envelope over random registry cells in counter
    /// mode. `run_once_with_rng` already panics on a renaming-safety
    /// violation; the properties are also spelled out so a failure
    /// names what broke.
    #[test]
    fn counter_mode_preserves_safety_across_the_registry(
        key_idx in 0usize..14,
        n_exp in 4u32..9,
        seed in 0u64..1000,
        adv_idx in 0usize..3,
    ) {
        let reg = registry();
        let mut keys = reg.keys();
        keys.sort_unstable();
        prop_assert_eq!(keys.len(), 14, "registry drifted; widen key_idx");
        let key = keys[key_idx];
        let n = 1usize << n_exp;
        let adversary = ["fair", "random", "stall"][adv_idx];

        let algo = reg.build(key).unwrap();
        let mut adv = standard().build(adversary, n, seed).unwrap();
        let out = run_once_with_rng(algo.as_ref(), n, seed, RngMode::Counter, adv.as_mut());

        // Unique names, valid range — the invariant the mode may never move.
        let m = algo.m(n);
        let mut names: Vec<usize> = out.names.iter().flatten().copied().collect();
        for &name in &names {
            prop_assert!(name < m, "{key}: name {name} outside m={m} (n={n}, seed {seed})");
        }
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        prop_assert_eq!(names.len(), before, "{} assigned a duplicate name", key);

        // Step envelope: within the declared budget, like the default
        // stream (the executor would have errored far above this).
        prop_assert!(out.step_complexity() <= algo.step_budget(n));

        // Totality where the protocol promises it.
        if adversary == "fair" && TOTAL_UNDER_FAIR.contains(&key) {
            prop_assert_eq!(
                out.gave_up_count(), 0,
                "{} must stay total under the fair schedule in counter mode", key
            );
        }
    }

    /// The counter stream must not change the *order* of work: at the
    /// same cell, counter-mode total steps stay within a generous
    /// constant factor of the ChaCha8 totals (a rejection loop that
    /// redraws forever, or a coin block that replays, blows this long
    /// before any Lemma-envelope claim check would see it).
    #[test]
    fn counter_mode_step_totals_stay_in_the_default_envelope(
        key_idx in 0usize..14,
        n_exp in 6u32..9,
        seed in 0u64..1000,
    ) {
        let reg = registry();
        let mut keys = reg.keys();
        keys.sort_unstable();
        let key = keys[key_idx];
        let n = 1usize << n_exp;

        let algo = reg.build(key).unwrap();
        let run = |rng| {
            let mut adv = standard().build("fair", n, seed).unwrap();
            run_once_with_rng(algo.as_ref(), n, seed, rng, adv.as_mut()).total_steps()
        };
        let chacha = run(RngMode::ChaCha8).max(1);
        let counter = run(RngMode::Counter).max(1);
        prop_assert!(
            counter <= 8 * chacha && chacha <= 8 * counter,
            "{key}: counter-mode totals left the default envelope at n={n}, seed {seed}: \
             {counter} vs {chacha}"
        );
    }
}
