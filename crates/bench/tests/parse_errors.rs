//! Error-path coverage for the key grammar: `ExecBackend::parse`,
//! `ParsedKey::parse` and both registries must turn malformed user input
//! (`threads:t=0`, unknown keys, trailing commas, …) into a
//! **descriptive `Err`** — never a panic. The exact messages are pinned:
//! they are user-facing CLI output (`--backend`, `--algos`,
//! `--adversaries`) and experiment scripts grep them.

use rr_bench::runner::ExecBackend;
use rr_bench::scenario::registry;
use rr_sched::registry::{standard, ParsedKey};

#[test]
fn backend_rejects_zero_threads_with_a_named_bound() {
    assert_eq!(ExecBackend::parse("threads:t=0").unwrap_err(), "threads backend needs t ≥ 1");
}

#[test]
fn backend_rejects_zero_shards_with_a_named_bound() {
    assert_eq!(ExecBackend::parse("shard:s=0").unwrap_err(), "shard backend needs s ≥ 1");
}

#[test]
fn backend_rejects_unknown_names_listing_the_alternatives() {
    assert_eq!(
        ExecBackend::parse("gpu").unwrap_err(),
        "unknown backend `gpu` (known: virtual, dense, threads:t=N, shard:s=N)"
    );
}

#[test]
fn backend_rejects_unknown_and_malformed_parameters() {
    assert_eq!(
        ExecBackend::parse("dense:t=2").unwrap_err(),
        "unknown parameter `t` for `dense` (allowed: none)"
    );
    assert_eq!(
        ExecBackend::parse("virtual:x=1").unwrap_err(),
        "unknown parameter `x` for `virtual` (allowed: none)"
    );
    assert_eq!(
        ExecBackend::parse("threads:x=1").unwrap_err(),
        "unknown parameter `x` for `threads` (allowed: t)"
    );
    assert_eq!(
        ExecBackend::parse("threads:t=many").unwrap_err(),
        "parameter `t=many` of `threads` is invalid"
    );
    assert_eq!(
        ExecBackend::parse("shard:x=1").unwrap_err(),
        "unknown parameter `x` for `shard` (allowed: s)"
    );
    assert_eq!(
        ExecBackend::parse("shard:s=lots").unwrap_err(),
        "parameter `s=lots` of `shard` is invalid"
    );
}

#[test]
fn trailing_commas_are_malformed_parameters_not_panics() {
    assert_eq!(
        ParsedKey::parse("crash:p=20,").unwrap_err(),
        "malformed parameter `` in `crash:p=20,` (want k=v)"
    );
    assert_eq!(
        ExecBackend::parse("threads:t=4,").unwrap_err(),
        "malformed parameter `` in `threads:t=4,` (want k=v)"
    );
    assert_eq!(
        standard().prepare("fuzz:rounds=8,").err().unwrap(),
        "malformed parameter `` in `fuzz:rounds=8,` (want k=v)"
    );
}

#[test]
fn parsed_key_rejects_empty_and_nameless_keys() {
    assert_eq!(ParsedKey::parse("").unwrap_err(), "empty key");
    assert_eq!(ParsedKey::parse("   ").unwrap_err(), "empty key");
    assert_eq!(ParsedKey::parse(":p=1").unwrap_err(), "key `:p=1` has an empty name");
    assert_eq!(
        ParsedKey::parse("crash:p").unwrap_err(),
        "malformed parameter `p` in `crash:p` (want k=v)"
    );
}

#[test]
fn adversary_registry_lists_every_strategy_on_unknown_names() {
    assert_eq!(
        standard().prepare("livelock").err().unwrap(),
        "unknown adversary `livelock` (registered: bursty, collisions, crash, diurnal, explore, \
         fair, fuzz, lookahead, random, stall, victim)"
    );
}

#[test]
fn adversary_registry_validates_zoo_parameters() {
    assert_eq!(standard().prepare("lookahead:k=0").err().unwrap(), "lookahead needs k >= 1, got 0");
    assert_eq!(
        standard().prepare("lookahead:window=4").err().unwrap(),
        "unknown parameter `window` for `lookahead` (allowed: k)"
    );
    assert_eq!(standard().prepare("bursty:len=0").err().unwrap(), "bursty needs len >= 1, got 0");
    assert_eq!(
        standard().prepare("bursty:len").err().unwrap(),
        "malformed parameter `len` in `bursty:len` (want k=v)"
    );
    assert_eq!(
        standard().prepare("bursty:burst=4").err().unwrap(),
        "unknown parameter `burst` for `bursty` (allowed: len, gap)"
    );
    assert_eq!(
        standard().prepare("diurnal:period=1").err().unwrap(),
        "diurnal needs period >= 2, got 1"
    );
    assert_eq!(
        standard().prepare("diurnal:period=noon").err().unwrap(),
        "parameter `period=noon` of `diurnal` is invalid"
    );
    assert_eq!(
        standard().prepare("victim:pid=-1").err().unwrap(),
        "parameter `pid=-1` of `victim` is invalid"
    );
    assert_eq!(
        standard().prepare("victim:pid=3,").err().unwrap(),
        "malformed parameter `` in `victim:pid=3,` (want k=v)"
    );
}

#[test]
fn route_keys_pin_their_parse_errors() {
    assert_eq!(
        registry().build("route:net=unknown").err().unwrap(),
        "route net must be benes|butterfly|variant, got `unknown`"
    );
    assert_eq!(
        registry().build("route:stages=0").err().unwrap(),
        "route stages must be >= 1, got 0"
    );
    assert_eq!(
        registry().build("route:stages=deep").err().unwrap(),
        "parameter `stages=deep` of `route` is invalid"
    );
    assert_eq!(
        registry().build("route:topology=benes").err().unwrap(),
        "unknown parameter `topology` for `route` (allowed: net, stages)"
    );
    assert_eq!(
        registry().build("route:net=benes,").err().unwrap(),
        "malformed parameter `` in `route:net=benes,` (want k=v)"
    );
    assert_eq!(
        registry().build("route:net").err().unwrap(),
        "malformed parameter `net` in `route:net` (want k=v)"
    );
}

#[test]
fn adversary_registry_validates_searcher_parameters() {
    assert_eq!(standard().prepare("explore:depth=0").err().unwrap(), "explore needs depth ≥ 1");
    assert_eq!(
        standard().prepare("explore:d=3").err().unwrap(),
        "unknown parameter `d` for `explore` (allowed: depth, crashes)"
    );
    assert_eq!(
        standard().prepare("fuzz:strength=1500").err().unwrap(),
        "fuzz strength 1500 exceeds 1000 permille"
    );
    assert_eq!(standard().prepare("fuzz:rounds=0").err().unwrap(), "fuzz needs rounds ≥ 1");
    assert_eq!(
        standard().prepare("crash:p=2000").err().unwrap(),
        "crash probability p=2000 exceeds 1000 permille"
    );
    assert_eq!(
        standard().prepare("explore:depth=x").err().unwrap(),
        "parameter `depth=x` of `explore` is invalid"
    );
}

#[test]
fn algorithm_registry_lists_every_algorithm_on_unknown_names() {
    assert_eq!(
        registry().build("warp-speed").err().unwrap(),
        "unknown algorithm `warp-speed` (registered: aagw, adaptive, bitonic, cor7, cor9, \
         fetch-add, linear-scan, loose-l6, loose-l8, route, splitter-grid, tight-tau, \
         tight-tau-paper, uniform)"
    );
}

#[test]
fn backend_round_trip_still_accepts_the_valid_grammar() {
    // Guard against over-tightening: the messages above must coexist
    // with the documented happy paths.
    assert_eq!(ExecBackend::parse("threads:t=1").unwrap(), ExecBackend::Threads { t: 1 });
    assert_eq!(ExecBackend::parse(" dense ").unwrap(), ExecBackend::Dense);
    assert_eq!(ExecBackend::parse("shard:s=4").unwrap(), ExecBackend::Shard { s: 4 });
}

#[test]
fn model_scenario_registry_lists_every_key_on_unknown_names() {
    assert_eq!(
        rr_bench::modelcheck::scenario_by_key("deadlock").unwrap_err(),
        "unknown model scenario `deadlock` (known: collect, tas, tas-collide, tau, tau-block, \
         tau-collide, tau-quota)"
    );
}

#[test]
fn lint_allowlist_errors_name_the_offending_line() {
    use rr_lint::{Allowlist, Rule};
    assert_eq!(
        Allowlist::parse("bogus crates/x/src/lib.rs why").unwrap_err(),
        "allowlist line 1: unknown rule `bogus` (known: hash-iter, raw-pid-index, thread-spawn, \
         unsafe-comment, wall-clock)"
    );
    assert_eq!(
        Allowlist::parse("# fine\nhash-iter\n").unwrap_err(),
        "allowlist line 2: want `rule path reason…`, got `hash-iter`"
    );
    assert_eq!(
        Allowlist::parse("wall-clock crates/x/src/lib.rs").unwrap_err(),
        "allowlist line 1: entry for `crates/x/src/lib.rs` needs a reason"
    );
    assert_eq!(
        Rule::from_key("hash-map").unwrap_err(),
        "unknown rule `hash-map` (known: hash-iter, raw-pid-index, thread-spawn, unsafe-comment, \
         wall-clock)"
    );
}

#[test]
fn new_cli_binaries_exit_2_on_unknown_flags() {
    // Same convention as every exp_* binary: unknown argument → exit 2
    // with a one-line hint on stderr; never a panic, never exit 1
    // (which means real violations / non-linearizable traces).
    for (exe, name) in [
        (env!("CARGO_BIN_EXE_exp_model"), "exp_model"),
        (env!("CARGO_BIN_EXE_exp_lint"), "exp_lint"),
        (env!("CARGO_BIN_EXE_exp_route"), "exp_route"),
    ] {
        let out =
            std::process::Command::new(exe).arg("--frobnicate").output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{name} must exit 2 on unknown flags");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(stderr.trim(), format!("{name}: unknown argument `--frobnicate` (see --help)"));
    }
}

#[test]
fn exp_lint_reports_allowlist_parse_failures_as_usage_errors() {
    let dir = std::env::temp_dir().join("rr_lint_badallow_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bad = dir.join("ALLOW.txt");
    std::fs::write(&bad, "nonsense-rule a b\n").expect("write allowlist");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_exp_lint"))
        .args(["--allowlist"])
        .arg(&bad)
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "bad allowlist is a usage error, not a lint failure");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("allowlist line 1: unknown rule `nonsense-rule`"),
        "stderr was: {stderr}"
    );
}
