//! Property tests over the tape machinery: for every registry adversary,
//! (1) recording a run's decision tape and replaying it through
//! [`ReplayAdversary`] reproduces a bit-identical [`BatchStats`] —
//! schedules are faithful, storable artifacts (the f64 fields are
//! compared by bits, not tolerance) — and (2) ddmin-shrunk tapes keep
//! failing and replay to identical [`RunOutcome`]s, so a shrunk
//! counterexample is as trustworthy an artifact as the original.

use proptest::prelude::*;
use rr_bench::runner::{run_once_with, BatchStats};
use rr_renaming::traits::{LooseL6, RenamingAlgorithm};
use rr_renaming::TightRenaming;
use rr_sched::explore::{shrink_tape, TolerantReplay};
use rr_sched::process::Process;
use rr_sched::registry::standard;
use rr_sched::replay::{RecordingAdversary, ReplayAdversary, Tape};
use rr_sched::virtual_exec::{run, RunOutcome};
use rr_sched::Adversary;

/// Adversary keys covering every registered strategy, the crash one in
/// both a light and a heavy parameterization, and the schedule-space
/// searchers (a fresh `build` starts each searcher at its first
/// schedule, so the recorded tape is deterministic).
const ADVERSARIES: &[&str] = &[
    "fair",
    "random",
    "collisions",
    "stall",
    "crash:p=100,cap=10",
    "crash:p=500,cap=50",
    "explore:depth=6",
    "explore:depth=4,crashes=2",
    "fuzz:rounds=8,strength=400",
];

fn assert_bit_identical(a: &BatchStats, b: &BatchStats, what: &str) {
    assert_eq!(a.step_complexity, b.step_complexity, "{what}: step_complexity");
    assert_eq!(a.unnamed, b.unnamed, "{what}: unnamed");
    assert_eq!(a.crashed, b.crashed, "{what}: crashed");
    assert_eq!(a.runs, b.runs, "{what}: runs");
    assert_eq!(a.violations, b.violations, "{what}: violations");
    let ab: Vec<u64> = a.mean_steps.iter().map(|f| f.to_bits()).collect();
    let bb: Vec<u64> = b.mean_steps.iter().map(|f| f.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: mean_steps bits");
}

fn record_then_replay(algo: &dyn RenamingAlgorithm, n: usize, seed: u64, key: &str) {
    let mut recorder =
        RecordingAdversary::new(standard().build(key, n, seed).expect("registry key"));
    let recorded_out = run_once_with(algo, n, seed, &mut recorder);
    let tape = recorder.into_tape();
    assert_eq!(tape.len() as u64, recorded_out.decisions, "{key}: tape covers every decision");

    let mut replayer = ReplayAdversary::new(tape);
    let replayed_out = run_once_with(algo, n, seed, &mut replayer);

    let recorded = BatchStats::from_outcomes([&recorded_out], n);
    let replayed = BatchStats::from_outcomes([&replayed_out], n);
    assert_bit_identical(&recorded, &replayed, &format!("{} under {key}", algo.name()));
    // The raw outcomes must agree too, not just the aggregates.
    assert_eq!(recorded_out.names, replayed_out.names, "{key}: names");
    assert_eq!(recorded_out.steps, replayed_out.steps, "{key}: steps");
    assert_eq!(recorded_out.crashed, replayed_out.crashed, "{key}: crashed");
}

proptest! {
    /// Tight renaming (no legitimate give-ups) under every adversary.
    #[test]
    fn tape_replay_is_bit_identical_for_tight(n in 24usize..96, seed in 0u64..1000) {
        let algo = TightRenaming::calibrated(4);
        for key in ADVERSARIES {
            record_then_replay(&algo, n, seed, key);
        }
    }

    /// An almost-tight protocol (exercises the unnamed counts) under
    /// every adversary.
    #[test]
    fn tape_replay_is_bit_identical_for_almost_tight(n in 24usize..96, seed in 0u64..1000) {
        let algo = LooseL6 { ell: 1 };
        for key in ADVERSARIES {
            record_then_replay(&algo, n, seed, key);
        }
    }
}

/// Replays `tape` tolerantly against a fresh instance of `algo`.
fn tolerant_replay(algo: &dyn RenamingAlgorithm, n: usize, seed: u64, tape: &Tape) -> RunOutcome {
    let inst = algo.instantiate(n, seed);
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    run(procs, &mut TolerantReplay::new(tape.clone()), algo.step_budget(n))
        .expect("tolerant replay within the default budget")
}

fn assert_outcomes_identical(a: &RunOutcome, b: &RunOutcome, what: &str) {
    assert_eq!(a.names, b.names, "{what}: names");
    assert_eq!(a.steps, b.steps, "{what}: steps");
    assert_eq!(a.crashed, b.crashed, "{what}: crashed");
    assert_eq!(a.gave_up, b.gave_up, "{what}: gave_up");
    assert_eq!(a.decisions, b.decisions, "{what}: decisions");
}

proptest! {
    /// Shrinking soundness, outcome flavor: take a recorded failing tape
    /// (failure = "the schedule forces the recorded worst-case step
    /// complexity"), ddmin it, and check the shrunk tape (1) still fails,
    /// (2) is no longer than the original, and (3) replays to the
    /// **identical** `RunOutcome` every time — a shrunk counterexample is
    /// as deterministic an artifact as the original failing tape.
    #[test]
    fn shrunk_tapes_keep_failing_and_replay_identically(n in 12usize..40, seed in 0u64..200) {
        let algo = TightRenaming::calibrated(4);
        for key in ADVERSARIES {
            let mut recorder =
                RecordingAdversary::new(standard().build(key, n, seed).expect("registry key"));
            let original_out = run_once_with(&algo, n, seed, &mut recorder);
            let tape = recorder.into_tape();
            let worst = original_out.step_complexity();
            let fails = |t: &Tape| tolerant_replay(&algo, n, seed, t).step_complexity() >= worst;
            prop_assert!(fails(&tape), "{key}: the original failing tape must fail");

            let shrunk = shrink_tape(&tape, fails);
            prop_assert!(shrunk.len() <= tape.len(), "{key}: shrinking never grows a tape");
            let replay_a = tolerant_replay(&algo, n, seed, &shrunk);
            let replay_b = tolerant_replay(&algo, n, seed, &shrunk);
            prop_assert!(
                replay_a.step_complexity() >= worst,
                "{key}: shrunk tape no longer exhibits the failure"
            );
            assert_outcomes_identical(&replay_a, &replay_b, &format!("{key} shrunk replay"));
        }
    }

    /// Shrinking soundness, executor-error flavor: replaying under a
    /// step budget below the recorded run's total work fails with the
    /// budget error; the ddmin-shrunk tape reproduces the **identical**
    /// failure, deterministically, for every registry adversary.
    #[test]
    fn shrunk_tapes_reproduce_identical_budget_failures(n in 12usize..40, seed in 0u64..200) {
        let algo = TightRenaming::calibrated(4);
        for key in ADVERSARIES {
            let mut recorder =
                RecordingAdversary::new(standard().build(key, n, seed).expect("registry key"));
            let out = run_once_with(&algo, n, seed, &mut recorder);
            let tape = recorder.into_tape();
            let budget = out.total_steps() / 2;
            let failing_run = |adv: &mut dyn Adversary| -> Result<RunOutcome, String> {
                let inst = algo.instantiate(n, seed);
                let procs: Vec<Box<dyn Process>> =
                    inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
                run(procs, adv, budget).map_err(|e| e.to_string())
            };
            let original_err = failing_run(&mut ReplayAdversary::new(tape.clone()))
                .expect_err("half the work cannot fit the budget");

            let shrunk = shrink_tape(&tape, |t| {
                failing_run(&mut TolerantReplay::new(t.clone())).is_err()
            });
            let shrunk_err = failing_run(&mut TolerantReplay::new(shrunk.clone()))
                .expect_err("shrunk tape must keep failing");
            prop_assert_eq!(
                &shrunk_err, &original_err,
                "{} at n={}, seed {}: shrunk failure diverged", key, n, seed
            );
            let again = failing_run(&mut TolerantReplay::new(shrunk.clone()))
                .expect_err("replaying a shrunk tape is deterministic");
            prop_assert_eq!(&again, &shrunk_err, "{}: shrunk replay not deterministic", key);
        }
    }
}
