//! Property test: for every registry adversary, recording a run's
//! decision tape and replaying it through [`ReplayAdversary`] reproduces
//! a bit-identical [`BatchStats`] — schedules are faithful, storable
//! artifacts (the f64 fields are compared by bits, not tolerance).

use proptest::prelude::*;
use rr_bench::runner::{run_once_with, BatchStats};
use rr_renaming::traits::{LooseL6, RenamingAlgorithm};
use rr_renaming::TightRenaming;
use rr_sched::registry::standard;
use rr_sched::replay::{RecordingAdversary, ReplayAdversary};

/// Adversary keys covering every registered strategy, the crash one in
/// both a light and a heavy parameterization.
const ADVERSARIES: &[&str] =
    &["fair", "random", "collisions", "stall", "crash:p=100,cap=10", "crash:p=500,cap=50"];

fn assert_bit_identical(a: &BatchStats, b: &BatchStats, what: &str) {
    assert_eq!(a.step_complexity, b.step_complexity, "{what}: step_complexity");
    assert_eq!(a.unnamed, b.unnamed, "{what}: unnamed");
    assert_eq!(a.crashed, b.crashed, "{what}: crashed");
    assert_eq!(a.runs, b.runs, "{what}: runs");
    assert_eq!(a.violations, b.violations, "{what}: violations");
    let ab: Vec<u64> = a.mean_steps.iter().map(|f| f.to_bits()).collect();
    let bb: Vec<u64> = b.mean_steps.iter().map(|f| f.to_bits()).collect();
    assert_eq!(ab, bb, "{what}: mean_steps bits");
}

fn record_then_replay(algo: &dyn RenamingAlgorithm, n: usize, seed: u64, key: &str) {
    let mut recorder =
        RecordingAdversary::new(standard().build(key, n, seed).expect("registry key"));
    let recorded_out = run_once_with(algo, n, seed, &mut recorder);
    let tape = recorder.into_tape();
    assert_eq!(tape.len() as u64, recorded_out.decisions, "{key}: tape covers every decision");

    let mut replayer = ReplayAdversary::new(tape);
    let replayed_out = run_once_with(algo, n, seed, &mut replayer);

    let recorded = BatchStats::from_outcomes([&recorded_out], n);
    let replayed = BatchStats::from_outcomes([&replayed_out], n);
    assert_bit_identical(&recorded, &replayed, &format!("{} under {key}", algo.name()));
    // The raw outcomes must agree too, not just the aggregates.
    assert_eq!(recorded_out.names, replayed_out.names, "{key}: names");
    assert_eq!(recorded_out.steps, replayed_out.steps, "{key}: steps");
    assert_eq!(recorded_out.crashed, replayed_out.crashed, "{key}: crashed");
}

proptest! {
    /// Tight renaming (no legitimate give-ups) under every adversary.
    #[test]
    fn tape_replay_is_bit_identical_for_tight(n in 24usize..96, seed in 0u64..1000) {
        let algo = TightRenaming::calibrated(4);
        for key in ADVERSARIES {
            record_then_replay(&algo, n, seed, key);
        }
    }

    /// An almost-tight protocol (exercises the unnamed counts) under
    /// every adversary.
    #[test]
    fn tape_replay_is_bit_identical_for_almost_tight(n in 24usize..96, seed in 0u64..1000) {
        let algo = LooseL6 { ell: 1 };
        for key in ADVERSARIES {
            record_then_replay(&algo, n, seed, key);
        }
    }
}
