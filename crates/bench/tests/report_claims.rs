//! The `ClaimCheck` layer and the report crate's claim registry are one
//! contract: every claim a spec declares must be evaluable by
//! `rr-report`, every claim `rr-report` evaluates must be declared by
//! exactly one spec, and the bound strings must agree verbatim — so the
//! report can never silently drop or duplicate a paper claim.

use rr_bench::runner::RunConfig;
use rr_bench::scenario::specs::catalogue;
use rr_bench::scenario::{ReportSink, Sink};
use std::collections::BTreeMap;

/// `claim id -> (scenario id, bound)` as declared by the specs.
fn declared() -> BTreeMap<&'static str, (&'static str, &'static str)> {
    let mut map = BTreeMap::new();
    for spec in catalogue(&RunConfig::default()) {
        for check in &spec.reproduces {
            let prev = map.insert(check.claim, (spec.id, check.bound));
            assert!(prev.is_none(), "claim {} declared by two specs", check.claim);
        }
    }
    map
}

#[test]
fn spec_metadata_and_report_registry_are_aligned() {
    let declared = declared();
    let evaluated = rr_report::evaluate_claims(&[]);
    assert_eq!(
        declared.keys().copied().collect::<Vec<_>>(),
        {
            let mut ids = rr_report::claim_ids();
            ids.sort_unstable();
            ids
        },
        "spec ClaimChecks and rr-report claims must name the same set"
    );
    for outcome in &evaluated {
        let (scenario, bound) = declared[outcome.id];
        assert_eq!(outcome.scenario, scenario, "claim {} scenario mismatch", outcome.id);
        assert_eq!(outcome.bound, bound, "claim {} bound text drifted", outcome.id);
    }
}

#[test]
fn every_claim_spec_is_a_known_e_scenario() {
    for (claim, (scenario, _)) in declared() {
        assert!(scenario.starts_with('E'), "claim {claim} must come from an E-spec");
    }
    // The full catalogue shape: 15 fixed specs, 7 of them claim-bearing.
    let specs = catalogue(&RunConfig::default());
    assert_eq!(specs.len(), 15);
    assert_eq!(specs.iter().filter(|s| !s.reproduces.is_empty()).count(), 7);
}

/// Driving one claim spec through a `ReportSink` yields records the
/// report crate evaluates to a verdict — the end-to-end path of
/// `exp_report` in miniature.
#[test]
fn report_sink_records_feed_a_claim_evaluation() {
    let cfg = RunConfig { quick: true, ..RunConfig::default() };
    let spec = catalogue(&cfg).into_iter().find(|s| s.id == "E2").expect("E2 in catalogue");
    let mut sink = ReportSink::new();
    {
        let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(&mut sink)];
        rr_bench::scenario::run_spec(spec, &cfg, &mut sinks);
        for s in &mut sinks {
            s.finish().unwrap();
        }
    }
    let recs: Vec<rr_report::Rec> =
        sink.records().iter().map(rr_bench::scenario::Record::to_report_rec).collect();
    assert!(!recs.is_empty(), "E2 must emit records for the report");
    let lemma3 = rr_report::evaluate_claims(&recs).into_iter().find(|o| o.id == "lemma3").unwrap();
    assert_eq!(lemma3.verdict, rr_report::Verdict::Pass, "{:#?}", lemma3.checks);
}
