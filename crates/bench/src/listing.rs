//! Registry listings, generated once and consumed twice: `exp_matrix
//! --list` prints [`registry_listing`], and the README's
//! algorithm/adversary/backend key tables are the markdown rendering
//! [`registry_tables_markdown`] of the very same registry state — a
//! drift test (`crates/bench/tests/readme_sync.rs`) fails whenever the
//! committed README block and the registries disagree.

use std::fmt::Write as _;

/// The execution-backend axis: `(example key, what runs, determinism)`.
/// Keys must parse through [`crate::runner::ExecBackend::parse`] —
/// asserted by the README drift test, so this table cannot outlive the
/// parser.
pub fn backend_rows() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "virtual",
            "boxed reference executor (shim over the arena loop)",
            "exact, adversary-scheduled, seed-reproducible",
        ),
        (
            "dense",
            "flat arena core: typed process storage, scratch reuse",
            "bit-identical to `virtual`, fastest at large n",
        ),
        (
            "threads:t=N",
            "free-running OS threads, at most N concurrent",
            "wall-clock truth; ignores the adversary key, not seed-reproducible",
        ),
        (
            "shard:s=N",
            "N coupled per-shard arenas, one thread each, merged deterministically",
            "pure function of (seed, N) on any machine; `shard:s=1` bit-identical to `dense`",
        ),
    ]
}

/// The `exp_matrix --list` text: both registries, one line per entry.
pub fn registry_listing() -> String {
    let mut out = String::new();
    out.push_str("registered algorithms (key: summary):\n");
    for (name, summary, example, n_cap) in crate::scenario::registry().entries() {
        let cap = n_cap.map(|c| format!(" [n ≤ {c}]")).unwrap_or_default();
        let _ = writeln!(out, "  {name:16} {summary}{cap}  e.g. `{example}`");
    }
    out.push_str("registered adversaries (key: summary):\n");
    for (name, summary, example) in rr_sched::registry::standard().entries() {
        let _ = writeln!(out, "  {name:16} {summary}  e.g. `{example}`");
    }
    out.push_str("execution backends (key: summary):\n");
    for (key, what, determinism) in backend_rows() {
        let _ = writeln!(out, "  {key:16} {what} — {determinism}");
    }
    out
}

/// The README's generated key tables: markdown rendering of the same
/// registry state [`registry_listing`] prints.
pub fn registry_tables_markdown() -> String {
    let mut out = String::new();
    out.push_str("**Algorithms** (`rr_renaming::AlgorithmRegistry` + baselines):\n\n");
    out.push_str("| key | algorithm | example |\n|---|---|---|\n");
    for (name, summary, example, n_cap) in crate::scenario::registry().entries() {
        let cap = n_cap.map(|c| format!(" (n ≤ {c})")).unwrap_or_default();
        let _ = writeln!(out, "| `{name}` | {summary}{cap} | `{example}` |");
    }
    out.push_str("\n**Adversaries** (`rr_sched::registry::AdversaryRegistry`):\n\n");
    out.push_str("| key | strategy | example |\n|---|---|---|\n");
    for (name, summary, example) in rr_sched::registry::standard().entries() {
        let _ = writeln!(out, "| `{name}` | {summary} | `{example}` |");
    }
    out.push_str("\n**Execution backends** (`--backend`, `rr_bench::runner::ExecBackend`):\n\n");
    out.push_str("| key | core | determinism |\n|---|---|---|\n");
    for (key, what, determinism) in backend_rows() {
        let _ = writeln!(out, "| `{key}` | {what} | {determinism} |");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExecBackend;

    #[test]
    fn listing_covers_both_registries_and_backends() {
        let listing = registry_listing();
        for key in crate::scenario::registry().keys() {
            assert!(listing.contains(key), "algorithm {key} missing from listing");
        }
        for key in rr_sched::registry::standard().keys() {
            assert!(listing.contains(key), "adversary {key} missing from listing");
        }
        assert!(listing.contains("threads:t=N"));
        assert!(listing.contains("shard:s=N"));
    }

    #[test]
    fn backend_table_keys_parse() {
        for (key, _, _) in backend_rows() {
            let concrete = key.replace('N', "4");
            assert!(ExecBackend::parse(&concrete).is_ok(), "{key}");
        }
    }

    #[test]
    fn markdown_tables_share_the_listing_state() {
        let md = registry_tables_markdown();
        for key in crate::scenario::registry().keys() {
            assert!(md.contains(&format!("| `{key}` |")), "{key}");
        }
        for key in rr_sched::registry::standard().keys() {
            assert!(md.contains(&format!("| `{key}` |")), "{key}");
        }
        assert_eq!(md.matches("|---|---|---|").count(), 3, "three tables");
    }
}
