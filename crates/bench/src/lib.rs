//! # rr-bench — the experiment harness
//!
//! One binary per quantitative claim of the paper (plus the extensions);
//! see DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
//! claimed-vs-measured tables. All binaries accept `--quick` (CI-sized
//! sweeps) and `--json <path>` (structured records next to the tables).
//!
//! | binary | claim |
//! |---|---|
//! | `exp_theorem5` | E1 — Theorem 5: tight renaming in O(log n) w.h.p. |
//! | `exp_lemma3` | E2 — Lemma 3 balls-into-bins tail |
//! | `exp_lemma4` | E3 — Lemma 4 per-round register saturation |
//! | `exp_lemma6` | E4 — Lemma 6 almost-tight renaming |
//! | `exp_cor7` | E5 — Corollary 7 loose renaming |
//! | `exp_lemma8` | E6 — Lemma 8 almost-tight renaming (corrected phases) |
//! | `exp_cor9` | E7 — Corollary 9 loose renaming |
//! | `exp_baselines` | E8 — τ-register vs networks vs loose baselines |
//! | `exp_adversary` | E9 — adaptive adversaries and crashes |
//! | `exp_tau` | E10 — counting-device invariants and batching |
//! | `exp_deterministic_gap` | E11 — deterministic Θ(n) vs randomized |
//! | `exp_adaptive` | E12 — adaptive (unknown k) extension |
//! | `exp_longlived` | E13 — long-lived renaming under churn |
//! | `exp_ablation` | E14 — design-constant ablations |
//! | `exp_progress` | E15 — named-fraction progress curves |
//! | `exp_matrix` | any algorithm × adversary × n, by registry key |
//! | `exp_explore` | schedule-space search: exhaustive DFS + fuzz, tape shrinking |
//! | `exp_report` | REPRODUCTION.md generator: statistical claim verdicts + SVG charts |
//!
//! Every binary is a thin `main` over the [`scenario`] engine: the
//! experiment itself is a declarative [`scenario::ScenarioSpec`] in
//! [`scenario::specs`], naming algorithms and adversaries by **registry
//! key** and executed by the shared parallel [`runner`] with the safety
//! audit always on.
//!
//! ```
//! use rr_bench::scenario::{
//!     render_to_string, BatchSection, Column, RowSpec, ScenarioSpec, Section,
//! };
//!
//! // An experiment is a declaration; the engine runs and renders it.
//! let spec = ScenarioSpec {
//!     id: "DOC",
//!     claim: "crate doctest",
//!     sections: vec![Section::Batch(BatchSection {
//!         title: None,
//!         columns: vec![
//!             Column::new("n", |ctx| ctx.row.n.to_string()),
//!             Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
//!         ],
//!         rows: vec![RowSpec::new("tight-tau:c=4", "fair", 16, 1)],
//!     })],
//!     claim_check: String::new(),
//!     reproduces: vec![],
//! };
//! assert!(render_to_string(spec).starts_with("=== DOC: crate doctest ==="));
//! ```

#![forbid(unsafe_code)]

pub mod listing;
pub mod modelcheck;
pub mod runner;
pub mod scenario;
