//! Model-checked scenarios for the lock-free core.
//!
//! Each scenario instantiates a production primitive —
//! [`ConcurrentTauRegister`] or [`AtomicTasArray`] — over
//! [`TracedWord`] and hands [`rr_sched::model::check`] a bounded cast
//! of threads plus a linearizability checker against the sequential
//! oracle ([`CountingDevice`] for the τ-register, the one-winner set
//! model for TAS). The `exp_model` binary and the `model_check` golden
//! test (which pins the exact interleaving counts) both build their
//! runs from this one registry, so the CI smoke and the pinned
//! exhaustiveness certificate can never drift apart.
//!
//! The τ-register history is checked at the granularity the primitive
//! actually guarantees: `request` (the one-CAS bit acquisition),
//! `claim` (the name-slot search) and `collect` (`quota_and_bits`) are
//! each linearizable operations, and the checker asks for a sequential
//! order of those ops — respecting each thread's program order — that
//! reproduces every recorded outcome. The composite `acquire` is
//! deliberately *not* modelled as one atomic op: a thread can win its
//! device bit first but claim its name second, which a concurrent
//! collector can observe, and that is correct behavior, not a race.

use rr_sched::model::{check, ModelReport, ModelRun, TracedWord};
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use rr_tau::device::{BitOutcome, CountingDevice};
use rr_tau::ConcurrentTauRegister;
use std::sync::Arc;

/// One completed atomic operation in a model history. Each model
/// thread reports the sequence of operations it performed (its program
/// order); the linearizability check interleaves those sequences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelOp {
    /// `ConcurrentTauRegister::request_bit(bit)`.
    Request {
        /// Requested device bit.
        bit: usize,
        /// Whether the bit was won.
        won: bool,
    },
    /// `ConcurrentTauRegister::claim_name()` after a won request
    /// (base name 0, so name == slot).
    Claim {
        /// The name-slot won.
        name: usize,
    },
    /// `ConcurrentTauRegister::quota_and_bits()` — the one-step
    /// register inspection ("collect").
    Collect {
        /// Remaining quota observed.
        quota: u32,
        /// Confirmed bit map observed.
        bits: u64,
    },
    /// `AtomicTasArray::tas(target)`.
    Tas {
        /// Register index.
        target: usize,
        /// Whether this thread won the register.
        won: bool,
    },
}

/// A named, bounded model-checking scenario.
#[derive(Debug)]
pub struct ModelScenario {
    /// Registry key (`tas`, `tau`, …).
    pub key: &'static str,
    /// One-line description for listings.
    pub summary: &'static str,
    /// Execution budget handed to [`check`] — comfortably above every
    /// pinned tree size, so hitting it means the scenario regressed.
    pub limit: u64,
    builder: fn() -> ModelRun<Vec<ModelOp>>,
}

impl ModelScenario {
    /// Exhaustively explores the scenario and checks every outcome.
    pub fn run(&self) -> ModelReport {
        check(self.limit, self.builder)
    }
}

/// An acceptance predicate over a complete `(thread, op_index)` order.
type OrderCheck<'a> = dyn FnMut(&[(usize, usize)]) -> bool + 'a;

/// Tries every interleaving of the per-thread operation sequences
/// (program order preserved within each thread) until `ok` accepts a
/// complete order of `(thread, op_index)` pairs.
fn any_interleaving(seqs: &[Vec<ModelOp>], ok: &mut OrderCheck<'_>) -> bool {
    fn rec(
        seqs: &[Vec<ModelOp>],
        cursors: &mut [usize],
        acc: &mut Vec<(usize, usize)>,
        total: usize,
        ok: &mut OrderCheck<'_>,
    ) -> bool {
        if acc.len() == total {
            return ok(acc);
        }
        for t in 0..seqs.len() {
            if cursors[t] < seqs[t].len() {
                acc.push((t, cursors[t]));
                cursors[t] += 1;
                if rec(seqs, cursors, acc, total, ok) {
                    return true;
                }
                cursors[t] -= 1;
                acc.pop();
            }
        }
        false
    }
    let total = seqs.iter().map(Vec::len).sum();
    rec(seqs, &mut vec![0; seqs.len()], &mut Vec::with_capacity(total), total, ok)
}

/// Does some sequential order of the recorded operations — respecting
/// per-thread program order — reproduce every outcome against the
/// sequential oracle (a [`CountingDevice`] of `width`/`tau` plus
/// lowest-free name-slot assignment)?
fn tau_linearizes(width: u32, tau: u32, seqs: &[Vec<ModelOp>]) -> bool {
    any_interleaving(seqs, &mut |order| {
        let mut device = CountingDevice::new(width, tau);
        let mut slot_free = vec![true; tau as usize];
        order.iter().all(|&(t, i)| match &seqs[t][i] {
            ModelOp::Request { bit, won } => (device.request_one(*bit) == BitOutcome::Won) == *won,
            ModelOp::Claim { name } => match slot_free.iter().position(|&f| f) {
                Some(slot) => {
                    slot_free[slot] = false;
                    *name == slot
                }
                None => false,
            },
            ModelOp::Collect { quota, bits } => {
                *bits == device.confirmed() && *quota == tau - device.confirmed_count()
            }
            ModelOp::Tas { .. } => false,
        })
    })
}

/// A τ-register run: one acquirer per entry of `bits`, plus an optional
/// concurrent `quota_and_bits` collector.
fn tau_run(
    width: u32,
    tau: u32,
    bits: &'static [usize],
    collector: bool,
) -> ModelRun<Vec<ModelOp>> {
    let reg = ConcurrentTauRegister::<TracedWord>::with_atomics(width, tau, 0);
    let mut threads: Vec<Box<dyn FnOnce() -> Vec<ModelOp> + Send>> = bits
        .iter()
        .map(|&bit| {
            let reg = reg.clone();
            Box::new(move || match reg.acquire(bit) {
                Ok((name, _steps)) => {
                    vec![ModelOp::Request { bit, won: true }, ModelOp::Claim { name }]
                }
                Err(_steps) => vec![ModelOp::Request { bit, won: false }],
            }) as Box<dyn FnOnce() -> Vec<ModelOp> + Send>
        })
        .collect();
    if collector {
        let reg = reg.clone();
        threads.push(Box::new(move || {
            let (quota, bits) = reg.quota_and_bits();
            vec![ModelOp::Collect { quota, bits }]
        }));
    }
    ModelRun::new(threads, move |seqs: &[Vec<ModelOp>]| {
        if tau_linearizes(width, tau, seqs) {
            Ok(())
        } else {
            Err(format!("no sequential order explains {seqs:?}"))
        }
    })
}

/// A TAS-array run: `targets[i]` is thread i's register. The oracle is
/// the set model: every contended register has exactly one winner.
fn tas_run(slots: usize, targets: &'static [usize]) -> ModelRun<Vec<ModelOp>> {
    let arr = Arc::new(AtomicTasArray::<TracedWord>::with_atomics(slots));
    let threads = targets
        .iter()
        .map(|&target| {
            let arr = Arc::clone(&arr);
            Box::new(move || vec![ModelOp::Tas { target, won: arr.tas(target) }])
                as Box<dyn FnOnce() -> Vec<ModelOp> + Send>
        })
        .collect();
    ModelRun::new(threads, move |seqs: &[Vec<ModelOp>]| {
        for s in 0..slots {
            let (mut contenders, mut winners) = (0usize, 0usize);
            for op in seqs.iter().flatten() {
                if let ModelOp::Tas { target, won } = op {
                    if *target == s {
                        contenders += 1;
                        winners += usize::from(*won);
                    }
                }
            }
            if contenders > 0 && winners != 1 {
                return Err(format!("register {s}: {winners} winners of {contenders} contenders"));
            }
        }
        Ok(())
    })
}

fn mk_tas() -> ModelRun<Vec<ModelOp>> {
    tas_run(65, &[0, 0, 64])
}

fn mk_tas_collide() -> ModelRun<Vec<ModelOp>> {
    tas_run(1, &[0, 0, 0])
}

fn mk_tau() -> ModelRun<Vec<ModelOp>> {
    tau_run(4, 2, &[0, 1], false)
}

fn mk_tau_collide() -> ModelRun<Vec<ModelOp>> {
    tau_run(4, 2, &[2, 2], false)
}

/// One thread batching bits {0, 1} through `request_block` (the arena
/// macro-step fast path: one CAS for the whole block, per-bit fallback
/// under contention) racing a plain `request_bit(1)` acquirer. The
/// block reports one [`ModelOp::Request`] per bit — the batched CAS
/// must be explainable as those requests executed back to back, and
/// bit 1 must have exactly one winner across both threads.
fn mk_tau_block() -> ModelRun<Vec<ModelOp>> {
    let reg = ConcurrentTauRegister::<TracedWord>::with_atomics(4, 2, 0);
    let block = {
        let reg = reg.clone();
        Box::new(move || {
            let mut wins = Vec::new();
            reg.request_block(&[0, 1], &mut wins);
            wins.iter().zip([0usize, 1]).map(|(&won, bit)| ModelOp::Request { bit, won }).collect()
        }) as Box<dyn FnOnce() -> Vec<ModelOp> + Send>
    };
    let single = {
        let reg = reg.clone();
        Box::new(move || vec![ModelOp::Request { bit: 1, won: reg.request_bit(1) }])
            as Box<dyn FnOnce() -> Vec<ModelOp> + Send>
    };
    ModelRun::new(vec![block, single], move |seqs: &[Vec<ModelOp>]| {
        if tau_linearizes(4, 2, seqs) {
            Ok(())
        } else {
            Err(format!("no sequential order explains {seqs:?}"))
        }
    })
}

fn mk_tau_quota() -> ModelRun<Vec<ModelOp>> {
    tau_run(4, 1, &[0, 1], false)
}

fn mk_collect() -> ModelRun<Vec<ModelOp>> {
    tau_run(4, 2, &[0, 1], true)
}

/// All registered scenarios, key-ascending.
pub fn scenarios() -> Vec<ModelScenario> {
    vec![
        ModelScenario {
            key: "collect",
            summary: "2 acquirers + concurrent quota_and_bits collector (τ=2, width 4)",
            limit: 500_000,
            builder: mk_collect,
        },
        ModelScenario {
            key: "tas",
            summary: "3 TAS contenders, two on one register + one on another word",
            limit: 10_000,
            builder: mk_tas,
        },
        ModelScenario {
            key: "tas-collide",
            summary: "3 TAS contenders all hammering one register",
            limit: 10_000,
            builder: mk_tas_collide,
        },
        ModelScenario {
            key: "tau",
            summary: "2 τ-register acquirers on distinct bits (τ=2, width 4)",
            limit: 100_000,
            builder: mk_tau,
        },
        ModelScenario {
            key: "tau-block",
            summary: "batched request_block on bits {0,1} racing a request_bit(1) acquirer",
            limit: 100_000,
            builder: mk_tau_block,
        },
        ModelScenario {
            key: "tau-collide",
            summary: "2 τ-register acquirers racing for the same bit",
            limit: 100_000,
            builder: mk_tau_collide,
        },
        ModelScenario {
            key: "tau-quota",
            summary: "2 acquirers, quota τ=1: exactly one may win",
            limit: 100_000,
            builder: mk_tau_quota,
        },
    ]
}

/// Looks up one scenario by key.
///
/// # Errors
/// Returns a message listing the known keys on an unknown one.
pub fn scenario_by_key(key: &str) -> Result<ModelScenario, String> {
    let all = scenarios();
    let known: Vec<&str> = all.iter().map(|s| s.key).collect();
    all.into_iter()
        .find(|s| s.key == key)
        .ok_or_else(|| format!("unknown model scenario `{key}` (known: {})", known.join(", ")))
}
