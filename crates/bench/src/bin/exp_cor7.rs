//! E5 — Corollary 7: loose renaming, m = n + 2n/(loglog n)^ℓ in
//! O((loglog n)^ℓ) steps. See [`rr_bench::scenario::specs::cor7`].

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::cor7);
}
