//! E5 — Corollary 7: full loose renaming with
//! `m = n + 2n/(log log n)^ℓ` names and `O((log log n)^ℓ)` steps w.h.p.
//!
//! The composed protocol (Lemma 6 + \[8\]-style finisher on the spare
//! space) must name *everyone*; we report the step complexity against a
//! poly-log-log envelope and against `log₂ n` (to show it is genuinely
//! below logarithmic), plus how much of the spare space was used.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, seeds_for, Schedule};
use rr_renaming::spare;
use rr_renaming::traits::{Cor7, RenamingAlgorithm};

fn main() {
    header("E5", "Corollary 7 — loose renaming, m = n + 2n/(loglog n)^l, O((loglog n)^l) steps");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 10, 1 << 12], 5)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30)
    };

    let mut table = Table::new(vec![
        "n",
        "l",
        "m/n",
        "spare",
        "steps p50",
        "steps max",
        "max/(lln)^2",
        "max/log2 n",
        "unnamed",
    ]);
    for &n in &sizes {
        for ell in [1u32, 2] {
            let algo = Cor7 { ell };
            let stats = run_batch(&algo, n, seeds_for(n, seeds), Schedule::Fair);
            let mut sc = stats.step_complexity.clone();
            sc.sort_unstable();
            let lln = (n as f64).log2().log2();
            table.row(vec![
                n.to_string(),
                ell.to_string(),
                fnum(algo.m(n) as f64 / n as f64, 4),
                spare::cor7(n, ell).to_string(),
                sc[sc.len() / 2].to_string(),
                stats.max_steps().to_string(),
                fnum(stats.max_steps() as f64 / (lln * lln), 2),
                fnum(stats.max_steps() as f64 / (n as f64).log2(), 2),
                stats.max_unnamed().to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: 'unnamed' identically 0 (full renaming); \
         'max/(lln)^2' bounded (poly-log-log steps; our finisher costs \
         O((loglog)^2), see DESIGN.md); m/n → 1 as n or l grows \
         ((1+o(1))·n name space)."
    );
}
