//! The execution-backend shoot-out: the same batch on the boxed virtual
//! executor and the flat dense arena, bit-checked and wall-clocked.
//!
//! ```text
//! exp_backends [--quick] [--json PATH]
//!              [--algo KEY] [--adversary KEY] [--n N] [--seeds N]
//! ```
//!
//! Defaults: `tight-tau:c=4` under `fair` at n = 2²⁰ with 3 seeds
//! (`--quick`: n = 2¹², 2 seeds). The committed `BENCH_backends.json`
//! is this binary's `--json` output — the workspace's speed trajectory.

use rr_bench::runner::RunConfig;
use rr_bench::scenario::drive;
use rr_bench::scenario::specs::{backends, BackendsOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    drive(|cfg: &RunConfig| {
        let mut opts = BackendsOptions::defaults(cfg);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--algo" => {
                    if let Some(v) = it.next() {
                        opts.algorithm = v.clone();
                    }
                }
                "--adversary" => {
                    if let Some(v) = it.next() {
                        opts.adversary = v.clone();
                    }
                }
                "--n" => {
                    if let Some(v) = it.next() {
                        opts.n = v.parse().unwrap_or_else(|_| {
                            eprintln!("exp_backends: bad size `{v}`");
                            std::process::exit(2);
                        });
                    }
                }
                "--seeds" => {
                    if let Some(v) = it.next() {
                        opts.seeds = v.parse().unwrap_or_else(|_| {
                            eprintln!("exp_backends: bad seed count `{v}`");
                            std::process::exit(2);
                        });
                    }
                }
                _ => {}
            }
        }
        if opts.seeds == 0 {
            eprintln!("exp_backends: --seeds must be ≥ 1");
            std::process::exit(2);
        }
        backends(cfg, &opts)
    });
}
