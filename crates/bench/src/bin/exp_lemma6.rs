//! E4 — Lemma 6: `n/(log log n)^ℓ`-almost-tight renaming on `n` TAS
//! registers with step complexity `O((log log n)^ℓ)`.
//!
//! For ℓ ∈ {1,2,3} and a sweep of n we report the unnamed count against
//! the `2n/(log log n)^ℓ` w.h.p. bound and the exact step ceiling
//! `Σ 2^i`. The claim holds if `unnamed max ≤ bound` on every run and
//! the step column matches the schedule.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, seeds_for, Schedule};
use rr_renaming::traits::LooseL6;
use rr_renaming::Lemma6Schedule;

fn main() {
    header("E4", "Lemma 6 — n/(loglog n)^l-almost-tight renaming in O((loglog n)^l) steps");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 10, 1 << 12], 5)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30)
    };

    let mut table = Table::new(vec![
        "n",
        "l",
        "rounds",
        "step bound",
        "steps max",
        "unnamed mean",
        "unnamed max",
        "bound 2n/(lln)^l",
        "ok",
    ]);
    for &n in &sizes {
        for ell in [1u32, 2, 3] {
            let schedule = Lemma6Schedule::new(n, ell);
            let stats = run_batch(&LooseL6 { ell }, n, seeds_for(n, seeds), Schedule::Fair);
            let ok = (stats.max_unnamed() as f64) <= schedule.unnamed_bound;
            table.row(vec![
                n.to_string(),
                ell.to_string(),
                schedule.rounds.to_string(),
                schedule.total_steps.to_string(),
                stats.max_steps().to_string(),
                fnum(stats.mean_unnamed(), 1),
                stats.max_unnamed().to_string(),
                fnum(schedule.unnamed_bound, 1),
                if ok { "yes".into() } else { "VIOLATED".to_string() },
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: every row 'ok' = yes (unnamed within the w.h.p. \
         bound) and 'steps max' ≤ 'step bound' (the schedule is the exact \
         ceiling)."
    );
}
