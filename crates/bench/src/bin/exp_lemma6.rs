//! E4 — Lemma 6: n/(loglog n)^ℓ-almost-tight renaming in
//! O((loglog n)^ℓ) steps. See [`rr_bench::scenario::specs::lemma6`].

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::lemma6);
}
