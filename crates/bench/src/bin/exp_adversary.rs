//! E9 — model validation (§II-A): the w.h.p. guarantees hold against an
//! *adaptive* adversary that sees coin flips, and under crashes.
//!
//! Each protocol runs under four schedules — fair, random,
//! collision-maximizing (exploits announced coin flips), and fair with
//! crash injection at winning announces — and we report the step
//! complexity inflation relative to the fair schedule. Renaming safety is
//! audited on every run (the harness panics on any violation).

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, Schedule};
use rr_renaming::traits::{Cor9, RenamingAlgorithm};
use rr_renaming::TightRenaming;

fn main() {
    header("E9", "adaptive adversaries and crashes — safety and step inflation");
    let (n, seeds) = if quick_mode() { (1 << 8, 5u64) } else { (1 << 12, 20u64) };
    let schedules = [
        Schedule::Fair,
        Schedule::Random,
        Schedule::CollisionMax,
        Schedule::Crashes { p_permille: 20, budget_pct: 10 },
        Schedule::Crashes { p_permille: 200, budget_pct: 50 },
    ];
    let algos: Vec<Box<dyn RenamingAlgorithm + Sync>> =
        vec![Box::new(TightRenaming::calibrated(4)), Box::new(Cor9 { ell: 1 })];

    let mut table = Table::new(vec![
        "algorithm",
        "schedule",
        "steps max",
        "inflation",
        "crashed mean",
        "survivors unnamed",
    ]);
    for algo in &algos {
        let mut fair_max = 0u64;
        for schedule in schedules {
            let stats = run_batch(algo.as_ref(), n, seeds, schedule);
            if schedule == Schedule::Fair {
                fair_max = stats.max_steps().max(1);
            }
            let crashed_mean =
                stats.crashed.iter().sum::<usize>() as f64 / stats.crashed.len() as f64;
            table.row(vec![
                algo.name(),
                schedule.label(),
                stats.max_steps().to_string(),
                fnum(stats.max_steps() as f64 / fair_max as f64, 2),
                fnum(crashed_mean, 1),
                stats.max_unnamed().to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: no safety violations under any schedule (the \
         harness aborts otherwise); step inflation stays a small constant \
         — the protocols' bounds are adversary-robust, as proved; crashes \
         never strand a surviving process ('survivors unnamed' = 0)."
    );
}
