//! E9 — model validation: adaptive adversaries and crashes — safety and
//! step inflation. See [`rr_bench::scenario::specs::adversary`].

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::adversary);
}
