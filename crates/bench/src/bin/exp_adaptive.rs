//! E12 — adaptive renaming (§IV remark): when the participant count k is
//! unknown, the doubling-guess transform still renames everyone, uses
//! only `O(k)` names regardless of how large the ladder was provisioned,
//! and pays a `log k` ladder factor over the non-adaptive protocol.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode};
use rr_renaming::adaptive::AdaptiveRenaming;
use rr_renaming::traits::RenamingAlgorithm;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::virtual_exec::run;

fn main() {
    header("E12", "adaptive renaming — name usage O(k) with k unknown to the processes");
    let (max_n, ks, seeds): (usize, Vec<usize>, u64) = if quick_mode() {
        (1 << 10, vec![4, 32, 256], 3)
    } else {
        (1 << 14, vec![4, 16, 64, 256, 1024, 4096, 16384], 10)
    };

    let mut table = Table::new(vec![
        "k (actual)",
        "ladder for",
        "max name used",
        "used/k",
        "steps max",
        "steps/(log k)",
        "unnamed",
    ]);
    for &k in &ks {
        let mut worst_name = 0usize;
        let mut worst_steps = 0u64;
        let mut unnamed = 0usize;
        for seed in 0..seeds {
            let (shared, procs) = AdaptiveRenaming.instantiate_participants(k, max_n, seed);
            let boxed: Vec<Box<dyn Process>> =
                procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
            let out = run(
                boxed,
                &mut FairAdversary::default(),
                RenamingAlgorithm::step_budget(&AdaptiveRenaming, max_n),
            )
            .unwrap();
            out.verify_renaming(shared.layout().total).unwrap();
            unnamed += out.gave_up_count();
            worst_name = worst_name.max(out.names.iter().flatten().copied().max().unwrap_or(0));
            worst_steps = worst_steps.max(out.step_complexity());
        }
        let log_k = (k.max(2) as f64).log2();
        table.row(vec![
            k.to_string(),
            format!("≤{max_n}"),
            worst_name.to_string(),
            fnum(worst_name as f64 / k as f64, 2),
            worst_steps.to_string(),
            fnum(worst_steps as f64 / log_k, 2),
            unnamed.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "\nclaim check: 'used/k' bounded by a constant (the adaptive O(k) \
         name space — processes never learn k and the ladder is sized for \
         {max_n}); 'unnamed' identically 0; steps grow like log k × \
         polyloglog (our simple transform; the paper notes the transform \
         yields no improvement over [8])."
    );
}
