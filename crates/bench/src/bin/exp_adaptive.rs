//! E12 — adaptive renaming: name usage O(k) with k unknown to the
//! processes. See [`rr_bench::scenario::specs::adaptive`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::adaptive);
}
