//! The workspace determinism lint: scans every non-test source file
//! for lexical determinism hazards (hash-iteration, wall-clock reads,
//! raw pid indexing, stray thread spawns, uncommented `unsafe`) and
//! fails unless each firing is covered by the committed allowlist.
//!
//! ```text
//! exp_lint [--root DIR] [--allowlist FILE] [--list-rules] [--help]
//! ```
//!
//! Exit status: 0 clean, 1 on un-excused violations or stale allowlist
//! entries, 2 on usage errors.

use rr_lint::{apply, scan_workspace, Allowlist, Rule};
use std::path::{Path, PathBuf};

const USAGE: &str = "\
exp_lint — source-level determinism lint for the workspace

usage: exp_lint [--root DIR] [--allowlist FILE] [--list-rules] [--help]

  --root DIR        workspace root to scan (default: nearest ancestor
                    of the current directory containing LINT_ALLOW.txt,
                    else the current directory)
  --allowlist FILE  allowlist path (default: <root>/LINT_ALLOW.txt;
                    missing file = empty allowlist)
  --list-rules      print the rule table and exit";

fn default_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.clone();
    loop {
        if dir.join("LINT_ALLOW.txt").is_file() {
            return dir;
        }
        if !dir.pop() {
            return cwd;
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--list-rules") {
        for rule in Rule::ALL {
            println!("{:<14} {}", rule.key(), rule.summary());
        }
        return;
    }
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| {
            it.next().map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("exp_lint: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--root" => root = Some(next("--root")),
            "--allowlist" => allowlist_path = Some(next("--allowlist")),
            other => {
                eprintln!("exp_lint: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("LINT_ALLOW.txt"));
    let allow = if allowlist_path.is_file() {
        Allowlist::load(&allowlist_path).unwrap_or_else(|e| {
            eprintln!("exp_lint: {e}");
            std::process::exit(2);
        })
    } else {
        Allowlist::default()
    };
    let violations = scan_workspace(&root).unwrap_or_else(|e| {
        eprintln!("exp_lint: {e}");
        std::process::exit(2);
    });
    let found = violations.len();
    let out = apply(violations, &allow);
    for v in &out.violations {
        println!("{v}");
    }
    for e in &out.stale {
        println!(
            "{}:{}: stale allowlist entry [{}] for `{}` — nothing fires there any more",
            rel_display(&allowlist_path, &root),
            e.line,
            e.rule,
            e.path
        );
    }
    println!(
        "exp_lint: {found} firing(s) scanned, {} suppressed by allowlist, {} violation(s), {} stale entrie(s)",
        out.suppressed,
        out.violations.len(),
        out.stale.len()
    );
    if !out.clean() {
        eprintln!(
            "exp_lint: determinism lint failed — fix the source or review into the allowlist"
        );
        std::process::exit(1);
    }
}

fn rel_display(path: &Path, root: &Path) -> String {
    path.strip_prefix(root).unwrap_or(path).display().to_string()
}
