//! The lock-free-core model checker: exhaustively explores every
//! atomic-operation interleaving of bounded `ConcurrentTauRegister` /
//! `AtomicTasArray` scenarios and checks each outcome for
//! linearizability against the sequential oracle.
//!
//! ```text
//! exp_model [--quick] [--scenarios k1,k2,…] [--limit N] [--help]
//! ```
//!
//! Defaults: every registered scenario. `--quick` skips the largest
//! (`collect`) scenario — the CI smoke shape. Exit status is non-zero
//! when any interleaving fails its checker; the minimal failing trace
//! is printed in `ModelTrace::to_text` form.

use rr_bench::modelcheck::{scenario_by_key, scenarios, ModelScenario};

const USAGE: &str = "\
exp_model — exhaustive interleaving checker for the lock-free core

usage: exp_model [--quick] [--scenarios k1,k2,…] [--limit N] [--help]

  --quick        CI-sized run (skips the heaviest scenario)
  --scenarios    comma-separated scenario keys (see below)
  --limit N      override each scenario's execution budget

scenarios:
  collect        2 acquirers + concurrent quota_and_bits collector
  tas            3 TAS contenders, two on one register + one independent
  tas-collide    3 TAS contenders all hammering one register
  tau            2 τ-register acquirers on distinct bits
  tau-block      batched request_block vs a request_bit acquirer
  tau-collide    2 τ-register acquirers racing for the same bit
  tau-quota      2 acquirers, quota τ=1: exactly one may win";

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("exp_model: bad value `{v}` for {flag}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let mut quick = false;
    let mut picked: Option<Vec<ModelScenario>> = None;
    let mut limit: Option<u64> = None;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        let mut next = |flag: &str| {
            it.next().map(String::as_str).unwrap_or_else(|| {
                eprintln!("exp_model: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--limit" => limit = Some(parse_or_die("--limit", next("--limit"))),
            "--scenarios" => {
                let list = next("--scenarios")
                    .split(',')
                    .map(|k| {
                        scenario_by_key(k.trim()).unwrap_or_else(|e| {
                            eprintln!("exp_model: {e}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                picked = Some(list);
            }
            other => {
                eprintln!("exp_model: unknown argument `{other}` (see --help)");
                std::process::exit(2);
            }
        }
    }
    let mut list = picked.unwrap_or_else(scenarios);
    if quick {
        list.retain(|s| s.key != "collect");
    }
    if let Some(limit) = limit {
        for s in &mut list {
            s.limit = limit;
        }
    }

    println!("=== exp_model: exhaustive interleaving checks (lock-free core) ===");
    println!(
        "{:<12} {:>14} {:>8} {:>10} {:>9}  verdict",
        "scenario", "interleavings", "pruned", "exhausted", "failures"
    );
    let mut failed = false;
    for s in &list {
        let report = s.run();
        println!(
            "{:<12} {:>14} {:>8} {:>10} {:>9}  {}",
            s.key,
            report.interleavings,
            report.pruned,
            report.exhausted,
            report.failures,
            if !report.passed() {
                "FAIL"
            } else if report.exhausted {
                "PASS (exhaustive)"
            } else {
                "PASS (bounded)"
            }
        );
        if let Some(trace) = &report.counterexample {
            println!("  minimal counterexample ({}): {}", trace.reason, trace.to_text());
        }
        failed |= !report.passed();
    }
    if failed {
        eprintln!("exp_model: non-linearizable interleaving(s) found — see traces above");
        std::process::exit(1);
    }
}
