//! E6 — Lemma 8: n/(log n)^ℓ-almost-tight renaming in 2ℓ(loglog n)²
//! steps. See [`rr_bench::scenario::specs::lemma8`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::lemma8);
}
