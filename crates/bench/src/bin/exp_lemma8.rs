//! E6 — Lemma 8: `n/(log n)^ℓ`-almost-tight renaming with step
//! complexity `2ℓ(log log n)²` (our corrected schedule: `ℓ·⌈loglog n⌉`
//! phases; see DESIGN.md, gap 4).
//!
//! Reports unnamed counts against the `n/(log n)^ℓ` bound (plus the
//! structural floor `n − capacity` that the corrected schedule makes
//! compatible with it) and the exact step ceiling.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, seeds_for, Schedule};
use rr_renaming::traits::LooseL8;
use rr_renaming::Lemma8Schedule;

fn main() {
    header("E6", "Lemma 8 — n/(log n)^l-almost-tight renaming in 2l^2(loglog n)^2 steps");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 10, 1 << 12], 5)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30)
    };

    let mut table = Table::new(vec![
        "n",
        "l",
        "phases",
        "step bound",
        "steps max",
        "capacity floor",
        "unnamed mean",
        "unnamed max",
        "bound n/(ln)^l",
    ]);
    for &n in &sizes {
        for ell in [1u32, 2] {
            let schedule = Lemma8Schedule::new(n, ell);
            let stats = run_batch(&LooseL8 { ell }, n, seeds_for(n, seeds), Schedule::Fair);
            table.row(vec![
                n.to_string(),
                ell.to_string(),
                schedule.phases.to_string(),
                schedule.total_steps().to_string(),
                stats.max_steps().to_string(),
                (n - schedule.capacity()).to_string(),
                fnum(stats.mean_unnamed(), 1),
                stats.max_unnamed().to_string(),
                fnum(schedule.unnamed_bound, 1),
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: 'unnamed max' within a small constant of \
         'bound n/(ln)^l' (asymptotic bound; the structural floor \
         n − capacity is part of it), 'steps max' ≤ 'step bound'."
    );
}
