//! E2 — Lemma 3: throwing `2c·log n` balls i.u.r. into `2·log n` bins
//! leaves at most `log n` empty bins with probability ≥ 1 − n^{−ℓ}
//! (for `c ≥ max(ln 2, 2ℓ+2)`).
//!
//! We measure the empirical violation rate and print it next to the
//! paper's analytic bound `(2/e^{c−1+2/e^c})^{log n}` — the table shows
//! the bound is (very) conservative, which is what the τ-register's
//! saturation argument leans on.

use rr_analysis::ballsbins::{expected_empty_bins, lemma3_bound, simulate_lemma3};
use rr_analysis::table::{fnum, fprob, Table};
use rr_bench::runner::{header, quick_mode};

fn main() {
    header("E2", "Lemma 3 — ≤ log n empty bins w.h.p. (balls into bins)");
    let (ns, trials): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 10, 1 << 14], 2_000)
    } else {
        (vec![1 << 10, 1 << 14, 1 << 18, 1 << 20], 20_000)
    };
    let cs = [1u64, 2, 4, 8];

    let mut table = Table::new(vec![
        "n",
        "c",
        "balls",
        "bins",
        "E[empty] exact",
        "mean empty",
        "max empty",
        "thresh logn",
        "P[viol] meas",
        "P[viol] bound",
    ]);
    for &n in &ns {
        for &c in &cs {
            let r = simulate_lemma3(n, c, trials, 0xE2 + c);
            let log_n = r.threshold;
            let balls = 2 * c * log_n;
            let bins = 2 * log_n;
            table.row(vec![
                n.to_string(),
                c.to_string(),
                balls.to_string(),
                bins.to_string(),
                fnum(expected_empty_bins(balls, bins), 2),
                fnum(r.mean_empty, 2),
                r.max_empty.to_string(),
                log_n.to_string(),
                fprob(r.violation_rate()),
                fprob(lemma3_bound(n, c)),
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: for c ≥ 4 (= 2ℓ+2 at ℓ=1) the measured violation \
         rate is 0 across all trials and the analytic bound is ≤ 1/n."
    );
}
