//! E2 — Lemma 3: ≤ log n empty bins w.h.p. (balls into bins).
//! See [`rr_bench::scenario::specs::lemma3`] for the claim details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::lemma3);
}
