//! Topology-routed renaming: the `route:` switching-network family
//! swept over topologies, sizes and crash-free schedules, measuring
//! total steps against network depth.
//!
//! ```text
//! exp_route [--quick] [--json PATH] [--help]
//!           [--nets k1,k2,…] [--sizes n1,n2,…] [--adversaries a1,a2,…]
//! ```
//!
//! Defaults: butterfly, Beneš, the PAPERS.md Beneš variant and a
//! `stages=4` override at n = 48, 256 and 1024 under the fair, random
//! and collision-maximizing schedules (`--quick`: n = 48 and 256 under
//! fair only — the CI smoke configuration). The family is geometric —
//! total steps equal `n × depth` under every crash-free schedule — so
//! one audited run per cell is exact, not sampled; the spec is always
//! dense and serial, and `--backend` is ignored here.
//!
//! The JSON records carry both `steps` and `depth` per cell; the
//! `exp_report` depth-vs-steps cross-check re-derives the identity and
//! the closed-form depth ordering from them.

use rr_bench::runner::RunConfig;
use rr_bench::scenario::specs::{route, RouteOptions};
use rr_bench::scenario::{drive, registry};

const USAGE: &str = "\
exp_route — topology-routed renaming: steps vs switching-network depth

usage: exp_route [--quick] [--json PATH] [--help]
                 [--nets k1,k2,…] [--sizes n1,n2,…] [--adversaries a1,a2,…]

  --quick        CI-sized sweep (n = 48 and 256, fair schedule only)
  --json PATH    also write structured records (one coverage row per
                 cell with steps + depth, plus kind:\"throughput\" rows)
  --nets         comma-separated `route:` registry keys to sweep
  --sizes        comma-separated process counts (width = next power of two)
  --adversaries  comma-separated adversary registry keys (crash-free
                 schedules keep the steps = n × depth identity exact)";

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("exp_route: bad value `{v}` for {flag}");
        std::process::exit(2);
    })
}

/// Splits a comma-separated key list, re-joining bare `k=v` fragments
/// with the preceding key — the key grammar itself uses commas between
/// parameters, so `route:net=benes,stages=4,route:net=variant` is two
/// keys, not three (same rule as `exp_matrix`).
fn split_keys(raw: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last) if part.contains('=') && !part.contains(':') => {
                last.push(',');
                last.push_str(part);
            }
            _ => out.push(part.to_string()),
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    drive(move |cfg: &RunConfig| {
        let mut opts = RouteOptions::defaults(cfg);
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let mut next = |flag: &str| {
                it.next().map(String::as_str).unwrap_or_else(|| {
                    eprintln!("exp_route: {flag} needs a value");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--nets" => {
                    opts.networks = split_keys(next("--nets"));
                }
                "--sizes" => {
                    opts.sizes = next("--sizes")
                        .split(',')
                        .map(|s| parse_or_die("--sizes", s.trim()))
                        .collect();
                }
                "--adversaries" => {
                    opts.adversaries = split_keys(next("--adversaries"));
                }
                // RunConfig's own flags, already consumed by from_env —
                // mirror its peek rule: a following `--flag` is not a
                // value, so leave it in the stream.
                "--quick" => {}
                "--json" | "--backend" => {
                    if it.peek().is_some_and(|v| !v.starts_with("--")) {
                        it.next();
                    }
                }
                other => {
                    eprintln!("exp_route: unknown argument `{other}` (see --help)");
                    std::process::exit(2);
                }
            }
        }
        let reg = registry();
        for key in &opts.networks {
            if !key.starts_with("route") {
                eprintln!("exp_route: `{key}` is not a `route:` key");
                std::process::exit(2);
            }
            if let Err(e) = reg.build(key) {
                eprintln!("exp_route: {e}");
                std::process::exit(2);
            }
        }
        for key in &opts.adversaries {
            if let Err(e) = rr_sched::registry::standard().prepare(key) {
                eprintln!("exp_route: {e}");
                std::process::exit(2);
            }
        }
        if let Some(bad) = opts.sizes.iter().find(|&&n| n == 0) {
            let _ = bad;
            eprintln!("exp_route: --sizes entries must be ≥ 1");
            std::process::exit(2);
        }
        route(cfg, &opts)
    });
}
