//! The schedule-space explorer: bounded exhaustive DFS over every
//! registry algorithm plus a perturbation-strength fuzz sweep, through
//! the dense arena backend, with minimal-tape counterexamples.
//!
//! ```text
//! exp_explore [--quick] [--json PATH] [--help]
//!             [--algos k1,k2,…] [--sizes n1,n2,…]
//!             [--depth D] [--crashes C]
//!             [--fuzz-algo KEY] [--fuzz-n N] [--rounds R]
//!             [--strengths s1,s2,…]
//! ```
//!
//! Defaults: every registered algorithm exhaustively at n = 4 and 5
//! (depth-5 horizon; `--quick`: n = 4, depth 4), then `tight-tau:c=4`
//! fuzzed at n = 256 across strengths 0‰…1000‰. Exploration is
//! inherently serial and always runs on the dense backend, so
//! `--backend` is ignored here.
//!
//! Exit status is non-zero when any safety/budget violation was found —
//! the shrunk schedule is printed as a replayable `Tape::to_text` tape
//! and emitted as a `kind:"counterexample"` JSON record (which CI also
//! greps for).

use rr_bench::runner::RunConfig;
use rr_bench::scenario::specs::{explore, ExploreOptions};
use rr_bench::scenario::{drive, registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const USAGE: &str = "\
exp_explore — schedule-space search: exhaustive DFS + fuzz, tape shrinking

usage: exp_explore [--quick] [--json PATH] [--help]
                   [--algos k1,k2,…] [--sizes n1,n2,…]
                   [--depth D] [--crashes C]
                   [--fuzz-algo KEY] [--fuzz-n N] [--rounds R]
                   [--strengths s1,s2,…]

  --quick        CI-sized search (n = 4, depth 4, 12 fuzz rounds)
  --json PATH    also write structured records (coverage rows plus
                 kind:\"throughput\" schedules/sec rows; any violation
                 adds a kind:\"counterexample\" row)
  --algos        comma-separated algorithm registry keys to exhaust
  --sizes        comma-separated process counts (protocols need n ≥ 4)
  --depth D      DFS branching horizon (decisions that fork)
  --crashes C    crash-decision budget inside the explored choice sets
  --fuzz-algo    algorithm registry key for the fuzz sweep
  --fuzz-n N     process count for the fuzz sweep
  --rounds R     fuzz rounds per strength
  --strengths    comma-separated perturbation strengths in permille";

fn parse_or_die<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("exp_explore: bad value `{v}` for {flag}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let violation_found = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&violation_found);
    drive(move |cfg: &RunConfig| {
        let mut opts = ExploreOptions::defaults(cfg);
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let mut next = |flag: &str| {
                it.next().map(String::as_str).unwrap_or_else(|| {
                    eprintln!("exp_explore: {flag} needs a value");
                    std::process::exit(2);
                })
            };
            match arg.as_str() {
                "--algos" => {
                    opts.algorithms =
                        next("--algos").split(',').map(|s| s.trim().to_string()).collect();
                }
                "--sizes" => {
                    opts.sizes = next("--sizes")
                        .split(',')
                        .map(|s| parse_or_die("--sizes", s.trim()))
                        .collect();
                }
                "--depth" => opts.depth = parse_or_die("--depth", next("--depth")),
                "--crashes" => opts.crashes = parse_or_die("--crashes", next("--crashes")),
                "--fuzz-algo" => opts.fuzz_algorithm = next("--fuzz-algo").to_string(),
                "--fuzz-n" => opts.fuzz_n = parse_or_die("--fuzz-n", next("--fuzz-n")),
                "--rounds" => opts.fuzz_rounds = parse_or_die("--rounds", next("--rounds")),
                "--strengths" => {
                    opts.strengths = next("--strengths")
                        .split(',')
                        .map(|s| parse_or_die("--strengths", s.trim()))
                        .collect();
                }
                // RunConfig's own flags, already consumed by from_env —
                // mirror its peek rule: a following `--flag` is not a
                // value, so leave it in the stream.
                "--quick" => {}
                "--json" | "--backend" => {
                    if it.peek().is_some_and(|v| !v.starts_with("--")) {
                        it.next();
                    }
                }
                other => {
                    eprintln!("exp_explore: unknown argument `{other}` (see --help)");
                    std::process::exit(2);
                }
            }
        }
        if opts.depth == 0 {
            eprintln!("exp_explore: --depth must be ≥ 1");
            std::process::exit(2);
        }
        let reg = registry();
        for key in opts.algorithms.iter().chain(std::iter::once(&opts.fuzz_algorithm)) {
            if let Err(e) = reg.build(key) {
                eprintln!("exp_explore: {e}");
                std::process::exit(2);
            }
        }
        if let Some(bad) = opts.strengths.iter().find(|&&s| s > 1000) {
            eprintln!("exp_explore: strength {bad} exceeds 1000 permille");
            std::process::exit(2);
        }
        explore(cfg, &opts, flag)
    });
    if violation_found.load(Ordering::Relaxed) {
        eprintln!("exp_explore: counterexample tape(s) emitted — see output above");
        std::process::exit(1);
    }
}
