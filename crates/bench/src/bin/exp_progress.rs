//! E15 — progress curves ("the figure"): fraction of processes named as
//! a function of elapsed per-process steps, for the paper's protocols and
//! the baselines. This is the series a plotting pipeline would consume;
//! printed as aligned columns (one row per checkpoint, one column per
//! algorithm) so the crossing points are visible in text form.

use rr_analysis::table::{fnum, Table};
use rr_baselines::{BitonicRenaming, UniformProbing};
use rr_bench::runner::{header, quick_mode};
use rr_renaming::traits::{Cor9, RenamingAlgorithm};
use rr_renaming::TightRenaming;
use rr_sched::adversary::{Adversary, Decision, FairAdversary, View};
use rr_sched::process::Process;
use rr_sched::virtual_exec::run;

/// Wraps the fair adversary and snapshots `named / n` every `n` grants
/// (≈ one global step per process under round-robin).
struct ProgressProbe {
    inner: FairAdversary,
    grants: u64,
    n: u64,
    /// `series[t]` = named fraction after ~t steps per process.
    series: Vec<f64>,
}

impl ProgressProbe {
    fn new(n: usize) -> Self {
        Self { inner: FairAdversary::default(), grants: 0, n: n as u64, series: vec![0.0] }
    }
}

impl Adversary for ProgressProbe {
    fn decide(&mut self, view: &View<'_>) -> Decision {
        self.grants += 1;
        if self.grants % self.n == 0 {
            self.series.push(view.named as f64 / self.n as f64);
        }
        self.inner.decide(view)
    }

    fn name(&self) -> &'static str {
        "progress-probe"
    }
}

fn series_for(algo: &dyn RenamingAlgorithm, n: usize, seed: u64) -> Vec<f64> {
    let inst = algo.instantiate(n, seed);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let mut probe = ProgressProbe::new(n);
    let out = run(procs, &mut probe, algo.step_budget(n)).unwrap();
    out.verify_renaming(m).unwrap();
    probe.series.push(1.0);
    probe.series
}

fn main() {
    header("E15", "progress curves — named fraction vs per-process steps (fair schedule)");
    let n = if quick_mode() { 1 << 10 } else { 1 << 14 };
    let algos: Vec<Box<dyn RenamingAlgorithm + Sync>> = vec![
        Box::new(TightRenaming::calibrated(4)),
        Box::new(BitonicRenaming),
        Box::new(Cor9 { ell: 1 }),
        Box::new(UniformProbing::double()),
    ];
    let series: Vec<(String, Vec<f64>)> =
        algos.iter().map(|a| (a.name(), series_for(a.as_ref(), n, 0xE15))).collect();

    let mut header_row: Vec<String> = vec!["steps/proc".into()];
    header_row.extend(series.iter().map(|(name, _)| name.clone()));
    let mut table = Table::new(header_row);
    let max_len = series.iter().map(|(_, s)| s.len()).max().unwrap();
    // Geometric checkpoints keep the table short while showing the tail.
    let mut t = 1usize;
    let mut checkpoints = vec![0usize];
    while t < max_len {
        checkpoints.push(t);
        t = (t * 2).max(t + 1);
    }
    // Always include the final point so late synchronized finishes (the
    // network completes at exactly its depth) are visible.
    if *checkpoints.last().unwrap() != max_len - 1 {
        checkpoints.push(max_len - 1);
    }
    for &cp in &checkpoints {
        let mut row = vec![cp.to_string()];
        for (_, s) in &series {
            let v = s.get(cp).copied().unwrap_or(1.0);
            row.push(fnum(v, 4));
        }
        table.row(row);
    }
    println!("{table}");
    println!(
        "\nclaim check (n = {n}): cor9 saturates within ~a dozen steps \
         (poly-loglog); tight-tau and bitonic take a logarithmic tail; \
         uniform probing starts fastest but its last stragglers linger — \
         the distribution shapes behind the step-complexity tables."
    );
}
