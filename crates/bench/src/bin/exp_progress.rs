//! E15 — progress curves: named fraction vs per-process steps.
//! See [`rr_bench::scenario::specs::progress`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::progress);
}
