//! E11 — deterministic Θ(n) vs randomized O(log n) / O((loglog n)²).
//! See [`rr_bench::scenario::specs::deterministic_gap`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::deterministic_gap);
}
