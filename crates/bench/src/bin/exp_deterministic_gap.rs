//! E11 — §I.A: deterministic renaming costs Θ(n) steps, "exponentially
//! worse" than the randomized protocols.
//!
//! The deterministic linear scan (everyone starts at 0 — no initial
//! symmetry for the adversary to leave unexploited) pays exactly `n`
//! steps in the worst position, while the paper's randomized protocols
//! pay `O(log n)` (tight) or `O((log log n)²)` (loose). The ratio column
//! is the exponential gap.

use rr_analysis::table::{fnum, Table};
use rr_baselines::{LinearScan, ScanStart, SplitterGrid};
use rr_bench::runner::{header, quick_mode, run_batch, Schedule};
use rr_renaming::traits::Cor9;
use rr_renaming::TightRenaming;

fn main() {
    header("E11", "deterministic Θ(n) vs randomized O(log n) / O((loglog n)^2)");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 8, 1 << 10], 3)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16], 10)
    };

    let det = LinearScan { start: ScanStart::Zero };
    let grid = SplitterGrid;
    let tight = TightRenaming::calibrated(4);
    let loose = Cor9 { ell: 1 };

    let mut table = Table::new(vec![
        "n",
        "linear-scan max",
        "grid max (r/w, n capped 2^12)",
        "tight-tau max",
        "cor9 max",
        "det/tight",
        "det/loose",
    ]);
    for &n in &sizes {
        let d = run_batch(&det, n, 1, Schedule::Fair); // deterministic: 1 run
                                                       // The grid is Θ(n) steps/process and Θ(n²) registers — cap its size
                                                       // so the table regenerates in seconds (the linear trend is
                                                       // unambiguous by 2^12).
        let g = run_batch(&grid, n.min(1 << 12), 1, Schedule::Fair);
        let t = run_batch(&tight, n, seeds, Schedule::Fair);
        let l = run_batch(&loose, n, seeds, Schedule::Fair);
        table.row(vec![
            n.to_string(),
            d.max_steps().to_string(),
            g.max_steps().to_string(),
            t.max_steps().to_string(),
            l.max_steps().to_string(),
            fnum(d.max_steps() as f64 / t.max_steps() as f64, 1),
            fnum(d.max_steps() as f64 / l.max_steps() as f64, 1),
        ]);
    }
    println!("{table}");
    println!(
        "\nclaim check: 'linear-scan max' = n exactly; both ratio columns \
         grow roughly linearly in n/log n — the exponential separation \
         between deterministic and randomized renaming."
    );
}
