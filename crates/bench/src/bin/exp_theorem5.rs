//! E1 — Theorem 5: tight renaming of `n` processes into `n` names in
//! `O(log n)` steps w.h.p., using `O(n)` space.
//!
//! For each `n` we run the calibrated §III protocol over many seeds and
//! report the step complexity (max steps of any process), normalized by
//! `log₂ n`. The claim holds if the normalized column is bounded by a
//! constant as `n` grows and no run fails. Space usage is reported as
//! total device bits + name slots over `n`.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, seeds_for, Schedule};
use rr_renaming::{TightPlan, TightRenaming};

fn main() {
    header("E1", "Theorem 5 — tight renaming in O(log n) steps w.h.p., O(n) space");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 8, 1 << 10], 5)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18], 30)
    };
    let c = 4;
    let algo = TightRenaming::calibrated(c);

    let mut table = Table::new(vec![
        "n",
        "runs",
        "steps p50",
        "steps max",
        "max/log2(n)",
        "mean steps",
        "unnamed",
        "space/n",
    ]);
    for &n in &sizes {
        let stats = run_batch(&algo, n, seeds_for(n, seeds), Schedule::Fair);
        let mut sc = stats.step_complexity.clone();
        sc.sort_unstable();
        let p50 = sc[sc.len() / 2];
        let plan = TightPlan::calibrated(n, c);
        let space = (plan.total_bits() + plan.total_names()) as f64 / n as f64;
        table.row(vec![
            n.to_string(),
            seeds_for(n, seeds).to_string(),
            p50.to_string(),
            stats.max_steps().to_string(),
            fnum(stats.max_steps() as f64 / (n as f64).log2(), 2),
            fnum(stats.mean_mean_steps(), 2),
            stats.max_unnamed().to_string(),
            fnum(space, 2),
        ]);
    }
    println!("{table}");
    println!(
        "\nclaim check: 'max/log2(n)' bounded by a constant as n grows; \
         'unnamed' identically 0; 'space/n' bounded (O(n) space)."
    );
}
