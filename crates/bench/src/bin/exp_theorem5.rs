//! E1 — Theorem 5: tight renaming in O(log n) steps w.h.p., O(n) space.
//! See [`rr_bench::scenario::specs::theorem5`] for the claim details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::theorem5);
}
