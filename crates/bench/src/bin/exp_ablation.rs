//! E14 — ablations of the design constants DESIGN.md calls out:
//!
//! 1. The Lemma 3 constant `c` in the tight protocol: smaller `c` means
//!    fewer, larger clusters (fewer rounds) but weaker per-register
//!    saturation; larger `c` more rounds but near-certain fills. The
//!    sweet spot the paper's analysis needs is `c ≥ 2ℓ+2`.
//! 2. Device width factor: the paper fixes width = 2·τ (2 log n bits for
//!    τ = log n names). Wider devices lower the collision rate per
//!    request at the price of more hardware.
//! 3. Finisher probe budgets: linear (`j+2`, ours) vs constant per
//!    segment — confirms the growing budgets are what keeps the sweep
//!    unreached.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, Schedule};
use rr_renaming::aagw::{AagwProcess, SpareShared};
use rr_renaming::params::FinisherPlan;
use rr_renaming::phase::AlmostTight;
use rr_renaming::TightRenaming;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::virtual_exec::run;
use rr_tau::CountingDevice;
use std::sync::Arc;

fn ablate_c(n: usize, seeds: u64) {
    println!("\n-- ablation 1: Lemma 3 constant c (tight renaming @ n={n}) --");
    let mut table =
        Table::new(vec!["c", "rounds", "steps p50", "steps max", "max/log2 n", "mean steps"]);
    for c in [1u32, 2, 4, 8] {
        let algo = TightRenaming::calibrated(c);
        let plan = rr_renaming::TightPlan::calibrated(n, c);
        let stats = run_batch(&algo, n, seeds, Schedule::Fair);
        let mut sc = stats.step_complexity.clone();
        sc.sort_unstable();
        table.row(vec![
            c.to_string(),
            plan.rounds().to_string(),
            sc[sc.len() / 2].to_string(),
            stats.max_steps().to_string(),
            fnum(stats.max_steps() as f64 / (n as f64).log2(), 2),
            fnum(stats.mean_mean_steps(), 2),
        ]);
    }
    println!("{table}");
}

fn ablate_device_width() {
    println!("\n-- ablation 2: device width factor (single register, tau = 16) --");
    // 64 requesters spray random bits at one device; measure how many
    // distinct winners the first cycle admits (width → less aliasing).
    let mut table =
        Table::new(vec!["width/tau", "width", "first-cycle winners (mean of 50)", "tau"]);
    use rand::{RngExt, SeedableRng};
    for factor in [1u32, 2, 3, 4] {
        let width = 16 * factor;
        let mut total = 0usize;
        let trials = 50;
        for t in 0..trials {
            let mut device = CountingDevice::new(width, 16);
            let mut rng = rand::rngs::ChaCha8Rng::seed_from_u64(t);
            let reqs: Vec<(usize, usize)> =
                (0..64).map(|p| (p, rng.random_range(0..width as usize))).collect();
            total += device.clock_cycle(&reqs).win_count();
        }
        table.row(vec![
            factor.to_string(),
            width.to_string(),
            fnum(total as f64 / trials as f64, 2),
            "16".into(),
        ]);
    }
    println!("{table}");
}

/// A per-segment probe-budget policy.
type BudgetPolicy = Box<dyn Fn(usize) -> u32>;

fn ablate_finisher(k: usize, spare: usize, seeds: u64) {
    println!("\n-- ablation 3: finisher probe budgets (k={k} stragglers, spare={spare}) --");
    let mut table = Table::new(vec![
        "budget policy",
        "steps max",
        "mean steps",
        "sweepers (max steps > random budget)",
    ]);
    let policies: Vec<(&str, BudgetPolicy)> = vec![
        ("linear j+2 (ours)", Box::new(|j: usize| j as u32 + 3)),
        ("constant 1", Box::new(|_| 1)),
        ("constant 4", Box::new(|_| 4)),
    ];
    for (label, probes) in policies {
        let mut max_steps = 0u64;
        let mut total_steps = 0u64;
        let mut sweepers = 0usize;
        for seed in 0..seeds {
            let mut plan = FinisherPlan::new(spare);
            for (j, p) in plan.probes.iter_mut().enumerate() {
                *p = probes(j);
            }
            let random_budget = plan.max_random_probes();
            let shared = Arc::new(SpareShared::new(0, spare));
            let procs: Vec<Box<dyn Process>> = (0..k)
                .map(|pid| {
                    Box::new(AlmostTight(AagwProcess::new(
                        pid,
                        seed,
                        Arc::clone(&shared),
                        plan.clone(),
                    ))) as Box<dyn Process>
                })
                .collect();
            let out = run(procs, &mut FairAdversary::default(), 1 << 30).unwrap();
            out.verify_renaming(spare).unwrap();
            max_steps = max_steps.max(out.step_complexity());
            total_steps += out.total_steps();
            sweepers += out.steps.iter().filter(|&&s| s > random_budget).count();
        }
        table.row(vec![
            label.to_string(),
            max_steps.to_string(),
            fnum(total_steps as f64 / (k as u64 * seeds) as f64, 2),
            sweepers.to_string(),
        ]);
    }
    println!("{table}");
}

fn main() {
    header("E14", "ablations — cluster constant c, device width, finisher budgets");
    let (n, seeds) = if quick_mode() { (1 << 10, 5u64) } else { (1 << 14, 15u64) };
    ablate_c(n, seeds);
    ablate_device_width();
    ablate_finisher(3 * n / 16, n / 4, seeds);
    println!(
        "\nfindings: smaller c is empirically *faster* at laptop sizes \
         (fewer rounds dominate the cost); c >= 2l+2 is what the *proof* \
         needs for inverse-polynomial failure probability — the classic \
         theory-practice constant gap, worth knowing before tuning. \
         Width 2·tau (the paper's choice) already absorbs essentially all \
         aliasing in one cycle; wider devices buy nothing. At straggler \
         ratios up to 3/4 of the spare, every budget policy avoids the \
         sweep; the growing j+2 budgets are insurance for the w.h.p. tail, \
         not the common case."
    );
}
