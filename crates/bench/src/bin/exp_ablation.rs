//! E14 — ablations: cluster constant c, device width, finisher budgets.
//! See [`rr_bench::scenario::specs::ablation`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::ablation);
}
