//! E8 — the paper's comparison landscape (§I, §I.A, §V).
//!
//! Tight renaming: τ-register protocol (this paper) vs comparator-network
//! renaming \[7\] (bitonic as the buildable AKS stand-in, plus the analytic
//! AKS depth) vs ideal fetch-add. Loose renaming: Lemma 6 / Lemma 8 /
//! Corollary 9 vs the \[8\]-style finisher standalone vs uniform probing.
//! The table reproduces the paper's qualitative claims: τ-register
//! ≈ O(log n) beats the network's O(log² n); AKS "wins" only beyond
//! astronomically large n; loose protocols sit at poly-log-log.

use rr_analysis::table::{fnum, Table};
use rr_baselines::aks_model;
use rr_baselines::{BitonicRenaming, FetchAddRenaming, UniformProbing};
use rr_bench::runner::{header, quick_mode, run_batch, seeds_for, Schedule};
use rr_renaming::traits::{AagwLoose, Cor9, LooseL6, LooseL8, RenamingAlgorithm};
use rr_renaming::TightRenaming;

fn main() {
    header("E8", "comparison — tau-register vs sorting networks vs loose baselines");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 8, 1 << 10], 5)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18], 20)
    };

    println!("\n-- tight renaming (m = n, or next power of two for the network) --");
    let tight: Vec<Box<dyn RenamingAlgorithm + Sync>> = vec![
        Box::new(TightRenaming::calibrated(4)),
        Box::new(BitonicRenaming),
        Box::new(FetchAddRenaming),
    ];
    let mut table = Table::new(vec![
        "algorithm",
        "n",
        "m",
        "steps p50",
        "steps max",
        "max/log2 n",
        "max/log2^2 n",
    ]);
    for &n in &sizes {
        for algo in &tight {
            let stats = run_batch(algo.as_ref(), n, seeds_for(n, seeds), Schedule::Fair);
            let mut sc = stats.step_complexity.clone();
            sc.sort_unstable();
            let log_n = (n as f64).log2();
            table.row(vec![
                algo.name(),
                n.to_string(),
                algo.m(n).to_string(),
                sc[sc.len() / 2].to_string(),
                stats.max_steps().to_string(),
                fnum(stats.max_steps() as f64 / log_n, 2),
                fnum(stats.max_steps() as f64 / (log_n * log_n), 3),
            ]);
        }
    }
    println!("{table}");

    println!("\n-- AKS depth model (why the paper avoids AKS) --");
    let mut aks = Table::new(vec!["width", "bitonic depth", "AKS model depth", "bitonic wins"]);
    for exp in [10u32, 16, 20, 30] {
        let w = 1usize << exp;
        let b = aks_model::bitonic_depth(w);
        let a = aks_model::aks_depth(w);
        aks.row(vec![
            format!("2^{exp}"),
            b.to_string(),
            fnum(a, 0),
            if (b as f64) < a { "yes".into() } else { "no".to_string() },
        ]);
    }
    println!("{aks}");
    println!(
        "(AKS only catches up at width ≈ 2^{}, far beyond any machine.)",
        aks_model::aks_crossover_log2()
    );

    println!("\n-- loose renaming --");
    let loose: Vec<Box<dyn RenamingAlgorithm + Sync>> = vec![
        Box::new(LooseL6 { ell: 2 }),
        Box::new(LooseL8 { ell: 1 }),
        Box::new(Cor9 { ell: 1 }),
        Box::new(AagwLoose),
        Box::new(UniformProbing::double()),
    ];
    let mut table = Table::new(vec![
        "algorithm",
        "n",
        "m/n",
        "steps p50",
        "steps max",
        "max/(lln)^2",
        "unnamed max",
    ]);
    for &n in &sizes {
        for algo in &loose {
            let stats = run_batch(algo.as_ref(), n, seeds_for(n, seeds), Schedule::Fair);
            let mut sc = stats.step_complexity.clone();
            sc.sort_unstable();
            let lln = (n as f64).log2().log2();
            table.row(vec![
                algo.name(),
                n.to_string(),
                fnum(algo.m(n) as f64 / n as f64, 3),
                sc[sc.len() / 2].to_string(),
                stats.max_steps().to_string(),
                fnum(stats.max_steps() as f64 / (lln * lln), 2),
                stats.max_unnamed().to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: tau-register max/log2 n bounded while bitonic \
         max/log2^2 n is the bounded one (O(log n) vs O(log² n)); \
         fetch-add = 1 step (ideal hardware); loose protocols bounded in \
         (loglog n)^2 while uniform probing's max grows like log n."
    );
}
