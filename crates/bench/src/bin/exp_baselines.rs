//! E8 — the paper's comparison landscape: τ-register vs sorting
//! networks vs loose baselines. See
//! [`rr_bench::scenario::specs::baselines`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::baselines);
}
