//! The umbrella experiment: run **any** registered algorithm under
//! **any** registered adversary at any size, on any execution backend —
//! from string keys alone.
//!
//! ```text
//! exp_matrix [--quick] [--json PATH] [--list] [--help]
//!            [--backend virtual|dense|threads:t=N]
//!            [--algos k1,k2,…] [--adversaries k1,k2,…]
//!            [--sizes n1,n2,…] [--seeds N]
//! ```
//!
//! Defaults: every registered algorithm; `--quick` runs each once under
//! the fair schedule (the CI smoke configuration), the full mode crosses
//! every adversary too. `--list` prints both registries and exits.
//!
//! `--backend` selects the execution core: `virtual` (the boxed
//! reference executor), `dense` (flat arena, bit-identical tables ~an
//! order of magnitude sooner at large n), or `threads:t=N` (free-running
//! OS threads — wall-clock data; ignores the adversary key and is not
//! seed-reproducible). JSON records carry the backend key plus one
//! `kind:"throughput"` record per row (runs/sec, steps/sec).

use rr_bench::runner::RunConfig;
use rr_bench::scenario::specs::{matrix, MatrixOptions};
use rr_bench::scenario::{drive, registry};

const USAGE: &str = "\
exp_matrix — any registered algorithm × adversary × n, on any backend

usage: exp_matrix [--quick] [--json PATH] [--list] [--help]
                  [--backend virtual|dense|threads:t=N]
                  [--algos k1,k2,…] [--adversaries k1,k2,…]
                  [--sizes n1,n2,…] [--seeds N]

  --quick        CI-sized sweep (each algorithm once, fair schedule)
  --json PATH    also write structured records (deterministic rows plus
                 kind:\"throughput\" speed rows) to PATH
  --backend KEY  execution core: `virtual` (boxed reference executor),
                 `dense` (flat arena core; bit-identical results, fastest
                 at large n), `threads:t=N` (free-running OS threads,
                 wall-clock truth — ignores the adversary key, not
                 seed-reproducible)
  --algos        comma-separated algorithm registry keys
  --adversaries  comma-separated adversary registry keys
  --sizes        comma-separated process counts
  --seeds N      seeds per cell
  --list         print both registries and exit
  --list-md      print the README's generated registry key tables
                 (markdown) and exit";

/// Splits a comma-separated key list, re-joining bare `k=v` fragments
/// with the preceding key — the key grammar itself uses commas between
/// parameters, so `stall,crash:p=200,cap=25` is two keys, not three.
fn split_keys(raw: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match out.last_mut() {
            Some(last) if part.contains('=') && !part.contains(':') => {
                last.push(',');
                last.push_str(part);
            }
            _ => out.push(part.to_string()),
        }
    }
    out
}

fn print_registries() {
    // One source of truth: the same listing module the README's
    // generated key tables come from (drift-checked in readme_sync.rs).
    print!("{}", rr_bench::listing::registry_listing());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_registries();
        return;
    }
    if args.iter().any(|a| a == "--list-md") {
        print!("{}", rr_bench::listing::registry_tables_markdown());
        return;
    }
    drive(|cfg: &RunConfig| {
        let mut opts = MatrixOptions::defaults(cfg);
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--algos" => {
                    if let Some(v) = it.next() {
                        opts.algorithms = split_keys(v);
                    }
                }
                "--adversaries" => {
                    if let Some(v) = it.next() {
                        opts.adversaries = split_keys(v);
                    }
                }
                "--sizes" => {
                    if let Some(v) = it.next() {
                        opts.sizes = split_keys(v)
                            .iter()
                            .map(|s| {
                                s.parse().unwrap_or_else(|_| {
                                    eprintln!("exp_matrix: bad size `{s}`");
                                    std::process::exit(2);
                                })
                            })
                            .collect();
                    }
                }
                "--seeds" => {
                    if let Some(v) = it.next() {
                        opts.seeds = v.parse().unwrap_or_else(|_| {
                            eprintln!("exp_matrix: bad seed count `{v}`");
                            std::process::exit(2);
                        });
                    }
                }
                _ => {}
            }
        }
        // Validate inputs up front for a friendly error instead of a
        // mid-table panic.
        if opts.seeds == 0 {
            eprintln!("exp_matrix: --seeds must be ≥ 1");
            std::process::exit(2);
        }
        let reg = registry();
        for key in &opts.algorithms {
            if let Err(e) = reg.build(key) {
                eprintln!("exp_matrix: {e}");
                std::process::exit(2);
            }
        }
        for key in &opts.adversaries {
            if let Err(e) = rr_sched::registry::standard().prepare(key) {
                eprintln!("exp_matrix: {e}");
                std::process::exit(2);
            }
        }
        matrix(cfg, &opts)
    });
}
