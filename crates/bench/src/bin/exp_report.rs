//! The reproduction report generator: re-runs the claim-bearing
//! experiment tiers (every catalogue spec with `ClaimCheck` metadata),
//! merges in any existing record snapshots, and writes the
//! deterministic `REPRODUCTION.md` with a PASS / FAIL / INCONCLUSIVE
//! verdict, fitted scaling curve and inline SVG chart per paper claim.
//!
//! ```text
//! exp_report [--quick] [--json PATH] [--out PATH] [--backend KEY]
//!            [--from f1,f2,…] [--ingest] [--help]
//! ```
//!
//! Two modes:
//!
//! * **run** (default): executes every claim spec (E1–E7) at the
//!   `--quick` or full tier through a `ReportSink`; `--json PATH` also
//!   persists the records (the committed `BENCH_report.json`).
//! * **`--ingest`**: no execution — the report is generated purely from
//!   the `--from` files, which is how the golden test and anyone
//!   without 20 minutes regenerate the committed report.
//!
//! In both modes `--from f1,f2,…` merges additional record files (the
//! committed `BENCH_scenarios.json` / `BENCH_explore.json` /
//! `BENCH_route.json` feed the
//! matrix-safety and schedule-space cross-checks).
//!
//! Exit status: 1 if any claim or cross-check FAILs (the CI gate),
//! 2 on CLI errors; INCONCLUSIVE does not fail the run.

use rr_bench::runner::RunConfig;
use rr_bench::scenario::{self, specs, JsonSink, ReportSink, Sink, TableSink};
use rr_report::records::Rec;
use rr_report::Verdict;

const USAGE: &str = "\
exp_report — generate REPRODUCTION.md with statistical claim verdicts

usage: exp_report [--quick] [--json PATH] [--out PATH] [--backend KEY]
                  [--from f1,f2,…] [--ingest] [--help]

  --quick        CI-sized claim tiers (the committed BENCH_report.json shape)
  --json PATH    also write the freshly measured records to PATH
  --out PATH     where to write the report (default REPRODUCTION.md)
  --backend KEY  execution core for the re-run (virtual | dense | threads:t=N)
  --from LIST    comma-separated record files to merge (e.g. the committed
                 BENCH_scenarios.json,BENCH_explore.json,BENCH_route.json for
                 the cross-checks)
  --ingest       do not run anything — report purely from --from files
                 (--json/--backend would have no effect and are rejected)

exit status: 1 if any verdict is FAIL, 2 on CLI errors.";

fn fail(msg: &str) -> ! {
    eprintln!("exp_report: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    let mut out_path = String::from("REPRODUCTION.md");
    let mut from: Vec<String> = Vec::new();
    let mut ingest = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => {}
            "--ingest" => ingest = true,
            // Mirror RunConfig's peek rule: a following `--flag` is not
            // a value.
            "--json" | "--backend" => {
                if it.peek().is_some_and(|v| !v.starts_with("--")) {
                    it.next();
                }
            }
            "--out" => match it.next() {
                Some(v) if !v.starts_with("--") => out_path = v.clone(),
                _ => fail("--out needs a path"),
            },
            "--from" => match it.next() {
                Some(v) if !v.starts_with("--") => {
                    from.extend(v.split(',').filter(|s| !s.is_empty()).map(String::from));
                }
                _ => fail("--from needs a comma-separated file list"),
            },
            other => fail(&format!("unknown argument `{other}` (see --help)")),
        }
    }
    if ingest {
        if from.is_empty() {
            fail("--ingest needs --from <files>");
        }
        // Nothing runs in ingest mode, so these flags would be silently
        // ignored — reject them instead of misleading the user.
        for flag in ["--json", "--backend"] {
            if args.iter().any(|a| a == flag) {
                fail(&format!("{flag} has no effect with --ingest (nothing is executed)"));
            }
        }
    }

    let cfg = RunConfig::from_env();
    let mut recs: Vec<Rec> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();

    if !ingest {
        let mut report_sink = ReportSink::new();
        {
            let mut sinks: Vec<Box<dyn Sink + '_>> =
                vec![Box::new(TableSink::stdout()), Box::new(&mut report_sink)];
            if let Some(path) = &cfg.json_path {
                sinks.push(Box::new(JsonSink::new(path.clone())));
            }
            for spec in specs::catalogue(&cfg) {
                if spec.reproduces.is_empty() {
                    continue;
                }
                scenario::run_spec(spec, &cfg, &mut sinks);
            }
            for sink in &mut sinks {
                sink.finish().expect("exp_report sink finish failed");
            }
        }
        inputs.push(match &cfg.json_path {
            Some(path) => path.display().to_string(),
            None => format!("live run ({} tier)", if cfg.quick { "quick" } else { "full" }),
        });
        recs.extend(report_sink.records().iter().map(scenario::Record::to_report_rec));
    }
    for file in &from {
        let body = std::fs::read_to_string(file)
            .unwrap_or_else(|e| fail(&format!("cannot read --from file `{file}`: {e}")));
        let parsed =
            rr_report::parse_records(&body).unwrap_or_else(|e| fail(&format!("`{file}`: {e}")));
        recs.extend(parsed);
        inputs.push(file.clone());
    }

    let report = rr_report::generate(&recs, inputs);
    std::fs::write(&out_path, report.to_markdown())
        .unwrap_or_else(|e| fail(&format!("cannot write `{out_path}`: {e}")));

    println!("\n=== REPORT: statistical claim verdicts -> {out_path} ===");
    for c in &report.claims {
        println!("  {:12} {:4}  {}", c.id, c.scenario, c.verdict.label());
    }
    for c in &report.cross {
        println!("  {:17}  {}", "cross-check", c.verdict.label());
    }
    let worst = report.worst_verdict();
    println!("overall: {}", worst.label());
    if worst == Verdict::Fail {
        eprintln!("exp_report: at least one claim FAILED — see {out_path}");
        std::process::exit(1);
    }
}
