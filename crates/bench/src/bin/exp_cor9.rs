//! E7 — Corollary 9: full loose renaming with `m = n + 2n/(log n)^ℓ`
//! names and `O((log log n)²)` steps w.h.p.
//!
//! The headline loose-renaming result: almost-tight name space
//! (`(1+o(1))·n` with a *polynomially* small o(1)-term) at
//! poly-double-logarithmic step complexity.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode, run_batch, seeds_for, Schedule};
use rr_renaming::spare;
use rr_renaming::traits::{Cor9, RenamingAlgorithm};

fn main() {
    header("E7", "Corollary 9 — loose renaming, m = n + 2n/(log n)^l, O((loglog n)^2) steps");
    let (sizes, seeds): (Vec<usize>, u64) = if quick_mode() {
        (vec![1 << 10, 1 << 12], 5)
    } else {
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30)
    };

    let mut table = Table::new(vec![
        "n",
        "l",
        "m/n",
        "spare",
        "steps p50",
        "steps max",
        "max/(lln)^2",
        "max/log2 n",
        "unnamed",
    ]);
    for &n in &sizes {
        for ell in [1u32, 2] {
            let algo = Cor9 { ell };
            let stats = run_batch(&algo, n, seeds_for(n, seeds), Schedule::Fair);
            let mut sc = stats.step_complexity.clone();
            sc.sort_unstable();
            let lln = (n as f64).log2().log2();
            table.row(vec![
                n.to_string(),
                ell.to_string(),
                fnum(algo.m(n) as f64 / n as f64, 5),
                spare::cor9(n, ell).to_string(),
                sc[sc.len() / 2].to_string(),
                stats.max_steps().to_string(),
                fnum(stats.max_steps() as f64 / (lln * lln), 2),
                fnum(stats.max_steps() as f64 / (n as f64).log2(), 2),
                stats.max_unnamed().to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "\nclaim check: 'unnamed' identically 0; 'max/(lln)^2' bounded by \
         a constant as n grows; m/n = 1 + 2/(log n)^l → 1 polynomially."
    );
}
