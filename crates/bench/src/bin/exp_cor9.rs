//! E7 — Corollary 9: loose renaming, m = n + 2n/(log n)^ℓ in
//! O((loglog n)²) steps. See [`rr_bench::scenario::specs::cor9`].

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::cor9);
}
