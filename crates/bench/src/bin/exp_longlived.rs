//! E13 — long-lived renaming under churn (related-work \[13\] context):
//! with owner-release TAS registers and a `(1+ε)n` space, the amortized
//! acquire cost stays ~`(1+ε)/ε` probes across arbitrary acquire/release
//! churn, independent of how many cycles have happened.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode};
use rr_renaming::longlived::{LongLivedClient, ReleasableTasArray};

fn churn(n: usize, epsilon: f64, rounds: usize, seed: u64) -> (f64, f64) {
    let m = ((1.0 + epsilon) * n as f64).ceil() as usize;
    let names = ReleasableTasArray::new(m);
    let mut clients: Vec<_> = (0..n).map(|p| LongLivedClient::new(p, seed)).collect();
    let mut worst_single = 0u64;
    for _ in 0..rounds {
        for c in clients.iter_mut() {
            let (before, _) = c.stats();
            c.acquire(&names);
            let (after, _) = c.stats();
            worst_single = worst_single.max(after - before);
        }
        for c in clients.iter_mut() {
            c.release(&names);
        }
    }
    let probes: u64 = clients.iter().map(|c| c.stats().0).sum();
    let acquires: u64 = clients.iter().map(|c| c.stats().1).sum();
    (probes as f64 / acquires as f64, worst_single as f64)
}

fn main() {
    header("E13", "long-lived renaming — amortized acquire cost under churn");
    let (n, rounds) = if quick_mode() { (256usize, 20usize) } else { (4096, 100) };

    let mut table = Table::new(vec![
        "epsilon",
        "m",
        "rounds",
        "acquires",
        "amortized probes",
        "bound (1+e)/e",
        "worst single acquire",
    ]);
    for eps in [0.1f64, 0.25, 0.5, 1.0, 2.0] {
        let (amortized, worst) = churn(n, eps, rounds, 0xE13);
        let m = ((1.0 + eps) * n as f64).ceil() as usize;
        table.row(vec![
            fnum(eps, 2),
            m.to_string(),
            rounds.to_string(),
            (n * rounds).to_string(),
            fnum(amortized, 3),
            fnum((1.0 + eps) / eps, 3),
            fnum(worst, 0),
        ]);
    }
    println!("{table}");
    println!(
        "\nclaim check: 'amortized probes' tracks the expected-cost bound \
         (1+e)/e for every ε and does not grow with the number of churn \
         rounds — names recycle indefinitely (long-lived renaming)."
    );
}
