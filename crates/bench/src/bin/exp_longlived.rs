//! E13 — long-lived renaming: amortized acquire cost under churn.
//! See [`rr_bench::scenario::specs::longlived`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::longlived);
}
