//! E3 — Lemma 4: per-round register saturation (≥ 2c log n requests
//! w.h.p.). See [`rr_bench::scenario::specs::lemma4`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::lemma4);
}
