//! E3 — Lemma 4: in every §III round, every `(log n)`-register receives
//! `4c·log n` requests in expectation and at least `2c·log n` w.h.p., so
//! after the discarding step each register accepts exactly `log n`
//! requests.
//!
//! We attach the request recorder to both parameterizations and print,
//! per round: registers in the cluster, min/mean requests per register
//! against the `2c log n` / `4c log n` targets, and how many registers
//! filled their full τ quota. The paper-exact rows exhibit the
//! *oversaturation* regime of Definition 2 (requests far above target,
//! because the active population hardly shrinks — the documented gap);
//! the calibrated rows sit on the 4cL target.

use rr_analysis::table::{fnum, Table};
use rr_bench::runner::{header, quick_mode};
use rr_renaming::tight::TightRenaming;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::virtual_exec::run;

fn report(algo: TightRenaming, n: usize, seed: u64, max_rounds: usize) {
    let algo = algo.with_recorder();
    let (shared, procs) = algo.instantiate_shared(n, seed);
    let boxed: Vec<Box<dyn Process>> =
        procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
    let budget = 400 * (n as u64) * ((n as f64).log2() as u64 + 16);
    let out = run(boxed, &mut FairAdversary::default(), budget).unwrap();
    out.verify_renaming(n).unwrap();

    let plan = &shared.plan;
    let l = plan.l as u64;
    let c = plan.c as u64;
    println!(
        "\n{} @ n={n}: L={l}, c={c}, rounds={} (showing ≤ {max_rounds}), targets: whp ≥ {} (2cL), E = {} (4cL)",
        rr_renaming::traits::RenamingAlgorithm::name(&algo),
        plan.rounds(),
        2 * c * l,
        4 * c * l
    );
    let rec = shared.recorder.as_ref().unwrap();
    let mut table =
        Table::new(vec!["round", "registers", "req min", "req mean", "req max", "full registers"]);
    for round in 0..plan.rounds().min(max_rounds) {
        let counts = rec.round_counts(round);
        let regs = counts.len();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<u64>() as f64 / regs as f64;
        // Full = register reached its τ quota.
        let cl = plan.clusters[round];
        let full = (0..cl.registers)
            .filter(|&i| {
                let r = cl.first_register + i;
                shared.registers[r].confirmed_count() == plan.register_tau[r]
            })
            .count();
        table.row(vec![
            (round + 1).to_string(),
            regs.to_string(),
            min.to_string(),
            fnum(mean, 1),
            max.to_string(),
            format!("{full}/{regs}"),
        ]);
    }
    println!("{table}");
}

fn main() {
    header("E3", "Lemma 4 — per-round register saturation (≥ 2c log n requests w.h.p.)");
    let n = if quick_mode() { 1 << 10 } else { 1 << 14 };
    report(TightRenaming::calibrated(4), n, 0xE3, 10);
    // The paper-exact variant funnels almost everyone through the final
    // sweep (the documented under-provisioning), which is Θ(n·n/log n)
    // total work — run it one size down so the table regenerates fast.
    report(TightRenaming::paper_exact(4), n.min(1 << 12), 0xE3, 10);
    println!(
        "\nclaim check: calibrated rows keep 'req mean' ≈ 4cL and every \
         register full; paper-exact rows oversaturate (mean ≫ 4cL) — \
         saturation holds a fortiori, but most names are only reachable \
         through the final-round sweep (DESIGN.md, gap 1)."
    );
}
