//! E10 — §II-B/§II-C: the counting device admits exactly τ winners under
//! every request pattern, and a cycle is a constant amount of hardware
//! work.
//!
//! Three parts: (1) quota stress — adversarial request batches can never
//! push confirmed bits past τ; (2) batching profile — how many cycles a
//! τ-register needs to absorb bursts of various shapes; (3) the
//! flat-combining front end under real threads (winners = τ exactly,
//! names distinct).

use rand::rngs::ChaCha8Rng;
use rand::{RngExt, SeedableRng};
use rr_analysis::table::Table;
use rr_bench::runner::header;
use rr_tau::{ConcurrentTauRegister, CountingDevice};
use std::collections::HashSet;

fn main() {
    header("E10", "counting device — τ-quota invariant, cycle counts, concurrency");

    // Part 1: quota stress across widths and thresholds.
    println!("\n-- quota invariant under random batches --");
    let mut table = Table::new(vec!["width", "tau", "batches", "max confirmed", "wins total"]);
    let mut rng = ChaCha8Rng::seed_from_u64(0xE10);
    for (width, tau) in [(8u32, 4u32), (16, 8), (32, 16), (64, 32), (64, 64), (20, 10)] {
        let mut device = CountingDevice::new(width, tau);
        let mut max_confirmed = 0;
        let mut wins = 0usize;
        let batches = 200;
        for _ in 0..batches {
            let k = rng.random_range(0..2 * width as usize);
            let reqs: Vec<(usize, usize)> =
                (0..k).map(|t| (t, rng.random_range(0..width as usize))).collect();
            let rep = device.clock_cycle(&reqs);
            wins += rep.win_count();
            max_confirmed = max_confirmed.max(device.confirmed_count());
        }
        assert!(max_confirmed <= tau, "τ invariant violated");
        assert_eq!(wins as u32, device.confirmed_count());
        table.row(vec![
            width.to_string(),
            tau.to_string(),
            batches.to_string(),
            max_confirmed.to_string(),
            wins.to_string(),
        ]);
    }
    println!("{table}");

    // Part 2: cycles to absorb bursts.
    println!("\n-- cycles until quiescence for burst shapes (width 32, tau 16) --");
    let mut table = Table::new(vec!["burst shape", "requests", "cycles", "winners"]);
    let shapes: &[(&str, Vec<usize>)] = &[
        ("one big batch", vec![64]),
        ("8-request trickle", vec![8; 8]),
        ("single file", vec![1; 64]),
        ("front-loaded", vec![32, 16, 8, 4, 2, 1, 1]),
    ];
    for (label, batches) in shapes {
        let mut device = CountingDevice::new(32, 16);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut tag = 0usize;
        for &k in batches {
            let reqs: Vec<(usize, usize)> = (0..k)
                .map(|_| {
                    tag += 1;
                    (tag, rng.random_range(0..32))
                })
                .collect();
            device.clock_cycle(&reqs);
        }
        table.row(vec![
            label.to_string(),
            batches.iter().sum::<usize>().to_string(),
            device.cycles().to_string(),
            device.confirmed_count().to_string(),
        ]);
    }
    println!("{table}");

    // Part 3: flat-combining wrapper under threads.
    println!("\n-- concurrent tau-register: 256 threads, width 40, tau 20 --");
    let reg = ConcurrentTauRegister::new(40, 20, 0);
    let names: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..256)
            .map(|i| {
                let reg = reg.clone();
                s.spawn(move || reg.acquire(i % 40).ok().map(|(name, _)| name))
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().unwrap()).collect()
    });
    let distinct: HashSet<_> = names.iter().collect();
    println!(
        "winners: {} (tau = 20), distinct names: {}, cycles: {}",
        names.len(),
        distinct.len(),
        reg.cycles()
    );
    assert_eq!(names.len(), 20);
    assert_eq!(distinct.len(), 20);

    println!(
        "\nclaim check: 'max confirmed' ≤ tau everywhere; cycle count \
         tracks batch count, not request count (hardware absorbs any \
         concurrency per cycle); threaded register admits exactly tau \
         winners with distinct names."
    );
}
