//! E10 — counting device: τ-quota invariant, cycle counts, concurrency.
//! See [`rr_bench::scenario::specs::tau`] for details.

fn main() {
    rr_bench::scenario::drive(rr_bench::scenario::specs::tau);
}
