//! Output backends for the scenario engine.
//!
//! A scenario produces two parallel streams: the **text** stream (the
//! human tables every `exp_*` binary has always printed — byte-identical
//! to the pre-engine output) and the **record** stream (structured
//! per-row measurements). A [`Sink`] consumes either or both:
//!
//! * [`TableSink`] prints the text stream to any writer (stdout for the
//!   binaries, a buffer for the golden tests) and ignores records.
//! * [`JsonSink`] ignores text and serializes records into a JSON array
//!   (one object per line — diff-friendly), e.g. `BENCH_scenarios.json`,
//!   so step-complexity trajectories persist across PRs.
//!
//! No serde in the container, so the JSON writer is hand-rolled: only
//! strings, unsigned integers and finite floats are emitted.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One structured field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, step complexities).
    U64(u64),
    /// Finite float (means, normalized ratios). Non-finite values
    /// serialize as `null`.
    F64(f64),
    /// Free-form string (keys, display names).
    Str(String),
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) if v.is_finite() => format!("{v}"),
            Value::F64(_) => "null".into(),
            Value::Str(s) => json_string(s),
        }
    }
}

/// One structured measurement row.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Scenario id (`"E1"`, `"MATRIX"`, …).
    pub scenario: String,
    /// Section title within the scenario (empty for single-table runs).
    pub section: String,
    /// Ordered `(name, value)` fields.
    pub fields: Vec<(String, Value)>,
}

impl Record {
    /// Converts this record into the report crate's parsed form — the
    /// exact shape `rr_report::parse_records` yields from a [`JsonSink`]
    /// file, including mapping non-finite floats to `Null` the way the
    /// JSON writer serializes them. The single conversion path
    /// `exp_report`'s run mode and the end-to-end tests share.
    pub fn to_report_rec(&self) -> rr_report::Rec {
        let mut fields = vec![
            ("scenario".to_string(), rr_report::records::Value::Str(self.scenario.clone())),
            ("section".to_string(), rr_report::records::Value::Str(self.section.clone())),
        ];
        for (k, v) in &self.fields {
            let value = match v {
                Value::U64(x) => rr_report::records::Value::U64(*x),
                Value::F64(x) if x.is_finite() => rr_report::records::Value::F64(*x),
                Value::F64(_) => rr_report::records::Value::Null,
                Value::Str(s) => rr_report::records::Value::Str(s.clone()),
            };
            fields.push((k.clone(), value));
        }
        rr_report::Rec { fields }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"scenario\":{}", json_string(&self.scenario)));
        out.push_str(&format!(",\"section\":{}", json_string(&self.section)));
        for (k, v) in &self.fields {
            out.push_str(&format!(",{}:{}", json_string(k), v.to_json()));
        }
        out.push('}');
        out
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A scenario output backend; see the module docs.
pub trait Sink {
    /// Consumes one text chunk (a line or a pre-rendered multi-line
    /// table); the chunk is terminated with a newline on print.
    fn text(&mut self, chunk: &str);

    /// Consumes one structured record.
    fn record(&mut self, record: &Record);

    /// Flushes buffered output (e.g. writes the JSON file).
    ///
    /// # Errors
    /// Propagates I/O errors from the underlying writer.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Forwarding impl so a sink can be attached by mutable borrow — the
/// report pipeline lends `&mut ReportSink` to the engine and keeps
/// ownership of the collected records.
impl<S: Sink + ?Sized> Sink for &mut S {
    fn text(&mut self, chunk: &str) {
        (**self).text(chunk);
    }

    fn record(&mut self, record: &Record) {
        (**self).record(record);
    }

    fn finish(&mut self) -> io::Result<()> {
        (**self).finish()
    }
}

/// Prints the text stream to a writer — stdout in the binaries, a byte
/// buffer in the golden tests. Ignores records.
#[derive(Debug)]
pub struct TableSink<W: Write> {
    out: W,
}

impl TableSink<io::Stdout> {
    /// The binaries' stdout sink.
    pub fn stdout() -> Self {
        Self::new(io::stdout())
    }
}

impl<W: Write> TableSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }
}

impl<W: Write> Sink for TableSink<W> {
    fn text(&mut self, chunk: &str) {
        writeln!(self.out, "{chunk}").expect("scenario text sink write failed");
    }

    fn record(&mut self, _record: &Record) {}
}

/// Buffers records and writes them as a JSON array on finish. Ignores
/// text.
#[derive(Debug)]
pub struct JsonSink {
    path: PathBuf,
    records: Vec<String>,
}

impl JsonSink {
    /// Will write to `path` on [`Sink::finish`].
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into(), records: Vec::new() }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonSink {
    fn text(&mut self, _chunk: &str) {}

    fn record(&mut self, record: &Record) {
        self.records.push(record.to_json());
    }

    fn finish(&mut self) -> io::Result<()> {
        let body = if self.records.is_empty() {
            "[]\n".to_string()
        } else {
            format!("[\n{}\n]\n", self.records.join(",\n"))
        };
        std::fs::write(&self.path, body)
    }
}

/// Collects the record stream in memory — the sink behind `exp_report`:
/// the engine runs claim scenarios against a `ReportSink`, then the
/// report generator consumes [`ReportSink::records`] directly instead of
/// round-tripping through a JSON file. Ignores text.
#[derive(Debug, Default)]
pub struct ReportSink {
    records: Vec<Record>,
}

impl ReportSink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records collected so far, in emission order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Consumes the sink, returning the collected records.
    pub fn into_records(self) -> Vec<Record> {
        self.records
    }
}

impl Sink for ReportSink {
    fn text(&mut self, _chunk: &str) {}

    fn record(&mut self, record: &Record) {
        self.records.push(record.clone());
    }
}

/// The handle custom scenario sections emit through: fans text and
/// records out to every attached sink.
pub struct Emitter<'a, 'b> {
    sinks: &'a mut [Box<dyn Sink + 'b>],
}

impl<'a, 'b> Emitter<'a, 'b> {
    /// Wraps a sink set.
    pub fn new(sinks: &'a mut [Box<dyn Sink + 'b>]) -> Self {
        Self { sinks }
    }

    /// Emits one text chunk (printed with a trailing newline).
    pub fn text(&mut self, chunk: impl AsRef<str>) {
        for sink in self.sinks.iter_mut() {
            sink.text(chunk.as_ref());
        }
    }

    /// Emits one structured record.
    pub fn record(&mut self, record: &Record) {
        for sink in self.sinks.iter_mut() {
            sink.record(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Record {
        Record {
            scenario: "E1".into(),
            section: String::new(),
            fields: vec![
                ("algorithm".into(), Value::Str("tight-tau:c=4".into())),
                ("n".into(), Value::U64(1024)),
                ("ratio".into(), Value::F64(3.5)),
                ("bad".into(), Value::F64(f64::NAN)),
            ],
        }
    }

    #[test]
    fn record_serializes_flat_json() {
        assert_eq!(
            sample().to_json(),
            "{\"scenario\":\"E1\",\"section\":\"\",\"algorithm\":\"tight-tau:c=4\",\
             \"n\":1024,\"ratio\":3.5,\"bad\":null}"
        );
    }

    /// The in-memory conversion and the JSON file round trip are the
    /// same function: what `exp_report`'s run mode feeds the evaluator
    /// is byte-equivalent to re-parsing its own `--json` output,
    /// including non-finite floats becoming `Null`.
    #[test]
    fn report_rec_conversion_matches_the_json_round_trip() {
        let rec = sample();
        let via_json = rr_report::parse_records(&format!("[\n{}\n]\n", rec.to_json())).unwrap();
        assert_eq!(vec![rec.to_report_rec()], via_json);
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("tab\there"), "\"tab\\there\"");
    }

    #[test]
    fn table_sink_writes_lines_and_ignores_records() {
        let mut buf = Vec::new();
        {
            let mut sink = TableSink::new(&mut buf);
            sink.text("hello");
            sink.record(&sample());
            sink.text("world");
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "hello\nworld\n");
    }

    #[test]
    fn json_sink_round_trips_through_file() {
        let path = std::env::temp_dir().join(format!("rr_sink_test_{}.json", std::process::id()));
        let mut sink = JsonSink::new(&path);
        sink.text("ignored");
        sink.record(&sample());
        sink.record(&sample());
        sink.finish().unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(body.starts_with("[\n{\"scenario\":\"E1\""));
        assert!(body.ends_with("}\n]\n"));
        assert_eq!(body.matches("\"n\":1024").count(), 2);
    }

    #[test]
    fn empty_json_sink_writes_empty_array() {
        let path = std::env::temp_dir().join(format!("rr_sink_empty_{}.json", std::process::id()));
        let mut sink = JsonSink::new(&path);
        assert_eq!(sink.path(), path.as_path());
        sink.finish().unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(body, "[]\n");
    }

    #[test]
    fn emitter_fans_out() {
        let mut buf = Vec::new();
        {
            let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(TableSink::new(&mut buf))];
            let mut em = Emitter::new(&mut sinks);
            em.text("line");
            em.record(&sample());
        }
        assert_eq!(String::from_utf8(buf).unwrap(), "line\n");
    }
}
