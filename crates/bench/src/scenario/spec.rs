//! Declarative scenario descriptions.
//!
//! A [`ScenarioSpec`] is what an `exp_*` binary *is*: an id, the claim
//! under test, a list of sections, and the closing claim-check note.
//! Sections are either [`BatchSection`]s — algorithm × adversary × n
//! rows named by **registry keys** and measured by the shared batch
//! runner — or [`CustomSection`]s for the handful of experiments that
//! introspect protocol internals (device cycles, request recorders,
//! progress curves). The engine in [`super`] executes specs against any
//! sink set.

use super::sink::Emitter;
use crate::runner::BatchStats;
use rr_renaming::traits::RenamingAlgorithm;

/// A complete experiment: what one `exp_*` binary runs.
///
/// Rows name algorithms and adversaries by **registry key** — adding a
/// protocol to the registries makes it available to every spec without
/// touching a binary:
///
/// ```
/// use rr_bench::scenario::{
///     render_to_string, BatchSection, Column, RowSpec, ScenarioSpec, Section,
/// };
///
/// let spec = ScenarioSpec {
///     id: "DEMO",
///     claim: "registry keys in, table out",
///     sections: vec![Section::Batch(BatchSection {
///         title: None,
///         columns: vec![
///             Column::new("algorithm", |ctx| ctx.algo.name()),
///             Column::new("n", |ctx| ctx.row.n.to_string()),
///             Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
///         ],
///         rows: vec![
///             RowSpec::new("tight-tau:c=4", "fair", 64, 2),
///             RowSpec::new("aagw", "crash:p=100,cap=10", 64, 2),
///         ],
///     })],
///     claim_check: "claim check: both rows pass the safety audit.".into(),
///     reproduces: vec![],
/// };
/// let out = render_to_string(spec);
/// assert!(out.starts_with("=== DEMO: registry keys in, table out ==="));
/// assert!(out.contains("tight-tau(c=4)"));
/// assert!(out.trim_end().ends_with("both rows pass the safety audit."));
/// ```
pub struct ScenarioSpec {
    /// Experiment id (`"E1"`, `"MATRIX"`, …).
    pub id: &'static str,
    /// The claim under test, printed in the `=== id: claim ===` header.
    pub claim: &'static str,
    /// Sections, executed and printed in order.
    pub sections: Vec<Section>,
    /// Closing note (printed as a blank line + the note); empty to omit.
    pub claim_check: String,
    /// The statistically checked paper claims this spec's **records**
    /// feed — the [`ClaimCheck`] layer the reproduction report
    /// (`rr-report`, driven by `exp_report`) consumes. Empty for
    /// scenarios that measure without reproducing a numbered bound
    /// (the matrix, the backend shoot-out, …).
    pub reproduces: Vec<ClaimCheck>,
}

/// Declares that a scenario's record stream reproduces one numbered
/// paper claim: the report subsystem matches `claim` against the claim
/// registry in `rr-report` and evaluates the measured records against
/// the `bound` it states.
///
/// This is spec **metadata**: adding a `ClaimCheck` to a spec is what
/// enrolls it in `exp_report`'s re-run set and in the generated
/// `REPRODUCTION.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimCheck {
    /// Claim id in `rr-report`'s registry (`"theorem5"`, `"lemma3"`,
    /// `"cor9"`, …).
    pub claim: &'static str,
    /// The predicted bound, as stated by the paper (`"O(log n) steps
    /// w.h.p."`, …) — rendered in the report header for the claim.
    pub bound: &'static str,
}

/// One scenario section.
pub enum Section {
    /// Registry-keyed rows measured by the shared batch runner.
    Batch(BatchSection),
    /// Free-form section driving the [`Emitter`] directly.
    Custom(CustomSection),
}

/// A table of algorithm × adversary × n rows.
pub struct BatchSection {
    /// Optional section title, printed as `-- title --` after a blank
    /// line (multi-section scenarios like E8).
    pub title: Option<String>,
    /// Table columns; each cell is computed from the row's context.
    pub columns: Vec<Column>,
    /// Rows, executed in order.
    pub rows: Vec<RowSpec>,
}

/// One batch row: which algorithm under which adversary at which size.
#[derive(Debug, Clone)]
pub struct RowSpec {
    /// Algorithm registry key (`"tight-tau:c=4"`, `"bitonic"`, …).
    pub algorithm: String,
    /// Adversary registry key (`"fair"`, `"crash:p=20,cap=10"`, …).
    pub adversary: String,
    /// Number of processes.
    pub n: usize,
    /// Seeds to sweep.
    pub seeds: u64,
    /// Free-form payload for column closures (e.g. the ℓ exponent a
    /// sweep varies); 0 when unused.
    pub tag: u64,
}

impl RowSpec {
    /// A row with `tag = 0`.
    pub fn new(
        algorithm: impl Into<String>,
        adversary: impl Into<String>,
        n: usize,
        seeds: u64,
    ) -> Self {
        Self { algorithm: algorithm.into(), adversary: adversary.into(), n, seeds, tag: 0 }
    }

    /// Attaches a tag.
    #[must_use]
    pub fn tagged(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// Everything a column cell can see about its row.
pub struct RowCtx<'a> {
    /// The row being rendered.
    pub row: &'a RowSpec,
    /// The registry-built algorithm (for `name()`, `m(n)`, …).
    pub algo: &'a dyn RenamingAlgorithm,
    /// The measured batch.
    pub stats: &'a BatchStats,
}

/// Computes one cell's display string.
pub type CellFn = Box<dyn Fn(&RowCtx<'_>) -> String>;

/// A named table column.
pub struct Column {
    /// Column header.
    pub header: String,
    /// Cell renderer.
    pub cell: CellFn,
}

impl Column {
    /// A column from a header and a cell closure.
    pub fn new(header: impl Into<String>, cell: impl Fn(&RowCtx<'_>) -> String + 'static) -> Self {
        Self { header: header.into(), cell: Box::new(cell) }
    }
}

/// A free-form section: runs once with the emitter.
pub struct CustomSection {
    /// The section body.
    pub run: Box<dyn FnOnce(&mut Emitter<'_, '_>)>,
}

impl Section {
    /// Wraps a closure as a [`CustomSection`].
    pub fn custom(run: impl FnOnce(&mut Emitter<'_, '_>) + 'static) -> Self {
        Section::Custom(CustomSection { run: Box::new(run) })
    }
}
