//! The scenario engine: declarative experiments over the registries.
//!
//! Where each `exp_*` binary used to hand-roll algorithm construction,
//! adversary wiring, seed sweeps and table printing, a scenario is now a
//! **declaration** — a [`ScenarioSpec`] naming algorithms and
//! adversaries by registry key — executed by one shared [`drive`] entry
//! point:
//!
//! 1. [`rr_renaming::AlgorithmRegistry`] + `rr_baselines` resolve
//!    algorithm keys (`"tight-tau:c=4"`, `"bitonic"`, …).
//! 2. [`rr_sched::registry`] resolves adversary keys (`"fair"`,
//!    `"crash:p=20,cap=10"`, …).
//! 3. The parallel batch runner measures every row; results stream into
//!    every attached [`Sink`] — the human table (byte-identical to the
//!    pre-engine binaries) and, with `--json <path>`, a structured
//!    record file for cross-PR perf trajectories.
//!
//! Adding an experiment is writing a spec (see [`specs`]); adding an
//! algorithm or adversary is one registry registration — every spec and
//! the `exp_matrix` cross-product pick it up by key.

pub mod sink;
pub mod spec;
pub mod specs;

pub use sink::{Emitter, JsonSink, Record, ReportSink, Sink, TableSink, Value};
pub use spec::{
    BatchSection, CellFn, ClaimCheck, Column, CustomSection, RowCtx, RowSpec, ScenarioSpec, Section,
};

use crate::runner::{BatchRun, BatchTiming, RunConfig};
use rr_analysis::stats::upper_median;
use rr_renaming::registry::{AlgorithmRegistry, BoxedAlgorithm};
use rr_shmem::rng::RngMode;
use std::collections::BTreeMap;

/// The full algorithm registry the engine resolves keys against: the
/// paper's protocols plus every baseline.
pub fn registry() -> AlgorithmRegistry {
    let mut reg = AlgorithmRegistry::with_paper_algorithms();
    rr_baselines::register_baselines(&mut reg);
    reg
}

/// Builds the spec from the process environment and executes it against
/// stdout (and the `--json` sink when requested) — the whole `main` of
/// every `exp_*` binary.
pub fn drive(build: impl FnOnce(&RunConfig) -> ScenarioSpec) {
    let cfg = RunConfig::from_env();
    let mut sinks: Vec<Box<dyn Sink>> = vec![Box::new(TableSink::stdout())];
    if let Some(path) = &cfg.json_path {
        sinks.push(Box::new(JsonSink::new(path.clone())));
    }
    run_spec(build(&cfg), &cfg, &mut sinks);
    for sink in &mut sinks {
        sink.finish().expect("scenario sink finish failed");
    }
}

/// Renders a spec to a string through the table sink — what [`drive`]
/// would print to stdout, captured for the golden tests. Worker threads
/// come from the ambient environment ([`RunConfig::default`]).
pub fn render_to_string(spec: ScenarioSpec) -> String {
    let mut buf = Vec::new();
    {
        let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(TableSink::new(&mut buf))];
        run_spec(spec, &RunConfig::default(), &mut sinks);
    }
    String::from_utf8(buf).expect("scenario output is utf8")
}

/// Executes `spec` against `sinks` (does not call [`Sink::finish`]);
/// batch rows run with [`RunConfig::threads`] workers.
pub fn run_spec(spec: ScenarioSpec, cfg: &RunConfig, sinks: &mut [Box<dyn Sink + '_>]) {
    let reg = registry();
    let mut emitter = Emitter::new(sinks);
    emitter.text(format!("=== {}: {} ===", spec.id, spec.claim));
    for section in spec.sections {
        match section {
            Section::Batch(batch) => run_batch_section(spec.id, batch, cfg, &reg, &mut emitter),
            Section::Custom(custom) => (custom.run)(&mut emitter),
        }
    }
    if !spec.claim_check.is_empty() {
        emitter.text(format!("\n{}", spec.claim_check));
    }
}

fn run_batch_section(
    scenario: &str,
    section: BatchSection,
    cfg: &RunConfig,
    reg: &AlgorithmRegistry,
    emitter: &mut Emitter<'_, '_>,
) {
    if let Some(title) = &section.title {
        emitter.text(format!("\n-- {title} --"));
    }
    let mut table =
        rr_analysis::Table::new(section.columns.iter().map(|c| c.header.clone()).collect());
    let mut algos: BTreeMap<String, BoxedAlgorithm> = BTreeMap::new();
    for row in &section.rows {
        let algo = algos.entry(row.algorithm.clone()).or_insert_with(|| {
            reg.build(&row.algorithm).unwrap_or_else(|e| panic!("scenario {scenario}: {e}"))
        });
        let (stats, timing) = BatchRun::new(algo.as_ref(), row.n)
            .seeds(row.seeds)
            .adversary(&row.adversary)
            .backend(cfg.backend)
            .rng_mode(cfg.rng)
            .workers(cfg.threads)
            .run()
            .unwrap_or_else(|e| panic!("scenario {scenario}: {e}"));
        let ctx = RowCtx { row, algo: algo.as_ref(), stats: &stats };
        table.row(section.columns.iter().map(|c| (c.cell)(&ctx)).collect());
        emitter.record(&batch_record(scenario, &section, row, cfg, algo.as_ref().name(), &stats));
        emitter.record(&throughput_record(scenario, &section, row, cfg, &timing));
    }
    emitter.text(table.to_string());
}

/// The engine's standard structured fields for one batch row — the
/// deterministic step/space measurements a perf trajectory tracks.
fn batch_record(
    scenario: &str,
    section: &BatchSection,
    row: &RowSpec,
    cfg: &RunConfig,
    algo_name: String,
    stats: &crate::runner::BatchStats,
) -> Record {
    let mut fields = vec![
        ("algorithm".into(), Value::Str(row.algorithm.clone())),
        ("algorithm_name".into(), Value::Str(algo_name)),
        ("adversary".into(), Value::Str(row.adversary.clone())),
        ("backend".into(), Value::Str(cfg.backend.key())),
        ("n".into(), Value::U64(row.n as u64)),
        ("seeds".into(), Value::U64(row.seeds)),
        ("steps_p50".into(), Value::U64(upper_median(&stats.step_complexity))),
        ("steps_max".into(), Value::U64(stats.max_steps())),
        ("mean_steps".into(), Value::F64(stats.mean_mean_steps())),
        ("unnamed_max".into(), Value::U64(stats.max_unnamed() as u64)),
        ("unnamed_mean".into(), Value::F64(stats.mean_unnamed())),
        ("crashed_total".into(), Value::U64(stats.total_crashed() as u64)),
        ("violations".into(), Value::U64(stats.violations as u64)),
    ];
    push_rng_field(&mut fields, cfg);
    Record {
        scenario: scenario.to_string(),
        section: section.title.clone().unwrap_or_default(),
        fields,
    }
}

/// Tags a record with the per-process RNG backend — but **only** when it
/// is not the default stream. Default-mode records stay byte-identical
/// to every committed snapshot; a non-default mode is a modelling change
/// and must be visible in the data it produced.
fn push_rng_field(fields: &mut Vec<(String, Value)>, cfg: &RunConfig) {
    if cfg.rng != RngMode::default() {
        fields.push(("rng".into(), Value::Str(cfg.rng.key().into())));
    }
}

/// One batch row's wall-clock speed, tagged `kind = "throughput"` so the
/// perf trajectory can track runs/sec and steps/sec per backend while
/// snapshot-diff tooling filters these (inherently non-deterministic)
/// records out of byte-exact comparisons.
fn throughput_record(
    scenario: &str,
    section: &BatchSection,
    row: &RowSpec,
    cfg: &RunConfig,
    timing: &BatchTiming,
) -> Record {
    let mut fields = vec![
        ("kind".into(), Value::Str("throughput".into())),
        ("algorithm".into(), Value::Str(row.algorithm.clone())),
        ("adversary".into(), Value::Str(row.adversary.clone())),
        ("backend".into(), Value::Str(cfg.backend.key())),
        ("n".into(), Value::U64(row.n as u64)),
        ("runs".into(), Value::U64(timing.runs)),
        ("steps_total".into(), Value::U64(timing.steps)),
        ("wall_ms".into(), Value::F64(timing.wall_secs * 1e3)),
        ("runs_per_sec".into(), Value::F64(timing.runs_per_sec())),
        ("steps_per_sec".into(), Value::F64(timing.steps_per_sec())),
    ];
    push_rng_field(&mut fields, cfg);
    Record {
        scenario: scenario.to_string(),
        section: section.title.clone().unwrap_or_default(),
        fields,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            id: "EX",
            claim: "engine smoke",
            sections: vec![Section::Batch(BatchSection {
                title: Some("demo".into()),
                columns: vec![
                    Column::new("algorithm", |ctx| ctx.algo.name()),
                    Column::new("n", |ctx| ctx.row.n.to_string()),
                    Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
                ],
                rows: vec![
                    RowSpec::new("tight-tau:c=4", "fair", 64, 2),
                    RowSpec::new("aagw", "random", 64, 2).tagged(7),
                ],
            })],
            claim_check: "claim check: smoke only.".into(),
            reproduces: vec![],
        }
    }

    #[test]
    fn renders_header_title_table_and_claim_check() {
        let out = render_to_string(tiny_spec());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "=== EX: engine smoke ===");
        assert_eq!(lines[1], "");
        assert_eq!(lines[2], "-- demo --");
        assert!(lines[3].starts_with("algorithm"), "{out}");
        assert!(out.contains("tight-tau(c=4)"));
        assert!(out.contains("aagw-style(m=2n)"));
        assert!(out.trim_end().ends_with("claim check: smoke only."));
    }

    #[test]
    fn records_carry_standard_fields() {
        let path =
            std::env::temp_dir().join(format!("rr_scenario_rec_{}.json", std::process::id()));
        {
            let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(JsonSink::new(path.clone()))];
            run_spec(tiny_spec(), &RunConfig::default(), &mut sinks);
            for s in &mut sinks {
                s.finish().unwrap();
            }
        }
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Two rows → two deterministic records + two throughput records.
        assert_eq!(body.matches("\"scenario\":\"EX\"").count(), 4);
        assert_eq!(body.matches("\"kind\":\"throughput\"").count(), 2);
        assert!(body.contains("\"section\":\"demo\""));
        assert!(body.contains("\"algorithm\":\"tight-tau:c=4\""));
        assert!(body.contains("\"adversary\":\"random\""));
        assert!(body.contains("\"backend\":\"virtual\""));
        assert!(body.contains("\"steps_p50\":"));
        assert!(body.contains("\"violations\":0"));
        assert!(body.contains("\"runs_per_sec\":"));
        assert!(body.contains("\"steps_per_sec\":"));
    }

    /// The same spec run on the dense backend renders the identical
    /// table and identical deterministic records — only the backend tag
    /// and the timing records differ.
    #[test]
    fn dense_backend_renders_identically() {
        let virt = render_to_string(tiny_spec());
        let mut buf = Vec::new();
        {
            let cfg =
                RunConfig { backend: crate::runner::ExecBackend::Dense, ..Default::default() };
            let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(TableSink::new(&mut buf))];
            run_spec(tiny_spec(), &cfg, &mut sinks);
        }
        assert_eq!(virt, String::from_utf8(buf).unwrap());
    }

    /// Default-mode records never mention the RNG (snapshots stay
    /// byte-stable); counter-mode records all carry `"rng":"counter"`.
    #[test]
    fn rng_field_appears_exactly_when_mode_is_non_default() {
        let emit = |rng| {
            let path = std::env::temp_dir()
                .join(format!("rr_scenario_rng_{}_{rng}.json", std::process::id()));
            {
                let cfg = RunConfig { rng, ..Default::default() };
                let mut sinks: Vec<Box<dyn Sink + '_>> =
                    vec![Box::new(JsonSink::new(path.clone()))];
                run_spec(tiny_spec(), &cfg, &mut sinks);
                for s in &mut sinks {
                    s.finish().unwrap();
                }
            }
            let body = std::fs::read_to_string(&path).unwrap();
            std::fs::remove_file(&path).ok();
            body
        };
        let default_body = emit(RngMode::default());
        assert!(!default_body.contains("\"rng\":"), "default mode must not tag records");
        let counter_body = emit(RngMode::Counter);
        // Two rows → 2 deterministic + 2 throughput records, all tagged.
        assert_eq!(counter_body.matches("\"rng\":\"counter\"").count(), 4);
    }

    #[test]
    fn deterministic_rendering() {
        assert_eq!(render_to_string(tiny_spec()), render_to_string(tiny_spec()));
    }

    #[test]
    #[should_panic(expected = "unknown algorithm")]
    fn unknown_algorithm_key_panics_with_context() {
        let spec = ScenarioSpec {
            id: "EX",
            claim: "bad key",
            sections: vec![Section::Batch(BatchSection {
                title: None,
                columns: vec![Column::new("n", |ctx| ctx.row.n.to_string())],
                rows: vec![RowSpec::new("no-such-algo", "fair", 8, 1)],
            })],
            claim_check: String::new(),
            reproduces: vec![],
        };
        render_to_string(spec);
    }

    #[test]
    fn full_registry_composes_paper_and_baselines() {
        let reg = registry();
        assert!(reg.build("tight-tau:c=4").is_ok());
        assert!(reg.build("bitonic").is_ok());
        assert!(reg.keys().len() >= 13);
    }
}
