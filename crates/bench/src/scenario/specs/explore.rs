//! The schedule-space explorer scenario behind `exp_explore`: bounded
//! exhaustive DFS over every registry algorithm plus a
//! perturbation-strength fuzz sweep, both executed **through the dense
//! arena backend** so the flat execution core is exercised under
//! schedules no hand-written adversary produces.
//!
//! Every explored branch is a replayable tape; any safety/budget
//! violation is shrunk to a minimal counterexample
//! (`rr_sched::explore::shrink_tape`), printed in `Tape::to_text` form
//! and emitted as a `kind:"counterexample"` JSON record — CI fails the
//! job when one appears. Besides the deterministic coverage records, a
//! `kind:"throughput"` record per row tracks schedules-visited/sec as a
//! speed axis.

use crate::runner::RunConfig;
use crate::scenario::{registry, Record, ScenarioSpec, Section, Value};
use rr_analysis::table::fnum;
use rr_analysis::Table;
use rr_renaming::registry::BoxedAlgorithm;
use rr_sched::dense::Arena;
use rr_sched::explore::{Counterexample, ExhaustiveExplorer, FuzzExplorer};
use rr_sched::Adversary;
use rr_sched::RunOutcome;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What to explore. All fields have `--quick`-aware defaults; the
/// `exp_explore` CLI overrides a subset.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Algorithm registry keys for the exhaustive section.
    pub algorithms: Vec<String>,
    /// Sizes for the exhaustive section (protocols need n ≥ 4).
    pub sizes: Vec<usize>,
    /// DFS branching horizon (first `depth` decisions fork).
    pub depth: usize,
    /// Crash-decision budget inside the explored choice sets.
    pub crashes: usize,
    /// Hard cap on schedules per (algorithm, n) cell.
    pub limit: u64,
    /// Algorithm registry key for the fuzz sweep.
    pub fuzz_algorithm: String,
    /// Process count for the fuzz sweep (large enough that exhaustion
    /// is hopeless — the fuzzer's home turf).
    pub fuzz_n: usize,
    /// Fuzz rounds per strength.
    pub fuzz_rounds: u64,
    /// Perturbation strengths to sweep, in permille (0 = canonical
    /// replay, 1000 = uniformly random schedule).
    pub strengths: Vec<u32>,
}

impl ExploreOptions {
    /// `--quick`-aware defaults: every registered algorithm, exhaustive
    /// at n = 4 (full mode adds n = 5 and a deeper horizon), and a
    /// five-point strength sweep on `tight-tau:c=4`.
    pub fn defaults(cfg: &RunConfig) -> Self {
        Self {
            algorithms: registry().keys().iter().map(|k| k.to_string()).collect(),
            sizes: cfg.pick(vec![4, 5], vec![4]),
            depth: cfg.pick(5, 4),
            crashes: 0,
            limit: 200_000,
            fuzz_algorithm: "tight-tau:c=4".into(),
            fuzz_n: cfg.pick(256, 48),
            fuzz_rounds: cfg.pick(80, 12),
            strengths: vec![0, 100, 300, 600, 1000],
        }
    }
}

/// Emits one counterexample: the human-readable minimal tape plus a
/// `kind:"counterexample"` record, and raises the failure flag the
/// binary turns into a non-zero exit.
fn emit_counterexample(
    emitter: &mut crate::scenario::Emitter<'_, '_>,
    found: &Arc<AtomicBool>,
    section: &str,
    algorithm: &str,
    n: usize,
    cx: &Counterexample,
) {
    found.store(true, Ordering::Relaxed);
    emitter.text(format!("COUNTEREXAMPLE [{algorithm} at n={n}]: {}", cx.reason));
    emitter.text(format!("  minimal tape: `{}`", cx.tape.to_text()));
    emitter.record(&Record {
        scenario: "EXPLORE".into(),
        section: section.into(),
        fields: vec![
            ("kind".into(), Value::Str("counterexample".into())),
            ("algorithm".into(), Value::Str(algorithm.into())),
            ("n".into(), Value::U64(n as u64)),
            ("reason".into(), Value::Str(cx.reason.clone())),
            ("tape".into(), Value::Str(cx.tape.to_text())),
        ],
    });
}

/// One run of `algo` at `(n, seed 0)` through the dense arena under the
/// given adversary, renaming-audited: the closure both explorer drivers
/// consume.
fn run_dense_audited(
    algo: &BoxedAlgorithm,
    n: usize,
    arena: &mut Arena,
    adv: &mut dyn Adversary,
) -> Result<RunOutcome, String> {
    let out = algo.run_dense(n, 0, adv, arena).map_err(|e| e.to_string())?;
    out.verify_renaming(algo.m(n)).map_err(|v| format!("renaming violation: {v}"))?;
    Ok(out)
}

/// The explorer scenario. `violation_found` is raised whenever a shrunk
/// counterexample is emitted (the binary exits non-zero on it).
pub fn explore(
    cfg: &RunConfig,
    opts: &ExploreOptions,
    violation_found: Arc<AtomicBool>,
) -> ScenarioSpec {
    let _ = cfg; // exploration is inherently serial and always dense
    let exhaustive_opts = opts.clone();
    let exhaustive_flag = Arc::clone(&violation_found);
    let fuzz_opts = opts.clone();
    let fuzz_flag = violation_found;
    ScenarioSpec {
        id: "EXPLORE",
        claim: "systematic schedule-space search: every bounded schedule of every registry \
                algorithm, plus coverage-guided fuzzing, with minimal-tape counterexamples",
        sections: vec![
            Section::custom(move |emitter| {
                let o = exhaustive_opts;
                let reg = registry();
                emitter.text(format!(
                    "\n-- exhaustive DFS: depth {}, crash budget {}, seed 0, dense backend --",
                    o.depth, o.crashes
                ));
                let mut table = Table::new(vec![
                    "algorithm",
                    "n",
                    "depth",
                    "schedules",
                    "exhausted",
                    "worst steps",
                    "sched/s",
                ]);
                let mut arena = Arena::new();
                for key in &o.algorithms {
                    let algo = reg.build(key).unwrap_or_else(|e| panic!("scenario EXPLORE: {e}"));
                    for &n in &o.sizes {
                        let n = reg.n_cap(key).map_or(n, |cap| n.min(cap));
                        let mut explorer = ExhaustiveExplorer::new(o.depth, o.crashes);
                        let start = Instant::now();
                        let report = explorer
                            .explore(o.limit, |adv| run_dense_audited(&algo, n, &mut arena, adv));
                        let wall = start.elapsed().as_secs_f64();
                        let per_sec =
                            if wall > 0.0 { report.schedules as f64 / wall } else { f64::INFINITY };
                        table.row(vec![
                            key.clone(),
                            n.to_string(),
                            o.depth.to_string(),
                            report.schedules.to_string(),
                            if report.exhausted { "yes" } else { "no" }.into(),
                            report.worst_steps.to_string(),
                            fnum(per_sec, 0),
                        ]);
                        emitter.record(&Record {
                            scenario: "EXPLORE".into(),
                            section: "exhaustive".into(),
                            fields: vec![
                                ("algorithm".into(), Value::Str(key.clone())),
                                ("adversary".into(), Value::Str("explore".into())),
                                ("backend".into(), Value::Str("dense".into())),
                                ("n".into(), Value::U64(n as u64)),
                                ("depth".into(), Value::U64(o.depth as u64)),
                                ("crashes".into(), Value::U64(o.crashes as u64)),
                                ("schedules".into(), Value::U64(report.schedules)),
                                ("exhausted".into(), Value::U64(report.exhausted as u64)),
                                ("worst_steps".into(), Value::U64(report.worst_steps)),
                                (
                                    "violations".into(),
                                    Value::U64(report.counterexample.is_some() as u64),
                                ),
                            ],
                        });
                        emitter.record(&Record {
                            scenario: "EXPLORE".into(),
                            section: "exhaustive".into(),
                            fields: vec![
                                ("kind".into(), Value::Str("throughput".into())),
                                ("algorithm".into(), Value::Str(key.clone())),
                                ("adversary".into(), Value::Str("explore".into())),
                                ("backend".into(), Value::Str("dense".into())),
                                ("n".into(), Value::U64(n as u64)),
                                ("schedules".into(), Value::U64(report.schedules)),
                                ("wall_ms".into(), Value::F64(wall * 1e3)),
                                ("schedules_per_sec".into(), Value::F64(per_sec)),
                            ],
                        });
                        if let Some(cx) = &report.counterexample {
                            emit_counterexample(
                                emitter,
                                &exhaustive_flag,
                                "exhaustive",
                                key,
                                n,
                                cx,
                            );
                        }
                    }
                }
                emitter.text(table.to_string());
            }),
            Section::custom(move |emitter| {
                let o = fuzz_opts;
                let reg = registry();
                let algo = reg
                    .build(&o.fuzz_algorithm)
                    .unwrap_or_else(|e| panic!("scenario EXPLORE: {e}"));
                emitter.text(format!(
                    "\n-- fuzz: {} at n={}, {} rounds per strength, seed 0, dense backend --",
                    o.fuzz_algorithm, o.fuzz_n, o.fuzz_rounds
                ));
                let mut table = Table::new(vec![
                    "strength permille",
                    "rounds",
                    "novel",
                    "corpus",
                    "worst steps",
                    "sched/s",
                ]);
                for &strength in &o.strengths {
                    let mut arena = Arena::new();
                    let mut fuzzer = FuzzExplorer::new(0xF00D ^ strength as u64, strength, 256);
                    let start = Instant::now();
                    let report = fuzzer.fuzz(o.fuzz_n, o.fuzz_rounds, |adv| {
                        run_dense_audited(&algo, o.fuzz_n, &mut arena, adv)
                    });
                    let wall = start.elapsed().as_secs_f64();
                    let per_sec =
                        if wall > 0.0 { report.rounds as f64 / wall } else { f64::INFINITY };
                    table.row(vec![
                        strength.to_string(),
                        report.rounds.to_string(),
                        report.novel.to_string(),
                        report.corpus_len.to_string(),
                        report.worst_steps.to_string(),
                        fnum(per_sec, 0),
                    ]);
                    emitter.record(&Record {
                        scenario: "EXPLORE".into(),
                        section: "fuzz".into(),
                        fields: vec![
                            ("algorithm".into(), Value::Str(o.fuzz_algorithm.clone())),
                            ("adversary".into(), Value::Str("fuzz".into())),
                            ("backend".into(), Value::Str("dense".into())),
                            ("n".into(), Value::U64(o.fuzz_n as u64)),
                            ("strength".into(), Value::U64(strength as u64)),
                            ("rounds".into(), Value::U64(report.rounds)),
                            ("novel".into(), Value::U64(report.novel)),
                            ("corpus".into(), Value::U64(report.corpus_len as u64)),
                            ("worst_steps".into(), Value::U64(report.worst_steps)),
                            (
                                "violations".into(),
                                Value::U64(report.counterexample.is_some() as u64),
                            ),
                        ],
                    });
                    emitter.record(&Record {
                        scenario: "EXPLORE".into(),
                        section: "fuzz".into(),
                        fields: vec![
                            ("kind".into(), Value::Str("throughput".into())),
                            ("algorithm".into(), Value::Str(o.fuzz_algorithm.clone())),
                            ("adversary".into(), Value::Str("fuzz".into())),
                            ("backend".into(), Value::Str("dense".into())),
                            ("n".into(), Value::U64(o.fuzz_n as u64)),
                            ("strength".into(), Value::U64(strength as u64)),
                            ("schedules".into(), Value::U64(report.rounds)),
                            ("wall_ms".into(), Value::F64(wall * 1e3)),
                            ("schedules_per_sec".into(), Value::F64(per_sec)),
                        ],
                    });
                    if let Some(cx) = &report.counterexample {
                        emit_counterexample(
                            emitter,
                            &fuzz_flag,
                            "fuzz",
                            &o.fuzz_algorithm,
                            o.fuzz_n,
                            cx,
                        );
                    }
                }
                emitter.text(table.to_string());
            }),
        ],
        claim_check: "claim check: 'exhausted = yes' means every schedule of the bounded tree \
                      was executed exactly once under the renaming-safety audit; the fuzz \
                      'novel' column rises with perturbation strength (the interleaving \
                      diversity axis). Any violation would appear above as a COUNTEREXAMPLE \
                      with its minimal replayable tape."
            .into(),
        reproduces: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_spec, Emitter, JsonSink, Sink, TableSink};
    use rr_sched::replay::Tape;

    /// A tiny but real end-to-end run of the spec: one cheap algorithm,
    /// shallow exhaustive tree, two fuzz rounds — asserts the rendered
    /// sections, the exhaustion report and that no violation fires.
    #[test]
    fn tiny_explore_spec_runs_clean() {
        let opts = ExploreOptions {
            algorithms: vec!["fetch-add".into()],
            sizes: vec![4],
            depth: 2,
            crashes: 1,
            limit: 1_000,
            fuzz_algorithm: "aagw".into(),
            fuzz_n: 8,
            fuzz_rounds: 2,
            strengths: vec![0, 1000],
        };
        let flag = Arc::new(AtomicBool::new(false));
        let spec = explore(&RunConfig::default(), &opts, Arc::clone(&flag));
        let mut buf = Vec::new();
        {
            let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(TableSink::new(&mut buf))];
            run_spec(spec, &RunConfig::default(), &mut sinks);
        }
        let out = String::from_utf8(buf).unwrap();
        assert!(out.contains("-- exhaustive DFS: depth 2, crash budget 1"), "{out}");
        assert!(out.contains("fetch-add"), "{out}");
        assert!(out.contains("yes"), "tree must exhaust: {out}");
        assert!(out.contains("-- fuzz: aagw at n=8, 2 rounds per strength"), "{out}");
        assert!(!out.contains("COUNTEREXAMPLE ["), "{out}");
        assert!(!flag.load(Ordering::Relaxed), "no violation expected");
    }

    /// The counterexample wiring the binary's non-zero exit hangs off:
    /// emitting one must raise the flag, print the minimal tape, and
    /// produce the `kind:"counterexample"` record CI greps for.
    #[test]
    fn emit_counterexample_raises_flag_and_records() {
        let flag = Arc::new(AtomicBool::new(false));
        let cx = Counterexample {
            tape: Tape::from_text("g1 c0").unwrap(),
            reason: "renaming violation: name 3 assigned twice".into(),
        };
        let json_path =
            std::env::temp_dir().join(format!("rr_explore_cx_{}.json", std::process::id()));
        let mut buf = Vec::new();
        {
            let mut sinks: Vec<Box<dyn Sink + '_>> = vec![
                Box::new(TableSink::new(&mut buf)),
                Box::new(JsonSink::new(json_path.clone())),
            ];
            let mut emitter = Emitter::new(&mut sinks);
            emit_counterexample(&mut emitter, &flag, "exhaustive", "tight-tau:c=4", 5, &cx);
            for sink in &mut sinks {
                sink.finish().unwrap();
            }
        }
        assert!(flag.load(Ordering::Relaxed), "flag must be raised");
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("COUNTEREXAMPLE [tight-tau:c=4 at n=5]"), "{text}");
        assert!(text.contains("minimal tape: `g1 c0`"), "{text}");
        let json = std::fs::read_to_string(&json_path).unwrap();
        std::fs::remove_file(&json_path).ok();
        assert!(json.contains("\"kind\":\"counterexample\""), "{json}");
        assert!(json.contains("\"tape\":\"g1 c0\""), "{json}");
        assert!(json.contains("\"reason\":\"renaming violation: name 3 assigned twice\""));
    }
}
