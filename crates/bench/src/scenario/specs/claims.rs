//! The headline claims: Theorem 5, Lemmas 6/8 and Corollaries 7/9 as
//! pure batch-table scenarios. These are the specs the golden tests pin
//! byte-for-byte against the pre-engine binaries.

use crate::runner::RunConfig;
use crate::scenario::{BatchSection, ClaimCheck, Column, RowSpec, ScenarioSpec, Section};
use rr_analysis::stats::{norm_log2, norm_loglog_sq, per_n, upper_median};
use rr_analysis::table::fnum;
use rr_renaming::{spare, Lemma6Schedule, Lemma8Schedule, TightPlan};

/// E1 — Theorem 5: tight renaming of `n` processes into `n` names in
/// `O(log n)` steps w.h.p., using `O(n)` space.
///
/// For each `n` the calibrated §III protocol runs over many seeds; the
/// step complexity (max steps of any process) is reported normalized by
/// `log₂ n`. The claim holds if the normalized column is bounded by a
/// constant as `n` grows and no run fails. Space usage is total device
/// bits + name slots over `n`.
pub fn theorem5(cfg: &RunConfig) -> ScenarioSpec {
    let (sizes, seeds) = cfg
        .pick((vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18], 30), (vec![1 << 8, 1 << 10], 5));
    let c = 4u32;
    let rows = sizes
        .iter()
        .map(|&n| RowSpec::new(format!("tight-tau:c={c}"), "fair", n, cfg.seeds_for(n, seeds)))
        .collect();
    ScenarioSpec {
        id: "E1",
        claim: "Theorem 5 — tight renaming in O(log n) steps w.h.p., O(n) space",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: vec![
                Column::new("n", |ctx| ctx.row.n.to_string()),
                Column::new("runs", |ctx| ctx.row.seeds.to_string()),
                Column::new("steps p50", |ctx| {
                    upper_median(&ctx.stats.step_complexity).to_string()
                }),
                Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
                Column::new("max/log2(n)", |ctx| {
                    fnum(norm_log2(ctx.stats.max_steps() as f64, ctx.row.n), 2)
                }),
                Column::new("mean steps", |ctx| fnum(ctx.stats.mean_mean_steps(), 2)),
                Column::new("unnamed", |ctx| ctx.stats.max_unnamed().to_string()),
                Column::new("space/n", move |ctx| {
                    let plan = TightPlan::calibrated(ctx.row.n, c);
                    fnum(per_n((plan.total_bits() + plan.total_names()) as f64, ctx.row.n), 2)
                }),
            ],
            rows,
        })],
        claim_check: "claim check: 'max/log2(n)' bounded by a constant as n grows; \
                      'unnamed' identically 0; 'space/n' bounded (O(n) space)."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "theorem5",
            bound: "O(log n) steps w.h.p., O(n) space, m = n",
        }],
    }
}

/// E4 — Lemma 6: `n/(log log n)^ℓ`-almost-tight renaming on `n` TAS
/// registers with step complexity `O((log log n)^ℓ)`.
///
/// For ℓ ∈ {1,2,3} and a sweep of n, the unnamed count is checked
/// against the `2n/(log log n)^ℓ` w.h.p. bound and the exact step
/// ceiling `Σ 2^i`.
pub fn lemma6(cfg: &RunConfig) -> ScenarioSpec {
    let (sizes, seeds) = cfg.pick(
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30),
        (vec![1 << 10, 1 << 12], 5),
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        for ell in [1u32, 2, 3] {
            rows.push(
                RowSpec::new(format!("loose-l6:l={ell}"), "fair", n, cfg.seeds_for(n, seeds))
                    .tagged(ell as u64),
            );
        }
    }
    let schedule_of =
        |ctx: &crate::scenario::RowCtx<'_>| Lemma6Schedule::new(ctx.row.n, ctx.row.tag as u32);
    ScenarioSpec {
        id: "E4",
        claim: "Lemma 6 — n/(loglog n)^l-almost-tight renaming in O((loglog n)^l) steps",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: vec![
                Column::new("n", |ctx| ctx.row.n.to_string()),
                Column::new("l", |ctx| ctx.row.tag.to_string()),
                Column::new("rounds", move |ctx| schedule_of(ctx).rounds.to_string()),
                Column::new("step bound", move |ctx| schedule_of(ctx).total_steps.to_string()),
                Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
                Column::new("unnamed mean", |ctx| fnum(ctx.stats.mean_unnamed(), 1)),
                Column::new("unnamed max", |ctx| ctx.stats.max_unnamed().to_string()),
                Column::new("bound 2n/(lln)^l", move |ctx| fnum(schedule_of(ctx).unnamed_bound, 1)),
                Column::new("ok", move |ctx| {
                    if (ctx.stats.max_unnamed() as f64) <= schedule_of(ctx).unnamed_bound {
                        "yes".into()
                    } else {
                        "VIOLATED".to_string()
                    }
                }),
            ],
            rows,
        })],
        claim_check: "claim check: every row 'ok' = yes (unnamed within the w.h.p. \
                      bound) and 'steps max' ≤ 'step bound' (the schedule is the exact \
                      ceiling)."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "lemma6",
            bound: "unnamed <= 2n/(loglog n)^l w.h.p., steps <= the exact schedule ceiling",
        }],
    }
}

/// E6 — Lemma 8: `n/(log n)^ℓ`-almost-tight renaming with step
/// complexity `2ℓ(log log n)²` (the corrected schedule: `ℓ·⌈loglog n⌉`
/// phases; see DESIGN.md, gap 4).
pub fn lemma8(cfg: &RunConfig) -> ScenarioSpec {
    let (sizes, seeds) = cfg.pick(
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30),
        (vec![1 << 10, 1 << 12], 5),
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        for ell in [1u32, 2] {
            rows.push(
                RowSpec::new(format!("loose-l8:l={ell}"), "fair", n, cfg.seeds_for(n, seeds))
                    .tagged(ell as u64),
            );
        }
    }
    let schedule_of =
        |ctx: &crate::scenario::RowCtx<'_>| Lemma8Schedule::new(ctx.row.n, ctx.row.tag as u32);
    ScenarioSpec {
        id: "E6",
        claim: "Lemma 8 — n/(log n)^l-almost-tight renaming in 2l^2(loglog n)^2 steps",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: vec![
                Column::new("n", |ctx| ctx.row.n.to_string()),
                Column::new("l", |ctx| ctx.row.tag.to_string()),
                Column::new("phases", move |ctx| schedule_of(ctx).phases.to_string()),
                Column::new("step bound", move |ctx| schedule_of(ctx).total_steps().to_string()),
                Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
                Column::new("capacity floor", move |ctx| {
                    (ctx.row.n - schedule_of(ctx).capacity()).to_string()
                }),
                Column::new("unnamed mean", |ctx| fnum(ctx.stats.mean_unnamed(), 1)),
                Column::new("unnamed max", |ctx| ctx.stats.max_unnamed().to_string()),
                Column::new("bound n/(ln)^l", move |ctx| fnum(schedule_of(ctx).unnamed_bound, 1)),
            ],
            rows,
        })],
        claim_check: "claim check: 'unnamed max' within a small constant of \
                      'bound n/(ln)^l' (asymptotic bound; the structural floor \
                      n − capacity is part of it), 'steps max' ≤ 'step bound'."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "lemma8",
            bound: "unnamed ~ n/(log n)^l + structural floor, steps <= 2l(loglog n)^2",
        }],
    }
}

/// Shared row/column shape of the two corollary scenarios (the composed
/// loose protocols differ only in spare sizing and display precision).
fn corollary_rows(cfg: &RunConfig, key: &str) -> Vec<RowSpec> {
    let (sizes, seeds) = cfg.pick(
        (vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20], 30),
        (vec![1 << 10, 1 << 12], 5),
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        for ell in [1u32, 2] {
            rows.push(
                RowSpec::new(format!("{key}:l={ell}"), "fair", n, cfg.seeds_for(n, seeds))
                    .tagged(ell as u64),
            );
        }
    }
    rows
}

fn corollary_columns(
    mn_digits: usize,
    spare_of: impl Fn(usize, u32) -> usize + Copy + 'static,
) -> Vec<Column> {
    vec![
        Column::new("n", |ctx| ctx.row.n.to_string()),
        Column::new("l", |ctx| ctx.row.tag.to_string()),
        Column::new("m/n", move |ctx| {
            fnum(ctx.algo.m(ctx.row.n) as f64 / ctx.row.n as f64, mn_digits)
        }),
        Column::new("spare", move |ctx| spare_of(ctx.row.n, ctx.row.tag as u32).to_string()),
        Column::new("steps p50", |ctx| upper_median(&ctx.stats.step_complexity).to_string()),
        Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
        Column::new("max/(lln)^2", |ctx| {
            fnum(norm_loglog_sq(ctx.stats.max_steps() as f64, ctx.row.n), 2)
        }),
        Column::new("max/log2 n", |ctx| {
            fnum(norm_log2(ctx.stats.max_steps() as f64, ctx.row.n), 2)
        }),
        Column::new("unnamed", |ctx| ctx.stats.max_unnamed().to_string()),
    ]
}

/// E5 — Corollary 7: full loose renaming with
/// `m = n + 2n/(log log n)^ℓ` names and `O((log log n)^ℓ)` steps w.h.p.
pub fn cor7(cfg: &RunConfig) -> ScenarioSpec {
    ScenarioSpec {
        id: "E5",
        claim: "Corollary 7 — loose renaming, m = n + 2n/(loglog n)^l, O((loglog n)^l) steps",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: corollary_columns(4, spare::cor7),
            rows: corollary_rows(cfg, "cor7"),
        })],
        claim_check: "claim check: 'unnamed' identically 0 (full renaming); \
                      'max/(lln)^2' bounded (poly-log-log steps; our finisher costs \
                      O((loglog)^2), see DESIGN.md); m/n → 1 as n or l grows \
                      ((1+o(1))·n name space)."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "cor7",
            bound: "full renaming into m = n + 2n/(loglog n)^l names, poly-loglog steps",
        }],
    }
}

/// E7 — Corollary 9: full loose renaming with `m = n + 2n/(log n)^ℓ`
/// names and `O((log log n)²)` steps w.h.p. — the headline loose result.
pub fn cor9(cfg: &RunConfig) -> ScenarioSpec {
    ScenarioSpec {
        id: "E7",
        claim: "Corollary 9 — loose renaming, m = n + 2n/(log n)^l, O((loglog n)^2) steps",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: corollary_columns(5, spare::cor9),
            rows: corollary_rows(cfg, "cor9"),
        })],
        claim_check: "claim check: 'unnamed' identically 0; 'max/(lln)^2' bounded by \
                      a constant as n grows; m/n = 1 + 2/(log n)^l → 1 polynomially."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "cor9",
            bound: "full renaming into m = n + 2n/(log n)^l names, O((loglog n)^2) steps",
        }],
    }
}
