//! Comparison scenarios: adversary robustness (E9), the baseline
//! landscape (E8), the deterministic gap (E11) and the progress curves
//! (E15).

use crate::runner::{BatchRun, RunConfig, Schedule};
use crate::scenario::{BatchSection, Column, RowSpec, ScenarioSpec, Section};
use rr_analysis::stats::{norm_log2, norm_loglog_sq, upper_median};
use rr_analysis::table::{fnum, Table};
use rr_baselines::aks_model;
use rr_baselines::{LinearScan, ScanStart, SplitterGrid};
use rr_renaming::traits::{Cor9, RenamingAlgorithm};
use rr_renaming::TightRenaming;
use rr_sched::adversary::{Adversary, Decision, FairAdversary, RunView};
use rr_sched::process::Process;
use rr_sched::virtual_exec::run;
use std::cell::Cell;
use std::rc::Rc;

/// Adversary display label: the typed [`Schedule`] label when the key
/// parses (the tables have always shown `collision-max`,
/// `crash(p=2.0%,cap=10%)`, …), else the raw key.
fn adversary_label(key: &str) -> String {
    Schedule::parse(key).map(|s| s.label()).unwrap_or_else(|_| key.to_string())
}

/// E9 — model validation (§II-A): the w.h.p. guarantees hold against an
/// *adaptive* adversary that sees coin flips, and under crashes.
///
/// Each protocol runs under fair, random, collision-maximizing and two
/// crash schedules; the table reports step inflation relative to fair.
/// Renaming safety is audited on every run (the harness panics on any
/// violation).
pub fn adversary(cfg: &RunConfig) -> ScenarioSpec {
    let (n, seeds) = cfg.pick((1 << 12, 20u64), (1 << 8, 5u64));
    let schedules = ["fair", "random", "collisions", "crash:p=20,cap=10", "crash:p=200,cap=50"];
    let mut rows = Vec::new();
    for algo in ["tight-tau:c=4", "cor9:l=1"] {
        for schedule in schedules {
            rows.push(RowSpec::new(algo, schedule, n, seeds));
        }
    }
    // Step inflation is relative to the *fair* row of the current
    // algorithm group; the fair row (always first in its group) stores
    // the denominator as it renders.
    let fair_max = Rc::new(Cell::new(1u64));
    let fm = Rc::clone(&fair_max);
    ScenarioSpec {
        id: "E9",
        claim: "adaptive adversaries and crashes — safety and step inflation",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: vec![
                Column::new("algorithm", |ctx| ctx.algo.name()),
                Column::new("schedule", |ctx| adversary_label(&ctx.row.adversary)),
                Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
                Column::new("inflation", move |ctx| {
                    if ctx.row.adversary == "fair" {
                        fm.set(ctx.stats.max_steps().max(1));
                    }
                    fnum(ctx.stats.max_steps() as f64 / fm.get() as f64, 2)
                }),
                Column::new("crashed mean", |ctx| {
                    fnum(
                        ctx.stats.crashed.iter().sum::<usize>() as f64
                            / ctx.stats.crashed.len() as f64,
                        1,
                    )
                }),
                Column::new("survivors unnamed", |ctx| ctx.stats.max_unnamed().to_string()),
            ],
            rows,
        })],
        claim_check: "claim check: no safety violations under any schedule (the \
                      harness aborts otherwise); step inflation stays a small constant \
                      — the protocols' bounds are adversary-robust, as proved; crashes \
                      never strand a surviving process ('survivors unnamed' = 0)."
            .into(),
        reproduces: vec![],
    }
}

/// E8 — the paper's comparison landscape (§I, §I.A, §V).
///
/// Tight renaming: τ-register protocol vs comparator-network renaming
/// \[7\] vs ideal fetch-add; the analytic AKS depth model in between;
/// loose renaming: Lemma 6 / Lemma 8 / Corollary 9 vs the \[8\]-style
/// finisher standalone vs uniform probing.
pub fn baselines(cfg: &RunConfig) -> ScenarioSpec {
    let (sizes, seeds) = cfg
        .pick((vec![1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18], 20), (vec![1 << 8, 1 << 10], 5));

    let mut tight_rows = Vec::new();
    for &n in &sizes {
        for algo in ["tight-tau:c=4", "bitonic", "fetch-add"] {
            tight_rows.push(RowSpec::new(algo, "fair", n, cfg.seeds_for(n, seeds)));
        }
    }
    let tight = BatchSection {
        title: Some("tight renaming (m = n, or next power of two for the network)".into()),
        columns: vec![
            Column::new("algorithm", |ctx| ctx.algo.name()),
            Column::new("n", |ctx| ctx.row.n.to_string()),
            Column::new("m", |ctx| ctx.algo.m(ctx.row.n).to_string()),
            Column::new("steps p50", |ctx| upper_median(&ctx.stats.step_complexity).to_string()),
            Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
            Column::new("max/log2 n", |ctx| {
                fnum(norm_log2(ctx.stats.max_steps() as f64, ctx.row.n), 2)
            }),
            Column::new("max/log2^2 n", |ctx| {
                let log_n = (ctx.row.n as f64).log2();
                fnum(ctx.stats.max_steps() as f64 / (log_n * log_n), 3)
            }),
        ],
        rows: tight_rows,
    };

    let aks = Section::custom(|em| {
        em.text("\n-- AKS depth model (why the paper avoids AKS) --");
        let mut aks = Table::new(vec!["width", "bitonic depth", "AKS model depth", "bitonic wins"]);
        for exp in [10u32, 16, 20, 30] {
            let w = 1usize << exp;
            let b = aks_model::bitonic_depth(w);
            let a = aks_model::aks_depth(w);
            aks.row(vec![
                format!("2^{exp}"),
                b.to_string(),
                fnum(a, 0),
                if (b as f64) < a { "yes".into() } else { "no".to_string() },
            ]);
        }
        em.text(aks.to_string());
        em.text(format!(
            "(AKS only catches up at width ≈ 2^{}, far beyond any machine.)",
            aks_model::aks_crossover_log2()
        ));
    });

    let mut loose_rows = Vec::new();
    for &n in &sizes {
        for algo in ["loose-l6:l=2", "loose-l8:l=1", "cor9:l=1", "aagw", "uniform:eps=1"] {
            loose_rows.push(RowSpec::new(algo, "fair", n, cfg.seeds_for(n, seeds)));
        }
    }
    let loose = BatchSection {
        title: Some("loose renaming".into()),
        columns: vec![
            Column::new("algorithm", |ctx| ctx.algo.name()),
            Column::new("n", |ctx| ctx.row.n.to_string()),
            Column::new("m/n", |ctx| fnum(ctx.algo.m(ctx.row.n) as f64 / ctx.row.n as f64, 3)),
            Column::new("steps p50", |ctx| upper_median(&ctx.stats.step_complexity).to_string()),
            Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
            Column::new("max/(lln)^2", |ctx| {
                fnum(norm_loglog_sq(ctx.stats.max_steps() as f64, ctx.row.n), 2)
            }),
            Column::new("unnamed max", |ctx| ctx.stats.max_unnamed().to_string()),
        ],
        rows: loose_rows,
    };

    ScenarioSpec {
        id: "E8",
        claim: "comparison — tau-register vs sorting networks vs loose baselines",
        sections: vec![Section::Batch(tight), aks, Section::Batch(loose)],
        claim_check: "claim check: tau-register max/log2 n bounded while bitonic \
                      max/log2^2 n is the bounded one (O(log n) vs O(log² n)); \
                      fetch-add = 1 step (ideal hardware); loose protocols bounded in \
                      (loglog n)^2 while uniform probing's max grows like log n."
            .into(),
        reproduces: vec![],
    }
}

/// E11 — §I.A: deterministic renaming costs Θ(n) steps, "exponentially
/// worse" than the randomized protocols.
///
/// Each table row spans four differently-seeded batches (deterministic
/// scan, capped splitter grid, tight, loose), so this runs as a custom
/// section over the typed [`Schedule`] API rather than a batch table.
pub fn deterministic_gap(cfg: &RunConfig) -> ScenarioSpec {
    let (sizes, seeds) =
        cfg.pick((vec![1 << 10, 1 << 12, 1 << 14, 1 << 16], 10u64), (vec![1 << 8, 1 << 10], 3u64));
    let body = Section::custom(move |em| {
        let det = LinearScan { start: ScanStart::Zero };
        let grid = SplitterGrid;
        let tight = TightRenaming::calibrated(4);
        let loose = Cor9 { ell: 1 };

        let mut table = Table::new(vec![
            "n",
            "linear-scan max",
            "grid max (r/w, n capped 2^12)",
            "tight-tau max",
            "cor9 max",
            "det/tight",
            "det/loose",
        ]);
        for &n in &sizes {
            let batch = |algo: &(dyn RenamingAlgorithm + Sync), n: usize, seeds: u64| {
                BatchRun::new(algo, n).seeds(seeds).stats().unwrap()
            };
            let d = batch(&det, n, 1); // deterministic: 1 run
                                       // The grid is Θ(n) steps/process and Θ(n²) registers — cap its
                                       // size so the table regenerates in seconds (the linear trend
                                       // is unambiguous by 2^12).
            let g = batch(&grid, n.min(1 << 12), 1);
            let t = batch(&tight, n, seeds);
            let l = batch(&loose, n, seeds);
            table.row(vec![
                n.to_string(),
                d.max_steps().to_string(),
                g.max_steps().to_string(),
                t.max_steps().to_string(),
                l.max_steps().to_string(),
                fnum(d.max_steps() as f64 / t.max_steps() as f64, 1),
                fnum(d.max_steps() as f64 / l.max_steps() as f64, 1),
            ]);
        }
        em.text(table.to_string());
    });
    ScenarioSpec {
        id: "E11",
        claim: "deterministic Θ(n) vs randomized O(log n) / O((loglog n)^2)",
        sections: vec![body],
        claim_check: "claim check: 'linear-scan max' = n exactly; both ratio columns \
                      grow roughly linearly in n/log n — the exponential separation \
                      between deterministic and randomized renaming."
            .into(),
        reproduces: vec![],
    }
}

/// Wraps the fair adversary and snapshots `named / n` every `n` grants
/// (≈ one global step per process under round-robin).
struct ProgressProbe {
    inner: FairAdversary,
    grants: u64,
    n: u64,
    /// `series[t]` = named fraction after ~t steps per process.
    series: Vec<f64>,
}

impl ProgressProbe {
    fn new(n: usize) -> Self {
        Self { inner: FairAdversary::default(), grants: 0, n: n as u64, series: vec![0.0] }
    }
}

impl Adversary for ProgressProbe {
    fn decide(&mut self, view: &RunView<'_>) -> Decision {
        self.grants += 1;
        if self.grants % self.n == 0 {
            self.series.push(view.named as f64 / self.n as f64);
        }
        self.inner.decide(view)
    }

    fn name(&self) -> &'static str {
        "progress-probe"
    }
}

fn series_for(algo: &dyn RenamingAlgorithm, n: usize, seed: u64) -> Vec<f64> {
    let inst = algo.instantiate(n, seed);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let mut probe = ProgressProbe::new(n);
    let out = run(procs, &mut probe, algo.step_budget(n)).unwrap();
    out.verify_renaming(m).unwrap();
    probe.series.push(1.0);
    probe.series
}

/// E15 — progress curves ("the figure"): fraction of processes named as
/// a function of elapsed per-process steps, for the paper's protocols
/// and the baselines, at geometric checkpoints.
pub fn progress(cfg: &RunConfig) -> ScenarioSpec {
    let n = cfg.pick(1 << 14, 1 << 10);
    let body = Section::custom(move |em| {
        let reg = crate::scenario::registry();
        let keys = ["tight-tau:c=4", "bitonic", "cor9:l=1", "uniform:eps=1"];
        let series: Vec<(String, Vec<f64>)> = keys
            .iter()
            .map(|key| {
                let algo = reg.build(key).expect("progress keys are registered");
                (algo.name(), series_for(algo.as_ref(), n, 0xE15))
            })
            .collect();

        let mut header_row: Vec<String> = vec!["steps/proc".into()];
        header_row.extend(series.iter().map(|(name, _)| name.clone()));
        let mut table = Table::new(header_row);
        let max_len = series.iter().map(|(_, s)| s.len()).max().unwrap();
        // Geometric checkpoints keep the table short while showing the tail.
        let mut t = 1usize;
        let mut checkpoints = vec![0usize];
        while t < max_len {
            checkpoints.push(t);
            t = (t * 2).max(t + 1);
        }
        // Always include the final point so late synchronized finishes (the
        // network completes at exactly its depth) are visible.
        if *checkpoints.last().unwrap() != max_len - 1 {
            checkpoints.push(max_len - 1);
        }
        for &cp in &checkpoints {
            let mut row = vec![cp.to_string()];
            for (_, s) in &series {
                let v = s.get(cp).copied().unwrap_or(1.0);
                row.push(fnum(v, 4));
            }
            table.row(row);
        }
        em.text(table.to_string());
    });
    ScenarioSpec {
        id: "E15",
        claim: "progress curves — named fraction vs per-process steps (fair schedule)",
        sections: vec![body],
        claim_check: format!(
            "claim check (n = {n}): cor9 saturates within ~a dozen steps \
             (poly-loglog); tight-tau and bitonic take a logarithmic tail; \
             uniform probing starts fastest but its last stragglers linger — \
             the distribution shapes behind the step-complexity tables."
        ),
        reproduces: vec![],
    }
}
