//! The umbrella cross-product scenario: any registered algorithm under
//! any registered adversary at any size, from string keys alone — the
//! coverage the per-claim binaries never had.

use crate::runner::RunConfig;
use crate::scenario::{registry, BatchSection, Column, RowSpec, ScenarioSpec, Section};
use rr_analysis::stats::{norm_log2, upper_median};
use rr_analysis::table::fnum;

/// What to cross: all fields have `--quick`-aware defaults (see
/// [`MatrixOptions::defaults`]); the `exp_matrix` CLI overrides any of
/// them.
#[derive(Debug, Clone)]
pub struct MatrixOptions {
    /// Algorithm registry keys.
    pub algorithms: Vec<String>,
    /// Adversary registry keys.
    pub adversaries: Vec<String>,
    /// Sizes to sweep (clamped per algorithm by its registry `n_cap`).
    pub sizes: Vec<usize>,
    /// Seeds per cell.
    pub seeds: u64,
}

impl MatrixOptions {
    /// Quick mode: every registered algorithm once, under the fair
    /// schedule at one small size — the CI smoke configuration. Full
    /// mode: every algorithm under every *stateless* registered
    /// adversary over a small sweep. The stateful schedule-space
    /// searchers (`explore`, `fuzz`) are excluded from the defaults:
    /// their shared DFS/corpus hands schedules to parallel seed-workers
    /// in lock order, so their non-throughput records would not be
    /// run-to-run deterministic — pass them explicitly (ideally with
    /// `RR_RUNNER_THREADS=1`) or use `exp_explore`, whose drivers are
    /// serial by construction.
    pub fn defaults(cfg: &RunConfig) -> Self {
        let reg = registry();
        let algorithms = reg.keys().iter().map(|k| k.to_string()).collect();
        let adversaries = cfg.pick(
            rr_sched::registry::standard()
                .keys()
                .iter()
                .filter(|k| !matches!(**k, "explore" | "fuzz"))
                .map(|k| k.to_string())
                .collect(),
            vec!["fair".to_string()],
        );
        Self {
            algorithms,
            adversaries,
            sizes: cfg.pick(vec![256, 1024], vec![256]),
            seeds: cfg.pick(5, 2),
        }
    }
}

/// The cross-product scenario over `opts`.
pub fn matrix(cfg: &RunConfig, opts: &MatrixOptions) -> ScenarioSpec {
    let reg = registry();
    let mut rows = Vec::new();
    for &n in &opts.sizes {
        for algo in &opts.algorithms {
            // Clamp super-linear algorithms (e.g. the Θ(n²)-register
            // splitter grid) to their registry cap.
            let n = reg.n_cap(algo).map_or(n, |cap| n.min(cap));
            for adversary in &opts.adversaries {
                rows.push(RowSpec::new(algo.clone(), adversary.clone(), n, opts.seeds));
            }
        }
    }
    let _ = cfg;
    ScenarioSpec {
        id: "MATRIX",
        claim: "algorithm × adversary × n cross-product over the registries",
        sections: vec![Section::Batch(BatchSection {
            title: None,
            columns: vec![
                Column::new("algorithm", |ctx| ctx.row.algorithm.clone()),
                Column::new("adversary", |ctx| ctx.row.adversary.clone()),
                Column::new("n", |ctx| ctx.row.n.to_string()),
                Column::new("seeds", |ctx| ctx.row.seeds.to_string()),
                Column::new("m/n", |ctx| fnum(ctx.algo.m(ctx.row.n) as f64 / ctx.row.n as f64, 3)),
                Column::new("steps p50", |ctx| {
                    upper_median(&ctx.stats.step_complexity).to_string()
                }),
                Column::new("steps max", |ctx| ctx.stats.max_steps().to_string()),
                Column::new("max/log2 n", |ctx| {
                    fnum(norm_log2(ctx.stats.max_steps() as f64, ctx.row.n), 2)
                }),
                Column::new("mean steps", |ctx| fnum(ctx.stats.mean_mean_steps(), 2)),
                Column::new("unnamed max", |ctx| ctx.stats.max_unnamed().to_string()),
                Column::new("crashed", |ctx| ctx.stats.total_crashed().to_string()),
            ],
            rows,
        })],
        claim_check: "claim check: every cell ran under the renaming-safety audit (the \
                      harness panics on any violation); 'unnamed max' > 0 only for the \
                      almost-tight protocols and the crash schedules; 'crashed' > 0 \
                      only under crash."
            .into(),
        reproduces: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full-mode defaults must stay run-to-run deterministic: the
    /// stateful searchers are opt-in, never swept implicitly.
    #[test]
    fn defaults_exclude_the_stateful_searchers() {
        let full = MatrixOptions::defaults(&RunConfig::default());
        assert!(full.adversaries.iter().all(|k| k != "explore" && k != "fuzz"), "{full:?}");
        assert_eq!(
            full.adversaries,
            vec![
                "bursty",
                "collisions",
                "crash",
                "diurnal",
                "fair",
                "lookahead",
                "random",
                "stall",
                "victim",
            ],
            "every stateless registry adversary, in key order"
        );
        let quick = MatrixOptions::defaults(&RunConfig { quick: true, ..RunConfig::default() });
        assert_eq!(quick.adversaries, vec!["fair"]);
    }
}
