//! The backend shoot-out: the same algorithm × adversary × n batch on
//! every execution core, timed — the scenario behind `exp_backends` and
//! the committed `BENCH_backends.json` speed trajectory.

use crate::runner::{BatchRun, BatchStats, BatchTiming, ExecBackend, RunConfig};
use crate::scenario::{registry, Record, ScenarioSpec, Section, Value};
use rr_analysis::stats::upper_median;
use rr_analysis::table::fnum;
use rr_analysis::Table;
use rr_sched::registry::standard;
use rr_sched::shard::Arena;
use rr_shmem::rng::RngMode;
use std::time::Instant;

/// What to race. Defaults target the paper's headline configuration at
/// scale: `tight-tau` under the fair schedule at n = 2²⁰ (`--quick`
/// drops to n = 2¹² so CI finishes in seconds).
#[derive(Debug, Clone)]
pub struct BackendsOptions {
    /// Algorithm registry key.
    pub algorithm: String,
    /// Adversary registry key.
    pub adversary: String,
    /// Process count.
    pub n: usize,
    /// Seeds per backend.
    pub seeds: u64,
}

impl BackendsOptions {
    /// `--quick`-aware defaults (see the type docs).
    pub fn defaults(cfg: &RunConfig) -> Self {
        Self {
            algorithm: "tight-tau:c=4".into(),
            adversary: "fair".into(),
            n: cfg.pick(1 << 20, 1 << 12),
            seeds: cfg.pick(3, 2),
        }
    }
}

/// The shoot-out scenario: `virtual`, `dense`, `shard:s=1` and
/// `shard:s=4` over the identical batch, wall-clocked, with the
/// speedup-over-virtual in the last column. `dense` and `shard:s=1`
/// promise bit-identity to `virtual` and the race asserts it (not
/// assumes it); `shard:s=4` runs a genuinely different — but still
/// (seed, S)-deterministic — partitioned schedule, so only its
/// aggregate run count is checked. The shard counts are pinned, not
/// core-count-derived, so the table is byte-stable across machines.
/// The free-running `threads` backend is deliberately absent here: its
/// schedule is the machine's, so it answers a different question (see
/// `exp_matrix --backend threads:t=N`).
pub fn backends(cfg: &RunConfig, opts: &BackendsOptions) -> ScenarioSpec {
    let threads = cfg.threads;
    let rng = cfg.rng;
    let opts = opts.clone();
    ScenarioSpec {
        id: "BACKENDS",
        claim: "one execution loop, three execution cores — dense and shard:s=1 must match \
                virtual bit-for-bit, and sharding must scale with cores",
        sections: vec![Section::custom(move |emitter| {
            let reg = registry();
            let algo =
                reg.build(&opts.algorithm).unwrap_or_else(|e| panic!("scenario BACKENDS: {e}"));
            // Clamp super-linear algorithms to their registry cap, like
            // exp_matrix — the n = 2²⁰ default would otherwise ask the
            // splitter grid for terabytes of cells.
            let opts = BackendsOptions {
                n: reg.n_cap(&opts.algorithm).map_or(opts.n, |cap| opts.n.min(cap)),
                ..opts
            };
            emitter.text(format!(
                "\n-- {} under {} at n={}, {} seeds --",
                opts.algorithm, opts.adversary, opts.n, opts.seeds
            ));
            let mut table = Table::new(vec![
                "backend",
                "steps p50",
                "total steps",
                "wall s",
                "runs/s",
                "Msteps/s",
                "speedup",
            ]);
            let mut reference: Option<(BatchStats, f64)> = None;
            for backend in [
                ExecBackend::Virtual,
                ExecBackend::Dense,
                ExecBackend::Shard { s: 1 },
                ExecBackend::Shard { s: 4 },
            ] {
                let (stats, timing) = BatchRun::new(algo.as_ref(), opts.n)
                    .seeds(opts.seeds)
                    .adversary(&opts.adversary)
                    .backend(backend)
                    .rng_mode(rng)
                    .workers(threads)
                    .run()
                    .unwrap_or_else(|e| panic!("scenario BACKENDS: {e}"));
                // Only the backends that promise it are held to
                // bit-identity with the virtual reference; shard:s=4
                // runs a different (deterministic) partitioned schedule.
                let bit_identical =
                    matches!(backend, ExecBackend::Dense | ExecBackend::Shard { s: 1 });
                let speedup = match &reference {
                    None => "1.00x (baseline)".to_string(),
                    Some((virt, virt_wall)) => {
                        if bit_identical {
                            assert_eq!(
                                virt.step_complexity,
                                stats.step_complexity,
                                "{} diverged from virtual on step complexity",
                                backend.key()
                            );
                            assert_eq!(
                                virt.total_steps,
                                stats.total_steps,
                                "{} diverged from virtual on total steps",
                                backend.key()
                            );
                        } else {
                            assert_eq!(virt.runs, stats.runs, "{} dropped runs", backend.key());
                        }
                        format!("{}x", fnum(virt_wall / timing.wall_secs, 2))
                    }
                };
                table.row(vec![
                    backend.key(),
                    upper_median(&stats.step_complexity).to_string(),
                    stats.total_work().to_string(),
                    fnum(timing.wall_secs, 3),
                    fnum(timing.runs_per_sec(), 2),
                    fnum(timing.steps_per_sec() / 1e6, 2),
                    speedup,
                ]);
                let mut fields = vec![
                    ("kind".into(), Value::Str("throughput".into())),
                    ("algorithm".into(), Value::Str(opts.algorithm.clone())),
                    ("adversary".into(), Value::Str(opts.adversary.clone())),
                    ("backend".into(), Value::Str(backend.key())),
                    ("n".into(), Value::U64(opts.n as u64)),
                    ("runs".into(), Value::U64(timing.runs)),
                    ("steps_total".into(), Value::U64(timing.steps)),
                    ("wall_ms".into(), Value::F64(timing.wall_secs * 1e3)),
                    ("runs_per_sec".into(), Value::F64(timing.runs_per_sec())),
                    ("steps_per_sec".into(), Value::F64(timing.steps_per_sec())),
                ];
                if rng != RngMode::default() {
                    fields.push(("rng".into(), Value::Str(rng.key().into())));
                }
                emitter.record(&Record {
                    scenario: "BACKENDS".into(),
                    section: String::new(),
                    fields,
                });
                if reference.is_none() {
                    reference = Some((stats, timing.wall_secs));
                }
            }
            emitter.text(table.to_string());
            if rng != RngMode::default() {
                // The whole shoot-out already ran under the requested
                // non-default mode (every record above is tagged), so
                // the dedicated default-vs-counter comparison leg would
                // compare counter against itself — skip it, loudly.
                emitter.text(format!(
                    "\n-- --rng {rng}: the table above ran entirely under the non-default \
                     stream; the default-vs-counter comparison leg is skipped --"
                ));
                return;
            }
            let (_, virtual_wall) = reference.expect("virtual baseline ran first");

            // --- counter-RNG leg -----------------------------------
            // The flagged per-step cost floor: the same batch with the
            // counter RNG backend (a documented modelling change — its
            // records carry "rng":"counter"; the default rows above are
            // untouched, bit for bit). The dense row runs through an
            // explicit arena so the batched request_block macro-step
            // stats are visible; virtual and dense must still agree
            // bit-for-bit under the new coin stream.
            emitter.text(
                "\n-- counter RNG mode (modelling change: different coin stream, \
                 records tagged \"rng\":\"counter\") --",
            );
            let virt_counter = BatchRun::new(algo.as_ref(), opts.n)
                .seeds(opts.seeds)
                .adversary(&opts.adversary)
                .backend(ExecBackend::Virtual)
                .rng_mode(RngMode::Counter)
                .workers(threads)
                .run()
                .unwrap_or_else(|e| panic!("scenario BACKENDS: {e}"));
            let build = standard()
                .prepare(&opts.adversary)
                .unwrap_or_else(|e| panic!("scenario BACKENDS: {e}"));
            let mut arena = Arena::new();
            let start = Instant::now();
            let outs: Vec<_> = (0..opts.seeds)
                .map(|seed| {
                    let mut adv = build(opts.n, seed);
                    algo.run_dense_rng(opts.n, seed, RngMode::Counter, adv.as_mut(), &mut arena)
                        .unwrap_or_else(|e| panic!("scenario BACKENDS: {e}"))
                })
                .collect();
            let dense_wall = start.elapsed().as_secs_f64();
            for out in &outs {
                out.verify_renaming(algo.m(opts.n))
                    .unwrap_or_else(|e| panic!("scenario BACKENDS: {e}"));
            }
            let dense_counter = BatchStats::from_outcomes(&outs, opts.n);
            let (block_claims, block_steps) = arena.block_stats();
            assert_eq!(
                virt_counter.0.step_complexity, dense_counter.step_complexity,
                "dense diverged from virtual on step complexity under counter mode"
            );
            assert_eq!(
                virt_counter.0.total_steps, dense_counter.total_steps,
                "dense diverged from virtual on total steps under counter mode"
            );
            let mut ctable = Table::new(vec![
                "backend",
                "steps p50",
                "total steps",
                "wall s",
                "runs/s",
                "Msteps/s",
                "speedup vs virtual/chacha8",
            ]);
            let dense_timing = BatchTiming {
                wall_secs: dense_wall,
                runs: opts.seeds,
                steps: dense_counter.total_work(),
            };
            for (backend, stats, timing) in [
                (ExecBackend::Virtual, &virt_counter.0, &virt_counter.1),
                (ExecBackend::Dense, &dense_counter, &dense_timing),
            ] {
                ctable.row(vec![
                    backend.key(),
                    upper_median(&stats.step_complexity).to_string(),
                    stats.total_work().to_string(),
                    fnum(timing.wall_secs, 3),
                    fnum(timing.runs_per_sec(), 2),
                    fnum(timing.steps_per_sec() / 1e6, 2),
                    format!("{}x", fnum(virtual_wall / timing.wall_secs, 2)),
                ]);
                let mut fields = vec![
                    ("kind".into(), Value::Str("throughput".into())),
                    ("algorithm".into(), Value::Str(opts.algorithm.clone())),
                    ("adversary".into(), Value::Str(opts.adversary.clone())),
                    ("backend".into(), Value::Str(backend.key())),
                    ("n".into(), Value::U64(opts.n as u64)),
                    ("runs".into(), Value::U64(timing.runs)),
                    ("steps_total".into(), Value::U64(timing.steps)),
                    ("wall_ms".into(), Value::F64(timing.wall_secs * 1e3)),
                    ("runs_per_sec".into(), Value::F64(timing.runs_per_sec())),
                    ("steps_per_sec".into(), Value::F64(timing.steps_per_sec())),
                    ("rng".into(), Value::Str(RngMode::Counter.key().into())),
                ];
                if backend == ExecBackend::Dense {
                    // The batched τ-CAS macro-step: how many
                    // request_block claims fired and how many decisions
                    // they covered. Deterministic (the dense schedule is
                    // a pure function of the seeds), so the snapshot
                    // pins them — a silent change to the batching
                    // heuristic moves these counts.
                    fields.push(("block_claims".into(), Value::U64(block_claims)));
                    fields.push(("block_steps".into(), Value::U64(block_steps)));
                }
                emitter.record(&Record {
                    scenario: "BACKENDS".into(),
                    section: String::new(),
                    fields,
                });
            }
            emitter.text(ctable.to_string());
            emitter.text(format!(
                "batched request_block (dense): {block_claims} block claims covering \
                 {block_steps} decisions"
            ));
        })],
        claim_check: "claim check: the speedup column is each backend's wall-clock over the \
                      boxed virtual executor on the identical batch (bit-checked for dense \
                      and shard:s=1); the tentpole target is ≥ 5x for dense at n = 2^20, \
                      and shard:s=K adds multi-core scaling on top when cores allow. The \
                      counter-RNG rows are a flagged modelling change (records carry \
                      \"rng\":\"counter\"; every default-mode number is untouched): the \
                      per-step cost-floor target is ≥ 5x over the virtual/chacha8 baseline \
                      for dense+counter at n = 2^20, reported honestly either way."
            .into(),
        reproduces: vec![],
    }
}
