//! The topology-routed renaming experiment behind `exp_route`: the
//! `route:` family swept over switching topologies, sizes and crash-free
//! schedules, reporting total steps against network depth.
//!
//! The family's defining trade-off is *geometric*: every stage pairs
//! all wires, so each process meets exactly one TAS switch per stage
//! and total steps equal `n × depth` under **any** crash-free schedule
//! — the schedule moves who wins each switch, never how many switches
//! are crossed. The spec measures that identity across the butterfly
//! (`q` stages), the Beneš network (`2q − 1`), the PAPERS.md Beneš
//! variant (`2q`) and a `stages=K` override, and emits one coverage
//! record per cell carrying both `steps` and `depth` — the pair the
//! `rr-report` depth-vs-steps cross-check re-derives and verdicts.

use crate::runner::RunConfig;
use crate::scenario::{Record, ScenarioSpec, Section, Value};
use rr_analysis::table::fnum;
use rr_analysis::Table;
use rr_baselines::RouteRenaming;
use rr_renaming::traits::RenamingAlgorithm;
use rr_sched::dense::Arena;
use rr_sched::registry::{standard, ParsedKey};
use std::time::Instant;

/// What to route: all fields have `--quick`-aware defaults (see
/// [`RouteOptions::defaults`]); the `exp_route` CLI overrides any of
/// them.
#[derive(Debug, Clone)]
pub struct RouteOptions {
    /// `route:` algorithm registry keys (topology + optional override).
    pub networks: Vec<String>,
    /// Process counts to sweep (width is the next power of two).
    pub sizes: Vec<usize>,
    /// Adversary registry keys — crash-free schedules only, so the
    /// steps = n × depth identity is exact in every cell.
    pub adversaries: Vec<String>,
}

impl RouteOptions {
    /// Quick mode: the three closed-form topologies plus one `stages`
    /// override, at a partial-occupancy and a full-occupancy size,
    /// under the fair schedule — the CI smoke configuration. Full mode
    /// adds n = 1024 and the random and collision-maximizer schedules.
    pub fn defaults(cfg: &RunConfig) -> Self {
        Self {
            networks: vec![
                "route:net=butterfly".into(),
                "route:net=benes".into(),
                "route:net=variant".into(),
                "route:net=benes,stages=4".into(),
            ],
            sizes: cfg.pick(vec![48, 256, 1024], vec![48, 256]),
            adversaries: cfg.pick(
                vec!["fair".into(), "random".into(), "collisions".into()],
                vec!["fair".into()],
            ),
        }
    }
}

/// The route scenario over `opts`.
pub fn route(cfg: &RunConfig, opts: &RouteOptions) -> ScenarioSpec {
    let _ = cfg; // the identity is exact, not sampled: one run per cell
    let o = opts.clone();
    ScenarioSpec {
        id: "ROUTE",
        claim: "topology-routed renaming: total steps equal n × network depth under every \
                crash-free schedule",
        sections: vec![Section::custom(move |emitter| {
            let mut table = Table::new(vec![
                "network",
                "adversary",
                "n",
                "width",
                "depth",
                "steps",
                "steps/(n·depth)",
                "unnamed",
            ]);
            let mut arena = Arena::new();
            for key in &o.networks {
                let parsed =
                    ParsedKey::parse(key).unwrap_or_else(|e| panic!("scenario ROUTE: {e}"));
                assert_eq!(parsed.name, "route", "scenario ROUTE sweeps only `route:` keys");
                let algo = RouteRenaming::from_key(&parsed)
                    .unwrap_or_else(|e| panic!("scenario ROUTE: {e}"));
                for &n in &o.sizes {
                    let width = algo.m(n);
                    let depth = algo.depth(n);
                    for adv_key in &o.adversaries {
                        let mut adv = standard()
                            .build(adv_key, n, 0)
                            .unwrap_or_else(|e| panic!("scenario ROUTE: {e}"));
                        let start = Instant::now();
                        let out = algo
                            .run_dense(n, 0, adv.as_mut(), &mut arena)
                            .unwrap_or_else(|e| panic!("scenario ROUTE: {e}"));
                        let wall = start.elapsed().as_secs_f64();
                        out.verify_renaming(width)
                            .unwrap_or_else(|v| panic!("scenario ROUTE: renaming violation: {v}"));
                        let steps = out.total_steps();
                        let unnamed = out.gave_up_count() as u64;
                        table.row(vec![
                            key.clone(),
                            adv_key.clone(),
                            n.to_string(),
                            width.to_string(),
                            depth.to_string(),
                            steps.to_string(),
                            fnum(steps as f64 / (n as f64 * depth as f64), 3),
                            unnamed.to_string(),
                        ]);
                        let mut fields = vec![
                            ("algorithm".into(), Value::Str(key.clone())),
                            ("net".into(), Value::Str(algo.topology.label().into())),
                            ("adversary".into(), Value::Str(adv_key.clone())),
                            ("backend".into(), Value::Str("dense".into())),
                            ("n".into(), Value::U64(n as u64)),
                            ("width".into(), Value::U64(width as u64)),
                            ("depth".into(), Value::U64(depth as u64)),
                            ("steps".into(), Value::U64(steps)),
                            ("unnamed".into(), Value::U64(unnamed)),
                        ];
                        if let Some(k) = algo.stages {
                            fields.push(("stages".into(), Value::U64(k as u64)));
                        }
                        emitter.record(&Record {
                            scenario: "ROUTE".into(),
                            section: "depth".into(),
                            fields,
                        });
                        let per_sec = if wall > 0.0 { steps as f64 / wall } else { f64::INFINITY };
                        emitter.record(&Record {
                            scenario: "ROUTE".into(),
                            section: "depth".into(),
                            fields: vec![
                                ("kind".into(), Value::Str("throughput".into())),
                                ("algorithm".into(), Value::Str(key.clone())),
                                ("adversary".into(), Value::Str(adv_key.clone())),
                                ("backend".into(), Value::Str("dense".into())),
                                ("n".into(), Value::U64(n as u64)),
                                ("steps".into(), Value::U64(steps)),
                                ("wall_ms".into(), Value::F64(wall * 1e3)),
                                ("steps_per_sec".into(), Value::F64(per_sec)),
                            ],
                        });
                    }
                }
            }
            emitter.text(table.to_string());
        })],
        claim_check: "claim check: 'steps/(n·depth)' is 1.000 in every row — the schedule \
                      decides who wins each switch, never how many switches are crossed — \
                      and 'unnamed' is 0 (the family is total under crash-free schedules). \
                      At each width the closed-form depths order butterfly (q) < Beneš \
                      (2q−1) < variant (2q); every cell ran under the renaming-safety audit."
            .into(),
        reproduces: vec![],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{run_spec, Sink, TableSink};

    /// A tiny end-to-end run: at n = 8 (width 8, q = 3) the three
    /// closed-form topologies cost exactly 8·3 = 24, 8·5 = 40 and
    /// 8·6 = 48 steps, and the override costs 8·4 = 32.
    #[test]
    fn tiny_route_spec_reports_the_exact_depth_identity() {
        let opts = RouteOptions {
            networks: vec![
                "route:net=butterfly".into(),
                "route:net=benes".into(),
                "route:net=variant".into(),
                "route:net=benes,stages=4".into(),
            ],
            sizes: vec![8],
            adversaries: vec!["fair".into(), "collisions".into()],
        };
        let spec = route(&RunConfig::default(), &opts);
        let mut buf = Vec::new();
        {
            let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(TableSink::new(&mut buf))];
            run_spec(spec, &RunConfig::default(), &mut sinks);
        }
        let out = String::from_utf8(buf).unwrap();
        for needle in ["route:net=butterfly", "route:net=benes,stages=4"] {
            assert!(out.contains(needle), "{out}");
        }
        // Every row's ratio column is exactly 1.000 — under both the
        // fair and the collision-maximizing schedule.
        assert!(out.contains("1.000"), "{out}");
        assert!(!out.contains("0.9"), "a cell missed the identity: {out}");
        for steps in ["24", "40", "48", "32"] {
            assert!(out.contains(steps), "missing steps column {steps}: {out}");
        }
    }

    /// Non-route keys are a programming error, not a silent skip.
    #[test]
    #[should_panic(expected = "scenario ROUTE sweeps only `route:` keys")]
    fn non_route_keys_are_rejected() {
        let opts = RouteOptions {
            networks: vec!["bitonic".into()],
            sizes: vec![8],
            adversaries: vec!["fair".into()],
        };
        let spec = route(&RunConfig::default(), &opts);
        let mut buf = Vec::new();
        let mut sinks: Vec<Box<dyn Sink + '_>> = vec![Box::new(TableSink::new(&mut buf))];
        run_spec(spec, &RunConfig::default(), &mut sinks);
    }
}
