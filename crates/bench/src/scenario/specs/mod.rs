//! The experiment catalogue: every `exp_*` binary as a declarative
//! [`ScenarioSpec`] constructor.
//!
//! | spec | binary | claim |
//! |---|---|---|
//! | [`theorem5`] | `exp_theorem5` | E1 — Theorem 5 tight renaming |
//! | [`lemma3`] | `exp_lemma3` | E2 — balls-into-bins tail |
//! | [`lemma4`] | `exp_lemma4` | E3 — per-round register saturation |
//! | [`lemma6`] | `exp_lemma6` | E4 — Lemma 6 almost-tight renaming |
//! | [`cor7`] | `exp_cor7` | E5 — Corollary 7 loose renaming |
//! | [`lemma8`] | `exp_lemma8` | E6 — Lemma 8 almost-tight renaming |
//! | [`cor9`] | `exp_cor9` | E7 — Corollary 9 loose renaming |
//! | [`baselines`] | `exp_baselines` | E8 — comparison landscape |
//! | [`adversary`] | `exp_adversary` | E9 — adversaries and crashes |
//! | [`tau`] | `exp_tau` | E10 — counting-device invariants |
//! | [`deterministic_gap`] | `exp_deterministic_gap` | E11 — Θ(n) vs randomized |
//! | [`adaptive`] | `exp_adaptive` | E12 — unknown-k extension |
//! | [`longlived`] | `exp_longlived` | E13 — long-lived churn |
//! | [`ablation`] | `exp_ablation` | E14 — design-constant ablations |
//! | [`progress`] | `exp_progress` | E15 — named-fraction curves |
//! | [`matrix`] | `exp_matrix` | algorithm × adversary × n cross-product |
//! | [`backends`] | `exp_backends` | execution-backend shoot-out (virtual vs dense, timed) |
//! | [`explore`] | `exp_explore` | schedule-space search: exhaustive DFS + fuzz, tape shrinking |
//! | [`route`] | `exp_route` | topology-routed renaming: steps vs switching-network depth |
//!
//! Each constructor takes the [`RunConfig`]
//! and returns the spec with `--quick`-appropriate sweeps baked in; the
//! engine's golden tests pin the rendered output of E1 and E7
//! byte-for-byte against the pre-engine binaries.

mod backends;
mod claims;
mod compare;
mod explore;
mod matrix;
mod micro;
mod route;

pub use backends::{backends, BackendsOptions};
pub use claims::{cor7, cor9, lemma6, lemma8, theorem5};
pub use compare::{adversary, baselines, deterministic_gap, progress};
pub use explore::{explore, ExploreOptions};
pub use matrix::{matrix, MatrixOptions};
pub use micro::{ablation, adaptive, lemma3, lemma4, longlived, tau};
pub use route::{route, RouteOptions};

use super::ScenarioSpec;
use crate::runner::RunConfig;

/// Every fixed-shape experiment spec (E1–E15), built for `cfg` — the
/// catalogue `exp_report` filters by [`ScenarioSpec::reproduces`] to
/// find the claim-bearing tiers it must re-run. The option-driven
/// scenarios (`matrix`, `backends`, `explore`, `route`) are not listed:
/// they take extra CLI state and reproduce no numbered claim.
pub fn catalogue(cfg: &RunConfig) -> Vec<ScenarioSpec> {
    vec![
        theorem5(cfg),
        lemma3(cfg),
        lemma4(cfg),
        lemma6(cfg),
        cor7(cfg),
        lemma8(cfg),
        cor9(cfg),
        baselines(cfg),
        adversary(cfg),
        tau(cfg),
        deterministic_gap(cfg),
        adaptive(cfg),
        longlived(cfg),
        ablation(cfg),
        progress(cfg),
    ]
}
