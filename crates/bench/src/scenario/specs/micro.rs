//! Scenarios that introspect protocol internals — balls-into-bins
//! simulation (E2), the request recorder (E3), the counting device
//! (E10), the adaptive ladder (E12), long-lived churn (E13) and the
//! design ablations (E14). These run as custom sections: the machinery
//! they measure lives below the batch runner's interface.

use crate::runner::{BatchRun, RunConfig};
use crate::scenario::{ClaimCheck, Emitter, Record, ScenarioSpec, Section, Value};
use rand::rngs::ChaCha8Rng;
use rand::{RngExt, SeedableRng};
use rr_analysis::ballsbins::{expected_empty_bins, lemma3_bound, simulate_lemma3};
use rr_analysis::table::{fnum, fprob, Table};
use rr_renaming::aagw::{AagwProcess, SpareShared};
use rr_renaming::adaptive::AdaptiveRenaming;
use rr_renaming::longlived::{LongLivedClient, ReleasableTasArray};
use rr_renaming::params::FinisherPlan;
use rr_renaming::phase::AlmostTight;
use rr_renaming::tight::TightRenaming;
use rr_renaming::traits::RenamingAlgorithm;
use rr_sched::adversary::FairAdversary;
use rr_sched::process::Process;
use rr_sched::virtual_exec::run;
use rr_tau::{ConcurrentTauRegister, CountingDevice};
use std::collections::HashSet;
use std::sync::Arc;

/// E2 — Lemma 3: throwing `2c·log n` balls i.u.r. into `2·log n` bins
/// leaves at most `log n` empty bins with probability ≥ 1 − n^{−ℓ}
/// (for `c ≥ max(ln 2, 2ℓ+2)`).
pub fn lemma3(cfg: &RunConfig) -> ScenarioSpec {
    let (ns, trials) = cfg.pick(
        (vec![1 << 10, 1 << 14, 1 << 18, 1 << 20], 20_000u64),
        (vec![1 << 10, 1 << 14], 2_000u64),
    );
    let body = Section::custom(move |em| {
        let cs = [1u64, 2, 4, 8];
        let mut table = Table::new(vec![
            "n",
            "c",
            "balls",
            "bins",
            "E[empty] exact",
            "mean empty",
            "max empty",
            "thresh logn",
            "P[viol] meas",
            "P[viol] bound",
        ]);
        for &n in &ns {
            for &c in &cs {
                let r = simulate_lemma3(n, c, trials, 0xE2 + c);
                let log_n = r.threshold;
                let balls = 2 * c * log_n;
                let bins = 2 * log_n;
                table.row(vec![
                    n.to_string(),
                    c.to_string(),
                    balls.to_string(),
                    bins.to_string(),
                    fnum(expected_empty_bins(balls, bins), 2),
                    fnum(r.mean_empty, 2),
                    r.max_empty.to_string(),
                    log_n.to_string(),
                    fprob(r.violation_rate()),
                    fprob(lemma3_bound(n, c)),
                ]);
                em.record(&Record {
                    scenario: "E2".into(),
                    section: String::new(),
                    fields: vec![
                        ("n".into(), Value::U64(n as u64)),
                        ("c".into(), Value::U64(c)),
                        ("balls".into(), Value::U64(balls)),
                        ("bins".into(), Value::U64(bins)),
                        ("trials".into(), Value::U64(trials)),
                        ("mean_empty".into(), Value::F64(r.mean_empty)),
                        ("max_empty".into(), Value::U64(r.max_empty)),
                        ("threshold".into(), Value::U64(log_n)),
                        ("viol_rate".into(), Value::F64(r.violation_rate())),
                        ("viol_bound".into(), Value::F64(lemma3_bound(n, c))),
                    ],
                });
            }
        }
        em.text(table.to_string());
    });
    ScenarioSpec {
        id: "E2",
        claim: "Lemma 3 — ≤ log n empty bins w.h.p. (balls into bins)",
        sections: vec![body],
        claim_check: "claim check: for c ≥ 4 (= 2ℓ+2 at ℓ=1) the measured violation \
                      rate is 0 across all trials and the analytic bound is ≤ 1/n."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "lemma3",
            bound: "<= log n empty bins with probability >= 1 - n^-l for c >= 2l+2",
        }],
    }
}

fn lemma4_report(
    em: &mut Emitter<'_, '_>,
    algo: TightRenaming,
    variant: &str,
    n: usize,
    seed: u64,
    max_rounds: usize,
) {
    let algo = algo.with_recorder();
    let (shared, procs) = algo.instantiate_shared(n, seed);
    let boxed: Vec<Box<dyn Process>> =
        procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
    // The recorder's extra bookkeeping doubles the guard over the
    // trait's 200·n·(⌈log₂ n⌉ + 16) default.
    let budget = 2 * RenamingAlgorithm::step_budget(&algo, n);
    let out = run(boxed, &mut FairAdversary::default(), budget).unwrap();
    out.verify_renaming(n).unwrap();

    let plan = &shared.plan;
    let l = plan.l as u64;
    let c = plan.c as u64;
    em.text(format!(
        "\n{} @ n={n}: L={l}, c={c}, rounds={} (showing ≤ {max_rounds}), targets: whp ≥ {} (2cL), E = {} (4cL)",
        RenamingAlgorithm::name(&algo),
        plan.rounds(),
        2 * c * l,
        4 * c * l
    ));
    let rec = shared.recorder.as_ref().unwrap();
    let mut table =
        Table::new(vec!["round", "registers", "req min", "req mean", "req max", "full registers"]);
    for round in 0..plan.rounds().min(max_rounds) {
        let counts = rec.round_counts(round);
        let regs = counts.len();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        let mean = counts.iter().sum::<u64>() as f64 / regs as f64;
        // Full = register reached its τ quota.
        let cl = plan.clusters[round];
        let full = (0..cl.registers)
            .filter(|&i| {
                let r = cl.first_register + i;
                shared.registers[r].confirmed_count() == plan.register_tau[r]
            })
            .count();
        table.row(vec![
            (round + 1).to_string(),
            regs.to_string(),
            min.to_string(),
            fnum(mean, 1),
            max.to_string(),
            format!("{full}/{regs}"),
        ]);
        em.record(&Record {
            scenario: "E3".into(),
            section: String::new(),
            fields: vec![
                ("variant".into(), Value::Str(variant.to_string())),
                ("n".into(), Value::U64(n as u64)),
                ("round".into(), Value::U64(round as u64 + 1)),
                ("registers".into(), Value::U64(regs as u64)),
                ("req_min".into(), Value::U64(min)),
                ("req_mean".into(), Value::F64(mean)),
                ("req_max".into(), Value::U64(max)),
                ("full".into(), Value::U64(full as u64)),
                ("whp_target".into(), Value::U64(2 * c * l)),
                ("expected".into(), Value::U64(4 * c * l)),
            ],
        });
    }
    em.text(table.to_string());
}

/// E3 — Lemma 4: in every §III round, every `(log n)`-register receives
/// `4c·log n` requests in expectation and at least `2c·log n` w.h.p.;
/// the request recorder shows per-round saturation for both
/// parameterizations.
pub fn lemma4(cfg: &RunConfig) -> ScenarioSpec {
    let n = cfg.pick(1 << 14, 1 << 10);
    let body = Section::custom(move |em| {
        lemma4_report(em, TightRenaming::calibrated(4), "calibrated", n, 0xE3, 10);
        // The paper-exact variant funnels almost everyone through the final
        // sweep (the documented under-provisioning), which is Θ(n·n/log n)
        // total work — run it one size down so the table regenerates fast.
        lemma4_report(em, TightRenaming::paper_exact(4), "paper-exact", n.min(1 << 12), 0xE3, 10);
    });
    ScenarioSpec {
        id: "E3",
        claim: "Lemma 4 — per-round register saturation (≥ 2c log n requests w.h.p.)",
        sections: vec![body],
        claim_check: "claim check: calibrated rows keep 'req mean' ≈ 4cL and every \
                      register full; paper-exact rows oversaturate (mean ≫ 4cL) — \
                      saturation holds a fortiori, but most names are only reachable \
                      through the final-round sweep (DESIGN.md, gap 1)."
            .into(),
        reproduces: vec![ClaimCheck {
            claim: "lemma4",
            bound: ">= 2c log n requests per register w.h.p. (4c log n in expectation)",
        }],
    }
}

/// E10 — §II-B/§II-C: the counting device admits exactly τ winners under
/// every request pattern, and a cycle is a constant amount of hardware
/// work: quota stress, batching profile, and the lock-free front
/// end under real threads.
pub fn tau(_cfg: &RunConfig) -> ScenarioSpec {
    let body = Section::custom(|em| {
        // Part 1: quota stress across widths and thresholds.
        em.text("\n-- quota invariant under random batches --");
        let mut table = Table::new(vec!["width", "tau", "batches", "max confirmed", "wins total"]);
        let mut rng = ChaCha8Rng::seed_from_u64(0xE10);
        for (width, tau) in [(8u32, 4u32), (16, 8), (32, 16), (64, 32), (64, 64), (20, 10)] {
            let mut device = CountingDevice::new(width, tau);
            let mut max_confirmed = 0;
            let mut wins = 0usize;
            let batches = 200;
            for _ in 0..batches {
                let k = rng.random_range(0..2 * width as usize);
                let reqs: Vec<(usize, usize)> =
                    (0..k).map(|t| (t, rng.random_range(0..width as usize))).collect();
                let rep = device.clock_cycle(&reqs);
                wins += rep.win_count();
                max_confirmed = max_confirmed.max(device.confirmed_count());
            }
            assert!(max_confirmed <= tau, "τ invariant violated");
            assert_eq!(wins as u32, device.confirmed_count());
            table.row(vec![
                width.to_string(),
                tau.to_string(),
                batches.to_string(),
                max_confirmed.to_string(),
                wins.to_string(),
            ]);
        }
        em.text(table.to_string());

        // Part 2: cycles to absorb bursts.
        em.text("\n-- cycles until quiescence for burst shapes (width 32, tau 16) --");
        let mut table = Table::new(vec!["burst shape", "requests", "cycles", "winners"]);
        let shapes: &[(&str, Vec<usize>)] = &[
            ("one big batch", vec![64]),
            ("8-request trickle", vec![8; 8]),
            ("single file", vec![1; 64]),
            ("front-loaded", vec![32, 16, 8, 4, 2, 1, 1]),
        ];
        for (label, batches) in shapes {
            let mut device = CountingDevice::new(32, 16);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let mut tag = 0usize;
            for &k in batches {
                let reqs: Vec<(usize, usize)> = (0..k)
                    .map(|_| {
                        tag += 1;
                        (tag, rng.random_range(0..32))
                    })
                    .collect();
                device.clock_cycle(&reqs);
            }
            table.row(vec![
                label.to_string(),
                batches.iter().sum::<usize>().to_string(),
                device.cycles().to_string(),
                device.confirmed_count().to_string(),
            ]);
        }
        em.text(table.to_string());

        // Part 3: lock-free wrapper under threads.
        em.text("\n-- concurrent tau-register: 256 threads, width 40, tau 20 --");
        let reg = ConcurrentTauRegister::new(40, 20, 0);
        let names: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..256)
                .map(|i| {
                    let reg = reg.clone();
                    s.spawn(move || reg.acquire(i % 40).ok().map(|(name, _)| name))
                })
                .collect();
            handles.into_iter().filter_map(|h| h.join().unwrap()).collect()
        });
        let distinct: HashSet<_> = names.iter().collect();
        em.text(format!(
            "winners: {} (tau = 20), distinct names: {}, cycles: {}",
            names.len(),
            distinct.len(),
            reg.cycles()
        ));
        assert_eq!(names.len(), 20);
        assert_eq!(distinct.len(), 20);
    });
    ScenarioSpec {
        id: "E10",
        claim: "counting device — τ-quota invariant, cycle counts, concurrency",
        sections: vec![body],
        claim_check: "claim check: 'max confirmed' ≤ tau everywhere; cycle count \
                      tracks batch count, not request count (hardware absorbs any \
                      concurrency per cycle); threaded register admits exactly tau \
                      winners with distinct names."
            .into(),
        reproduces: vec![],
    }
}

/// E12 — adaptive renaming (§IV remark): when the participant count k is
/// unknown, the doubling-guess transform still renames everyone, uses
/// only `O(k)` names regardless of the ladder size, and pays a `log k`
/// ladder factor.
pub fn adaptive(cfg: &RunConfig) -> ScenarioSpec {
    let (max_n, ks, seeds) = cfg.pick(
        (1 << 14, vec![4usize, 16, 64, 256, 1024, 4096, 16384], 10u64),
        (1 << 10, vec![4usize, 32, 256], 3u64),
    );
    let body = Section::custom(move |em| {
        let mut table = Table::new(vec![
            "k (actual)",
            "ladder for",
            "max name used",
            "used/k",
            "steps max",
            "steps/(log k)",
            "unnamed",
        ]);
        for &k in &ks {
            let mut worst_name = 0usize;
            let mut worst_steps = 0u64;
            let mut unnamed = 0usize;
            for seed in 0..seeds {
                let (shared, procs) = AdaptiveRenaming.instantiate_participants(k, max_n, seed);
                let boxed: Vec<Box<dyn Process>> =
                    procs.into_iter().map(|p| Box::new(p) as Box<dyn Process>).collect();
                let out = run(
                    boxed,
                    &mut FairAdversary::default(),
                    RenamingAlgorithm::step_budget(&AdaptiveRenaming, max_n),
                )
                .unwrap();
                out.verify_renaming(shared.layout().total).unwrap();
                unnamed += out.gave_up_count();
                worst_name = worst_name.max(out.names.iter().flatten().copied().max().unwrap_or(0));
                worst_steps = worst_steps.max(out.step_complexity());
            }
            let log_k = (k.max(2) as f64).log2();
            table.row(vec![
                k.to_string(),
                format!("≤{max_n}"),
                worst_name.to_string(),
                fnum(worst_name as f64 / k as f64, 2),
                worst_steps.to_string(),
                fnum(worst_steps as f64 / log_k, 2),
                unnamed.to_string(),
            ]);
        }
        em.text(table.to_string());
    });
    ScenarioSpec {
        id: "E12",
        claim: "adaptive renaming — name usage O(k) with k unknown to the processes",
        sections: vec![body],
        claim_check: format!(
            "claim check: 'used/k' bounded by a constant (the adaptive O(k) \
             name space — processes never learn k and the ladder is sized for \
             {max_n}); 'unnamed' identically 0; steps grow like log k × \
             polyloglog (our simple transform; the paper notes the transform \
             yields no improvement over [8])."
        ),
        reproduces: vec![],
    }
}

fn churn(n: usize, epsilon: f64, rounds: usize, seed: u64) -> (f64, f64) {
    let m = ((1.0 + epsilon) * n as f64).ceil() as usize;
    let names = ReleasableTasArray::new(m);
    let mut clients: Vec<_> = (0..n).map(|p| LongLivedClient::new(p, seed)).collect();
    let mut worst_single = 0u64;
    for _ in 0..rounds {
        for c in clients.iter_mut() {
            let (before, _) = c.stats();
            c.acquire(&names);
            let (after, _) = c.stats();
            worst_single = worst_single.max(after - before);
        }
        for c in clients.iter_mut() {
            c.release(&names);
        }
    }
    let probes: u64 = clients.iter().map(|c| c.stats().0).sum();
    let acquires: u64 = clients.iter().map(|c| c.stats().1).sum();
    (probes as f64 / acquires as f64, worst_single as f64)
}

/// E13 — long-lived renaming under churn: with owner-release TAS
/// registers and a `(1+ε)n` space, the amortized acquire cost stays
/// ~`(1+ε)/ε` probes across arbitrary acquire/release churn.
pub fn longlived(cfg: &RunConfig) -> ScenarioSpec {
    let (n, rounds) = cfg.pick((4096usize, 100usize), (256usize, 20usize));
    let body = Section::custom(move |em| {
        let mut table = Table::new(vec![
            "epsilon",
            "m",
            "rounds",
            "acquires",
            "amortized probes",
            "bound (1+e)/e",
            "worst single acquire",
        ]);
        for eps in [0.1f64, 0.25, 0.5, 1.0, 2.0] {
            let (amortized, worst) = churn(n, eps, rounds, 0xE13);
            let m = ((1.0 + eps) * n as f64).ceil() as usize;
            table.row(vec![
                fnum(eps, 2),
                m.to_string(),
                rounds.to_string(),
                (n * rounds).to_string(),
                fnum(amortized, 3),
                fnum((1.0 + eps) / eps, 3),
                fnum(worst, 0),
            ]);
        }
        em.text(table.to_string());
    });
    ScenarioSpec {
        id: "E13",
        claim: "long-lived renaming — amortized acquire cost under churn",
        sections: vec![body],
        claim_check: "claim check: 'amortized probes' tracks the expected-cost bound \
                      (1+e)/e for every ε and does not grow with the number of churn \
                      rounds — names recycle indefinitely (long-lived renaming)."
            .into(),
        reproduces: vec![],
    }
}

fn ablate_c(em: &mut Emitter<'_, '_>, n: usize, seeds: u64) {
    em.text(format!("\n-- ablation 1: Lemma 3 constant c (tight renaming @ n={n}) --"));
    let mut table =
        Table::new(vec!["c", "rounds", "steps p50", "steps max", "max/log2 n", "mean steps"]);
    for c in [1u32, 2, 4, 8] {
        let algo = TightRenaming::calibrated(c);
        let plan = rr_renaming::TightPlan::calibrated(n, c);
        let stats = BatchRun::new(&algo, n).seeds(seeds).stats().unwrap();
        table.row(vec![
            c.to_string(),
            plan.rounds().to_string(),
            rr_analysis::stats::upper_median(&stats.step_complexity).to_string(),
            stats.max_steps().to_string(),
            fnum(stats.max_steps() as f64 / (n as f64).log2(), 2),
            fnum(stats.mean_mean_steps(), 2),
        ]);
    }
    em.text(table.to_string());
}

fn ablate_device_width(em: &mut Emitter<'_, '_>) {
    em.text("\n-- ablation 2: device width factor (single register, tau = 16) --");
    // 64 requesters spray random bits at one device; measure how many
    // distinct winners the first cycle admits (width → less aliasing).
    let mut table =
        Table::new(vec!["width/tau", "width", "first-cycle winners (mean of 50)", "tau"]);
    for factor in [1u32, 2, 3, 4] {
        let width = 16 * factor;
        let mut total = 0usize;
        let trials = 50;
        for t in 0..trials {
            let mut device = CountingDevice::new(width, 16);
            let mut rng = ChaCha8Rng::seed_from_u64(t);
            let reqs: Vec<(usize, usize)> =
                (0..64).map(|p| (p, rng.random_range(0..width as usize))).collect();
            total += device.clock_cycle(&reqs).win_count();
        }
        table.row(vec![
            factor.to_string(),
            width.to_string(),
            fnum(total as f64 / trials as f64, 2),
            "16".into(),
        ]);
    }
    em.text(table.to_string());
}

/// A per-segment probe-budget policy.
type BudgetPolicy = Box<dyn Fn(usize) -> u32>;

fn ablate_finisher(em: &mut Emitter<'_, '_>, k: usize, spare: usize, seeds: u64) {
    em.text(format!(
        "\n-- ablation 3: finisher probe budgets (k={k} stragglers, spare={spare}) --"
    ));
    let mut table = Table::new(vec![
        "budget policy",
        "steps max",
        "mean steps",
        "sweepers (max steps > random budget)",
    ]);
    let policies: Vec<(&str, BudgetPolicy)> = vec![
        ("linear j+2 (ours)", Box::new(|j: usize| j as u32 + 3)),
        ("constant 1", Box::new(|_| 1)),
        ("constant 4", Box::new(|_| 4)),
    ];
    for (label, probes) in policies {
        let mut max_steps = 0u64;
        let mut total_steps = 0u64;
        let mut sweepers = 0usize;
        for seed in 0..seeds {
            let mut plan = FinisherPlan::new(spare);
            for (j, p) in plan.probes.iter_mut().enumerate() {
                *p = probes(j);
            }
            let random_budget = plan.max_random_probes();
            let shared = Arc::new(SpareShared::new(0, spare));
            let procs: Vec<Box<dyn Process>> = (0..k)
                .map(|pid| {
                    Box::new(AlmostTight(AagwProcess::new(
                        pid,
                        seed,
                        Arc::clone(&shared),
                        plan.clone(),
                    ))) as Box<dyn Process>
                })
                .collect();
            let out = run(procs, &mut FairAdversary::default(), 1 << 30).unwrap();
            out.verify_renaming(spare).unwrap();
            max_steps = max_steps.max(out.step_complexity());
            total_steps += out.total_steps();
            sweepers += out.steps.iter().filter(|&&s| s > random_budget).count();
        }
        table.row(vec![
            label.to_string(),
            max_steps.to_string(),
            fnum(total_steps as f64 / (k as u64 * seeds) as f64, 2),
            sweepers.to_string(),
        ]);
    }
    em.text(table.to_string());
}

/// E14 — ablations of the design constants DESIGN.md calls out: the
/// Lemma 3 constant `c`, the device width factor, and the finisher probe
/// budgets.
pub fn ablation(cfg: &RunConfig) -> ScenarioSpec {
    let (n, seeds) = cfg.pick((1 << 14, 15u64), (1 << 10, 5u64));
    let body = Section::custom(move |em| {
        ablate_c(em, n, seeds);
        ablate_device_width(em);
        ablate_finisher(em, 3 * n / 16, n / 4, seeds);
    });
    ScenarioSpec {
        id: "E14",
        claim: "ablations — cluster constant c, device width, finisher budgets",
        sections: vec![body],
        claim_check: "findings: smaller c is empirically *faster* at laptop sizes \
                      (fewer rounds dominate the cost); c >= 2l+2 is what the *proof* \
                      needs for inverse-polynomial failure probability — the classic \
                      theory-practice constant gap, worth knowing before tuning. \
                      Width 2·tau (the paper's choice) already absorbs essentially all \
                      aliasing in one cycle; wider devices buy nothing. At straggler \
                      ratios up to 3/4 of the spare, every budget policy avoids the \
                      sweep; the growing j+2 budgets are insurance for the w.h.p. tail, \
                      not the common case."
            .into(),
        reproduces: vec![],
    }
}
