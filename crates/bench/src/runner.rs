//! Shared machinery for the experiment layer: run an algorithm across
//! seeds under a chosen adversary, collect the renaming-relevant
//! statistics, and fail loudly on any safety violation.

use rr_renaming::traits::RenamingAlgorithm;
use rr_sched::adversary::Adversary;
use rr_sched::process::Process;
use rr_sched::registry::{standard, ParsedKey};
use rr_sched::shard::{run_sharded, shard_seed, Arena, ShardRun, DEFAULT_COUPLING_EVERY};
use rr_sched::thread_exec::run_threads_bounded;
use rr_sched::virtual_exec::{run, RunOutcome};
use rr_shmem::rng::RngMode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Aggregated statistics over a batch of seeded runs.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Per-run step complexity (max steps over processes).
    pub step_complexity: Vec<u64>,
    /// Per-run total steps (work) across all processes.
    pub total_steps: Vec<u64>,
    /// Per-run mean steps per process.
    pub mean_steps: Vec<f64>,
    /// Per-run unnamed (gave-up) counts.
    pub unnamed: Vec<usize>,
    /// Per-run crashed counts.
    pub crashed: Vec<usize>,
    /// Runs whose renaming audit failed (should stay 0).
    pub violations: usize,
    /// Number of runs.
    pub runs: usize,
}

impl BatchStats {
    /// Maximum step complexity over all runs.
    pub fn max_steps(&self) -> u64 {
        self.step_complexity.iter().copied().max().unwrap_or(0)
    }

    /// Mean of per-run step complexities.
    pub fn mean_max_steps(&self) -> f64 {
        if self.step_complexity.is_empty() {
            return 0.0;
        }
        self.step_complexity.iter().sum::<u64>() as f64 / self.step_complexity.len() as f64
    }

    /// Mean of per-run mean steps.
    pub fn mean_mean_steps(&self) -> f64 {
        if self.mean_steps.is_empty() {
            return 0.0;
        }
        self.mean_steps.iter().sum::<f64>() / self.mean_steps.len() as f64
    }

    /// Mean unnamed count.
    pub fn mean_unnamed(&self) -> f64 {
        if self.unnamed.is_empty() {
            return 0.0;
        }
        self.unnamed.iter().sum::<usize>() as f64 / self.unnamed.len() as f64
    }

    /// Max unnamed count.
    pub fn max_unnamed(&self) -> usize {
        self.unnamed.iter().copied().max().unwrap_or(0)
    }

    /// Total crashes over all runs.
    pub fn total_crashed(&self) -> usize {
        self.crashed.iter().sum()
    }

    /// Total work (shared-memory accesses) over all runs — the numerator
    /// of a backend's steps/sec throughput.
    pub fn total_work(&self) -> u64 {
        self.total_steps.iter().sum()
    }

    /// Assembles stats from already-executed outcomes, in order — the
    /// same aggregation the batch runners perform, exposed so tests
    /// (e.g. record/replay equivalence) can compare batches built from
    /// arbitrary adversaries field-for-field.
    pub fn from_outcomes<'a>(outcomes: impl IntoIterator<Item = &'a RunOutcome>, n: usize) -> Self {
        assemble(outcomes.into_iter().map(|out| measure(out, n)).collect())
    }
}

/// Which adversary to schedule under. This is the typed mirror of the
/// [`rr_sched::registry`] keys: every variant round-trips through
/// [`Schedule::key`] / [`Schedule::parse`], and [`Schedule`]-driven runs
/// build their adversary through the registry so there is exactly one
/// construction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Round-robin (`"fair"`).
    Fair,
    /// Seeded random (`"random"`).
    Random,
    /// Collision-maximizing adaptive adversary (`"collisions"`).
    CollisionMax,
    /// Stalls winning-kind announces behind everyone else (`"stall"`).
    Stall,
    /// Fair schedule + crash injection `(probability ‰, budget %)`
    /// (`"crash:p=…,cap=…"`).
    Crashes {
        /// Crash probability at winning announces, in permille.
        p_permille: u32,
        /// Max crashes as a percentage of n.
        budget_pct: u32,
    },
}

impl Schedule {
    /// Human-readable label for tables.
    pub fn label(&self) -> String {
        match self {
            Schedule::Fair => "fair".into(),
            Schedule::Random => "random".into(),
            Schedule::CollisionMax => "collision-max".into(),
            Schedule::Stall => "stall".into(),
            Schedule::Crashes { p_permille, budget_pct } => {
                format!("crash(p={:.1}%,cap={budget_pct}%)", *p_permille as f64 / 10.0)
            }
        }
    }

    /// The [`rr_sched::registry`] key this schedule builds through.
    pub fn key(&self) -> String {
        match self {
            Schedule::Fair => "fair".into(),
            Schedule::Random => "random".into(),
            Schedule::CollisionMax => "collisions".into(),
            Schedule::Stall => "stall".into(),
            Schedule::Crashes { p_permille, budget_pct } => {
                format!("crash:p={p_permille},cap={budget_pct}")
            }
        }
    }

    /// Parses a registry key back into the typed schedule (accepts the
    /// table label `collision-max` as an alias for `collisions`).
    ///
    /// # Errors
    /// Returns a message for unknown names or bad parameters — the key
    /// is validated through the registry factory itself, so anything
    /// `parse` accepts, [`Schedule`]-driven runs can build.
    pub fn parse(key: &str) -> Result<Self, String> {
        let parsed = ParsedKey::parse(key)?;
        if parsed.name == "collision-max" {
            parsed.check_known(&[])?;
            return Ok(Schedule::CollisionMax);
        }
        let schedule = match parsed.name.as_str() {
            "fair" => Schedule::Fair,
            "random" => Schedule::Random,
            "collisions" => Schedule::CollisionMax,
            "stall" => Schedule::Stall,
            "crash" => Schedule::Crashes {
                p_permille: parsed.get("p", 20)?,
                budget_pct: parsed.get("cap", 10)?,
            },
            // The schedule-space searchers are stateful across runs and
            // have no typed mirror — name them explicitly so the error
            // doesn't suggest a key this parse can never accept.
            searcher @ ("explore" | "fuzz") => {
                return Err(format!(
                    "`{searcher}` is a registry-only adversary (stateful across seeds); \
                     use the keyed batch API (BatchRun::adversary / --adversaries) instead \
                     of the typed Schedule"
                ))
            }
            // The load-shape zoo is stateless but registry-only: the
            // typed enum mirrors the historical schedules and is closed.
            zoo @ ("lookahead" | "bursty" | "diurnal" | "victim") => {
                return Err(format!(
                    "`{zoo}` has no typed Schedule mirror; use the keyed batch API \
                     (BatchRun::adversary / --adversaries) instead"
                ))
            }
            other => {
                let typed: Vec<&str> = standard()
                    .keys()
                    .into_iter()
                    .filter(|k| {
                        !matches!(
                            *k,
                            "explore" | "fuzz" | "lookahead" | "bursty" | "diurnal" | "victim"
                        )
                    })
                    .collect();
                return Err(format!("unknown schedule `{other}` (known: {})", typed.join(", ")));
            }
        };
        // Full validation (unknown params, value ranges) lives in the
        // registry factories — run it so parse never accepts a key that
        // build would later reject.
        let _builder = standard().prepare(key)?;
        Ok(schedule)
    }

    fn build(&self, n: usize, seed: u64) -> Box<dyn Adversary> {
        standard()
            .build(&self.key(), n, seed)
            .expect("every Schedule variant maps to a registered adversary key")
    }
}

/// Which execution core a batch drives — the `--backend` axis of the
/// experiment layer.
///
/// | key | core | determinism |
/// |---|---|---|
/// | `virtual` | boxed shim over the arena loop | exact, adversary-scheduled |
/// | `dense` | flat arena, typed processes, scratch reuse | bit-identical to `virtual` |
/// | `threads:t=N` | free-running OS threads (≤ N concurrent) | wall-clock only; safety audited, steps not reproducible; ignores the adversary key |
/// | `shard:s=N` | S coupled per-shard arenas, one thread each | pure function of `(seed, S)` regardless of thread timing; `s=1` bit-identical to `dense` |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// The historical boxed executor ([`rr_sched::virtual_exec::run`]).
    #[default]
    Virtual,
    /// The flat arena core with monomorphized process storage and
    /// cross-seed scratch reuse ([`rr_sched::shard::Arena`]).
    Dense,
    /// Free-running OS threads, at most `t` concurrent
    /// ([`rr_sched::thread_exec::run_threads_bounded`]). No adversary:
    /// scheduling is the machine's. Step counts are real but not
    /// seed-reproducible; renaming safety is still audited.
    Threads {
        /// Max concurrent OS threads.
        t: usize,
    },
    /// Sharded entity-keyed arenas ([`rr_sched::shard::run_sharded`]):
    /// the pid space is partitioned round-robin into `s` shards, each
    /// driven by its own arena on its own thread, coupled through the
    /// deterministic round ledger every
    /// [`DEFAULT_COUPLING_EVERY`] decisions. The merged outcome is a
    /// pure function of `(seed, s)` — thread scheduling cannot change
    /// it — and `s = 1` is bit-identical to `dense`.
    Shard {
        /// Number of shards (each runs on its own thread).
        s: usize,
    },
}

impl ExecBackend {
    /// Parses a backend key: `virtual`, `dense`, `threads` /
    /// `threads:t=N` (default `t = 8`), or `shard` / `shard:s=N`
    /// (default `s` = the machine's available parallelism), following
    /// the registry key grammar.
    ///
    /// # Errors
    /// Returns a message on unknown names, unknown parameters, `t = 0`,
    /// or `s = 0`.
    pub fn parse(key: &str) -> Result<Self, String> {
        let parsed = ParsedKey::parse(key)?;
        match parsed.name.as_str() {
            "virtual" => {
                parsed.check_known(&[])?;
                Ok(ExecBackend::Virtual)
            }
            "dense" => {
                parsed.check_known(&[])?;
                Ok(ExecBackend::Dense)
            }
            "threads" => {
                parsed.check_known(&["t"])?;
                let t: usize = parsed.get("t", 8)?;
                if t == 0 {
                    return Err("threads backend needs t ≥ 1".into());
                }
                Ok(ExecBackend::Threads { t })
            }
            "shard" => {
                parsed.check_known(&["s"])?;
                let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
                let s: usize = parsed.get("s", cores)?;
                if s == 0 {
                    return Err("shard backend needs s ≥ 1".into());
                }
                Ok(ExecBackend::Shard { s })
            }
            other => Err(format!(
                "unknown backend `{other}` (known: virtual, dense, threads:t=N, shard:s=N)"
            )),
        }
    }

    /// The canonical key this backend parses back from.
    pub fn key(&self) -> String {
        match self {
            ExecBackend::Virtual => "virtual".into(),
            ExecBackend::Dense => "dense".into(),
            ExecBackend::Threads { t } => format!("threads:t={t}"),
            ExecBackend::Shard { s } => format!("shard:s={s}"),
        }
    }
}

/// Wall-clock measurements of one batch — what the throughput records in
/// `BENCH_scenarios.json` track per backend.
#[derive(Debug, Clone, Copy)]
pub struct BatchTiming {
    /// Wall-clock seconds for the whole batch (instantiation included —
    /// that cost is part of running a seed).
    pub wall_secs: f64,
    /// Seeds executed.
    pub runs: u64,
    /// Total shared-memory accesses across all runs.
    pub steps: u64,
}

impl BatchTiming {
    /// Completed runs per wall-clock second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.runs as f64 / self.wall_secs
        } else {
            f64::INFINITY
        }
    }

    /// Executed steps per wall-clock second.
    pub fn steps_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.steps as f64 / self.wall_secs
        } else {
            f64::INFINITY
        }
    }
}

/// Runs `algo` at size `n` once with `seed` on `backend`.
///
/// `adversary` schedules the `virtual` and `dense` backends; the
/// `threads` backend is free-running (the machine schedules) and ignores
/// it. `arena` is the dense backend's reusable scratch — pass the same
/// one across seeds to amortize its buffers.
///
/// # Panics
/// Panics on executor errors or renaming-safety violations (these are
/// bugs, not data).
pub fn run_once_backend(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seed: u64,
    adversary: &mut dyn Adversary,
    backend: ExecBackend,
    arena: &mut Arena,
) -> RunOutcome {
    run_once_backend_rng(algo, n, seed, RngMode::default(), adversary, backend, arena)
}

/// [`run_once_backend`] with an explicit per-process RNG backend.
/// Algorithms that don't implement the requested mode refuse loudly
/// (see [`RenamingAlgorithm::instantiate_rng`]); the default mode is
/// bit-identical to [`run_once_backend`].
///
/// # Panics
/// Panics on executor errors, renaming-safety violations, or an
/// unsupported RNG mode.
pub fn run_once_backend_rng(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seed: u64,
    rng: RngMode,
    adversary: &mut dyn Adversary,
    backend: ExecBackend,
    arena: &mut Arena,
) -> RunOutcome {
    let out = match backend {
        ExecBackend::Virtual => return run_once_with_rng(algo, n, seed, rng, adversary),
        ExecBackend::Dense => algo
            .run_dense_rng(n, seed, rng, adversary, arena)
            .unwrap_or_else(|e| panic!("{} at n={n}, seed {seed}: {e}", algo.name())),
        ExecBackend::Threads { t } => {
            let inst = algo.instantiate_rng(n, seed, rng);
            run_threads_bounded(inst.processes, t, algo.step_budget(n))
        }
        ExecBackend::Shard { .. } => panic!(
            "the shard backend builds one adversary per shard and cannot reuse a single \
             `&mut dyn Adversary`; drive it through `BatchRun` or `run_once_sharded`"
        ),
    };
    if let Err(v) = out.verify_renaming(algo.m(n)) {
        panic!("{} violated renaming safety at n={n}, seed {seed}: {v}", algo.name());
    }
    out
}

/// Runs `algo` at size `n` once with `seed` as `shards` coupled
/// shard sub-instances (the `shard:s=N` backend).
///
/// Shard `s` runs `algo` at its sub-size `n_s` (round-robin partition
/// of the pid space) with a fresh adversary from
/// `build_adv(n_s, shard_seed(seed, s))`, coupled to the global round
/// ledger every [`DEFAULT_COUPLING_EVERY`] decisions. Shard name spaces
/// are offset-disjoint, so the merged run renames into
/// `m_total = Σ m(n_s)` names and is verified against that bound. The
/// outcome is a pure function of `(seed, shards)`; with `shards = 1` it
/// is bit-identical to the `dense` backend.
///
/// # Panics
/// Panics on `shards = 0`, `shards > n`, executor errors, or
/// renaming-safety violations.
pub fn run_once_sharded(
    algo: &(dyn RenamingAlgorithm + Sync),
    n: usize,
    seed: u64,
    build_adv: &(dyn Fn(usize, u64) -> Box<dyn Adversary> + Sync),
    shards: usize,
) -> RunOutcome {
    run_once_sharded_rng(algo, n, seed, RngMode::default(), build_adv, shards)
}

/// [`run_once_sharded`] with an explicit per-process RNG backend (every
/// shard sub-instance draws in `rng` mode; the default mode is
/// bit-identical to [`run_once_sharded`]).
///
/// # Panics
/// Same conditions as [`run_once_sharded`], plus an unsupported RNG
/// mode (see [`RenamingAlgorithm::instantiate_rng`]).
pub fn run_once_sharded_rng(
    algo: &(dyn RenamingAlgorithm + Sync),
    n: usize,
    seed: u64,
    rng: RngMode,
    build_adv: &(dyn Fn(usize, u64) -> Box<dyn Adversary> + Sync),
    shards: usize,
) -> RunOutcome {
    assert!(shards >= 1, "shard backend needs s ≥ 1");
    assert!(shards <= n, "shard backend needs s ≤ n (got s={shards}, n={n})");
    let (out, m_total) = run_sharded(n, shards, DEFAULT_COUPLING_EVERY, |s, n_s, ctx| {
        let sub_seed = shard_seed(seed, s);
        let mut adversary = ctx.couple(build_adv(n_s, sub_seed));
        let mut arena = Arena::new();
        algo.run_dense_rng(n_s, sub_seed, rng, &mut adversary, &mut arena)
            .map(|outcome| ShardRun { outcome, m: algo.m(n_s) })
    })
    .unwrap_or_else(|e| panic!("{} at n={n}, seed {seed}, shard:s={shards}: {e}", algo.name()));
    if let Err(v) = out.verify_renaming(m_total) {
        panic!(
            "{} violated renaming safety at n={n}, seed {seed}, shard:s={shards}: {v}",
            algo.name()
        );
    }
    out
}

/// Runs `algo` at size `n` once under `schedule` with `seed`.
///
/// # Panics
/// Panics on executor errors or renaming-safety violations (these are
/// bugs, not data).
pub fn run_once(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seed: u64,
    schedule: Schedule,
) -> RunOutcome {
    run_once_with(algo, n, seed, schedule.build(n, seed).as_mut())
}

/// Runs `algo` at size `n` once with `seed` under an arbitrary
/// (possibly recording or replaying) adversary.
///
/// # Panics
/// Panics on executor errors or renaming-safety violations.
pub fn run_once_with(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seed: u64,
    adversary: &mut dyn Adversary,
) -> RunOutcome {
    run_once_with_rng(algo, n, seed, RngMode::default(), adversary)
}

/// [`run_once_with`] with an explicit per-process RNG backend (the
/// default mode is bit-identical to it).
///
/// # Panics
/// Panics on executor errors, renaming-safety violations, or an
/// unsupported RNG mode.
pub fn run_once_with_rng(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seed: u64,
    rng: RngMode,
    adversary: &mut dyn Adversary,
) -> RunOutcome {
    let inst = algo.instantiate_rng(n, seed, rng);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let out = run(procs, adversary, algo.step_budget(n))
        .unwrap_or_else(|e| panic!("{} at n={n}, seed {seed}: {e}", algo.name()));
    if let Err(v) = out.verify_renaming(m) {
        panic!("{} violated renaming safety at n={n}, seed {seed}: {v}", algo.name());
    }
    out
}

/// Per-seed measurements in the order [`BatchStats`] stores them.
type SeedRow = (u64, u64, f64, usize, usize);

fn measure(out: &RunOutcome, n: usize) -> SeedRow {
    (
        out.step_complexity(),
        out.total_steps(),
        out.total_steps() as f64 / n as f64,
        out.gave_up_count(),
        out.crashed.iter().filter(|&&c| c).count(),
    )
}

fn assemble(rows: Vec<SeedRow>) -> BatchStats {
    let mut stats = BatchStats {
        step_complexity: Vec::with_capacity(rows.len()),
        total_steps: Vec::with_capacity(rows.len()),
        mean_steps: Vec::with_capacity(rows.len()),
        unnamed: Vec::with_capacity(rows.len()),
        crashed: Vec::with_capacity(rows.len()),
        violations: 0,
        runs: rows.len(),
    };
    for (steps, total, mean, unnamed, crashed) in rows {
        stats.step_complexity.push(steps);
        stats.total_steps.push(total);
        stats.mean_steps.push(mean);
        stats.unnamed.push(unnamed);
        stats.crashed.push(crashed);
    }
    stats
}

/// The one batch entry point: a builder describing a seed sweep of one
/// algorithm at one size, with the adversary, execution backend and
/// worker count as optional axes.
///
/// Replaces the old `run_batch` / `run_batch_serial` /
/// `run_batch_keyed` / `run_batch_backend` function family:
///
/// ```
/// use rr_bench::runner::{BatchRun, ExecBackend};
/// use rr_renaming::TightRenaming;
///
/// let algo = TightRenaming::calibrated(4);
/// let (stats, timing) = BatchRun::new(&algo, 64)
///     .seeds(3)
///     .adversary("crash:p=200,cap=25")
///     .backend(ExecBackend::Dense)
///     .workers(2)
///     .run()
///     .unwrap();
/// assert_eq!(stats.runs, 3);
/// assert_eq!(timing.runs, 3);
/// ```
///
/// Every seed's run is deterministic in isolation (instantiation, coin
/// flips and the adversary all derive from `(seed, pid)` streams), so
/// seeds are farmed out to scoped worker threads via an atomic
/// work-stealing counter and the rows are re-assembled **in seed
/// order** — the resulting [`BatchStats`] is bit-identical for every
/// worker count (`workers(1)` is the serial reference path).
#[must_use = "a BatchRun does nothing until .run()"]
pub struct BatchRun<'a> {
    algo: &'a (dyn RenamingAlgorithm + Sync),
    n: usize,
    seeds: u64,
    adversary: String,
    backend: ExecBackend,
    rng: RngMode,
    workers: usize,
}

impl<'a> BatchRun<'a> {
    /// A batch of `algo` at size `n`. Defaults: 1 seed, the `fair`
    /// adversary, the `virtual` backend, and `RR_RUNNER_THREADS` (else
    /// available parallelism) workers.
    pub fn new(algo: &'a (dyn RenamingAlgorithm + Sync), n: usize) -> Self {
        Self {
            algo,
            n,
            seeds: 1,
            adversary: "fair".into(),
            backend: ExecBackend::default(),
            rng: RngMode::default(),
            workers: runner_threads(),
        }
    }

    /// Seeds `0..seeds` to sweep.
    pub fn seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Adversary registry key (`"fair"`, `"crash:p=200,cap=25"`, …);
    /// validated at [`BatchRun::run`] time.
    pub fn adversary(mut self, key: impl Into<String>) -> Self {
        self.adversary = key.into();
        self
    }

    /// Typed-schedule convenience: equivalent to
    /// `.adversary(schedule.key())`.
    pub fn schedule(self, schedule: Schedule) -> Self {
        self.adversary(schedule.key())
    }

    /// Execution backend (default [`ExecBackend::Virtual`]).
    pub fn backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Per-process RNG backend (default [`RngMode::ChaCha8`], which is
    /// bit-identical to not calling this at all). A non-default mode is
    /// a **modelling change**: step counts follow a different coin
    /// stream, so the scenario layer stamps its records with the mode.
    /// Algorithms that don't implement the requested mode panic loudly
    /// at instantiation (see [`RenamingAlgorithm::instantiate_rng`]).
    pub fn rng_mode(mut self, rng: RngMode) -> Self {
        self.rng = rng;
        self
    }

    /// Worker threads for the seed sweep; `workers ≤ 1` runs serially
    /// on the caller's thread. Output is bit-identical either way.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Executes the batch: aggregated [`BatchStats`] plus the batch's
    /// wall-clock [`BatchTiming`].
    ///
    /// The `dense` backend gives each worker one [`Arena`] reused
    /// across all of its seeds; `virtual`, `dense` and `shard:s=1`
    /// produce bit-identical [`BatchStats`]; `shard:s=K` is a pure
    /// function of `(seed, K)`; `threads` ignores the adversary
    /// (free-running) and its step counts are wall-clock truths, not
    /// seed-reproducible data.
    ///
    /// # Errors
    /// Returns a message when the adversary key names no registered
    /// adversary or its parameters fail validation, or when the shard
    /// backend's `s` exceeds `n`. The runs themselves panic on safety
    /// violations (those are bugs, not data).
    pub fn run(self) -> Result<(BatchStats, BatchTiming), String> {
        if let ExecBackend::Shard { s } = self.backend {
            if s > self.n {
                return Err(format!("shard backend needs s ≤ n (got s={s}, n={})", self.n));
            }
        }
        let builder = standard().prepare(&self.adversary)?;
        let start = Instant::now();
        let stats = run_batch_core(
            self.algo,
            self.n,
            self.seeds,
            &move |n, seed| builder(n, seed),
            self.workers,
            self.backend,
            self.rng,
        );
        let timing = BatchTiming {
            wall_secs: start.elapsed().as_secs_f64(),
            runs: self.seeds,
            steps: stats.total_work(),
        };
        Ok((stats, timing))
    }

    /// [`BatchRun::run`], keeping only the stats — for callers that
    /// don't track throughput.
    ///
    /// # Errors
    /// Same conditions as [`BatchRun::run`].
    pub fn stats(self) -> Result<BatchStats, String> {
        Ok(self.run()?.0)
    }
}

/// The shared batch executor: farms seeds to scoped workers, building a
/// fresh adversary per seed via `build_adv`, and re-assembles rows in
/// seed order. Each worker owns one dense-backend [`Arena`] for its
/// whole seed range.
fn run_batch_core(
    algo: &(dyn RenamingAlgorithm + Sync),
    n: usize,
    seeds: u64,
    build_adv: &(dyn Fn(usize, u64) -> Box<dyn Adversary> + Sync),
    workers: usize,
    backend: ExecBackend,
    rng: RngMode,
) -> BatchStats {
    let run_seed = |seed: u64, arena: &mut Arena| {
        let out = match backend {
            ExecBackend::Shard { s } => run_once_sharded_rng(algo, n, seed, rng, build_adv, s),
            _ => run_once_backend_rng(
                algo,
                n,
                seed,
                rng,
                build_adv(n, seed).as_mut(),
                backend,
                arena,
            ),
        };
        measure(&out, n)
    };
    let workers = workers.min(seeds as usize);
    if workers <= 1 {
        let mut arena = Arena::new();
        return assemble((0..seeds).map(|seed| run_seed(seed, &mut arena)).collect());
    }
    let next_seed = AtomicU64::new(0);
    let mut rows: Vec<Option<SeedRow>> = vec![None; seeds as usize];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next_seed = &next_seed;
                let run_seed = &run_seed;
                scope.spawn(move || {
                    let mut arena = Arena::new();
                    let mut local: Vec<(u64, SeedRow)> = Vec::new();
                    loop {
                        let seed = next_seed.fetch_add(1, Ordering::Relaxed);
                        if seed >= seeds {
                            break;
                        }
                        local.push((seed, run_seed(seed, &mut arena)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (seed, row) in handle.join().expect("runner worker panicked") {
                rows[seed as usize] = Some(row);
            }
        }
    });
    assemble(rows.into_iter().map(|r| r.expect("every seed claimed exactly once")).collect())
}

/// Worker-thread count for [`BatchRun`]: `RR_RUNNER_THREADS` when set
/// to a positive integer, else the machine's available parallelism.
pub fn runner_threads() -> usize {
    parse_threads(std::env::var("RR_RUNNER_THREADS").ok().as_deref())
}

fn parse_threads(raw: Option<&str>) -> usize {
    raw.and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// The experiment layer's environment, read **once** per binary: the
/// single home of every knob that used to be re-implemented per binary
/// (`--quick` parsing, seed scaling, `RR_RUNNER_THREADS`).
///
/// | knob | source | effect |
/// |---|---|---|
/// | `quick` | `--quick` CLI flag | shrink sweeps so CI finishes in seconds |
/// | `threads` | `RR_RUNNER_THREADS` env (else available parallelism) | [`BatchRun`] worker count |
/// | `json_path` | `--json <path>` CLI flag | also write structured records (see `scenario::sink`) |
/// | `backend` | `--backend <key>` CLI flag | execution core (`virtual` \| `dense` \| `threads:t=N`) |
/// | `rng` | `--rng <mode>` CLI flag | per-process RNG backend (`chacha8` \| `counter`) |
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// CI-sized sweeps when set (the `--quick` flag).
    pub quick: bool,
    /// Worker threads for seed-parallel batches.
    pub threads: usize,
    /// Where to write the JSON-lines record stream, if anywhere.
    pub json_path: Option<std::path::PathBuf>,
    /// Which execution core batch sections run on.
    pub backend: ExecBackend,
    /// Per-process RNG backend. Non-default modes are a modelling
    /// change: records produced under them carry an `"rng"` field.
    pub rng: RngMode,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            quick: false,
            threads: parse_threads(None),
            json_path: None,
            backend: ExecBackend::Virtual,
            rng: RngMode::default(),
        }
    }
}

impl RunConfig {
    /// Reads the process's CLI arguments and environment.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1), std::env::var("RR_RUNNER_THREADS").ok())
    }

    /// Testable core of [`RunConfig::from_env`]: `--quick`,
    /// `--json <path>`, `--backend <key>` and `--rng <mode>` are
    /// recognized, anything else is ignored (the experiment binaries
    /// have always tolerated stray arguments). An invalid backend key
    /// or RNG mode exits with a friendly message (code 2) — the flag is
    /// user input, not programmer error.
    pub fn from_args(args: impl IntoIterator<Item = String>, threads_env: Option<String>) -> Self {
        let mut cfg = Self {
            quick: false,
            threads: parse_threads(threads_env.as_deref()),
            json_path: None,
            backend: ExecBackend::Virtual,
            rng: RngMode::default(),
        };
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => cfg.quick = true,
                // A following `--flag` is not a path — leave it in the
                // stream instead of swallowing it.
                "--json" if args.peek().is_some_and(|v| !v.starts_with("--")) => {
                    cfg.json_path = args.next().map(Into::into);
                }
                "--backend" if args.peek().is_some_and(|v| !v.starts_with("--")) => {
                    let key = args.next().expect("peeked");
                    cfg.backend = ExecBackend::parse(&key).unwrap_or_else(|e| {
                        eprintln!("--backend {key}: {e}");
                        std::process::exit(2);
                    });
                }
                "--rng" if args.peek().is_some_and(|v| !v.starts_with("--")) => {
                    let key = args.next().expect("peeked");
                    cfg.rng = RngMode::parse(&key).unwrap_or_else(|e| {
                        eprintln!("--rng {key}: {e}");
                        std::process::exit(2);
                    });
                }
                _ => {}
            }
        }
        cfg
    }

    /// Picks the full or the `--quick` variant of a sweep parameter.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// Seeds per configuration, scaled down for the largest sizes so a
    /// full sweep stays in laptop territory (the variance of the measured
    /// quantities also shrinks with n, so fewer seeds lose little).
    pub fn seeds_for(&self, n: usize, base: u64) -> u64 {
        if n >= 1 << 20 {
            (base / 6).max(3)
        } else if n >= 1 << 18 {
            (base / 3).max(5)
        } else {
            base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_renaming::traits::LooseL6;
    use rr_renaming::TightRenaming;

    #[test]
    fn batch_runs_and_aggregates() {
        let stats = BatchRun::new(&TightRenaming::calibrated(4), 64).seeds(3).stats().unwrap();
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.violations, 0);
        assert!(stats.max_steps() > 0);
        assert!(stats.mean_max_steps() > 0.0);
        assert_eq!(stats.max_unnamed(), 0);
    }

    #[test]
    fn almost_tight_batch_counts_unnamed() {
        let stats = BatchRun::new(&LooseL6 { ell: 1 }, 256)
            .seeds(2)
            .schedule(Schedule::Random)
            .stats()
            .unwrap();
        assert!(stats.mean_unnamed() > 0.0, "L6 should leave someone unnamed at n=256");
    }

    #[test]
    fn crash_schedule_counts_crashes() {
        let stats = BatchRun::new(&TightRenaming::calibrated(4), 64)
            .seeds(2)
            .schedule(Schedule::Crashes { p_permille: 500, budget_pct: 20 })
            .stats()
            .unwrap();
        assert!(stats.crashed.iter().any(|&c| c > 0));
        assert!(stats.total_crashed() > 0);
    }

    /// The tentpole guarantee: the parallel runner's output is
    /// bit-identical to the serial reference, per field, for every
    /// schedule (f64s compared by bits, not tolerance).
    #[test]
    fn parallel_batch_bit_identical_to_serial() {
        let algo = TightRenaming::calibrated(4);
        for schedule in [
            Schedule::Fair,
            Schedule::Random,
            Schedule::CollisionMax,
            Schedule::Stall,
            Schedule::Crashes { p_permille: 200, budget_pct: 25 },
        ] {
            let serial =
                BatchRun::new(&algo, 96).seeds(8).schedule(schedule).workers(1).stats().unwrap();
            // Force real threading: the default worker count would fall
            // back to serial on single-core CI machines.
            let parallel =
                BatchRun::new(&algo, 96).seeds(8).schedule(schedule).workers(4).stats().unwrap();
            assert_eq!(serial.step_complexity, parallel.step_complexity, "{schedule:?}");
            assert_eq!(serial.unnamed, parallel.unnamed, "{schedule:?}");
            assert_eq!(serial.crashed, parallel.crashed, "{schedule:?}");
            assert_eq!(serial.runs, parallel.runs, "{schedule:?}");
            assert_eq!(serial.violations, parallel.violations, "{schedule:?}");
            let serial_bits: Vec<u64> = serial.mean_steps.iter().map(|f| f.to_bits()).collect();
            let parallel_bits: Vec<u64> = parallel.mean_steps.iter().map(|f| f.to_bits()).collect();
            assert_eq!(serial_bits, parallel_bits, "{schedule:?}");
        }
    }

    /// The keyed (registry-string) path and the typed [`Schedule`] path
    /// are the same executor over the same construction — identical
    /// stats, bit for bit.
    #[test]
    fn keyed_batch_matches_schedule_batch() {
        let algo = TightRenaming::calibrated(4);
        for (key, schedule) in [
            ("fair", Schedule::Fair),
            ("random", Schedule::Random),
            ("collisions", Schedule::CollisionMax),
            ("stall", Schedule::Stall),
            ("crash:p=200,cap=25", Schedule::Crashes { p_permille: 200, budget_pct: 25 }),
        ] {
            let keyed = BatchRun::new(&algo, 96).seeds(4).adversary(key).stats().unwrap();
            let typed = BatchRun::new(&algo, 96).seeds(4).schedule(schedule).stats().unwrap();
            assert_eq!(keyed.step_complexity, typed.step_complexity, "{key}");
            assert_eq!(keyed.unnamed, typed.unnamed, "{key}");
            assert_eq!(keyed.crashed, typed.crashed, "{key}");
            let kb: Vec<u64> = keyed.mean_steps.iter().map(|f| f.to_bits()).collect();
            let tb: Vec<u64> = typed.mean_steps.iter().map(|f| f.to_bits()).collect();
            assert_eq!(kb, tb, "{key}");
        }
    }

    #[test]
    fn keyed_batch_rejects_unknown_keys() {
        let algo = TightRenaming::calibrated(4);
        assert!(BatchRun::new(&algo, 16).adversary("livelock").stats().is_err());
        assert!(BatchRun::new(&algo, 16).adversary("crash:p=nope").stats().is_err());
    }

    #[test]
    fn single_seed_batch_falls_back_to_serial() {
        let stats = BatchRun::new(&TightRenaming::calibrated(4), 64).stats().unwrap();
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn schedule_labels() {
        assert_eq!(Schedule::Fair.label(), "fair");
        assert_eq!(Schedule::Stall.label(), "stall");
        assert_eq!(
            Schedule::Crashes { p_permille: 100, budget_pct: 10 }.label(),
            "crash(p=10.0%,cap=10%)"
        );
    }

    #[test]
    fn schedule_keys_round_trip() {
        for schedule in [
            Schedule::Fair,
            Schedule::Random,
            Schedule::CollisionMax,
            Schedule::Stall,
            Schedule::Crashes { p_permille: 150, budget_pct: 30 },
        ] {
            assert_eq!(Schedule::parse(&schedule.key()).unwrap(), schedule);
        }
        // The table label is accepted as an alias; defaults fill crash in.
        assert_eq!(Schedule::parse("collision-max").unwrap(), Schedule::CollisionMax);
        assert_eq!(
            Schedule::parse("crash").unwrap(),
            Schedule::Crashes { p_permille: 20, budget_pct: 10 }
        );
        assert!(Schedule::parse("livelock").is_err());
        // Unknown names suggest only the typed schedules — not the
        // registry-only searchers this parse can never accept.
        let msg = Schedule::parse("livelock").unwrap_err();
        assert_eq!(
            msg,
            "unknown schedule `livelock` (known: collisions, crash, fair, random, stall)"
        );
        // The searchers themselves get a pointed redirection.
        for key in ["explore", "explore:depth=4", "fuzz:rounds=8"] {
            let msg = Schedule::parse(key).unwrap_err();
            assert!(msg.contains("registry-only"), "{key}: {msg}");
            assert!(msg.contains("BatchRun::adversary"), "{key}: {msg}");
        }
        // So does the load-shape zoo — registry-only, never suggested.
        for key in ["lookahead", "bursty:len=4,gap=2", "diurnal", "victim:pid=3"] {
            let msg = Schedule::parse(key).unwrap_err();
            assert!(msg.contains("no typed Schedule mirror"), "{key}: {msg}");
            assert!(msg.contains("BatchRun::adversary"), "{key}: {msg}");
        }
        // parse runs the registry's full validation: anything it accepts,
        // build can construct — and vice versa.
        assert!(Schedule::parse("crash:p=2000").is_err(), "p > 1000 permille");
        assert!(Schedule::parse("crash:typo=5").is_err(), "unknown parameter");
        assert!(Schedule::parse("fair:x=1").is_err(), "fair takes no parameters");
        assert!(Schedule::parse("collision-max:x=1").is_err(), "alias takes no parameters");
    }

    #[test]
    fn backend_keys_round_trip_and_validate() {
        for (key, backend) in [
            ("virtual", ExecBackend::Virtual),
            ("dense", ExecBackend::Dense),
            ("threads", ExecBackend::Threads { t: 8 }),
            ("threads:t=4", ExecBackend::Threads { t: 4 }),
            ("shard:s=4", ExecBackend::Shard { s: 4 }),
            ("shard:s=1", ExecBackend::Shard { s: 1 }),
        ] {
            assert_eq!(ExecBackend::parse(key).unwrap(), backend, "{key}");
            assert_eq!(ExecBackend::parse(&backend.key()).unwrap(), backend);
        }
        // Bare `shard` defaults s to the machine's core count — whatever
        // that is here, it is at least 1 and round-trips.
        let ExecBackend::Shard { s } = ExecBackend::parse("shard").unwrap() else {
            panic!("bare `shard` must parse to the shard backend");
        };
        assert!(s >= 1);
        assert_eq!(ExecBackend::default(), ExecBackend::Virtual);
        assert!(ExecBackend::parse("gpu").is_err());
        assert!(ExecBackend::parse("dense:t=2").is_err());
        assert!(ExecBackend::parse("threads:t=0").is_err());
        assert!(ExecBackend::parse("threads:x=1").is_err());
        assert!(ExecBackend::parse("shard:s=0").is_err());
        assert!(ExecBackend::parse("shard:x=1").is_err());
    }

    /// The dense backend reuses one arena across every seed of a worker
    /// and must still be bit-identical to the virtual backend, per field.
    #[test]
    fn dense_backend_bit_identical_to_virtual() {
        let algo = TightRenaming::calibrated(4);
        for key in ["fair", "random", "collisions", "stall", "crash:p=200,cap=25"] {
            let run = |backend| {
                BatchRun::new(&algo, 96)
                    .seeds(6)
                    .adversary(key)
                    .backend(backend)
                    .workers(2)
                    .stats()
                    .unwrap()
            };
            let virt = run(ExecBackend::Virtual);
            let dense = run(ExecBackend::Dense);
            assert_eq!(virt.step_complexity, dense.step_complexity, "{key}");
            assert_eq!(virt.total_steps, dense.total_steps, "{key}");
            assert_eq!(virt.unnamed, dense.unnamed, "{key}");
            assert_eq!(virt.crashed, dense.crashed, "{key}");
            let vb: Vec<u64> = virt.mean_steps.iter().map(|f| f.to_bits()).collect();
            let db: Vec<u64> = dense.mean_steps.iter().map(|f| f.to_bits()).collect();
            assert_eq!(vb, db, "{key}");
        }
    }

    /// A single shard is the degenerate partition: `shard_seed(seed, 0)`
    /// is the identity and the coupler adds zero remote names, so
    /// `shard:s=1` must reproduce the dense backend bit for bit.
    #[test]
    fn shard_backend_with_one_shard_bit_identical_to_dense() {
        let algo = TightRenaming::calibrated(4);
        for key in ["fair", "random", "crash:p=200,cap=25"] {
            let run = |backend| {
                BatchRun::new(&algo, 96).seeds(4).adversary(key).backend(backend).stats().unwrap()
            };
            let dense = run(ExecBackend::Dense);
            let shard = run(ExecBackend::Shard { s: 1 });
            assert_eq!(dense.step_complexity, shard.step_complexity, "{key}");
            assert_eq!(dense.total_steps, shard.total_steps, "{key}");
            assert_eq!(dense.unnamed, shard.unnamed, "{key}");
            assert_eq!(dense.crashed, shard.crashed, "{key}");
        }
    }

    /// `shard:s=K` is a pure function of (seed, K): repeated runs and
    /// different worker counts give bit-identical stats.
    #[test]
    fn shard_backend_deterministic_across_workers() {
        let algo = TightRenaming::calibrated(4);
        let run = |workers| {
            BatchRun::new(&algo, 96)
                .seeds(4)
                .adversary("random")
                .backend(ExecBackend::Shard { s: 4 })
                .workers(workers)
                .stats()
                .unwrap()
        };
        let a = run(1);
        let b = run(1);
        let c = run(4);
        for other in [&b, &c] {
            assert_eq!(a.step_complexity, other.step_complexity);
            assert_eq!(a.total_steps, other.total_steps);
            assert_eq!(a.unnamed, other.unnamed);
            assert_eq!(a.crashed, other.crashed);
            let ab: Vec<u64> = a.mean_steps.iter().map(|f| f.to_bits()).collect();
            let ob: Vec<u64> = other.mean_steps.iter().map(|f| f.to_bits()).collect();
            assert_eq!(ab, ob);
        }
    }

    #[test]
    fn shard_backend_rejects_more_shards_than_processes() {
        let algo = TightRenaming::calibrated(4);
        let err =
            BatchRun::new(&algo, 16).backend(ExecBackend::Shard { s: 32 }).stats().unwrap_err();
        assert_eq!(err, "shard backend needs s ≤ n (got s=32, n=16)");
    }

    #[test]
    fn threads_backend_renames_and_reports_timing() {
        let algo = TightRenaming::calibrated(4);
        let (stats, timing) = BatchRun::new(&algo, 48)
            .seeds(2)
            .backend(ExecBackend::Threads { t: 4 })
            .workers(1)
            .run()
            .unwrap();
        assert_eq!(stats.runs, 2);
        assert_eq!(stats.violations, 0);
        assert_eq!(timing.runs, 2);
        assert_eq!(timing.steps, stats.total_work());
        assert!(timing.wall_secs >= 0.0);
        assert!(timing.runs_per_sec() > 0.0);
        assert!(timing.steps_per_sec() > 0.0);
    }

    #[test]
    fn total_steps_consistent_with_mean() {
        let stats = BatchRun::new(&TightRenaming::calibrated(4), 64).seeds(3).stats().unwrap();
        for (total, mean) in stats.total_steps.iter().zip(&stats.mean_steps) {
            assert_eq!((*total as f64 / 64.0).to_bits(), mean.to_bits());
        }
        assert_eq!(stats.total_work(), stats.total_steps.iter().sum::<u64>());
    }

    #[test]
    fn run_config_parses_args_and_env() {
        let cfg = RunConfig::from_args(
            ["--quick", "--json", "out.json", "extra"].map(String::from),
            Some("3".into()),
        );
        assert!(cfg.quick);
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.json_path.as_deref(), Some(std::path::Path::new("out.json")));
        assert_eq!(cfg.pick(10, 2), 2);

        let cfg = RunConfig::from_args(std::iter::empty(), Some("0".into()));
        assert!(!cfg.quick);
        assert!(cfg.threads >= 1, "zero threads must fall back to parallelism");
        assert!(cfg.json_path.is_none());
        assert_eq!(cfg.pick(10, 2), 10);

        // `--json` with no value is tolerated (no path recorded).
        let cfg = RunConfig::from_args(["--json".to_string()], None);
        assert!(cfg.json_path.is_none());

        // `--json` must not swallow a following flag as its path.
        let cfg = RunConfig::from_args(["--json", "--quick"].map(String::from), None);
        assert!(cfg.json_path.is_none());
        assert!(cfg.quick);

        // `--backend` selects the execution core; default is virtual.
        assert_eq!(cfg.backend, ExecBackend::Virtual);
        let cfg = RunConfig::from_args(["--backend", "dense"].map(String::from), None);
        assert_eq!(cfg.backend, ExecBackend::Dense);
        let cfg = RunConfig::from_args(["--backend", "threads:t=3"].map(String::from), None);
        assert_eq!(cfg.backend, ExecBackend::Threads { t: 3 });
        let cfg = RunConfig::from_args(["--backend", "shard:s=2"].map(String::from), None);
        assert_eq!(cfg.backend, ExecBackend::Shard { s: 2 });
        // `--backend` with no value (next is a flag) leaves the default.
        let cfg = RunConfig::from_args(["--backend", "--quick"].map(String::from), None);
        assert_eq!(cfg.backend, ExecBackend::Virtual);
        assert!(cfg.quick);

        // `--rng` selects the per-process RNG backend; default chacha8.
        assert_eq!(cfg.rng, RngMode::default());
        let cfg = RunConfig::from_args(["--rng", "counter"].map(String::from), None);
        assert_eq!(cfg.rng, RngMode::Counter);
        let cfg = RunConfig::from_args(["--rng", "chacha8"].map(String::from), None);
        assert_eq!(cfg.rng, RngMode::ChaCha8);
        // `--rng` with no value (next is a flag) leaves the default.
        let cfg = RunConfig::from_args(["--rng", "--quick"].map(String::from), None);
        assert_eq!(cfg.rng, RngMode::default());
        assert!(cfg.quick);
    }

    /// `.rng_mode(RngMode::default())` is the identity: stats are
    /// bit-identical to a builder that never mentions the mode, on
    /// every backend.
    #[test]
    fn default_rng_mode_is_bit_identical_to_unset() {
        let algo = TightRenaming::calibrated(4);
        for backend in [ExecBackend::Virtual, ExecBackend::Dense, ExecBackend::Shard { s: 2 }] {
            let plain =
                BatchRun::new(&algo, 96).seeds(3).backend(backend).workers(1).stats().unwrap();
            let explicit = BatchRun::new(&algo, 96)
                .seeds(3)
                .backend(backend)
                .rng_mode(RngMode::default())
                .workers(1)
                .stats()
                .unwrap();
            assert_eq!(plain.step_complexity, explicit.step_complexity, "{backend:?}");
            assert_eq!(plain.total_steps, explicit.total_steps, "{backend:?}");
            assert_eq!(plain.unnamed, explicit.unnamed, "{backend:?}");
        }
    }

    /// Counter mode runs safely on every backend, and virtual / dense /
    /// shard:s=1 agree bit for bit under it (same determinism contract
    /// as the default stream).
    #[test]
    fn counter_mode_backends_agree() {
        let algo = TightRenaming::calibrated(4);
        let run = |backend| {
            BatchRun::new(&algo, 96)
                .seeds(3)
                .backend(backend)
                .rng_mode(RngMode::Counter)
                .workers(1)
                .stats()
                .unwrap()
        };
        let virt = run(ExecBackend::Virtual);
        let dense = run(ExecBackend::Dense);
        let shard = run(ExecBackend::Shard { s: 1 });
        assert_eq!(virt.violations, 0);
        assert_eq!(virt.max_unnamed(), 0);
        for other in [&dense, &shard] {
            assert_eq!(virt.step_complexity, other.step_complexity);
            assert_eq!(virt.total_steps, other.total_steps);
            assert_eq!(virt.unnamed, other.unnamed);
        }
    }

    #[test]
    fn seed_scaling_matches_documented_tiers() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.seeds_for(1 << 10, 30), 30);
        assert_eq!(cfg.seeds_for(1 << 18, 30), 10);
        assert_eq!(cfg.seeds_for(1 << 20, 30), 5);
        assert_eq!(cfg.seeds_for(1 << 20, 6), 3);
    }

    #[test]
    fn from_outcomes_matches_batch_aggregation() {
        let algo = TightRenaming::calibrated(4);
        let outs: Vec<_> = (0..3).map(|s| run_once(&algo, 64, s, Schedule::Fair)).collect();
        let manual = BatchStats::from_outcomes(&outs, 64);
        let batch = BatchRun::new(&algo, 64).seeds(3).workers(1).stats().unwrap();
        assert_eq!(manual.step_complexity, batch.step_complexity);
        assert_eq!(manual.unnamed, batch.unnamed);
        assert_eq!(manual.crashed, batch.crashed);
        assert_eq!(manual.runs, batch.runs);
    }
}
