//! Shared machinery for the `exp_*` binaries: run an algorithm across
//! seeds under a chosen adversary, collect the renaming-relevant
//! statistics, and fail loudly on any safety violation.

use rr_renaming::traits::RenamingAlgorithm;
use rr_sched::adversary::{
    Adversary, CollisionMaximizer, CrashAdversary, FairAdversary, RandomAdversary,
};
use rr_sched::process::Process;
use rr_sched::virtual_exec::{run, RunOutcome};
use std::sync::atomic::{AtomicU64, Ordering};

/// Aggregated statistics over a batch of seeded runs.
#[derive(Debug, Clone)]
pub struct BatchStats {
    /// Per-run step complexity (max steps over processes).
    pub step_complexity: Vec<u64>,
    /// Per-run mean steps per process.
    pub mean_steps: Vec<f64>,
    /// Per-run unnamed (gave-up) counts.
    pub unnamed: Vec<usize>,
    /// Per-run crashed counts.
    pub crashed: Vec<usize>,
    /// Runs whose renaming audit failed (should stay 0).
    pub violations: usize,
    /// Number of runs.
    pub runs: usize,
}

impl BatchStats {
    /// Maximum step complexity over all runs.
    pub fn max_steps(&self) -> u64 {
        self.step_complexity.iter().copied().max().unwrap_or(0)
    }

    /// Mean of per-run step complexities.
    pub fn mean_max_steps(&self) -> f64 {
        if self.step_complexity.is_empty() {
            return 0.0;
        }
        self.step_complexity.iter().sum::<u64>() as f64 / self.step_complexity.len() as f64
    }

    /// Mean of per-run mean steps.
    pub fn mean_mean_steps(&self) -> f64 {
        if self.mean_steps.is_empty() {
            return 0.0;
        }
        self.mean_steps.iter().sum::<f64>() / self.mean_steps.len() as f64
    }

    /// Mean unnamed count.
    pub fn mean_unnamed(&self) -> f64 {
        if self.unnamed.is_empty() {
            return 0.0;
        }
        self.unnamed.iter().sum::<usize>() as f64 / self.unnamed.len() as f64
    }

    /// Max unnamed count.
    pub fn max_unnamed(&self) -> usize {
        self.unnamed.iter().copied().max().unwrap_or(0)
    }
}

/// Which adversary to schedule under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Schedule {
    /// Round-robin.
    Fair,
    /// Seeded random.
    Random,
    /// Collision-maximizing adaptive adversary.
    CollisionMax,
    /// Fair schedule + crash injection `(probability ‰, budget %)`.
    Crashes {
        /// Crash probability at winning announces, in permille.
        p_permille: u32,
        /// Max crashes as a percentage of n.
        budget_pct: u32,
    },
}

impl Schedule {
    /// Human-readable label for tables.
    pub fn label(&self) -> String {
        match self {
            Schedule::Fair => "fair".into(),
            Schedule::Random => "random".into(),
            Schedule::CollisionMax => "collision-max".into(),
            Schedule::Crashes { p_permille, budget_pct } => {
                format!("crash(p={:.1}%,cap={budget_pct}%)", *p_permille as f64 / 10.0)
            }
        }
    }

    fn build(&self, n: usize, seed: u64) -> Box<dyn Adversary> {
        match *self {
            Schedule::Fair => Box::new(FairAdversary::default()),
            Schedule::Random => Box::new(RandomAdversary::new(seed)),
            Schedule::CollisionMax => Box::new(CollisionMaximizer::default()),
            Schedule::Crashes { p_permille, budget_pct } => Box::new(CrashAdversary::new(
                FairAdversary::default(),
                p_permille as f64 / 1000.0,
                n * budget_pct as usize / 100,
                seed,
            )),
        }
    }
}

/// Runs `algo` at size `n` once under `schedule` with `seed`.
///
/// # Panics
/// Panics on executor errors or renaming-safety violations (these are
/// bugs, not data).
pub fn run_once(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seed: u64,
    schedule: Schedule,
) -> RunOutcome {
    let inst = algo.instantiate(n, seed);
    let m = inst.m;
    let procs: Vec<Box<dyn Process>> =
        inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
    let mut adversary = schedule.build(n, seed);
    let out = run(procs, adversary.as_mut(), algo.step_budget(n))
        .unwrap_or_else(|e| panic!("{} at n={n}, seed {seed}: {e}", algo.name()));
    if let Err(v) = out.verify_renaming(m) {
        panic!("{} violated renaming safety at n={n}, seed {seed}: {v}", algo.name());
    }
    out
}

/// Per-seed measurements in the order [`BatchStats`] stores them.
type SeedRow = (u64, f64, usize, usize);

fn measure(out: &RunOutcome, n: usize) -> SeedRow {
    (
        out.step_complexity(),
        out.total_steps() as f64 / n as f64,
        out.gave_up_count(),
        out.crashed.iter().filter(|&&c| c).count(),
    )
}

fn assemble(rows: Vec<SeedRow>) -> BatchStats {
    let mut stats = BatchStats {
        step_complexity: Vec::with_capacity(rows.len()),
        mean_steps: Vec::with_capacity(rows.len()),
        unnamed: Vec::with_capacity(rows.len()),
        crashed: Vec::with_capacity(rows.len()),
        violations: 0,
        runs: rows.len(),
    };
    for (steps, mean, unnamed, crashed) in rows {
        stats.step_complexity.push(steps);
        stats.mean_steps.push(mean);
        stats.unnamed.push(unnamed);
        stats.crashed.push(crashed);
    }
    stats
}

/// Runs `algo` at size `n` across `seeds` seeds, one seed at a time.
///
/// Reference path for [`run_batch`]: same output, no threads. Exposed so
/// the equivalence test (and anyone debugging a single seed) can bypass
/// the parallel executor.
pub fn run_batch_serial(
    algo: &dyn RenamingAlgorithm,
    n: usize,
    seeds: u64,
    schedule: Schedule,
) -> BatchStats {
    assemble((0..seeds).map(|seed| measure(&run_once(algo, n, seed, schedule), n)).collect())
}

/// Runs `algo` at size `n` across `seeds` seeds, in parallel over seeds.
///
/// Every seed's run is already deterministic in isolation (instantiation,
/// coin flips and the adversary all derive from `(seed, pid)` streams),
/// so seeds are farmed out to scoped worker threads via an atomic
/// work-stealing counter and the rows are re-assembled **in seed order**
/// — the resulting [`BatchStats`] is bit-identical to
/// [`run_batch_serial`], just `min(seeds, cores)` times sooner.
///
/// Thread count: `RR_RUNNER_THREADS` if set, else the machine's available
/// parallelism.
pub fn run_batch(
    algo: &(dyn RenamingAlgorithm + Sync),
    n: usize,
    seeds: u64,
    schedule: Schedule,
) -> BatchStats {
    run_batch_with_threads(algo, n, seeds, schedule, runner_threads())
}

/// [`run_batch`] with an explicit worker count (≤ 1 runs serially).
pub fn run_batch_with_threads(
    algo: &(dyn RenamingAlgorithm + Sync),
    n: usize,
    seeds: u64,
    schedule: Schedule,
    workers: usize,
) -> BatchStats {
    let workers = workers.min(seeds as usize);
    if workers <= 1 {
        return run_batch_serial(algo, n, seeds, schedule);
    }
    let next_seed = AtomicU64::new(0);
    let mut rows: Vec<Option<SeedRow>> = vec![None; seeds as usize];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next_seed = &next_seed;
                scope.spawn(move || {
                    let mut local: Vec<(u64, SeedRow)> = Vec::new();
                    loop {
                        let seed = next_seed.fetch_add(1, Ordering::Relaxed);
                        if seed >= seeds {
                            break;
                        }
                        local.push((seed, measure(&run_once(algo, n, seed, schedule), n)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (seed, row) in handle.join().expect("runner worker panicked") {
                rows[seed as usize] = Some(row);
            }
        }
    });
    assemble(rows.into_iter().map(|r| r.expect("every seed claimed exactly once")).collect())
}

/// Worker-thread count for [`run_batch`]: `RR_RUNNER_THREADS` when set
/// to a positive integer, else the machine's available parallelism.
pub fn runner_threads() -> usize {
    std::env::var("RR_RUNNER_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
}

/// `--quick` flag: experiment binaries shrink their sweeps so CI can run
/// them in seconds.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Seeds per configuration, scaled down for the largest sizes so a full
/// sweep stays in laptop territory (the variance of the measured
/// quantities also shrinks with n, so fewer seeds lose little).
pub fn seeds_for(n: usize, base: u64) -> u64 {
    if n >= 1 << 20 {
        (base / 6).max(3)
    } else if n >= 1 << 18 {
        (base / 3).max(5)
    } else {
        base
    }
}

/// Standard experiment header so EXPERIMENTS.md and stdout agree.
pub fn header(id: &str, claim: &str) {
    println!("=== {id}: {claim} ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_renaming::traits::LooseL6;
    use rr_renaming::TightRenaming;

    #[test]
    fn batch_runs_and_aggregates() {
        let stats = run_batch(&TightRenaming::calibrated(4), 64, 3, Schedule::Fair);
        assert_eq!(stats.runs, 3);
        assert_eq!(stats.violations, 0);
        assert!(stats.max_steps() > 0);
        assert!(stats.mean_max_steps() > 0.0);
        assert_eq!(stats.max_unnamed(), 0);
    }

    #[test]
    fn almost_tight_batch_counts_unnamed() {
        let stats = run_batch(&LooseL6 { ell: 1 }, 256, 2, Schedule::Random);
        assert!(stats.mean_unnamed() > 0.0, "L6 should leave someone unnamed at n=256");
    }

    #[test]
    fn crash_schedule_counts_crashes() {
        let stats = run_batch(
            &TightRenaming::calibrated(4),
            64,
            2,
            Schedule::Crashes { p_permille: 500, budget_pct: 20 },
        );
        assert!(stats.crashed.iter().any(|&c| c > 0));
    }

    /// The tentpole guarantee: the parallel runner's output is
    /// bit-identical to the serial reference, per field, for every
    /// schedule (f64s compared by bits, not tolerance).
    #[test]
    fn parallel_batch_bit_identical_to_serial() {
        let algo = TightRenaming::calibrated(4);
        for schedule in [
            Schedule::Fair,
            Schedule::Random,
            Schedule::CollisionMax,
            Schedule::Crashes { p_permille: 200, budget_pct: 25 },
        ] {
            let serial = run_batch_serial(&algo, 96, 8, schedule);
            // Force real threading: `run_batch` alone would fall back to
            // serial on single-core CI machines.
            let parallel = run_batch_with_threads(&algo, 96, 8, schedule, 4);
            assert_eq!(serial.step_complexity, parallel.step_complexity, "{schedule:?}");
            assert_eq!(serial.unnamed, parallel.unnamed, "{schedule:?}");
            assert_eq!(serial.crashed, parallel.crashed, "{schedule:?}");
            assert_eq!(serial.runs, parallel.runs, "{schedule:?}");
            assert_eq!(serial.violations, parallel.violations, "{schedule:?}");
            let serial_bits: Vec<u64> = serial.mean_steps.iter().map(|f| f.to_bits()).collect();
            let parallel_bits: Vec<u64> = parallel.mean_steps.iter().map(|f| f.to_bits()).collect();
            assert_eq!(serial_bits, parallel_bits, "{schedule:?}");
        }
    }

    #[test]
    fn single_seed_batch_falls_back_to_serial() {
        let stats = run_batch(&TightRenaming::calibrated(4), 64, 1, Schedule::Fair);
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn schedule_labels() {
        assert_eq!(Schedule::Fair.label(), "fair");
        assert_eq!(
            Schedule::Crashes { p_permille: 100, budget_pct: 10 }.label(),
            "crash(p=10.0%,cap=10%)"
        );
    }
}
