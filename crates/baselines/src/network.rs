//! Comparator-network renaming — the baseline of Alistarh et al.
//! (PODC 2011, reference \[7\] of the paper), which the τ-register
//! construction is designed to beat.
//!
//! Their transformation turns any sorting network into a renaming
//! protocol: each comparator is one TAS register ("splitter"); a process
//! enters the network on the wire of its initial name and, at every
//! comparator it meets, performs the TAS — the winner leaves on the
//! comparator's min-wire, the loser on the max-wire. At most one process
//! ever occupies a wire per layer (inputs are distinct and each
//! comparator maps its ≤ 2 visitors injectively to its two outputs), so
//! final wires are distinct: the final wire *is* the new name. Step
//! complexity = number of comparators on the path ≤ network depth.
//!
//! The paper's comparison target instantiates this with the AKS network
//! (depth `O(log n)`, galactic constants); we instantiate with
//! **Batcher's bitonic network** (depth `log W·(log W+1)/2`, constant 1)
//! — same code path, buildable — and provide the analytic AKS depth in
//! [`crate::aks_model`] for the crossover tables. See DESIGN.md.

use rr_renaming::traits::{Instance, RenamingAlgorithm};
use rr_sched::ids::Pid;
use rr_sched::process::{Process, StepOutcome};
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use rr_shmem::Access;
use std::sync::Arc;

/// A single comparator between wires `lo < hi` within one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Comparator {
    /// The min-output wire.
    pub lo: usize,
    /// The max-output wire.
    pub hi: usize,
}

/// A comparator network as layers of disjoint comparators.
#[derive(Debug, Clone)]
pub struct ComparatorNetwork {
    width: usize,
    layers: Vec<Vec<Comparator>>,
    /// `wire_map[layer][wire]` → index of the comparator touching `wire`
    /// in `layer` (dense lookup), or `usize::MAX`.
    wire_map: Vec<Vec<usize>>,
    /// Comparator ids are global (for TAS register addressing):
    /// `layer_base[l] + index_within_layer`.
    layer_base: Vec<usize>,
    total: usize,
}

impl ComparatorNetwork {
    /// Builds a network from layers.
    ///
    /// # Panics
    /// Panics if a layer reuses a wire or a comparator is degenerate.
    pub fn new(width: usize, layers: Vec<Vec<Comparator>>) -> Self {
        let mut wire_map = Vec::with_capacity(layers.len());
        let mut layer_base = Vec::with_capacity(layers.len());
        let mut total = 0usize;
        for layer in &layers {
            let mut map = vec![usize::MAX; width];
            for (ci, c) in layer.iter().enumerate() {
                assert!(c.lo < c.hi && c.hi < width, "bad comparator {c:?}");
                assert!(map[c.lo] == usize::MAX && map[c.hi] == usize::MAX, "wire reuse");
                map[c.lo] = ci;
                map[c.hi] = ci;
            }
            wire_map.push(map);
            layer_base.push(total);
            total += layer.len();
        }
        Self { width, layers, wire_map, layer_base, total }
    }

    /// Batcher's bitonic sorting network for `width` wires
    /// (power of two).
    ///
    /// # Panics
    /// Panics unless `width` is a power of two ≥ 2.
    pub fn bitonic(width: usize) -> Self {
        assert!(width.is_power_of_two() && width >= 2, "bitonic needs a power-of-two width");
        let mut layers = Vec::new();
        let mut k = 2;
        while k <= width {
            let mut j = k / 2;
            while j >= 1 {
                let mut layer = Vec::new();
                for i in 0..width {
                    let partner = i ^ j;
                    if partner > i {
                        // Direction of the bitonic stage (ascending when
                        // the k-block bit is clear). For renaming only
                        // the (lo, hi) ordering matters; we normalize so
                        // winners always move toward the lower wire.
                        layer.push(Comparator { lo: i, hi: partner });
                    }
                }
                layers.push(layer);
                j /= 2;
            }
            k *= 2;
        }
        Self::new(width, layers)
    }

    /// Number of wires.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Network depth (number of layers).
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Total number of comparators (= TAS registers required).
    pub fn size(&self) -> usize {
        self.total
    }

    /// Comparator touching `wire` in `layer`, with its global id.
    pub fn comparator_at(&self, layer: usize, wire: usize) -> Option<(usize, Comparator)> {
        let ci = self.wire_map[layer][wire];
        (ci != usize::MAX).then(|| (self.layer_base[layer] + ci, self.layers[layer][ci]))
    }
}

/// Shared memory for a network-renaming run: one TAS per comparator.
#[derive(Debug)]
pub struct NetworkShared {
    /// The network structure.
    pub network: ComparatorNetwork,
    /// `splitters[cid]` — the TAS register of comparator `cid`.
    pub splitters: AtomicTasArray,
}

impl NetworkShared {
    /// Builds the splitter array for `network`.
    pub fn new(network: ComparatorNetwork) -> Self {
        let splitters = AtomicTasArray::new(network.size());
        Self { network, splitters }
    }
}

/// A process traversing the splitter network from wire `pid`.
pub struct NetworkProcess {
    pid: usize,
    shared: Arc<NetworkShared>,
    layer: usize,
    wire: usize,
    array: u32,
}

impl NetworkProcess {
    /// Process entering on wire `pid`, announcing on TAS array id 3
    /// (the comparator-network address space).
    pub fn new(pid: usize, shared: Arc<NetworkShared>) -> Self {
        Self::with_array(pid, shared, 3)
    }

    /// Process entering on wire `pid`, announcing on TAS `array` — lets
    /// network families (bitonic vs [`crate::route`]) stay
    /// distinguishable to adversaries that group by announced target.
    pub fn with_array(pid: usize, shared: Arc<NetworkShared>, array: u32) -> Self {
        assert!(pid < shared.network.width(), "initial wire out of range");
        Self { pid, shared, layer: 0, wire: pid, array }
    }

    /// Skips layers with no comparator on the current wire (free — pure
    /// routing), stopping at the next comparator or the network end.
    fn advance_to_comparator(&mut self) -> Option<(usize, Comparator)> {
        while self.layer < self.shared.network.depth() {
            if let Some(hit) = self.shared.network.comparator_at(self.layer, self.wire) {
                return Some(hit);
            }
            self.layer += 1;
        }
        None
    }
}

impl Process for NetworkProcess {
    fn announce(&mut self) -> Access {
        match self.advance_to_comparator() {
            Some((cid, _)) => Access::Tas { array: self.array, index: cid },
            None => Access::Local,
        }
    }

    fn step(&mut self) -> StepOutcome {
        match self.advance_to_comparator() {
            Some((cid, comp)) => {
                let won = self.shared.splitters.tas(cid);
                self.wire = if won { comp.lo } else { comp.hi };
                self.layer += 1;
                // Exiting the last comparator ends the protocol — the
                // final wire is the name; no extra step is charged.
                match self.advance_to_comparator() {
                    Some(_) => StepOutcome::Continue,
                    None => StepOutcome::Done(self.wire),
                }
            }
            None => StepOutcome::Done(self.wire),
        }
    }

    fn pid(&self) -> Pid {
        Pid::new(self.pid)
    }
}

/// Network renaming as a [`RenamingAlgorithm`]: width = next power of two
/// ≥ n, so `m < 2n` (tight `m = n` when `n` is a power of two).
#[derive(Debug, Clone, Copy)]
pub struct BitonicRenaming;

impl RenamingAlgorithm for BitonicRenaming {
    fn name(&self) -> String {
        "bitonic-network".into()
    }

    fn m(&self, n: usize) -> usize {
        n.next_power_of_two().max(2)
    }

    fn instantiate(&self, n: usize, _seed: u64) -> Instance {
        Instance { processes: rr_renaming::traits::boxed(self.build(n)), m: self.m(n), n }
    }

    /// Deterministic: no randomness is drawn, so every RNG backend is
    /// trivially supported (the mode is irrelevant, not refused).
    fn instantiate_rng(&self, n: usize, seed: u64, _rng: rr_shmem::rng::RngMode) -> Instance {
        self.instantiate(n, seed)
    }

    fn run_dense(
        &self,
        n: usize,
        _seed: u64,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        arena.run(&mut self.build(n), adversary, self.step_budget(n))
    }
}

impl BitonicRenaming {
    fn build(&self, n: usize) -> Vec<NetworkProcess> {
        let shared = Arc::new(NetworkShared::new(ComparatorNetwork::bitonic(self.m(n))));
        (0..n).map(|pid| NetworkProcess::new(pid, Arc::clone(&shared))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sched::adversary::{CollisionMaximizer, FairAdversary, RandomAdversary};
    use rr_sched::virtual_exec::run;

    #[test]
    fn bitonic_structure() {
        let net = ComparatorNetwork::bitonic(8);
        // Depth = log W (log W + 1)/2 = 3·4/2 = 6.
        assert_eq!(net.depth(), 6);
        // Size = depth · W/2 = 6·4 = 24.
        assert_eq!(net.size(), 24);
        assert_eq!(net.width(), 8);
        // Every layer pairs all 8 wires (bitonic is a full butterfly).
        for l in 0..net.depth() {
            for w in 0..8 {
                assert!(net.comparator_at(l, w).is_some());
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bitonic_width_must_be_pow2() {
        ComparatorNetwork::bitonic(6);
    }

    #[test]
    #[should_panic(expected = "wire reuse")]
    fn layer_wire_reuse_rejected() {
        ComparatorNetwork::new(
            4,
            vec![vec![Comparator { lo: 0, hi: 1 }, Comparator { lo: 1, hi: 2 }]],
        );
    }

    #[test]
    fn full_network_run_is_tight_renaming() {
        let n = 16;
        let inst = BitonicRenaming.instantiate(n, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), 1 << 20).unwrap();
        out.verify_renaming(16).unwrap();
        let mut names: Vec<_> = out.names.iter().map(|x| x.unwrap()).collect();
        names.sort_unstable();
        assert_eq!(names, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn step_complexity_equals_depth_for_full_occupancy() {
        // With every wire occupied, every process meets a comparator in
        // every layer: steps = depth exactly.
        let n = 32;
        let net_depth = ComparatorNetwork::bitonic(32).depth() as u64;
        let inst = BitonicRenaming.instantiate(n, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut RandomAdversary::new(4), 1 << 20).unwrap();
        assert_eq!(out.step_complexity(), net_depth);
        assert!(out.steps.iter().all(|&s| s == net_depth));
    }

    #[test]
    fn partial_occupancy_names_distinct() {
        // 10 processes in a width-16 network: distinct names < 16.
        let inst = BitonicRenaming.instantiate(10, 0);
        assert_eq!(inst.m, 16);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut CollisionMaximizer::default(), 1 << 20).unwrap();
        out.verify_renaming(16).unwrap();
    }

    #[test]
    fn depth_grows_quadratically_in_log() {
        let d = |w: usize| ComparatorNetwork::bitonic(w).depth();
        assert_eq!(d(2), 1);
        assert_eq!(d(4), 3);
        assert_eq!(d(16), 10);
        assert_eq!(d(1024), 55); // 10·11/2
    }

    #[test]
    fn single_process_reaches_wire_zero() {
        // Alone in the network, a process wins every comparator and
        // percolates to the lowest wire.
        let shared = Arc::new(NetworkShared::new(ComparatorNetwork::bitonic(8)));
        let mut p = NetworkProcess::new(5, Arc::clone(&shared));
        let (name, _steps) = rr_sched::process::run_to_completion(&mut p, 1000);
        assert_eq!(name, Some(0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rr_sched::adversary::RandomAdversary;
    use rr_sched::virtual_exec::run;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Any occupancy of any bitonic width yields distinct in-range
        /// names under any schedule.
        #[test]
        fn network_names_distinct(
            width_log in 1u32..8,
            occupancy_frac in 1usize..100,
            seed in 0u64..500,
        ) {
            let width = 1usize << width_log;
            let n = (width * occupancy_frac / 100).max(1).min(width);
            let shared = Arc::new(NetworkShared::new(ComparatorNetwork::bitonic(width)));
            let procs: Vec<Box<dyn Process>> = (0..n)
                .map(|pid| {
                    Box::new(NetworkProcess::new(pid, Arc::clone(&shared))) as Box<dyn Process>
                })
                .collect();
            let out = run(procs, &mut RandomAdversary::new(seed), 1 << 22).unwrap();
            prop_assert!(out.verify_renaming(width).is_ok());
            // Steps never exceed the depth.
            let depth = shared.network.depth() as u64;
            prop_assert!(out.steps.iter().all(|&s| s <= depth));
        }

        /// Random legal layered networks (not just bitonic) still give
        /// distinct names — distinctness is a property of TAS splitters,
        /// not of the sorting structure.
        #[test]
        fn arbitrary_networks_are_renaming_safe(
            width in 2usize..24,
            layer_seeds in proptest::collection::vec(0u64..u64::MAX, 0..12),
            seed in 0u64..200,
        ) {
            use rand::{RngExt, SeedableRng};
            // Build random disjoint comparator layers.
            let layers: Vec<Vec<Comparator>> = layer_seeds
                .iter()
                .map(|&ls| {
                    let mut rng = rand::rngs::ChaCha8Rng::seed_from_u64(ls);
                    let mut wires: Vec<usize> = (0..width).collect();
                    // Fisher-Yates then pair up a random prefix.
                    for i in (1..wires.len()).rev() {
                        let j = rng.random_range(0..=i);
                        wires.swap(i, j);
                    }
                    let pairs = rng.random_range(0..=width / 2);
                    (0..pairs)
                        .map(|k| {
                            let a = wires[2 * k];
                            let b = wires[2 * k + 1];
                            Comparator { lo: a.min(b), hi: a.max(b) }
                        })
                        .collect()
                })
                .collect();
            let net = ComparatorNetwork::new(width, layers);
            let shared = Arc::new(NetworkShared::new(net));
            let procs: Vec<Box<dyn Process>> = (0..width)
                .map(|pid| {
                    Box::new(NetworkProcess::new(pid, Arc::clone(&shared))) as Box<dyn Process>
                })
                .collect();
            let out = run(procs, &mut RandomAdversary::new(seed), 1 << 22).unwrap();
            prop_assert!(out.verify_renaming(width).is_ok());
        }
    }
}
