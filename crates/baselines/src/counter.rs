//! Ideal fetch-and-increment renaming — the hardware upper bound.
//!
//! A single fetch-and-add register renames in exactly one step per
//! process. The paper's TAS-register model deliberately excludes it (TAS
//! is the weaker primitive the lower bounds are about), but the
//! τ-register proposal is itself "new hardware", so the E8 table shows
//! fetch-add as the limit the τ-register approaches: O(1) vs O(log n)
//! steps, at the cost of a stronger primitive and a single hot spot.

use rr_renaming::traits::{Instance, RenamingAlgorithm};
use rr_sched::ids::Pid;
use rr_sched::process::{Process, StepOutcome};
use rr_shmem::Access;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One fetch-add process.
pub struct CounterProcess {
    pid: usize,
    counter: Arc<AtomicUsize>,
    limit: usize,
}

impl Process for CounterProcess {
    fn announce(&mut self) -> Access {
        // The counter is "register 0" of its own array class.
        Access::Tas { array: 4, index: 0 }
    }

    fn step(&mut self) -> StepOutcome {
        let name = self.counter.fetch_add(1, Ordering::Relaxed);
        assert!(name < self.limit, "more fetch-add claims than processes");
        StepOutcome::Done(name)
    }

    fn pid(&self) -> Pid {
        Pid::new(self.pid)
    }
}

/// Fetch-and-increment tight renaming (`m = n`, 1 step).
#[derive(Debug, Clone, Copy)]
pub struct FetchAddRenaming;

impl FetchAddRenaming {
    fn build(&self, n: usize) -> Vec<CounterProcess> {
        let counter = Arc::new(AtomicUsize::new(0));
        (0..n).map(|pid| CounterProcess { pid, counter: Arc::clone(&counter), limit: n }).collect()
    }
}

impl RenamingAlgorithm for FetchAddRenaming {
    fn name(&self) -> String {
        "fetch-add".into()
    }

    fn m(&self, n: usize) -> usize {
        n
    }

    fn instantiate(&self, n: usize, _seed: u64) -> Instance {
        Instance { processes: rr_renaming::traits::boxed(self.build(n)), m: n, n }
    }

    /// Deterministic: no randomness is drawn, so every RNG backend is
    /// trivially supported (the mode is irrelevant, not refused).
    fn instantiate_rng(&self, n: usize, seed: u64, _rng: rr_shmem::rng::RngMode) -> Instance {
        self.instantiate(n, seed)
    }

    fn run_dense(
        &self,
        n: usize,
        _seed: u64,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        arena.run(&mut self.build(n), adversary, self.step_budget(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sched::adversary::FairAdversary;
    use rr_sched::virtual_exec::run;

    #[test]
    fn one_step_tight_renaming() {
        let inst = FetchAddRenaming.instantiate(64, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), 1000).unwrap();
        out.verify_renaming(64).unwrap();
        assert_eq!(out.step_complexity(), 1);
        let mut names: Vec<_> = out.names.iter().map(|x| x.unwrap()).collect();
        names.sort_unstable();
        assert_eq!(names, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn threaded_counter_still_distinct() {
        let inst = FetchAddRenaming.instantiate(128, 0);
        let out = rr_sched::thread_exec::run_threads(inst.processes, 10);
        out.verify_renaming(128).unwrap();
    }
}
