//! # rr-baselines — the algorithms the paper compares against
//!
//! * [`network`] — comparator-network renaming (Alistarh et al. \[7\]):
//!   TAS splitters over Batcher's bitonic network, the buildable stand-in
//!   for AKS (see DESIGN.md for the substitution argument).
//! * [`aks_model`] — analytic AKS depth, for the crossover tables.
//! * [`uniform`] — uniform random probing into `(1+ε)n` names.
//! * [`linear`] — deterministic Θ(n) scan (the lower-bound witness).
//! * [`splitter_grid`] — Moir–Anderson grid renaming from read/write
//!   registers only (no TAS): quadratic name space, Θ(n) steps — the
//!   regime the paper's TAS protocols escape.
//! * [`counter`] — ideal fetch-and-increment (the hardware upper bound).
//! * [`route`] — topology-routed renaming through multistage switching
//!   networks (Beneš / butterfly / the PAPERS.md Beneš variant), the
//!   depth-vs-steps axis of the comparison matrix.
//!
//! Everything implements [`rr_renaming::RenamingAlgorithm`], so the E8
//! comparison harness treats the paper's protocols and these baselines
//! uniformly; [`registry::register_baselines`] adds them all to an
//! [`rr_renaming::AlgorithmRegistry`] under string keys.
//!
//! ```
//! use rr_renaming::traits::RenamingAlgorithm;
//! use rr_renaming::AlgorithmRegistry;
//!
//! let mut reg = AlgorithmRegistry::with_paper_algorithms();
//! rr_baselines::register_baselines(&mut reg);
//! let bitonic = reg.build("bitonic").unwrap();
//! assert_eq!(bitonic.name(), "bitonic-network");
//! assert!(reg.keys().len() >= 14, "paper protocols + every baseline");
//! ```

#![forbid(unsafe_code)]

pub mod aks_model;
pub mod counter;
pub mod linear;
pub mod network;
pub mod registry;
pub mod route;
pub mod splitter_grid;
pub mod uniform;

pub use counter::FetchAddRenaming;
pub use linear::{LinearScan, ScanStart};
pub use network::{BitonicRenaming, ComparatorNetwork, NetworkProcess, NetworkShared};
pub use registry::register_baselines;
pub use route::{route_network, RouteRenaming, RouteTopology, ROUTE_TAS_ARRAY};
pub use splitter_grid::{GridProcess, GridShared, Splitter, SplitterGrid};
pub use uniform::{UniformProbing, UniformProcess};
