//! Analytic depth model for the AKS comparison.
//!
//! The AKS sorting network has depth `c_AKS · log₂ W` for a constant
//! that published constructions put in the thousands (Paterson's variant
//! is ~6100; later improvements remain ≫ 1000). The paper's whole
//! motivation for the τ-register is avoiding "the overhead and
//! impracticality of the AKS network" — this module quantifies that
//! trade-off for the E8 crossover table without pretending to build AKS.

/// Published depth constant for practical AKS variants (Paterson 1990
/// gives ≈ 6100; we use a charitable 1830 from later analyses — even the
/// charitable constant loses to everything else at terrestrial n).
pub const AKS_DEPTH_CONSTANT: f64 = 1830.0;

/// Depth of an AKS network of width `w` under the model.
pub fn aks_depth(w: usize) -> f64 {
    assert!(w >= 2);
    AKS_DEPTH_CONSTANT * (w as f64).log2()
}

/// Depth of Batcher's bitonic network of width `w` (exact):
/// `k(k+1)/2` for `k = log₂ w`.
pub fn bitonic_depth(w: usize) -> u64 {
    assert!(w.is_power_of_two() && w >= 2);
    let k = w.trailing_zeros() as u64;
    k * (k + 1) / 2
}

/// The width below which bitonic beats the AKS model — i.e. how large n
/// must get before AKS's asymptotics pay for its constant:
/// `k(k+1)/2 < c·k ⇔ k < 2c − 1`.
pub fn aks_crossover_log2() -> u64 {
    (2.0 * AKS_DEPTH_CONSTANT - 1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aks_depth_formula() {
        assert!((aks_depth(1024) - AKS_DEPTH_CONSTANT * 10.0).abs() < 1e-9);
    }

    #[test]
    fn bitonic_depth_matches_network_generator() {
        // Cross-checked against `ComparatorNetwork::bitonic` in tests
        // there; here pin the closed form.
        assert_eq!(bitonic_depth(2), 1);
        assert_eq!(bitonic_depth(1024), 55);
        assert_eq!(bitonic_depth(1 << 20), 210);
    }

    #[test]
    fn aks_never_wins_at_terrestrial_sizes() {
        // Crossover at log₂ w ≈ 2c − 1 ≈ 3659: w ≈ 2^3659. The observable
        // universe does not contain that many processes.
        assert!(aks_crossover_log2() > 3000);
        for exp in [10u32, 20, 30, 60] {
            let w = 1usize << exp;
            assert!((bitonic_depth(w) as f64) < aks_depth(w));
        }
    }
}
