//! Deterministic linear-scan renaming — the Θ(n) lower-bound witness.
//!
//! The paper contrasts its randomized bounds with the deterministic
//! world: "the lower bound is known to be Ω(n) and, thus, exponentially
//! worse" (§I.A). This baseline realizes that gap for the E11 table: a
//! process simply scans the name space from a starting point and takes
//! the first register it wins. With all processes starting at 0 (no
//! initial symmetry to exploit), the k-th winner pays k steps and the
//! step complexity is exactly n.

use rr_renaming::traits::{Instance, RenamingAlgorithm};
use rr_sched::ids::Pid;
use rr_sched::process::{Process, StepOutcome};
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use rr_shmem::Access;
use std::sync::Arc;

/// Where scans begin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStart {
    /// Everyone starts at register 0 — the adversarial worst case.
    Zero,
    /// Process `p` starts at register `p` — stale initial names help, but
    /// the adversary can still force Θ(n) by crashing or stalling.
    OwnPid,
}

/// One scanning process.
pub struct ScanProcess {
    pid: usize,
    mem: Arc<AtomicTasArray>,
    cursor: usize,
    remaining: usize,
}

impl ScanProcess {
    /// Process `pid` scanning `mem` from `start`.
    pub fn new(pid: usize, mem: Arc<AtomicTasArray>, start: ScanStart) -> Self {
        let cursor = match start {
            ScanStart::Zero => 0,
            ScanStart::OwnPid => pid % mem.len(),
        };
        let remaining = mem.len();
        Self { pid, mem, cursor, remaining }
    }
}

impl Process for ScanProcess {
    fn announce(&mut self) -> Access {
        Access::Tas { array: 0, index: self.cursor }
    }

    fn step(&mut self) -> StepOutcome {
        if self.remaining == 0 {
            // Full wrap without a win: more processes than names.
            return StepOutcome::GaveUp;
        }
        let idx = self.cursor;
        self.cursor = (self.cursor + 1) % self.mem.len();
        self.remaining -= 1;
        if self.mem.tas(idx) {
            StepOutcome::Done(idx)
        } else {
            StepOutcome::Continue
        }
    }

    fn pid(&self) -> Pid {
        Pid::new(self.pid)
    }
}

/// Linear scan as a tight (`m = n`) deterministic renaming algorithm.
#[derive(Debug, Clone, Copy)]
pub struct LinearScan {
    /// Scan start policy.
    pub start: ScanStart,
}

impl RenamingAlgorithm for LinearScan {
    fn name(&self) -> String {
        match self.start {
            ScanStart::Zero => "linear-scan(0)".into(),
            ScanStart::OwnPid => "linear-scan(pid)".into(),
        }
    }

    fn m(&self, n: usize) -> usize {
        n
    }

    fn instantiate(&self, n: usize, _seed: u64) -> Instance {
        Instance { processes: rr_renaming::traits::boxed(self.build(n)), m: n, n }
    }

    /// Deterministic: no randomness is drawn, so every RNG backend is
    /// trivially supported (the mode is irrelevant, not refused).
    fn instantiate_rng(&self, n: usize, seed: u64, _rng: rr_shmem::rng::RngMode) -> Instance {
        self.instantiate(n, seed)
    }

    fn step_budget(&self, n: usize) -> u64 {
        // Θ(n) per process by design.
        4 * (n as u64) * (n as u64) + 1024
    }

    fn run_dense(
        &self,
        n: usize,
        _seed: u64,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        arena.run(&mut self.build(n), adversary, self.step_budget(n))
    }
}

impl LinearScan {
    fn build(&self, n: usize) -> Vec<ScanProcess> {
        let mem = Arc::new(AtomicTasArray::new(n));
        (0..n).map(|pid| ScanProcess::new(pid, Arc::clone(&mem), self.start)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sched::adversary::{FairAdversary, RandomAdversary};
    use rr_sched::virtual_exec::run;

    #[test]
    fn zero_start_is_theta_n() {
        let n = 128;
        let algo = LinearScan { start: ScanStart::Zero };
        let inst = algo.instantiate(n, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), algo.step_budget(n)).unwrap();
        out.verify_renaming(n).unwrap();
        // The last winner scanned the whole space.
        assert_eq!(out.step_complexity(), n as u64);
        assert_eq!(out.gave_up_count(), 0);
    }

    #[test]
    fn pid_start_is_fast_when_uncontended() {
        let n = 128;
        let algo = LinearScan { start: ScanStart::OwnPid };
        let inst = algo.instantiate(n, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), algo.step_budget(n)).unwrap();
        out.verify_renaming(n).unwrap();
        // Distinct starting points: everyone wins the first probe.
        assert_eq!(out.step_complexity(), 1);
    }

    #[test]
    fn safety_under_random_adversary() {
        let algo = LinearScan { start: ScanStart::Zero };
        let inst = algo.instantiate(64, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut RandomAdversary::new(7), algo.step_budget(64)).unwrap();
        out.verify_renaming(64).unwrap();
    }

    #[test]
    fn names() {
        assert_eq!(LinearScan { start: ScanStart::Zero }.name(), "linear-scan(0)");
        assert_eq!(LinearScan { start: ScanStart::OwnPid }.name(), "linear-scan(pid)");
    }
}
