//! Uniform random probing: the simplest loose-renaming baseline.
//!
//! With `m = (1+ε)n` registers, a process TASes uniformly random
//! registers until it wins one. Expected steps are `O(1/ε)` but the
//! w.h.p. step complexity is `Θ(log n / log(1+ε))` — the gap to the
//! paper's `O((log log n)^ℓ)` protocols that the E8 comparison table
//! exhibits.

use rr_renaming::traits::{Instance, RenamingAlgorithm};
use rr_sched::ids::Pid;
use rr_sched::process::{Process, StepOutcome};
use rr_shmem::rng::{ProcessRng, RngMode};
use rr_shmem::tas::{AtomicTasArray, TasMemory};
use rr_shmem::Access;
use std::sync::Arc;

/// One uniform-probing process.
pub struct UniformProcess {
    pid: usize,
    rng: ProcessRng,
    mem: Arc<AtomicTasArray>,
    pending: Option<usize>,
    /// Safety valve: probes before giving up (≫ w.h.p. bound).
    budget: u64,
}

impl UniformProcess {
    /// Process `pid` probing `mem`.
    pub fn new(pid: usize, seed: u64, mem: Arc<AtomicTasArray>, budget: u64) -> Self {
        Self::with_rng(pid, seed, RngMode::default(), mem, budget)
    }

    /// Like [`UniformProcess::new`] with an explicit RNG backend (the
    /// default mode is bit-identical to it).
    pub fn with_rng(
        pid: usize,
        seed: u64,
        rng: RngMode,
        mem: Arc<AtomicTasArray>,
        budget: u64,
    ) -> Self {
        Self { pid, rng: ProcessRng::with_mode(rng, seed, pid), mem, pending: None, budget }
    }
}

impl Process for UniformProcess {
    fn announce(&mut self) -> Access {
        let idx = *self.pending.get_or_insert_with(|| self.rng.index(self.mem.len()));
        Access::Tas { array: 0, index: idx }
    }

    fn step(&mut self) -> StepOutcome {
        let idx = match self.pending.take() {
            Some(i) => i,
            None => self.rng.index(self.mem.len()),
        };
        if self.budget == 0 {
            return StepOutcome::GaveUp;
        }
        self.budget -= 1;
        if self.mem.tas(idx) {
            StepOutcome::Done(idx)
        } else {
            StepOutcome::Continue
        }
    }

    fn pid(&self) -> Pid {
        Pid::new(self.pid)
    }

    fn rng_words(&self) -> Option<u64> {
        Some(self.rng.words_drawn())
    }
}

/// Uniform probing into `m = ⌈(1+ε)n⌉` names.
#[derive(Debug, Clone, Copy)]
pub struct UniformProbing {
    /// The slack ε > 0.
    pub epsilon: f64,
}

impl UniformProbing {
    /// Classic ε = 1 (double space) configuration.
    pub fn double() -> Self {
        Self { epsilon: 1.0 }
    }
}

impl RenamingAlgorithm for UniformProbing {
    fn name(&self) -> String {
        format!("uniform(eps={})", self.epsilon)
    }

    fn m(&self, n: usize) -> usize {
        ((1.0 + self.epsilon) * n as f64).ceil() as usize
    }

    fn instantiate(&self, n: usize, seed: u64) -> Instance {
        self.instantiate_rng(n, seed, RngMode::default())
    }

    fn instantiate_rng(&self, n: usize, seed: u64, rng: RngMode) -> Instance {
        Instance {
            processes: rr_renaming::traits::boxed(self.build(n, seed, rng)),
            m: self.m(n),
            n,
        }
    }

    fn run_dense(
        &self,
        n: usize,
        seed: u64,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        self.run_dense_rng(n, seed, RngMode::default(), adversary, arena)
    }

    fn run_dense_rng(
        &self,
        n: usize,
        seed: u64,
        rng: RngMode,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        arena.run(&mut self.build(n, seed, rng), adversary, self.step_budget(n))
    }
}

impl UniformProbing {
    fn build(&self, n: usize, seed: u64, rng: RngMode) -> Vec<UniformProcess> {
        assert!(self.epsilon > 0.0, "uniform probing needs m > n");
        let mem = Arc::new(AtomicTasArray::new(self.m(n)));
        // W.h.p. bound is O(log n / log(1+ε)); budget 100× that.
        let budget = (100.0 * (n.max(2) as f64).log2() / (1.0 + self.epsilon).log2()).ceil() as u64;
        (0..n)
            .map(|pid| UniformProcess::with_rng(pid, seed, rng, Arc::clone(&mem), budget))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sched::adversary::{FairAdversary, RandomAdversary};
    use rr_sched::virtual_exec::run;

    fn run_uniform(n: usize, eps: f64, seed: u64) -> rr_sched::virtual_exec::RunOutcome {
        let algo = UniformProbing { epsilon: eps };
        let inst = algo.instantiate(n, seed);
        let m = inst.m;
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), 1 << 26).unwrap();
        out.verify_renaming(m).unwrap();
        out
    }

    #[test]
    fn everyone_named_with_double_space() {
        let out = run_uniform(1 << 10, 1.0, 3);
        assert_eq!(out.gave_up_count(), 0);
    }

    #[test]
    fn small_epsilon_takes_longer_but_succeeds() {
        let out_tight = run_uniform(1 << 10, 0.1, 5);
        let out_loose = run_uniform(1 << 10, 1.0, 5);
        assert_eq!(out_tight.gave_up_count(), 0);
        assert!(
            out_tight.step_complexity() >= out_loose.step_complexity(),
            "tighter space can't be faster: {} vs {}",
            out_tight.step_complexity(),
            out_loose.step_complexity()
        );
    }

    #[test]
    fn name_space_size() {
        assert_eq!(UniformProbing { epsilon: 1.0 }.m(100), 200);
        assert_eq!(UniformProbing { epsilon: 0.5 }.m(100), 150);
        assert_eq!(UniformProbing::double().epsilon, 1.0);
    }

    #[test]
    fn safety_under_random_adversary() {
        let algo = UniformProbing::double();
        let inst = algo.instantiate(256, 9);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut RandomAdversary::new(4), 1 << 24).unwrap();
        out.verify_renaming(512).unwrap();
    }

    #[test]
    #[should_panic(expected = "m > n")]
    fn zero_epsilon_rejected() {
        UniformProbing { epsilon: 0.0 }.instantiate(4, 0);
    }
}
