//! Registers the comparison baselines into an
//! [`AlgorithmRegistry`].
//!
//! `rr-renaming` owns the registry type and registers the paper's
//! protocols; this crate contributes the baselines so the dependency
//! graph stays acyclic (baselines depend on the algorithm trait, never
//! the other way around). Drivers compose both with two calls.

use crate::{
    BitonicRenaming, FetchAddRenaming, LinearScan, RouteRenaming, ScanStart, SplitterGrid,
    UniformProbing,
};
use rr_renaming::AlgorithmRegistry;

/// Adds the baseline algorithms:
///
/// | name | parameters | algorithm |
/// |---|---|---|
/// | `bitonic` | — | comparator-network renaming \[7\] |
/// | `fetch-add` | — | ideal fetch-and-increment counter |
/// | `uniform` | `eps` (default 1.0) | uniform probing into `(1+ε)n` |
/// | `linear-scan` | `start` = `zero`\|`pid` (default `zero`) | deterministic Θ(n) scan |
/// | `splitter-grid` | — | Moir–Anderson grid (size-capped: Θ(n²) registers) |
/// | `route` | `net` = `benes`\|`butterfly`\|`variant` (default `benes`), `stages` ≥ 1 (default closed form) | topology-routed switching network |
pub fn register_baselines(reg: &mut AlgorithmRegistry) {
    reg.register("bitonic", "comparator-network renaming [7]", "bitonic", |k| {
        k.check_known(&[])?;
        Ok(Box::new(BitonicRenaming))
    });
    reg.register("fetch-add", "ideal fetch-and-increment counter", "fetch-add", |k| {
        k.check_known(&[])?;
        Ok(Box::new(FetchAddRenaming))
    });
    reg.register("uniform", "uniform probing into (1+eps)n names", "uniform:eps=1", |k| {
        k.check_known(&["eps"])?;
        let epsilon: f64 = k.get("eps", 1.0)?;
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(format!("uniform probing needs eps > 0, got {epsilon}"));
        }
        Ok(Box::new(UniformProbing { epsilon }))
    });
    reg.register("linear-scan", "deterministic Θ(n) scan", "linear-scan:start=zero", |k| {
        k.check_known(&["start"])?;
        let start = match k.get("start", "zero".to_string())?.as_str() {
            "zero" => ScanStart::Zero,
            "pid" => ScanStart::OwnPid,
            other => return Err(format!("linear-scan start must be zero|pid, got `{other}`")),
        };
        Ok(Box::new(LinearScan { start }))
    });
    reg.register(
        "route",
        "switching-network renaming: route:net=benes | route:net=butterfly | route:net=variant",
        "route:net=benes",
        |k| Ok(Box::new(RouteRenaming::from_key(k)?)),
    );
    reg.register_capped(
        "splitter-grid",
        "Moir–Anderson read/write grid (quadratic space)",
        "splitter-grid",
        Some(1 << 12),
        |k| {
            k.check_known(&[])?;
            Ok(Box::new(SplitterGrid))
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> AlgorithmRegistry {
        let mut reg = AlgorithmRegistry::with_paper_algorithms();
        register_baselines(&mut reg);
        reg
    }

    #[test]
    fn baseline_keys_build_with_expected_names() {
        let reg = full();
        for (key, name) in [
            ("bitonic", "bitonic-network"),
            ("fetch-add", "fetch-add"),
            ("uniform", "uniform(eps=1)"),
            ("uniform:eps=0.5", "uniform(eps=0.5)"),
            ("linear-scan", "linear-scan(0)"),
            ("linear-scan:start=pid", "linear-scan(pid)"),
            ("splitter-grid", "splitter-grid"),
            ("route", "route(benes)"),
            ("route:net=butterfly", "route(butterfly)"),
            ("route:net=variant,stages=9", "route(variant,stages=9)"),
        ] {
            let built = reg.build(key).unwrap_or_else(|e| panic!("{key}: {e}"));
            assert!(
                built.name().starts_with(name.split('(').next().unwrap()),
                "{key} -> {}",
                built.name()
            );
        }
    }

    #[test]
    fn grid_is_capped_others_not() {
        let reg = full();
        assert_eq!(reg.n_cap("splitter-grid"), Some(1 << 12));
        assert_eq!(reg.n_cap("bitonic"), None);
        assert_eq!(reg.n_cap("tight-tau:c=4"), None);
    }

    #[test]
    fn bad_baseline_params_error() {
        let reg = full();
        assert!(reg.build("uniform:eps=0").is_err());
        assert!(reg.build("uniform:eps=-1").is_err());
        assert!(reg.build("linear-scan:start=middle").is_err());
        assert!(reg.build("bitonic:w=2").is_err());
        assert_eq!(
            reg.build("route:net=omega").err().unwrap(),
            "route net must be benes|butterfly|variant, got `omega`"
        );
        assert_eq!(reg.build("route:stages=0").err().unwrap(), "route stages must be >= 1, got 0");
        assert_eq!(
            reg.build("route:stages=x").err().unwrap(),
            "parameter `stages=x` of `route` is invalid"
        );
        assert!(reg.build("route:depth=3").is_err());
    }

    #[test]
    fn paper_and_baseline_sets_compose() {
        let reg = full();
        assert!(reg.keys().len() >= 14);
        assert!(reg.keys().contains(&"tight-tau"));
        assert!(reg.keys().contains(&"splitter-grid"));
        assert!(reg.keys().contains(&"route"));
    }
}
