//! Moir–Anderson splitter-grid renaming: deterministic, wait-free, and
//! built from **read/write registers only** — no test-and-set at all.
//!
//! This is the classical deterministic comparison point for the paper's
//! model discussion: renaming *without* TAS costs a quadratic name space
//! (`m = n(n+1)/2`) and Θ(n) steps, which is exactly the regime the
//! randomized TAS-based protocols escape.
//!
//! A *splitter* (Lamport/Moir–Anderson) is two registers `X` (process id)
//! and `Y` (bool) with the wait-free procedure
//!
//! ```text
//! X ← p
//! if Y: return Right
//! Y ← true
//! if X = p: return Stop     else: return Down
//! ```
//!
//! Among the `j` processes that enter a splitter, at most one *stops*,
//! at most `j−1` leave `Right` and at most `j−1` leave `Down` — so in a
//! triangular grid of splitters (move right on `Right`, down on `Down`)
//! every process stops within `n−1` moves, and the stop position is its
//! unique name. Every register access is charged as one step (four per
//! splitter visit), faithful to the read/write cost model.

use rr_renaming::traits::{Instance, RenamingAlgorithm};
use rr_sched::ids::Pid;
use rr_sched::process::{Process, StepOutcome};
use rr_shmem::Access;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Sentinel for an unwritten `X` register.
const NOBODY: usize = usize::MAX;

/// One splitter: the two read/write registers.
#[derive(Debug)]
pub struct Splitter {
    x: AtomicUsize,
    y: AtomicBool,
}

impl Default for Splitter {
    fn default() -> Self {
        Self { x: AtomicUsize::new(NOBODY), y: AtomicBool::new(false) }
    }
}

/// Result of a completed splitter visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitOutcome {
    /// This process owns the splitter's grid cell.
    Stop,
    /// Leave right.
    Right,
    /// Leave down.
    Down,
}

impl Splitter {
    /// Runs the whole splitter procedure at once (test helper; the
    /// [`GridProcess`] state machine performs it register by register).
    pub fn split(&self, pid: usize) -> SplitOutcome {
        self.x.store(pid, Ordering::SeqCst);
        if self.y.load(Ordering::SeqCst) {
            return SplitOutcome::Right;
        }
        self.y.store(true, Ordering::SeqCst);
        if self.x.load(Ordering::SeqCst) == pid {
            SplitOutcome::Stop
        } else {
            SplitOutcome::Down
        }
    }
}

/// The triangular grid: cells `(r, d)` with `r + d < n`.
#[derive(Debug)]
pub struct GridShared {
    n: usize,
    /// Row-major triangular storage.
    splitters: Vec<Splitter>,
}

impl GridShared {
    /// Grid for `n` processes.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let cells = n * (n + 1) / 2;
        Self { n, splitters: (0..cells).map(|_| Splitter::default()).collect() }
    }

    /// Flat index of cell `(r, d)` (diagonal enumeration — also the name
    /// assigned to a process stopping there).
    pub fn cell_index(&self, right: usize, down: usize) -> usize {
        let diag = right + down;
        debug_assert!(diag < self.n, "walked off the grid: ({right}, {down})");
        diag * (diag + 1) / 2 + down
    }

    /// The splitter at `(r, d)`.
    pub fn splitter(&self, right: usize, down: usize) -> &Splitter {
        &self.splitters[self.cell_index(right, down)]
    }

    /// Total cells (= name-space size).
    pub fn cells(&self) -> usize {
        self.splitters.len()
    }
}

/// Where a process is inside the four-access splitter procedure.
#[derive(Debug, Clone, Copy)]
enum Micro {
    WriteX,
    ReadY,
    WriteY,
    ReadX,
}

/// One grid walker.
pub struct GridProcess {
    pid: usize,
    shared: Arc<GridShared>,
    right: usize,
    down: usize,
    micro: Micro,
}

impl GridProcess {
    /// Process `pid` entering at cell (0, 0).
    pub fn new(pid: usize, shared: Arc<GridShared>) -> Self {
        Self { pid, shared, right: 0, down: 0, micro: Micro::WriteX }
    }

    /// Current cell, for tests.
    pub fn position(&self) -> (usize, usize) {
        (self.right, self.down)
    }

    fn move_to(&mut self, outcome: SplitOutcome) -> Option<usize> {
        match outcome {
            SplitOutcome::Stop => Some(self.shared.cell_index(self.right, self.down)),
            SplitOutcome::Right => {
                self.right += 1;
                self.micro = Micro::WriteX;
                None
            }
            SplitOutcome::Down => {
                self.down += 1;
                self.micro = Micro::WriteX;
                None
            }
        }
    }
}

impl Process for GridProcess {
    fn announce(&mut self) -> Access {
        let cell = self.shared.cell_index(self.right, self.down);
        // Registers of cell i live at pseudo-addresses 2i (X) and 2i+1
        // (Y) in array 5, so the adversary can distinguish them.
        match self.micro {
            Micro::WriteX | Micro::ReadX => Access::Read { array: 5, index: 2 * cell },
            Micro::ReadY | Micro::WriteY => Access::Read { array: 5, index: 2 * cell + 1 },
        }
    }

    fn step(&mut self) -> StepOutcome {
        let s = self.shared.splitter(self.right, self.down);
        match self.micro {
            Micro::WriteX => {
                s.x.store(self.pid, Ordering::SeqCst);
                self.micro = Micro::ReadY;
                StepOutcome::Continue
            }
            Micro::ReadY => {
                if s.y.load(Ordering::SeqCst) {
                    match self.move_to(SplitOutcome::Right) {
                        Some(name) => StepOutcome::Done(name),
                        None => StepOutcome::Continue,
                    }
                } else {
                    self.micro = Micro::WriteY;
                    StepOutcome::Continue
                }
            }
            Micro::WriteY => {
                s.y.store(true, Ordering::SeqCst);
                self.micro = Micro::ReadX;
                StepOutcome::Continue
            }
            Micro::ReadX => {
                let outcome = if s.x.load(Ordering::SeqCst) == self.pid {
                    SplitOutcome::Stop
                } else {
                    SplitOutcome::Down
                };
                match self.move_to(outcome) {
                    Some(name) => StepOutcome::Done(name),
                    None => StepOutcome::Continue,
                }
            }
        }
    }

    fn pid(&self) -> Pid {
        Pid::new(self.pid)
    }
}

/// Splitter-grid renaming as a [`RenamingAlgorithm`]:
/// `m = n(n+1)/2`, deterministic, read/write registers only.
#[derive(Debug, Clone, Copy)]
pub struct SplitterGrid;

impl RenamingAlgorithm for SplitterGrid {
    fn name(&self) -> String {
        "splitter-grid(r/w)".into()
    }

    fn m(&self, n: usize) -> usize {
        n * (n + 1) / 2
    }

    fn instantiate(&self, n: usize, _seed: u64) -> Instance {
        Instance { processes: rr_renaming::traits::boxed(self.build(n)), m: self.m(n), n }
    }

    /// Deterministic: no randomness is drawn, so every RNG backend is
    /// trivially supported (the mode is irrelevant, not refused).
    fn instantiate_rng(&self, n: usize, seed: u64, _rng: rr_shmem::rng::RngMode) -> Instance {
        self.instantiate(n, seed)
    }

    fn step_budget(&self, n: usize) -> u64 {
        // ≤ n splitters on a path, 4 accesses each, for each process.
        16 * (n as u64) * (n as u64) + 1024
    }

    fn run_dense(
        &self,
        n: usize,
        _seed: u64,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        arena.run(&mut self.build(n), adversary, self.step_budget(n))
    }
}

impl SplitterGrid {
    fn build(&self, n: usize) -> Vec<GridProcess> {
        let shared = Arc::new(GridShared::new(n));
        (0..n).map(|pid| GridProcess::new(pid, Arc::clone(&shared))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sched::adversary::{CollisionMaximizer, FairAdversary, RandomAdversary};
    use rr_sched::virtual_exec::run;

    #[test]
    fn solo_process_stops_at_origin() {
        let shared = Arc::new(GridShared::new(4));
        let mut p = GridProcess::new(7, Arc::clone(&shared));
        let (name, steps) = rr_sched::process::run_to_completion(&mut p, 100);
        assert_eq!(name, Some(0), "alone, the first splitter stops you");
        assert_eq!(steps, 4, "one full splitter procedure");
        assert_eq!(p.position(), (0, 0));
    }

    #[test]
    fn splitter_at_most_one_stop() {
        // Sequential entries: first stops, later ones leave Right (Y set).
        let s = Splitter::default();
        assert_eq!(s.split(1), SplitOutcome::Stop);
        assert_eq!(s.split(2), SplitOutcome::Right);
        assert_eq!(s.split(3), SplitOutcome::Right);
    }

    #[test]
    fn full_grid_renames_distinctly() {
        for n in [1usize, 2, 5, 16, 64] {
            let inst = SplitterGrid.instantiate(n, 0);
            let m = inst.m;
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let out =
                run(procs, &mut FairAdversary::default(), SplitterGrid.step_budget(n)).unwrap();
            out.verify_renaming(m).unwrap();
            assert_eq!(out.gave_up_count(), 0);
        }
    }

    #[test]
    fn adversarial_schedules_respect_grid_bound() {
        let n = 32;
        for mut adv in [
            Box::new(RandomAdversary::new(3)) as Box<dyn rr_sched::Adversary>,
            Box::new(CollisionMaximizer::default()),
        ] {
            let inst = SplitterGrid.instantiate(n, 0);
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let out = run(procs, adv.as_mut(), SplitterGrid.step_budget(n)).unwrap();
            out.verify_renaming(n * (n + 1) / 2).unwrap();
            // ≤ n−1 moves of 4 accesses each, plus the final stop visit.
            assert!(out.step_complexity() <= 4 * n as u64);
        }
    }

    #[test]
    fn step_complexity_is_linear_not_logarithmic() {
        // The deterministic read/write lower-bound regime: max steps grow
        // linearly in n under the worst (fair, all-enter) schedule.
        let mut prev = 0;
        for n in [8usize, 32, 128] {
            let inst = SplitterGrid.instantiate(n, 0);
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let out =
                run(procs, &mut FairAdversary::default(), SplitterGrid.step_budget(n)).unwrap();
            let steps = out.step_complexity();
            assert!(steps > prev, "steps must grow with n");
            assert!(steps as usize >= n / 2, "Θ(n) regime expected, got {steps} at n={n}");
            prev = steps;
        }
    }

    #[test]
    fn grid_indexing_is_injective_and_in_range() {
        let g = GridShared::new(10);
        let mut seen = std::collections::HashSet::new();
        for r in 0..10 {
            for d in 0..10 - r {
                let i = g.cell_index(r, d);
                assert!(i < g.cells());
                assert!(seen.insert(i), "duplicate index for ({r},{d})");
            }
        }
        assert_eq!(seen.len(), g.cells());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rr_sched::adversary::RandomAdversary;
    use rr_sched::virtual_exec::run;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Distinct names for every n and schedule seed.
        #[test]
        fn names_always_distinct(n in 1usize..80, seed in 0u64..500) {
            let inst = SplitterGrid.instantiate(n, 0);
            let m = inst.m;
            let procs: Vec<Box<dyn rr_sched::Process>> =
                inst.processes.into_iter().map(|p| p as _).collect();
            let out = run(procs, &mut RandomAdversary::new(seed),
                rr_renaming::traits::RenamingAlgorithm::step_budget(&SplitterGrid, n)).unwrap();
            prop_assert!(out.verify_renaming(m).is_ok());
            prop_assert_eq!(out.gave_up_count(), 0);
        }

        /// Threaded: real interleavings also keep names distinct.
        #[test]
        fn threaded_distinct(n in 2usize..48) {
            let inst = SplitterGrid.instantiate(n, 0);
            let m = inst.m;
            let out = rr_sched::run_threads(inst.processes, 1 << 20);
            prop_assert!(out.verify_renaming(m).is_ok());
        }
    }
}
