//! Topology-routed renaming: multistage switching networks.
//!
//! The comparator-network baseline ([`crate::network`]) instantiates a
//! *sorting* network; this module instantiates classical *switching*
//! topologies — the butterfly, the Beneš network, and the doubled-core
//! Beneš variant studied in "A New Variant of Benes Network: Its
//! Topological Characterisation and Comparative Analysis" (see
//! PAPERS.md) — as renaming protocols. Each 2×2 switch is one TAS
//! register: a process enters on the wire of its initial name, performs
//! the TAS at every switch it meets (winner exits on the low wire,
//! loser on the high wire), and its final wire is its new name.
//! Distinctness is a property of TAS splitters alone, not of the
//! routing structure (proved for arbitrary layered networks by the
//! proptests in [`crate::network`]), so *any* stage schedule is safe —
//! which is what makes the family parameterizable.
//!
//! Every stage pairs all `W = 2^q` wires along one address bit, so
//! under full occupancy each process meets exactly one switch per stage
//! and per-process step complexity **equals the network depth** — the
//! depth-vs-steps trade-off the `ROUTE` experiment measures:
//!
//! | topology | stage bit schedule | depth |
//! |---|---|---|
//! | `butterfly` | `q-1 … 0` | `q` |
//! | `benes` | `q-1 … 0, 1 … q-1` | `2q − 1` |
//! | `variant` | `q-1 … 0, 0 … q-1` (doubled core stage) | `2q` |
//!
//! The `stages=K` parameter overrides the depth by cycling the
//! topology's bit schedule to exactly `K` stages — shallower prefixes
//! and deeper repetitions are both legal layered networks.

use crate::network::{Comparator, ComparatorNetwork, NetworkProcess, NetworkShared};
use rr_renaming::traits::{Instance, RenamingAlgorithm};
use std::sync::Arc;

/// TAS address space of the route family's switches — distinct from the
/// comparator-network baseline's array 3, so adversaries that group by
/// announced target can tell the families apart.
pub const ROUTE_TAS_ARRAY: u32 = 4;

/// Which multistage switching topology to route through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteTopology {
    /// Beneš rearrangeable network: `2q − 1` stages.
    Benes,
    /// Butterfly (banyan) network: `q` stages.
    Butterfly,
    /// The PAPERS.md Beneš variant with a doubled core stage: `2q`
    /// stages.
    Variant,
}

impl RouteTopology {
    /// Parses a `net=` parameter value.
    ///
    /// # Errors
    /// Returns the registry's pinned message on anything but
    /// `benes`/`butterfly`/`variant`.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "benes" => Ok(Self::Benes),
            "butterfly" => Ok(Self::Butterfly),
            "variant" => Ok(Self::Variant),
            other => Err(format!("route net must be benes|butterfly|variant, got `{other}`")),
        }
    }

    /// Stable label used in keys and algorithm names.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Benes => "benes",
            Self::Butterfly => "butterfly",
            Self::Variant => "variant",
        }
    }

    /// The address bit switched at each stage, for width `2^q`
    /// (`q ≥ 1`). The schedule's length is the closed-form depth.
    pub fn bit_schedule(&self, q: u32) -> Vec<u32> {
        let down = (0..q).rev();
        match self {
            Self::Butterfly => down.collect(),
            Self::Benes => down.chain(1..q).collect(),
            Self::Variant => down.chain(0..q).collect(),
        }
    }

    /// Closed-form depth for `width = 2^q` wires: butterfly `q`, Beneš
    /// `2q − 1`, variant `2q`.
    pub fn closed_form_depth(&self, width: usize) -> usize {
        let q = width.trailing_zeros() as usize;
        match self {
            Self::Butterfly => q,
            Self::Benes => 2 * q - 1,
            Self::Variant => 2 * q,
        }
    }
}

/// Builds the switching network for `topology` over `width` wires,
/// optionally overriding the stage count by cycling the topology's bit
/// schedule.
///
/// # Panics
/// Panics unless `width` is a power of two ≥ 2 and `stages` (when
/// given) is ≥ 1 — the registry factory validates both before calling.
pub fn route_network(
    topology: RouteTopology,
    width: usize,
    stages: Option<usize>,
) -> ComparatorNetwork {
    assert!(width.is_power_of_two() && width >= 2, "route needs a power-of-two width");
    let schedule = topology.bit_schedule(width.trailing_zeros());
    let depth = stages.unwrap_or(schedule.len());
    assert!(depth >= 1, "route needs at least one stage");
    let layers = (0..depth)
        .map(|s| {
            let mask = 1usize << schedule[s % schedule.len()];
            (0..width)
                .filter(|i| i & mask == 0)
                .map(|i| Comparator { lo: i, hi: i | mask })
                .collect()
        })
        .collect();
    ComparatorNetwork::new(width, layers)
}

/// Topology-routed renaming as a [`RenamingAlgorithm`]: width = next
/// power of two ≥ n (so `m < 2n`, tight at powers of two), exactly like
/// the bitonic baseline — only the stage schedule differs.
#[derive(Debug, Clone, Copy)]
pub struct RouteRenaming {
    /// The switching topology routed through.
    pub topology: RouteTopology,
    /// Stage-count override (`None` = the topology's closed form).
    pub stages: Option<usize>,
}

impl RouteRenaming {
    /// Parses a `route[:net=…][,stages=K]` key — the registry factory
    /// and the `ROUTE` experiment spec (which needs the geometry, not
    /// just the boxed algorithm) share this one grammar.
    ///
    /// # Errors
    /// Pinned messages for unknown parameters, unknown topologies and
    /// `stages < 1` — see the `parse_errors` suite in `rr-bench`.
    pub fn from_key(k: &rr_sched::registry::ParsedKey) -> Result<Self, String> {
        k.check_known(&["net", "stages"])?;
        let topology = RouteTopology::parse(&k.get("net", "benes".to_string())?)?;
        // `stages` has no natural in-band default (the closed form
        // depends on n), so absence is detected via an empty-string
        // sentinel and the value re-parsed by hand with the registry's
        // standard invalid-parameter message.
        let raw = k.get("stages", String::new())?;
        let stages = if raw.is_empty() {
            None
        } else {
            let v: usize = raw
                .parse()
                .map_err(|_| format!("parameter `stages={raw}` of `route` is invalid"))?;
            if v == 0 {
                return Err("route stages must be >= 1, got 0".to_string());
            }
            Some(v)
        };
        Ok(Self { topology, stages })
    }

    /// Network depth at size `n` — the `stages` override, or the
    /// topology's closed form at width `m(n)`.
    pub fn depth(&self, n: usize) -> usize {
        self.stages.unwrap_or_else(|| self.topology.closed_form_depth(self.m(n)))
    }

    fn build(&self, n: usize) -> Vec<NetworkProcess> {
        let net = route_network(self.topology, self.m(n), self.stages);
        let shared = Arc::new(NetworkShared::new(net));
        (0..n)
            .map(|pid| NetworkProcess::with_array(pid, Arc::clone(&shared), ROUTE_TAS_ARRAY))
            .collect()
    }
}

impl RenamingAlgorithm for RouteRenaming {
    fn name(&self) -> String {
        match self.stages {
            None => format!("route({})", self.topology.label()),
            Some(k) => format!("route({},stages={k})", self.topology.label()),
        }
    }

    fn m(&self, n: usize) -> usize {
        n.next_power_of_two().max(2)
    }

    fn instantiate(&self, n: usize, _seed: u64) -> Instance {
        Instance { processes: rr_renaming::traits::boxed(self.build(n)), m: self.m(n), n }
    }

    /// Deterministic: no randomness is drawn, so every RNG backend is
    /// trivially supported (the mode is irrelevant, not refused).
    fn instantiate_rng(&self, n: usize, seed: u64, _rng: rr_shmem::rng::RngMode) -> Instance {
        self.instantiate(n, seed)
    }

    fn run_dense(
        &self,
        n: usize,
        _seed: u64,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        arena.run(&mut self.build(n), adversary, self.step_budget(n))
    }

    fn run_dense_rng(
        &self,
        n: usize,
        seed: u64,
        _rng: rr_shmem::rng::RngMode,
        adversary: &mut dyn rr_sched::adversary::Adversary,
        arena: &mut rr_sched::dense::Arena,
    ) -> Result<rr_sched::virtual_exec::RunOutcome, rr_sched::virtual_exec::ExecError> {
        self.run_dense(n, seed, adversary, arena)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rr_sched::adversary::{CollisionMaximizer, FairAdversary, RandomAdversary};
    use rr_sched::process::Process;
    use rr_sched::virtual_exec::run;

    #[test]
    fn closed_form_depths() {
        // width 8, q = 3.
        assert_eq!(RouteTopology::Butterfly.closed_form_depth(8), 3);
        assert_eq!(RouteTopology::Benes.closed_form_depth(8), 5);
        assert_eq!(RouteTopology::Variant.closed_form_depth(8), 6);
        // Degenerate width 2, q = 1.
        assert_eq!(RouteTopology::Butterfly.closed_form_depth(2), 1);
        assert_eq!(RouteTopology::Benes.closed_form_depth(2), 1);
        assert_eq!(RouteTopology::Variant.closed_form_depth(2), 2);
    }

    #[test]
    fn network_structure_matches_schedule() {
        for (topo, depth) in
            [(RouteTopology::Butterfly, 3), (RouteTopology::Benes, 5), (RouteTopology::Variant, 6)]
        {
            let net = route_network(topo, 8, None);
            assert_eq!(net.depth(), depth, "{}", topo.label());
            // Every stage pairs all 8 wires: 4 switches per stage.
            assert_eq!(net.size(), depth * 4, "{}", topo.label());
            for l in 0..net.depth() {
                for w in 0..8 {
                    assert!(net.comparator_at(l, w).is_some(), "{} layer {l}", topo.label());
                }
            }
        }
    }

    #[test]
    fn benes_core_is_symmetric() {
        // The Beneš bit schedule is a palindrome around the single core
        // stage; the variant doubles that core.
        assert_eq!(RouteTopology::Benes.bit_schedule(3), vec![2, 1, 0, 1, 2]);
        assert_eq!(RouteTopology::Variant.bit_schedule(3), vec![2, 1, 0, 0, 1, 2]);
        assert_eq!(RouteTopology::Butterfly.bit_schedule(3), vec![2, 1, 0]);
    }

    #[test]
    fn stages_override_cycles_the_schedule() {
        // Truncation below the closed form…
        assert_eq!(route_network(RouteTopology::Benes, 8, Some(2)).depth(), 2);
        // …and repetition above it are both legal layered networks.
        let deep = route_network(RouteTopology::Butterfly, 8, Some(7));
        assert_eq!(deep.depth(), 7);
        assert_eq!(deep.size(), 7 * 4);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_rejected() {
        route_network(RouteTopology::Benes, 8, Some(0));
    }

    #[test]
    fn full_occupancy_is_tight_renaming_with_steps_equal_depth() {
        for topo in [RouteTopology::Benes, RouteTopology::Butterfly, RouteTopology::Variant] {
            let n = 16;
            let algo = RouteRenaming { topology: topo, stages: None };
            let inst = algo.instantiate(n, 0);
            let procs: Vec<Box<dyn Process>> =
                inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
            let out = run(procs, &mut RandomAdversary::new(7), 1 << 20).unwrap();
            out.verify_renaming(n).unwrap_or_else(|e| panic!("{}: {e}", topo.label()));
            let mut names: Vec<_> = out.names.iter().map(|x| x.unwrap()).collect();
            names.sort_unstable();
            assert_eq!(names, (0..n).collect::<Vec<_>>(), "{}", topo.label());
            let depth = algo.depth(n) as u64;
            assert!(out.steps.iter().all(|&s| s == depth), "{}", topo.label());
        }
    }

    #[test]
    fn partial_occupancy_names_distinct() {
        // 11 processes in a width-16 variant network under the
        // collision maximizer: distinct names < 16.
        let algo = RouteRenaming { topology: RouteTopology::Variant, stages: None };
        let inst = algo.instantiate(11, 0);
        assert_eq!(inst.m, 16);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut CollisionMaximizer::default(), 1 << 20).unwrap();
        out.verify_renaming(16).unwrap();
    }

    #[test]
    fn single_process_percolates_to_wire_zero() {
        let algo = RouteRenaming { topology: RouteTopology::Benes, stages: None };
        let mut procs = algo.build(1);
        // Alone, the process wins every switch and exits on wire 0 — but
        // it entered on wire 0, so route from a different wire directly.
        let net = route_network(RouteTopology::Benes, 8, None);
        let shared = Arc::new(NetworkShared::new(net));
        let mut p = NetworkProcess::with_array(6, Arc::clone(&shared), ROUTE_TAS_ARRAY);
        let (name, _steps) = rr_sched::process::run_to_completion(&mut p, 1000);
        assert_eq!(name, Some(0));
        let (name0, _) = rr_sched::process::run_to_completion(&mut procs[0], 1000);
        assert_eq!(name0, Some(0));
    }

    #[test]
    fn announces_on_the_route_array() {
        let algo = RouteRenaming { topology: RouteTopology::Butterfly, stages: None };
        let mut procs = algo.build(4);
        match procs[0].announce() {
            rr_shmem::Access::Tas { array, .. } => assert_eq!(array, ROUTE_TAS_ARRAY),
            other => panic!("unexpected announce {other:?}"),
        }
    }

    #[test]
    fn names_encode_topology_and_stages() {
        assert_eq!(
            RouteRenaming { topology: RouteTopology::Benes, stages: None }.name(),
            "route(benes)"
        );
        assert_eq!(
            RouteRenaming { topology: RouteTopology::Butterfly, stages: Some(5) }.name(),
            "route(butterfly,stages=5)"
        );
    }

    #[test]
    fn total_under_fair() {
        let algo = RouteRenaming { topology: RouteTopology::Variant, stages: None };
        let inst = algo.instantiate(24, 0);
        let procs: Vec<Box<dyn Process>> =
            inst.processes.into_iter().map(|p| p as Box<dyn Process>).collect();
        let out = run(procs, &mut FairAdversary::default(), 1 << 20).unwrap();
        assert_eq!(out.gave_up_count(), 0);
        out.verify_renaming(32).unwrap();
    }

    #[test]
    fn parse_accepts_exactly_the_three_topologies() {
        assert_eq!(RouteTopology::parse("benes").unwrap(), RouteTopology::Benes);
        assert_eq!(RouteTopology::parse("butterfly").unwrap(), RouteTopology::Butterfly);
        assert_eq!(RouteTopology::parse("variant").unwrap(), RouteTopology::Variant);
        assert_eq!(
            RouteTopology::parse("omega").unwrap_err(),
            "route net must be benes|butterfly|variant, got `omega`"
        );
    }
}
