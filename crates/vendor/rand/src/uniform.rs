//! Uniform sampling from ranges, with rejection to kill modulo bias.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types drawable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive). Caller guarantees
    /// `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high)`. Caller guarantees `low < high`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Rejection sampling: draw again while in the biased
                // tail; at most one extra draw in expectation.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                <$t>::sample_inclusive(rng, low, high - 1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Uniform draw from `[0, span)` with the **exact** rejection threshold.
///
/// `sample_inclusive` derives its acceptance zone from `u64::MAX`, which
/// over-rejects by one value class: spans that divide 2^64 (every power
/// of two) can still redraw, a pure-waste extra draw on hot paths. This
/// variant rejects exactly the `2^64 mod span` biased top values, so a
/// power-of-two span reduces to a single masked draw and never redraws.
/// It is the draw path of the counter-mode `ProcessRng`; the default
/// ChaCha mode keeps `sample_inclusive`'s schedule bit-for-bit.
///
/// # Panics
/// Panics if `span == 0`.
pub fn sample_exact<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample from empty range");
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // 2^64 mod span, in u64 arithmetic: span.wrapping_neg() = 2^64 - span
    // and (2^64 - span) ≡ 2^64 (mod span). Accepting v ≤ u64::MAX - zone
    // keeps exactly 2^64 - zone values, a multiple of span.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v <= u64::MAX - zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Shift to unsigned space, draw, shift back.
                const FLIP: $u = 1 << (<$u>::BITS - 1);
                let v = <$u>::sample_inclusive(rng, (low as $u) ^ FLIP, (high as $u) ^ FLIP);
                (v ^ FLIP) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                <$t>::sample_inclusive(rng, low, high - 1)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges usable with [`crate::RngExt::random_range`].
pub trait SampleRange<T> {
    /// Uniform draw from `self`.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from empty range");
        T::sample_inclusive(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replays a scripted word sequence and counts draws.
    struct Scripted {
        words: Vec<u64>,
        at: usize,
    }

    impl Scripted {
        fn new(words: Vec<u64>) -> Self {
            Self { words, at: 0 }
        }
    }

    impl RngCore for Scripted {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.at % self.words.len()];
            self.at += 1;
            w
        }
    }

    #[test]
    fn power_of_two_spans_never_redraw() {
        // Even the all-ones word — which the u64::MAX-derived zone of
        // `sample_inclusive` rejects — is accepted in one draw.
        for shift in [0u32, 1, 5, 20, 63] {
            let span = 1u64 << shift;
            let mut rng = Scripted::new(vec![u64::MAX]);
            assert_eq!(sample_exact(&mut rng, span), span - 1);
            assert_eq!(rng.at, 1, "span 2^{shift} must cost exactly one draw");
        }
    }

    #[test]
    fn inclusive_zone_rejects_top_words_on_power_of_two_spans() {
        // The defect the exact threshold fixes: the legacy zone redraws
        // on the top `span` words even though 2^64 is a multiple of span.
        let mut rng = Scripted::new(vec![u64::MAX, 7]);
        assert_eq!(u64::sample_inclusive(&mut rng, 0, 15), 7);
        assert_eq!(rng.at, 2, "legacy path redraws on the all-ones word");
    }

    #[test]
    fn exact_threshold_rejects_only_the_biased_tail() {
        // span 3: 2^64 mod 3 = 1, so exactly the all-ones word redraws.
        let mut rng = Scripted::new(vec![u64::MAX, 5]);
        assert_eq!(sample_exact(&mut rng, 3), 5 % 3);
        assert_eq!(rng.at, 2);
        let mut rng = Scripted::new(vec![u64::MAX - 1]);
        assert_eq!(sample_exact(&mut rng, 3), (u64::MAX - 1) % 3);
        assert_eq!(rng.at, 1);
    }

    #[test]
    fn exact_sampling_stays_in_bounds_and_roughly_uniform() {
        let mut rng = Scripted::new((0..997u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect());
        let mut counts = [0u32; 5];
        for _ in 0..5000 {
            let v = sample_exact(&mut rng, 5);
            assert!(v < 5);
            counts[v as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn exact_zero_span_panics() {
        sample_exact(&mut Scripted::new(vec![0]), 0);
    }
}
