//! Uniform sampling from ranges, with rejection to kill modulo bias.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types drawable uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high]` (inclusive). Caller guarantees
    /// `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;

    /// Uniform draw from `[low, high)`. Caller guarantees `low < high`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u64).wrapping_sub(low as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let span = span + 1;
                // Rejection sampling: draw again while in the biased
                // tail; at most one extra draw in expectation.
                let zone = u64::MAX - u64::MAX.wrapping_rem(span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return low.wrapping_add((v % span) as $t);
                    }
                }
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                <$t>::sample_inclusive(rng, low, high - 1)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // Shift to unsigned space, draw, shift back.
                const FLIP: $u = 1 << (<$u>::BITS - 1);
                let v = <$u>::sample_inclusive(rng, (low as $u) ^ FLIP, (high as $u) ^ FLIP);
                (v ^ FLIP) as $t
            }

            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                <$t>::sample_inclusive(rng, low, high - 1)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Ranges usable with [`crate::RngExt::random_range`].
pub trait SampleRange<T> {
    /// Uniform draw from `self`.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "cannot sample from empty range");
        T::sample_inclusive(rng, low, high)
    }
}
