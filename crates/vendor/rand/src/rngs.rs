//! ChaCha8-based RNG (the `rand_chacha` slice this workspace uses).

use crate::{RngCore, SeedableRng};

/// ChaCha stream cipher RNG with 8 rounds.
///
/// Seed-portable and cheap; statistical quality is far beyond anything
/// the renaming experiments can detect. Distinct `(seed, stream)` pairs
/// yield independent sequences.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    stream: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    at: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Selects an independent stream of the same seed; resets the
    /// position to the start of that stream.
    pub fn set_stream(&mut self, stream: u64) {
        self.stream = stream;
        self.counter = 0;
        self.at = 16;
    }

    /// The current stream id.
    pub fn get_stream(&self) -> u64 {
        self.stream
    }

    /// Total 32-bit words produced on the current stream — the
    /// draw-schedule fingerprint the draws-per-step goldens pin. Derived
    /// from the cipher position, so it costs nothing on the hot path.
    pub fn words_consumed(&self) -> u64 {
        if self.at == 16 {
            self.counter.wrapping_mul(16)
        } else {
            (self.counter - 1).wrapping_mul(16).wrapping_add(self.at as u64)
        }
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.stream as u32;
        state[15] = (self.stream >> 32) as u32;
        let input = state;
        for _ in 0..4 {
            // One double round = column round + diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(input) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.at = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, bytes) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(bytes.try_into().unwrap());
        }
        Self { key, counter: 0, stream: 0, buf: [0; 16], at: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.at == 16 {
            self.refill();
        }
        let word = self.buf[self.at];
        self.at += 1;
        word
    }
}
