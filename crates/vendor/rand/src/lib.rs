//! Offline, API-compatible subset of `rand` 0.9 + `rand_chacha`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the `rand` API it actually uses:
//! [`SeedableRng`], the [`RngExt`] extension trait (`random`,
//! `random_range`) and a genuine ChaCha8 stream cipher RNG
//! ([`rngs::ChaCha8Rng`]) with per-stream derivation via `set_stream`.
//!
//! The ChaCha8 core follows RFC 7539's quarter-round with 8 rounds; the
//! 64-bit block counter lives in state words 12–13 and the stream id in
//! words 14–15, so `(seed, stream)` pairs give independent, seed-portable
//! sequences — exactly the property `rr_shmem::rng::ProcessRng` documents.
//! Output is **not** bit-compatible with upstream `rand_chacha` (the
//! `seed_from_u64` key-derivation differs); every consumer in this
//! workspace only relies on determinism and stream independence, both of
//! which hold.

#![forbid(unsafe_code)]

pub mod rngs;

mod uniform;

pub use uniform::{sample_exact, SampleRange};

/// Minimal core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Construction of an RNG from seed material (subset of
/// `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 as in `rand_core`.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Distribution of a type under fresh uniform bits (stand-in for the
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience draws over any [`RngCore`] (the `rand` 0.9 `Rng` surface
/// this workspace uses).
pub trait RngExt: RngCore {
    /// Uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::ChaCha8Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn streams_differ_and_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.set_stream(1);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        b.set_stream(2);
        let mut a2 = ChaCha8Rng::seed_from_u64(9);
        a2.set_stream(1);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let xs2: Vec<u64> = (0..16).map(|_| a2.next_u64()).collect();
        assert_ne!(xs, ys);
        assert_eq!(xs, xs2);
    }

    #[test]
    fn range_draws_in_bounds() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        for bound in [1usize, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(r.random_range(0..bound) < bound);
            }
        }
        for _ in 0..200 {
            let v: u32 = r.random_range(5..=9);
            assert!((5..=9).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
